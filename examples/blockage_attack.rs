//! The intra-area blockage attack end to end (paper §III-C / Fig 9).
//!
//! Every second a random vehicle GeoBroadcasts over the whole 4 km road;
//! attacker-free, contention-based forwarding reaches ~100 % of vehicles.
//! The attacker captures each packet, clamps its (unprotected!) remaining
//! hop limit to 1 and re-broadcasts within a millisecond — candidates
//! discard their buffered copies as "duplicates", fresh receivers drop
//! the hop-exhausted copy, and the flood dies at the attacker's edge.
//!
//! ```text
//! cargo run --release --example blockage_attack [runs] [duration_s]
//! ```

use geonet_repro::scenarios::config::Scale;
use geonet_repro::scenarios::{intraarea, ScenarioConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let duration_s: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let scale = Scale { runs, duration_s };

    println!("== Intra-area blockage attack (DSRC) ==");
    println!("scale: {runs} A/B pairs × {duration_s} s (paper: 100 × 200 s)\n");

    let base = ScenarioConfig::paper_dsrc_default();
    let profile = base.profile();
    let settings = [
        ("worst NLoS (327 m)", profile.nlos_worst(), None),
        ("median NLoS (486 m)", profile.nlos_median(), Some(0.385)),
        ("tuned (500 m)", 500.0, None),
        ("median LoS (1283 m)", profile.los_median(), None),
    ];

    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8}",
        "attack range", "af recv", "atk recv", "λ ours", "λ paper"
    );
    for (label, range, paper) in settings {
        let r = intraarea::run_ab(&base.with_attack_range(range), label, scale, 42);
        println!(
            "{:<22} {:>9.1}% {:>9.1}% {:>7.1}% {:>8}",
            label,
            r.baseline_rate().unwrap_or(f64::NAN) * 100.0,
            r.attacked_rate().unwrap_or(f64::NAN) * 100.0,
            r.gamma().unwrap_or(f64::NAN) * 100.0,
            paper.map_or_else(|| "—".to_string(), |p: f64| format!("{:.1}%", p * 100.0)),
        );
    }

    println!("\nTwo things to notice (both match the paper):");
    println!(" * blockage peaks near the vehicles' own range (~500 m) — a larger");
    println!("   attack range hands the packet to more first-time receivers and");
    println!("   *reduces* the blockage;");
    println!(" * the attacker-free CBF flood reaches essentially every vehicle,");
    println!("   so λ here is an absolute loss of coverage.");

    // Bonus: the source-location split of §IV-A.
    let (inside, outside) = intraarea::fig9_source_split(scale, 42);
    println!(
        "\nSources inside the fully covered area:  λ = {:.1}% (paper 62.8%) — blocked both ways",
        inside.gamma().unwrap_or(f64::NAN) * 100.0
    );
    println!(
        "Sources elsewhere:                      λ = {:.1}% (paper 37.2%) — blocked one way",
        outside.gamma().unwrap_or(f64::NAN) * 100.0
    );
}
