//! The inter-area interception attack end to end (paper §III-B / Fig 7).
//!
//! Runs A/B pairs of the paper's default DSRC scenario for the three
//! attack ranges (worst NLoS, median NLoS, median LoS) and prints the
//! per-range interception rate γ next to the paper's published value.
//!
//! ```text
//! cargo run --release --example interception_attack [runs] [duration_s]
//! ```

use geonet_repro::scenarios::config::Scale;
use geonet_repro::scenarios::{interarea, ScenarioConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let duration_s: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let scale = Scale { runs, duration_s };

    println!("== Inter-area interception attack (DSRC) ==");
    println!("scale: {runs} A/B pairs × {duration_s} s (paper: 100 × 200 s)\n");
    println!("The attacker sits at the centre of the 4 km road and replays");
    println!("every beacon it hears. Victims learn authentic positions of");
    println!("out-of-range vehicles; greedy forwarding then picks unreachable");
    println!("next hops and the packets silently vanish.\n");

    let base = ScenarioConfig::paper_dsrc_default();
    let profile = base.profile();
    let settings = [
        ("median LoS (1283 m)", profile.los_median(), 0.999),
        ("median NLoS (486 m)", profile.nlos_median(), 0.999),
        ("worst NLoS (327 m)", profile.nlos_worst(), 0.468),
    ];

    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8}",
        "attack range", "af recv", "atk recv", "γ ours", "γ paper"
    );
    for (label, range, paper_gamma) in settings {
        let r = interarea::run_ab(&base.with_attack_range(range), label, scale, 42);
        println!(
            "{:<22} {:>9.1}% {:>9.1}% {:>7.1}% {:>7.1}%",
            label,
            r.baseline_rate().unwrap_or(f64::NAN) * 100.0,
            r.attacked_rate().unwrap_or(f64::NAN) * 100.0,
            r.gamma().unwrap_or(f64::NAN) * 100.0,
            paper_gamma * 100.0,
        );
    }

    println!("\nNote the attacker-free baseline itself sits near 54% — greedy");
    println!("forwarding already loses packets to naturally stale location");
    println!("tables, which is why the paper reports γ as a *relative* drop.");
}
