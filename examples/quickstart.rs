//! Quickstart: assemble a three-vehicle GeoNetworking scene by hand and
//! watch greedy forwarding pick a next hop — then watch the paper's
//! beacon-replay attack corrupt the same decision.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use geonet::{CertificateAuthority, GnAddress, GnConfig, GnRouter, RouterAction};
use geonet_attack::InterAreaAttacker;
use geonet_geo::{Area, GeoReference, Heading, Position};
use geonet_radio::RangeProfile;
use geonet_sim::{SimDuration, SimTime};
use geonet_traffic::IdmParams;

fn main() {
    println!("== GeoNetworking quickstart ==\n");
    println!("Paper parameters:");
    println!("  {}", IdmParams::paper_default());
    println!("  {}", RangeProfile::DSRC);
    println!("  {}\n", RangeProfile::CV2X);

    // One certificate authority per trust domain; every legitimate node
    // enrolls. The attacker never gets credentials.
    let ca = CertificateAuthority::new(0x2023);
    let reference = GeoReference::default();
    let config = GnConfig::paper_default(RangeProfile::DSRC.dist_max());

    let mut v1 = GnRouter::new(ca.enroll(GnAddress::vehicle(1)), ca.verifier(), config, reference);
    let v2 = GnRouter::new(ca.enroll(GnAddress::vehicle(2)), ca.verifier(), config, reference);
    let v3 = GnRouter::new(ca.enroll(GnAddress::vehicle(3)), ca.verifier(), config, reference);

    // Figure 2 of the paper: V1 wants to reach a destination area east of
    // everyone. V2 (300 m east) is V1's only real neighbour; V3 (700 m
    // east) is out of V1's 486 m radio range.
    let t0 = SimTime::from_secs(1);
    let v1_pos = Position::new(0.0, 2.5);
    let v2_beacon = v2.make_beacon(t0, Position::new(300.0, 2.5), 30.0, Heading::EAST);
    let v3_beacon = v3.make_beacon(t0, Position::new(700.0, 2.5), 30.0, Heading::EAST);
    let dest = Area::circle(Position::new(4_020.0, 0.0), 40.0);

    // Normal operation: V1 hears only V2's beacon.
    v1.handle_frame(&v2_beacon, v1_pos, t0);
    let (_, actions) =
        v1.originate(&dest, b"hazard ahead".to_vec(), t0, v1_pos, 30.0, Heading::EAST);
    describe("attacker-free", &actions);

    // The attack: a roadside sniffer captures V3's beacon and replays it
    // to V1 within a millisecond. The beacon is authentic — it verifies —
    // so V1 installs an unreachable neighbour and forwards into the void.
    let mut attacker = InterAreaAttacker::new(Position::new(400.0, -10.0));
    let order = attacker.on_sniff(&v3_beacon, t0).expect("beacons are replayed");
    let t1 = t0 + order.delay;
    v1.handle_frame(&order.frame, v1_pos, t1);
    let (_, actions) =
        v1.originate(&dest, b"hazard ahead".to_vec(), t1, v1_pos, 30.0, Heading::EAST);
    describe("under beacon replay", &actions);

    // The mitigation: re-run with the paper's plausibility check enabled.
    let mitigated_config = config.with_mitigations(geonet::MitigationConfig::plausibility(486.0));
    let mut v1m = GnRouter::new(
        ca.enroll(GnAddress::vehicle(10)),
        ca.verifier(),
        mitigated_config,
        reference,
    );
    v1m.handle_frame(&v2_beacon, v1_pos, t0);
    v1m.handle_frame(&order.frame, v1_pos, t0 + SimDuration::from_millis(1));
    let (_, actions) = v1m.originate(
        &dest,
        b"hazard ahead".to_vec(),
        t0 + SimDuration::from_millis(1),
        v1_pos,
        30.0,
        Heading::EAST,
    );
    describe("with plausibility check", &actions);
}

fn describe(label: &str, actions: &[RouterAction]) {
    for a in actions {
        if let RouterAction::Transmit(frame) = a {
            match frame.dst {
                Some(next_hop) => println!("{label:>24}: GF forwards to {next_hop}"),
                None => println!("{label:>24}: GF falls back to broadcast"),
            }
        }
    }
}
