//! Hazard warning over a live road: a full simulated scenario.
//!
//! A hazard blocks the eastbound lanes 3.6 km into the segment. The queue
//! head GeoBroadcasts a warning over the whole road (CBF); we watch the
//! flood reach the entrance and the entry gate close, then compare
//! against the same scenario under the intra-area blockage attack —
//! the paper's Figure 12b, live.
//!
//! ```text
//! cargo run --release --example hazard_warning
//! ```

use geonet_repro::scenarios::impact::{run_case, ImpactCase, HAZARD_TIME_S};

fn main() {
    let duration = 120;
    let seed = 7;

    println!("== Hazard warning via CBF (paper Figure 12b) ==\n");
    println!("A hazard closes the eastbound lanes at 3 600 m, t = {HAZARD_TIME_S} s.");
    println!("The queue head re-broadcasts a warning every second until the");
    println!("entrance hears it and diverts incoming traffic.\n");

    let af = run_case(ImpactCase::CbfNotification, false, duration, seed);
    let atk = run_case(ImpactCase::CbfNotification, true, duration, seed);

    match af.informed_at_s {
        Some(t) => println!("attacker-free: entrance informed after {} s", t - HAZARD_TIME_S),
        None => println!("attacker-free: entrance never informed?!"),
    }
    match atk.informed_at_s {
        Some(t) => println!("attacked:      entrance informed after {} s", t - HAZARD_TIME_S),
        None => println!("attacked:      entrance NEVER informed — the warning was blocked"),
    }

    println!("\n   t | on-road (af) | on-road (attacked)");
    println!("-----+--------------+-------------------");
    for &(t, n_af) in af.samples.iter().filter(|&&(t, _)| t % 10 == 0) {
        let n_atk = atk.samples.iter().find(|&&(ta, _)| ta == t).map_or(0, |&(_, n)| n);
        let marker = if n_atk > n_af + 20 { "  ← jam building" } else { "" };
        println!("{t:>4} | {n_af:>12} | {n_atk:>14}{marker}");
    }

    println!(
        "\nFinal counts: {} attacker-free vs {} attacked.",
        af.final_count(),
        atk.final_count()
    );
    println!("The blocked warning turned a contained incident into a growing jam.");
}
