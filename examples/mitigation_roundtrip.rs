//! Both standard-compatible mitigations, attacked and defended (paper §V).
//!
//! 1. **GF plausibility check** — before forwarding, ignore neighbours
//!    whose advertised position is farther than the expected radio range.
//! 2. **CBF RHL-drop check** — refuse to treat a copy whose remaining hop
//!    limit dropped by more than 3 as a duplicate.
//!
//! Also demonstrates the paper's Figure 13 road-safety case: the blind
//! curve where silencing a single roadside unit causes a collision.
//!
//! ```text
//! cargo run --release --example mitigation_roundtrip [runs] [duration_s]
//! ```

use geonet_repro::scenarios::config::Scale;
use geonet_repro::scenarios::{mitigation, safety};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let duration_s: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(80);
    let scale = Scale { runs, duration_s };

    println!("== Mitigation 1: GF plausibility check (threshold 486 m) ==");
    println!("(paper Figure 14a: +53.7 / +61.6 / +53.4 pts; af 54.4% → 94.3%)\n");
    for r in mitigation::fig14a(scale, 42) {
        println!("  {r}");
    }

    println!("\n== Mitigation 2: CBF RHL-drop check (threshold 3) ==");
    println!("(paper Figure 14b: attacked reception realigns with attacker-free)\n");
    for r in mitigation::fig14b(scale, 42) {
        println!("  {r}");
    }

    println!("\n== Road-safety case study (paper Figure 13) ==\n");
    let (af, atk) = safety::fig13();
    println!(
        "attacker-free: warning relayed by R1 = {}, collision = {} (min gap {:.1} m)",
        af.v2_warned, af.collision, af.min_gap
    );
    println!(
        "attacked:      warning relayed by R1 = {}, collision = {}{}",
        atk.v2_warned,
        atk.collision,
        atk.collision_time.map_or_else(String::new, |t| format!(" at t = {t:.1} s")),
    );
    println!("\nV2 speed profile (m/s), attacker-free vs attacked:");
    println!("   t |   af |  atk");
    for i in (0..af.v2_profile.len().min(atk.v2_profile.len())).step_by(20) {
        let (t, v_af) = af.v2_profile[i];
        let v_atk = atk.v2_profile.get(i).map_or(f64::NAN, |&(_, v)| v);
        println!("{t:>4.1} | {v_af:>4.1} | {v_atk:>4.1}");
    }
    println!("\nThe Spot-2 replay silenced one roadside relay at minimal power —");
    println!("V2 never slowed in time, and the lane change ended in a collision.");
}
