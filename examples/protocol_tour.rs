//! A tour of the GeoNetworking packet types beyond GeoBroadcast: single-
//! hop broadcast (CAM-style), topologically-scoped broadcast and
//! GeoUnicast, all running over the same signed wire formats.
//!
//! ```text
//! cargo run --example protocol_tour
//! ```

use geonet::wire::ShortPositionVector;
use geonet::{CertificateAuthority, GnAddress, GnConfig, GnRouter, RouterAction};
use geonet_geo::{GeoReference, Heading, Position};
use geonet_radio::RangeProfile;
use geonet_sim::SimTime;

fn main() {
    let ca = CertificateAuthority::new(0x70_u64);
    let reference = GeoReference::default();
    let config = GnConfig::paper_default(RangeProfile::DSRC.dist_max());
    let mk = |mid: u64| {
        GnRouter::new(ca.enroll(GnAddress::vehicle(mid)), ca.verifier(), config, reference)
    };
    // A little convoy: v1 — v2 — v3, each in range of its neighbours only.
    let mut v1 = mk(1);
    let mut v2 = mk(2);
    let mut v3 = mk(3);
    let positions = [Position::new(0.0, 2.5), Position::new(400.0, 2.5), Position::new(800.0, 2.5)];
    let t = SimTime::from_secs(1);

    println!("== Single-hop broadcast (CAM-style) ==");
    let actions = v1.originate_shb(b"CAM: speed 30".to_vec(), t, positions[0], 30.0, Heading::EAST);
    let RouterAction::Transmit(shb) = &actions[0] else { unreachable!() };
    println!(
        "v1 sends SHB ({} bytes on the wire, RHL {})",
        shb.msg.packet.encode().len(),
        shb.msg.rhl()
    );
    for a in v2.handle_frame(shb, positions[1], t) {
        if let RouterAction::Deliver { payload, .. } = a {
            println!(
                "v2 delivers: {:?} — and learned v1's position from the same frame",
                String::from_utf8_lossy(&payload)
            );
        }
    }

    println!("\n== Topologically-scoped broadcast ==");
    let (_, actions) =
        v1.originate_tsb(b"TSB: convoy notice".to_vec(), 3, t, positions[0], 30.0, Heading::EAST);
    let RouterAction::Transmit(tsb) = &actions[0] else { unreachable!() };
    println!("v1 floods TSB with hop limit {}", tsb.msg.rhl());
    let hop2 = v2.handle_frame(tsb, positions[1], t);
    for a in &hop2 {
        match a {
            RouterAction::Deliver { .. } => {
                println!("v2 delivers and re-broadcasts (RHL decremented)")
            }
            RouterAction::Transmit(f) => {
                for a3 in v3.handle_frame(f, positions[2], t) {
                    if matches!(a3, RouterAction::Deliver { .. }) {
                        println!("v3 delivers the relayed copy (RHL {})", f.msg.rhl());
                    }
                }
            }
            RouterAction::CbfTimer { .. } | RouterAction::GfRetry { .. } => {}
        }
    }

    println!("\n== GeoUnicast ==");
    // v1 learns of v2, v2 learns of v3 via beacons, then v1 sends a
    // GeoUnicast to v3's position — routed greedily through v2.
    let b2 = v2.make_beacon(t, positions[1], 30.0, Heading::EAST);
    let b3 = v3.make_beacon(t, positions[2], 30.0, Heading::EAST);
    v1.handle_frame(&b2, positions[0], t);
    v2.handle_frame(&b3, positions[1], t);
    let de_pv = ShortPositionVector::from_long(b3.msg.packet.so_pv());
    let (_, actions) =
        v1.originate_guc(de_pv, b"GUC: hello v3".to_vec(), t, positions[0], 30.0, Heading::EAST);
    let RouterAction::Transmit(f1) = &actions[0] else { unreachable!() };
    println!("v1 → {} (greedy next hop)", f1.dst.map(|d| d.to_string()).unwrap_or_default());
    let actions = v2.handle_frame(f1, positions[1], t);
    let RouterAction::Transmit(f2) = &actions[0] else { unreachable!() };
    println!(
        "v2 → {} (destination reached next)",
        f2.dst.map(|d| d.to_string()).unwrap_or_default()
    );
    for a in v3.handle_frame(f2, positions[2], t) {
        if let RouterAction::Deliver { payload, .. } = a {
            println!("v3 delivers: {:?}", String::from_utf8_lossy(&payload));
        }
    }

    println!("\nAll three packet types ride the same security envelope:");
    println!("signatures cover everything except the mutable hop limit —");
    println!("the crack the paper's intra-area attack drives through.");
}
