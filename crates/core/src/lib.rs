//! An ETSI GeoNetworking (EN 302 636-4-1) stack for security analysis.
//!
//! This crate implements the protocol machinery that the reproduced paper
//! ("Breaking Geographic Routing Among Connected Vehicles", DSN 2023)
//! analyses:
//!
//! * [`types`] — GeoNetworking addresses, timestamps, sequence numbers.
//! * [`pv`] — long/short position vectors carried by beacons and packets.
//! * [`wire`] — binary encode/decode of the basic, common, beacon and
//!   GeoBroadcast headers.
//! * [`security`] — a simulated IEEE 1609.2 / ETSI TS 102 731 security
//!   envelope: a certificate authority, certificates, and signatures whose
//!   integrity coverage deliberately **excludes the remaining-hop-limit
//!   (RHL) field**, exactly as in the standard — the root cause of the
//!   paper's intra-area blockage attack.
//! * [`loct`] — the location table (LocT) with per-entry TTL.
//! * [`gf`] — the Greedy Forwarding next-hop selection, including the
//!   paper's plausibility-check mitigation.
//! * [`cbf`] — Contention-Based Forwarding: the distance-dependent
//!   contention timer, duplicate suppression, and the paper's RHL-drop
//!   mitigation.
//! * [`router`] — a per-node façade combining the above into a pure
//!   event-driven state machine (`frame in → actions out`), driven by the
//!   scenario layer's event loop.
//!
//! # Example
//!
//! ```
//! use geonet::cbf::CbfParams;
//! use geonet_sim::SimDuration;
//!
//! // The standard's contention timer: nodes farther from the previous
//! // sender re-broadcast sooner.
//! let p = CbfParams::default_for_dist_max(1_283.0); // DSRC DIST_MAX
//! assert!(p.contention_timeout(1_000.0) < p.contention_timeout(100.0));
//! assert_eq!(p.contention_timeout(2_000.0), SimDuration::from_millis(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cbf;
pub mod config;
pub mod frame;
pub mod gf;
pub mod loct;
pub mod pv;
pub mod router;
pub mod security;
pub mod types;
pub mod wire;

pub use cbf::{CbfBuffer, CbfParams, CbfVerdict, PacketKey};
pub use config::{GnConfig, MitigationConfig};
pub use frame::Frame;
pub use gf::{greedy_select, GfDecision};
pub use loct::{LocTEntry, LocationTable};
pub use pv::LongPositionVector;
pub use router::{GnRouter, RouterAction, RouterStats};
pub use security::{Certificate, CertificateAuthority, Credentials, SecuredPacket, Verifier};
pub use types::{GnAddress, SequenceNumber, StationType, Timestamp};
