//! A simulated IEEE 1609.2 / ETSI TS 102 731 security envelope.
//!
//! The paper's threat model only needs the *logical* properties of V2X
//! message security, not real elliptic-curve cryptography:
//!
//! 1. every legitimate node holds a certificate issued by a CA and signs
//!    its outgoing messages;
//! 2. receivers verify signatures and reject messages whose
//!    integrity-covered bytes were altered or that were never signed by an
//!    enrolled node;
//! 3. an **outsider attacker cannot obtain a certificate or forge a
//!    signature**, but *can* replay signed messages verbatim and can
//!    rewrite the fields outside the integrity envelope — in
//!    GeoNetworking, the remaining hop limit (RHL).
//!
//! Those properties are modelled with keyed 64-bit PRF tags. Capability
//! discipline stands in for the asymmetry of real signatures: signing is
//! only possible through [`Credentials`] (returned by
//! [`CertificateAuthority::enroll`]); verification only needs a
//! [`Verifier`], which offers no signing operations. Attack code receives
//! a `Verifier` at most — never `Credentials` — mirroring the paper's
//! outsider attacker.

use crate::wire::GnPacket;
use crate::GnAddress;
use serde::{Deserialize, Serialize};
use std::fmt;

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A keyed PRF built from splitmix64-style mixing — stands in for the
/// signature math.
fn prf(key: u64, data: u64) -> u64 {
    let mut z = key ^ data.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A certificate binding a GeoNetworking address to the CA's trust domain.
///
/// Certificates are public: they travel with every signed message, and
/// anyone (including the attacker) can read them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Certificate {
    /// The enrolled address.
    pub subject: GnAddress,
    /// The CA's attestation tag over the subject.
    attestation: u64,
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cert[{} / {:016x}]", self.subject, self.attestation)
    }
}

/// Private signing material for one enrolled node.
///
/// `Credentials` is deliberately **not** `Clone`-into-attacker-hands by
/// API design: it is produced only by [`CertificateAuthority::enroll`],
/// and the attack crates never receive one.
#[derive(Debug, Clone)]
pub struct Credentials {
    certificate: Certificate,
    signing_key: u64,
}

impl Credentials {
    /// The public certificate to attach to outgoing messages.
    #[must_use]
    pub fn certificate(&self) -> Certificate {
        self.certificate
    }

    /// Signs a packet, producing a [`SecuredPacket`].
    ///
    /// The signature covers [`GnPacket::encode_protected`] — everything
    /// except the RHL byte, which forwarders rewrite in flight.
    #[must_use]
    pub fn sign(&self, packet: GnPacket) -> SecuredPacket {
        let digest = fnv1a(&packet.encode_protected());
        let signature = prf(self.signing_key, digest);
        SecuredPacket { packet, signer: self.certificate, signature }
    }
}

/// The certificate authority for one simulation run.
///
/// Stands in for the real enrolment hierarchy (e.g. the U.S. DOT SCMS):
/// issues credentials to legitimate nodes and derives the [`Verifier`]
/// used by everyone to check signatures.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    secret: u64,
}

impl CertificateAuthority {
    /// Creates a CA with the given root secret.
    #[must_use]
    pub fn new(secret: u64) -> Self {
        CertificateAuthority { secret }
    }

    /// Enrols a node: issues its certificate and private signing key.
    #[must_use]
    pub fn enroll(&self, subject: GnAddress) -> Credentials {
        Credentials {
            certificate: Certificate {
                subject,
                attestation: prf(self.secret, subject.to_u64() ^ 0xCE27),
            },
            signing_key: prf(self.secret, subject.to_u64() ^ 0x5167),
        }
    }

    /// The verification oracle distributed to all nodes (and available to
    /// the attacker — verification is public).
    #[must_use]
    pub fn verifier(&self) -> Verifier {
        Verifier { secret: self.secret }
    }
}

/// Verifies signatures and certificates. Offers no signing capability.
#[derive(Debug, Clone)]
pub struct Verifier {
    secret: u64,
}

impl Verifier {
    /// Checks that a certificate was issued by this trust domain.
    #[must_use]
    pub fn certificate_valid(&self, cert: &Certificate) -> bool {
        cert.attestation == prf(self.secret, cert.subject.to_u64() ^ 0xCE27)
    }

    /// Verifies a secured packet: certificate validity plus the signature
    /// over the integrity-covered bytes.
    #[must_use]
    pub fn verify(&self, msg: &SecuredPacket) -> bool {
        if !self.certificate_valid(&msg.signer) {
            return false;
        }
        let digest = fnv1a(&msg.packet.encode_protected());
        let expected = prf(prf(self.secret, msg.signer.subject.to_u64() ^ 0x5167), digest);
        msg.signature == expected
    }
}

/// A signed GeoNetworking packet as it travels on the air.
///
/// The packet body is public and mutable — but any mutation of
/// integrity-covered bytes invalidates the signature. Only the RHL can be
/// rewritten while keeping the message verifiable, which is exactly what
/// the standard permits (and what the paper's intra-area attacker abuses
/// via [`SecuredPacket::with_rhl`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecuredPacket {
    /// The packet contents.
    pub packet: GnPacket,
    /// The signer's public certificate.
    pub signer: Certificate,
    signature: u64,
}

impl SecuredPacket {
    /// The current remaining hop limit.
    #[must_use]
    pub fn rhl(&self) -> u8 {
        self.packet.basic.rhl
    }

    /// Returns a copy whose packet contents are replaced while the
    /// original signature is retained — what an on-path tamperer produces
    /// when it rewrites bytes it cannot re-sign. Verification fails
    /// unless the change stayed within the unprotected region (the RHL).
    #[must_use]
    pub fn with_packet(&self, packet: GnPacket) -> SecuredPacket {
        SecuredPacket { packet, signer: self.signer, signature: self.signature }
    }

    /// Returns a copy with the RHL rewritten.
    ///
    /// This requires no key material: RHL sits outside the integrity
    /// envelope, so the copy still verifies. Legitimate forwarders use it
    /// to decrement the hop limit; the attacker uses it to clamp RHL to 1.
    #[must_use]
    pub fn with_rhl(&self, rhl: u8) -> SecuredPacket {
        let mut copy = self.clone();
        copy.packet.basic.rhl = rhl;
        copy
    }
}

impl fmt::Display for SecuredPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "secured[{} rhl={} sig={:016x}]", self.signer, self.rhl(), self.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pv::LongPositionVector;
    use crate::types::SequenceNumber;
    use geonet_geo::{Area, GeoReference, Heading, Position};
    use geonet_sim::SimTime;

    fn setup() -> (CertificateAuthority, Credentials, SecuredPacket) {
        let ca = CertificateAuthority::new(0xDEAD_BEEF);
        let creds = ca.enroll(GnAddress::vehicle(42));
        let r = GeoReference::default();
        let pv = LongPositionVector::from_sim(
            GnAddress::vehicle(42),
            SimTime::from_secs(1),
            Position::new(100.0, 2.5),
            30.0,
            Heading::EAST,
            &r,
        );
        let area = Area::circle(Position::new(4_020.0, 0.0), 50.0);
        let packet = GnPacket::geobroadcast(SequenceNumber(1), pv, &area, &r, vec![0xAA], 10);
        let msg = creds.sign(packet);
        (ca, creds, msg)
    }

    #[test]
    fn signed_message_verifies() {
        let (ca, _, msg) = setup();
        assert!(ca.verifier().verify(&msg));
    }

    #[test]
    fn tampered_payload_fails_verification() {
        let (ca, _, mut msg) = setup();
        msg.packet.payload[0] ^= 1;
        assert!(!ca.verifier().verify(&msg));
    }

    #[test]
    fn tampered_position_fails_verification() {
        // The false-position-advertisement attack of prior work is
        // rejected: altering the PV breaks the signature.
        let (ca, _, mut msg) = setup();
        match &mut msg.packet.extended {
            crate::wire::Extended::Gbc(g) => g.so_pv.coord.lat += 1,
            crate::wire::Extended::Beacon { so_pv } => so_pv.coord.lat += 1,
            _ => unreachable!("test uses a GBC packet"),
        }
        assert!(!ca.verifier().verify(&msg));
    }

    #[test]
    fn with_packet_models_tampering() {
        let (ca, _, msg) = setup();
        let mut altered = msg.packet.clone();
        altered.payload[0] ^= 0xFF;
        let tampered = msg.with_packet(altered);
        assert!(!ca.verifier().verify(&tampered));
        // Replacing with an identical packet keeps it valid.
        assert!(ca.verifier().verify(&msg.with_packet(msg.packet.clone())));
    }

    #[test]
    fn rhl_rewrite_still_verifies() {
        // The paper's third CBF vulnerability: RHL is outside the
        // integrity envelope, so an attacker can clamp it to 1 and the
        // packet still authenticates.
        let (ca, _, msg) = setup();
        let clamped = msg.with_rhl(1);
        assert_eq!(clamped.rhl(), 1);
        assert!(ca.verifier().verify(&clamped));
    }

    #[test]
    fn replay_verbatim_verifies() {
        // Replay (the paper's inter-area attack primitive) cannot be
        // detected by the signature: the bytes are authentic.
        let (ca, _, msg) = setup();
        let replayed = msg.clone();
        assert!(ca.verifier().verify(&replayed));
    }

    #[test]
    fn foreign_ca_certificate_rejected() {
        let (_, _, msg) = setup();
        let other = CertificateAuthority::new(0x1234);
        assert!(!other.verifier().verify(&msg));
    }

    #[test]
    fn forged_certificate_rejected() {
        let (ca, _, mut msg) = setup();
        // Attacker invents a certificate for its own address.
        msg.signer = Certificate { subject: GnAddress::vehicle(666), attestation: 0xBAD0_BAD0 };
        assert!(!ca.verifier().certificate_valid(&msg.signer));
        assert!(!ca.verifier().verify(&msg));
    }

    #[test]
    fn signature_bound_to_signer() {
        // A valid message re-attributed to another enrolled node fails:
        // the signature was made with the original key.
        let (ca, _, mut msg) = setup();
        let other = ca.enroll(GnAddress::vehicle(7));
        msg.signer = other.certificate();
        assert!(!ca.verifier().verify(&msg));
    }

    #[test]
    fn beacons_sign_and_verify() {
        let ca = CertificateAuthority::new(1);
        let creds = ca.enroll(GnAddress::vehicle(3));
        let r = GeoReference::default();
        let pv = LongPositionVector::from_sim(
            GnAddress::vehicle(3),
            SimTime::ZERO,
            Position::ORIGIN,
            0.0,
            Heading::NORTH,
            &r,
        );
        let b = creds.sign(GnPacket::beacon(pv));
        assert!(ca.verifier().verify(&b));
        assert_eq!(b.rhl(), 1);
    }

    #[test]
    fn displays_are_nonempty() {
        let (_, creds, msg) = setup();
        assert!(creds.certificate().to_string().contains("cert["));
        assert!(msg.to_string().contains("secured["));
    }
}
