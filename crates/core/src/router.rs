//! The per-node GeoNetworking router.
//!
//! [`GnRouter`] combines the location table, greedy forwarding,
//! contention-based forwarding and the security envelope into one pure
//! state machine: frames go in, [`RouterAction`]s come out. It owns no
//! clock and no radio — the scenario layer feeds it events and executes
//! its actions — which keeps the whole protocol stack deterministic and
//! unit-testable without a simulator.

use crate::cbf::{CbfBuffer, CbfVerdict, PacketKey};
use crate::config::GnConfig;
use crate::frame::Frame;
use crate::gf::{greedy_select_excluding, GfDecision};
use crate::loct::LocationTable;
use crate::pv::LongPositionVector;
use crate::security::{Credentials, SecuredPacket, Verifier};
use crate::types::{GnAddress, SequenceNumber};
use crate::wire::GnPacket;
use geonet_geo::{Area, GeoReference, Heading, Position};
use geonet_sim::{
    DropReason, PacketRef, SimDuration, SimRng, SimTime, StateHasher, Telemetry, TraceEvent, Tracer,
};
use std::collections::{BTreeMap, BTreeSet};

/// An action the router asks its host to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterAction {
    /// Put this frame on the air.
    Transmit(Frame),
    /// Hand this payload to the application: the node *received* the
    /// GeoBroadcast (the paper's reception metric counts these).
    Deliver {
        /// Which packet was delivered.
        key: PacketKey,
        /// The application payload.
        payload: Vec<u8>,
    },
    /// Schedule a CBF contention timer: after `delay`, call
    /// [`GnRouter::handle_cbf_timer`] with this key and generation.
    CbfTimer {
        /// The contending packet.
        key: PacketKey,
        /// Generation token (stale timers are ignored).
        generation: u64,
        /// Contention delay.
        delay: SimDuration,
    },
    /// Schedule a greedy-forwarding retry (the buffer-and-recheck
    /// no-progress policy): after `delay`, call
    /// [`GnRouter::handle_gf_retry`].
    GfRetry {
        /// The buffered packet.
        key: PacketKey,
        /// Recheck delay.
        delay: SimDuration,
    },
}

/// Counters exposed for evaluation and debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Beacons accepted (verified and fresh).
    pub beacons_accepted: u64,
    /// Frames dropped because signature or certificate verification
    /// failed.
    pub auth_failures: u64,
    /// Frames dropped because the position vector was stale.
    pub freshness_failures: u64,
    /// GeoBroadcast payloads delivered to the application.
    pub delivered: u64,
    /// Packets forwarded by greedy unicast.
    pub gf_unicast: u64,
    /// Packets broadcast because GF found no progress.
    pub gf_fallback: u64,
    /// Packets re-broadcast after winning CBF contention.
    pub cbf_rebroadcast: u64,
    /// Buffered packets discarded on duplicate reception.
    pub cbf_discards: u64,
    /// Duplicates refused by the RHL-drop mitigation.
    pub cbf_mitigation_rejects: u64,
    /// Packets dropped because the hop limit was exhausted.
    pub rhl_exhausted: u64,
    /// Packets buffered for a later greedy recheck (no-progress policy).
    pub gf_buffered: u64,
    /// Packets dropped after the buffer-retry budget ran out, or by the
    /// `Drop` no-progress policy.
    pub gf_dropped: u64,
    /// Greedy unicasts re-sent to an alternative neighbour after a
    /// missing link-layer acknowledgement (extension).
    pub gf_ack_retries: u64,
    /// Packets whose acknowledgement retries were exhausted (extension).
    pub gf_ack_exhausted: u64,
}

impl RouterStats {
    /// Folds one trace event into the counters.
    ///
    /// The router emits a [`TraceEvent`] at every decision point and
    /// derives its statistics from that stream, so the counters cannot
    /// drift from the trace: `stats()` is by construction the aggregate
    /// of the events a [`crate::router::GnRouter`]'s tracer saw.
    pub fn record(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::BeaconAccepted { .. } => self.beacons_accepted += 1,
            TraceEvent::Delivered { .. } => self.delivered += 1,
            TraceEvent::GfNextHop { .. } => self.gf_unicast += 1,
            TraceEvent::GfFallback { .. } => self.gf_fallback += 1,
            TraceEvent::CbfFired { .. } => self.cbf_rebroadcast += 1,
            TraceEvent::CbfCancelled { .. } => self.cbf_discards += 1,
            TraceEvent::CbfMitigationRejected { .. } => self.cbf_mitigation_rejects += 1,
            TraceEvent::GfBuffered { .. } => self.gf_buffered += 1,
            TraceEvent::GfAckRetry { .. } => self.gf_ack_retries += 1,
            TraceEvent::Dropped { reason, .. } => match reason {
                DropReason::AuthFailure => self.auth_failures += 1,
                DropReason::StaleTimestamp => self.freshness_failures += 1,
                DropReason::RhlExhausted => self.rhl_exhausted += 1,
                DropReason::NoNextHop => self.gf_dropped += 1,
                DropReason::AckExhausted => self.gf_ack_exhausted += 1,
            },
            // Lifecycle events with no dedicated router counter
            // (origination, duplicate suppression, CBF arming) and events
            // owned by other layers (frame TX/RX/loss, attacker actions,
            // traffic milestones).
            _ => {}
        }
    }
}

/// The [`PacketRef`] identifying `key` in trace events.
fn packet_ref(key: PacketKey) -> PacketRef {
    PacketRef::new(key.source.to_u64(), key.sn.0)
}

/// The [`PacketRef`] of a secured packet, falling back to the source
/// position vector's address with sequence number zero for the
/// (unsequenced) beacon and single-hop variants.
fn packet_ref_of(msg: &SecuredPacket) -> PacketRef {
    match PacketKey::of(msg) {
        Some(key) => packet_ref(key),
        None => PacketRef::new(msg.packet.so_pv().addr.to_u64(), 0),
    }
}

/// A greedy unicast awaiting its link-layer acknowledgement (only used
/// with the [`crate::config::LinkAckConfig`] extension).
#[derive(Debug, Clone)]
struct PendingGf {
    msg: SecuredPacket,
    tried: Vec<GnAddress>,
    retries_left: u8,
}

/// A packet parked in the forwarding buffer awaiting a LocT recheck (the
/// [`crate::config::NoProgressPolicy::BufferRetry`] policy).
#[derive(Debug, Clone)]
struct BufferedGf {
    msg: SecuredPacket,
    exclude: Vec<GnAddress>,
    attempts_left: u8,
}

/// The per-node GeoNetworking protocol instance.
pub struct GnRouter {
    credentials: Credentials,
    verifier: Verifier,
    config: GnConfig,
    reference: GeoReference,
    loct: LocationTable,
    cbf: CbfBuffer,
    /// Packets this node has forwarded (or declined to forward) in its GF
    /// role, to suppress forwarding loops via the broadcast fallback.
    gf_seen: BTreeSet<PacketKey>,
    gf_pending: BTreeMap<PacketKey, PendingGf>,
    gf_buffer: BTreeMap<PacketKey, BufferedGf>,
    tsb_seen: BTreeSet<PacketKey>,
    next_sn: SequenceNumber,
    stats: RouterStats,
    tracer: Tracer,
    telemetry: Telemetry,
}

impl GnRouter {
    /// Creates a router for the node holding `credentials`.
    #[must_use]
    pub fn new(
        credentials: Credentials,
        verifier: Verifier,
        config: GnConfig,
        reference: GeoReference,
    ) -> Self {
        GnRouter {
            loct: LocationTable::new(config.loct_ttl),
            credentials,
            verifier,
            config,
            reference,
            cbf: CbfBuffer::new(),
            gf_seen: BTreeSet::new(),
            gf_pending: BTreeMap::new(),
            gf_buffer: BTreeMap::new(),
            tsb_seen: BTreeSet::new(),
            next_sn: SequenceNumber(0),
            stats: RouterStats::default(),
            tracer: Tracer::disabled(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a tracer; every routing decision is emitted through it
    /// from now on. The default is [`Tracer::disabled`], which skips
    /// event delivery entirely (the stats counters still update).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a telemetry handle; [`GnRouter::handle_frame`] wall-clock
    /// time is recorded through it. The default is
    /// [`Telemetry::disabled`], which costs one branch per frame.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of packet keys held for duplicate suppression (greedy and
    /// topologically-scoped forwarding history plus the CBF
    /// handled-packet list) — a state-depth gauge for telemetry.
    #[must_use]
    pub fn duplicate_cache_size(&self) -> usize {
        self.gf_seen.len() + self.tsb_seen.len() + self.cbf.handled_count()
    }

    /// Number of packets currently buffered for CBF contention — a
    /// state-depth gauge for telemetry.
    #[must_use]
    pub fn cbf_buffered_count(&self) -> usize {
        self.cbf.buffered_count()
    }

    /// Folds the router's canonical forwarding state — sequence counter,
    /// location table, CBF buffers, duplicate caches and the greedy
    /// forwarding pending/retry books — into an audit digest. All
    /// containers are B-tree-ordered, so the digest is a pure function of
    /// the router's logical state.
    pub fn digest_into(&self, h: &mut StateHasher) {
        h.write_u64(self.addr().to_u64());
        h.write_u64(u64::from(self.next_sn.0));
        self.loct.digest_into(h);
        self.cbf.digest_into(h);
        let write_key = |h: &mut StateHasher, key: &PacketKey| {
            h.write_u64(key.source.to_u64());
            h.write_u64(u64::from(key.sn.0));
        };
        h.write_u64(self.gf_seen.len() as u64);
        for key in &self.gf_seen {
            write_key(h, key);
        }
        h.write_u64(self.gf_pending.len() as u64);
        for (key, p) in &self.gf_pending {
            write_key(h, key);
            h.write_u8(p.retries_left);
            h.write_u64(p.tried.len() as u64);
            for a in &p.tried {
                h.write_u64(a.to_u64());
            }
        }
        h.write_u64(self.gf_buffer.len() as u64);
        for (key, b) in &self.gf_buffer {
            write_key(h, key);
            h.write_u8(b.attempts_left);
            h.write_u64(b.exclude.len() as u64);
            for a in &b.exclude {
                h.write_u64(a.to_u64());
            }
        }
        h.write_u64(self.tsb_seen.len() as u64);
        for key in &self.tsb_seen {
            write_key(h, key);
        }
    }

    /// Records one routing decision: folds the event into the stats
    /// counters and hands it to the attached tracer (if any).
    fn note(&mut self, now: SimTime, event: TraceEvent) {
        self.stats.record(&event);
        self.tracer.emit(now, || event);
    }

    /// This node's GeoNetworking address.
    #[must_use]
    pub fn addr(&self) -> GnAddress {
        self.credentials.certificate().subject
    }

    /// The protocol configuration.
    #[must_use]
    pub fn config(&self) -> &GnConfig {
        &self.config
    }

    /// The location table (read access for evaluation).
    #[must_use]
    pub fn loct(&self) -> &LocationTable {
        &self.loct
    }

    /// Counters for evaluation.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// The greedy next hop this router would pick *right now* for a
    /// packet heading to `dest_center` — a read-only probe of the
    /// location-table gradient (no state mutated, nothing traced) that
    /// honours the configured plausibility mitigation. Topology
    /// observers use it to classify each node's gradient as
    /// healthy/stuck/poisoned against the physical radio graph.
    #[must_use]
    pub fn gradient_query(
        &self,
        position: Position,
        dest_center: Position,
        now: SimTime,
    ) -> GfDecision {
        greedy_select_excluding(
            &self.loct,
            self.addr(),
            position,
            dest_center,
            &[],
            self.config.mitigations.gf_plausibility_threshold,
            now,
        )
    }

    /// Builds this node's signed beacon frame.
    #[must_use]
    pub fn make_beacon(
        &self,
        now: SimTime,
        position: Position,
        speed: f64,
        heading: Heading,
    ) -> Frame {
        let pv = LongPositionVector::from_sim(
            self.addr(),
            now,
            position,
            speed,
            heading,
            &self.reference,
        );
        let msg = self.credentials.sign(GnPacket::beacon(pv));
        Frame::broadcast(self.addr(), position, msg)
    }

    /// The delay until this node's next beacon: the standard's 3 s period
    /// plus a uniform jitter within 750 ms.
    #[must_use]
    pub fn next_beacon_delay(&self, rng: &mut SimRng) -> SimDuration {
        let jitter = rng.uniform(0.0, self.config.beacon_jitter.as_secs_f64().max(1e-9));
        self.config.beacon_interval + SimDuration::from_secs_f64(jitter)
    }

    /// Originates a GeoBroadcast packet into `area`.
    ///
    /// Returns the packet's key (for tracking reception) and the actions
    /// to execute. If the source is inside the area the packet starts
    /// flooding by CBF; otherwise greedy forwarding carries it towards the
    /// area.
    pub fn originate(
        &mut self,
        area: &Area,
        payload: Vec<u8>,
        now: SimTime,
        position: Position,
        speed: f64,
        heading: Heading,
    ) -> (PacketKey, Vec<RouterAction>) {
        let sn = self.next_sn;
        self.next_sn = self.next_sn.next();
        let pv = LongPositionVector::from_sim(
            self.addr(),
            now,
            position,
            speed,
            heading,
            &self.reference,
        );
        let packet = GnPacket::geobroadcast(
            sn,
            pv,
            area,
            &self.reference,
            payload,
            self.config.default_hop_limit,
        );
        let msg = self.credentials.sign(packet);
        let key = PacketKey { source: self.addr(), sn };
        self.note(now, TraceEvent::Originated { packet: packet_ref(key) });
        // The source never re-forwards its own packet.
        self.cbf.mark_handled(key, now);
        self.gf_seen.insert(key);

        let actions = if area.contains(position) {
            // Intra-area: start the flood.
            vec![RouterAction::Transmit(Frame::broadcast(self.addr(), position, msg))]
        } else {
            // Inter-area: greedy-forward towards the area.
            self.forward_greedy(msg, position, Vec::new(), now)
        };
        (key, actions)
    }

    /// Originates a topologically-scoped broadcast: a hop-limited flood
    /// to every node reachable within `hops`, regardless of position.
    pub fn originate_tsb(
        &mut self,
        payload: Vec<u8>,
        hops: u8,
        now: SimTime,
        position: Position,
        speed: f64,
        heading: Heading,
    ) -> (PacketKey, Vec<RouterAction>) {
        let sn = self.next_sn;
        self.next_sn = self.next_sn.next();
        let pv = LongPositionVector::from_sim(
            self.addr(),
            now,
            position,
            speed,
            heading,
            &self.reference,
        );
        let msg = self.credentials.sign(GnPacket::topo_broadcast(sn, pv, payload, hops));
        let key = PacketKey { source: self.addr(), sn };
        self.note(now, TraceEvent::Originated { packet: packet_ref(key) });
        self.tsb_seen.insert(key);
        (key, vec![RouterAction::Transmit(Frame::broadcast(self.addr(), position, msg))])
    }

    /// Originates a single-hop broadcast (CAM-style message): delivered to
    /// direct neighbours only, never forwarded.
    pub fn originate_shb(
        &mut self,
        payload: Vec<u8>,
        now: SimTime,
        position: Position,
        speed: f64,
        heading: Heading,
    ) -> Vec<RouterAction> {
        let pv = LongPositionVector::from_sim(
            self.addr(),
            now,
            position,
            speed,
            heading,
            &self.reference,
        );
        let msg = self.credentials.sign(GnPacket::single_hop_broadcast(pv, payload));
        vec![RouterAction::Transmit(Frame::broadcast(self.addr(), position, msg))]
    }

    /// Processes a frame received from the radio.
    ///
    /// `position` is the node's own position at reception time.
    pub fn handle_frame(
        &mut self,
        frame: &Frame,
        position: Position,
        now: SimTime,
    ) -> Vec<RouterAction> {
        let _span = self.telemetry.time("router_handle_frame_ns");
        // Link-layer address filter: unicasts for someone else are ignored.
        if !frame.addressed_to(self.addr()) {
            return Vec::new();
        }
        // Security: certificate + signature over the protected bytes.
        if !self.verifier.verify(&frame.msg) {
            self.note(
                now,
                TraceEvent::Dropped {
                    packet: packet_ref_of(&frame.msg),
                    reason: DropReason::AuthFailure,
                },
            );
            return Vec::new();
        }
        // Freshness: the source PV's timestamp must be recent. A replayed
        // beacon relayed within the attacker's ~1 ms processing delay
        // passes; a recording replayed much later does not.
        let pv = *frame.msg.packet.so_pv();
        let age_ms = (crate::types::Timestamp::from_sim(now).0).wrapping_sub(pv.timestamp.0);
        if u64::from(age_ms) > self.config.max_pv_age.as_millis() {
            self.note(
                now,
                TraceEvent::Dropped {
                    packet: packet_ref_of(&frame.msg),
                    reason: DropReason::StaleTimestamp,
                },
            );
            return Vec::new();
        }
        match &frame.msg.packet.extended {
            crate::wire::Extended::Shb { .. } => {
                // Single-hop broadcast: a beacon with a payload. The
                // source is by construction a direct neighbour, so the
                // LocT update is always plausible.
                let advertised = pv.position(&self.reference);
                self.loct.update(pv, advertised, now);
                self.note(now, TraceEvent::BeaconAccepted { from: pv.addr.to_u64() });
                // SHB carries no sequence number; the reserved sentinel
                // keeps SHB deliveries from colliding with real
                // sequence-numbered keys in reception accounting.
                vec![RouterAction::Deliver {
                    key: PacketKey { source: pv.addr, sn: SequenceNumber(u16::MAX) },
                    payload: frame.msg.packet.payload.clone(),
                }]
            }
            crate::wire::Extended::Tsb { .. } => self.handle_tsb(frame, position, now),
            crate::wire::Extended::Guc(_) => self.handle_guc(frame, position, now),
            _ => self.handle_beacon_or_gbc(frame, position, now),
        }
    }

    fn handle_beacon_or_gbc(
        &mut self,
        frame: &Frame,
        position: Position,
        now: SimTime,
    ) -> Vec<RouterAction> {
        let pv = *frame.msg.packet.so_pv();
        match frame.msg.packet.gbc() {
            None => {
                // Beacon: update the location table from the advertised
                // position vector. No distance-plausibility check — per
                // the standard, and per the paper's vulnerability
                // analysis. (Multi-hop GBC source PVs are deliberately
                // *not* folded into the LocT: their sources are typically
                // many hops away and would dominate greedy forwarding
                // with unreachable "neighbours"; the paper's GF operates
                // on beacon-advertised neighbour positions.)
                let advertised = pv.position(&self.reference);
                self.loct.update(pv, advertised, now);
                self.note(now, TraceEvent::BeaconAccepted { from: pv.addr.to_u64() });
                Vec::new()
            }
            Some(_) => self.handle_gbc(frame, position, now),
        }
    }

    /// Originates a GeoUnicast packet towards the node whose position
    /// vector is `de_pv` (typically taken from the local location table).
    pub fn originate_guc(
        &mut self,
        de_pv: crate::wire::ShortPositionVector,
        payload: Vec<u8>,
        now: SimTime,
        position: Position,
        speed: f64,
        heading: Heading,
    ) -> (PacketKey, Vec<RouterAction>) {
        let sn = self.next_sn;
        self.next_sn = self.next_sn.next();
        let pv = LongPositionVector::from_sim(
            self.addr(),
            now,
            position,
            speed,
            heading,
            &self.reference,
        );
        let msg = self.credentials.sign(GnPacket::geounicast(
            sn,
            pv,
            de_pv,
            payload,
            self.config.default_hop_limit,
        ));
        let key = PacketKey { source: self.addr(), sn };
        self.note(now, TraceEvent::Originated { packet: packet_ref(key) });
        self.gf_seen.insert(key);
        let actions = self.forward_towards(msg, position, de_pv, Vec::new(), now);
        (key, actions)
    }

    /// GeoUnicast handling: deliver if we are the destination, otherwise
    /// greedy-forward towards the destination's advertised position.
    fn handle_guc(&mut self, frame: &Frame, position: Position, now: SimTime) -> Vec<RouterAction> {
        let msg = &frame.msg;
        let key = PacketKey::of(msg).expect("GUC carries a sequence number");
        let crate::wire::Extended::Guc(guc) = &msg.packet.extended else {
            return Vec::new();
        };
        let de_pv = guc.de_pv;
        if de_pv.addr == self.addr() {
            if self.gf_seen.insert(key) {
                self.note(now, TraceEvent::Delivered { packet: packet_ref(key) });
                return vec![RouterAction::Deliver { key, payload: msg.packet.payload.clone() }];
            }
            self.note(now, TraceEvent::DuplicateDiscarded { packet: packet_ref(key) });
            return Vec::new();
        }
        if !self.gf_seen.insert(key) {
            self.note(now, TraceEvent::DuplicateDiscarded { packet: packet_ref(key) });
            return Vec::new();
        }
        let rhl = msg.rhl().saturating_sub(1);
        if rhl == 0 {
            self.note(
                now,
                TraceEvent::Dropped { packet: packet_ref(key), reason: DropReason::RhlExhausted },
            );
            return Vec::new();
        }
        self.forward_towards(msg.with_rhl(rhl), position, de_pv, vec![frame.src], now)
    }

    /// Greedy forwarding towards an explicit destination position (the
    /// GeoUnicast path; GBC uses the destination-area centre instead).
    fn forward_towards(
        &mut self,
        msg: SecuredPacket,
        position: Position,
        de_pv: crate::wire::ShortPositionVector,
        exclude: Vec<GnAddress>,
        now: SimTime,
    ) -> Vec<RouterAction> {
        let dest = self
            .loct
            .get(de_pv.addr, now)
            .map_or_else(|| self.reference.to_plane(de_pv.coord), |e| e.position);
        // If the destination itself is a live (plausible) neighbour,
        // address it directly.
        let plaus = self.config.mitigations.gf_plausibility_threshold;
        if let Some(e) = self.loct.get(de_pv.addr, now) {
            if plaus.is_none_or(|r| position.distance(e.position) <= r)
                && !exclude.contains(&de_pv.addr)
            {
                self.note(
                    now,
                    TraceEvent::GfNextHop {
                        packet: packet_ref_of(&msg),
                        next_hop: de_pv.addr.to_u64(),
                    },
                );
                return vec![RouterAction::Transmit(Frame::unicast(
                    self.addr(),
                    de_pv.addr,
                    position,
                    msg,
                ))];
            }
        }
        let decision =
            greedy_select_excluding(&self.loct, self.addr(), position, dest, &exclude, plaus, now);
        match decision {
            GfDecision::NextHop { addr, .. } => {
                self.note(
                    now,
                    TraceEvent::GfNextHop { packet: packet_ref_of(&msg), next_hop: addr.to_u64() },
                );
                vec![RouterAction::Transmit(Frame::unicast(self.addr(), addr, position, msg))]
            }
            GfDecision::NoProgress => {
                self.note(now, TraceEvent::GfFallback { packet: packet_ref_of(&msg) });
                vec![RouterAction::Transmit(Frame::broadcast(self.addr(), position, msg))]
            }
        }
    }

    /// Topologically-scoped broadcast: classic hop-limited flooding with
    /// duplicate suppression.
    fn handle_tsb(&mut self, frame: &Frame, position: Position, now: SimTime) -> Vec<RouterAction> {
        let msg = &frame.msg;
        let key = PacketKey::of(msg).expect("TSB carries a sequence number");
        if !self.tsb_seen.insert(key) {
            self.note(now, TraceEvent::DuplicateDiscarded { packet: packet_ref(key) });
            return Vec::new();
        }
        self.note(now, TraceEvent::Delivered { packet: packet_ref(key) });
        let mut actions = vec![RouterAction::Deliver { key, payload: msg.packet.payload.clone() }];
        let rhl = msg.rhl().saturating_sub(1);
        if rhl > 0 {
            actions.push(RouterAction::Transmit(Frame::broadcast(
                self.addr(),
                position,
                msg.with_rhl(rhl),
            )));
        } else {
            self.note(
                now,
                TraceEvent::Dropped { packet: packet_ref(key), reason: DropReason::RhlExhausted },
            );
        }
        actions
    }

    /// GeoBroadcast handling: CBF inside the area, GF outside.
    fn handle_gbc(&mut self, frame: &Frame, position: Position, now: SimTime) -> Vec<RouterAction> {
        let msg = &frame.msg;
        let key = PacketKey::of(msg).expect("caller checked gbc");
        let Ok(area) = msg.packet.destination_area(&self.reference) else {
            return Vec::new();
        };

        if area.contains(position) {
            // Destination-area member: contention-based forwarding.
            let verdict = self.cbf.on_packet(
                msg,
                frame.sender_position,
                position,
                &self.config.cbf_params(),
                now,
            );
            match verdict {
                CbfVerdict::FirstCopy { contend } => {
                    self.note(now, TraceEvent::Delivered { packet: packet_ref(key) });
                    let mut actions =
                        vec![RouterAction::Deliver { key, payload: msg.packet.payload.clone() }];
                    if let Some((delay, generation)) = contend {
                        self.note(
                            now,
                            TraceEvent::CbfArmed {
                                packet: packet_ref(key),
                                delay_us: delay.as_micros(),
                            },
                        );
                        actions.push(RouterAction::CbfTimer { key, generation, delay });
                    } else {
                        self.note(
                            now,
                            TraceEvent::Dropped {
                                packet: packet_ref(key),
                                reason: DropReason::RhlExhausted,
                            },
                        );
                    }
                    actions
                }
                CbfVerdict::DuplicateDiscarded => {
                    self.note(
                        now,
                        TraceEvent::CbfCancelled {
                            packet: packet_ref(key),
                            by: frame.src.to_u64(),
                        },
                    );
                    Vec::new()
                }
                CbfVerdict::DuplicateRejectedByMitigation => {
                    self.note(
                        now,
                        TraceEvent::CbfMitigationRejected {
                            packet: packet_ref(key),
                            by: frame.src.to_u64(),
                        },
                    );
                    Vec::new()
                }
                CbfVerdict::AlreadyHandled => {
                    self.note(now, TraceEvent::DuplicateDiscarded { packet: packet_ref(key) });
                    Vec::new()
                }
            }
        } else {
            // Outside the area: forwarder role.
            if self.gf_seen.contains(&key) {
                self.note(now, TraceEvent::DuplicateDiscarded { packet: packet_ref(key) });
                return Vec::new();
            }
            self.gf_seen.insert(key);
            let rhl = msg.rhl().saturating_sub(1);
            if rhl == 0 {
                self.note(
                    now,
                    TraceEvent::Dropped {
                        packet: packet_ref(key),
                        reason: DropReason::RhlExhausted,
                    },
                );
                return Vec::new();
            }
            self.forward_greedy(msg.with_rhl(rhl), position, vec![frame.src], now)
        }
    }

    /// Greedy-forwards `msg` towards its destination area, excluding the
    /// addresses in `exclude` (the previous hop, plus — with the
    /// link-acknowledgement extension — every next hop that already
    /// failed to acknowledge).
    fn forward_greedy(
        &mut self,
        msg: SecuredPacket,
        position: Position,
        exclude: Vec<GnAddress>,
        now: SimTime,
    ) -> Vec<RouterAction> {
        let Ok(area) = msg.packet.destination_area(&self.reference) else {
            return Vec::new();
        };
        let decision = greedy_select_excluding(
            &self.loct,
            self.addr(),
            position,
            area.center(),
            &exclude,
            self.config.mitigations.gf_plausibility_threshold,
            now,
        );
        match decision {
            GfDecision::NextHop { addr, .. } => {
                self.note(
                    now,
                    TraceEvent::GfNextHop { packet: packet_ref_of(&msg), next_hop: addr.to_u64() },
                );
                if let Some(ack) = self.config.link_ack {
                    if let Some(key) = PacketKey::of(&msg) {
                        let mut tried = exclude;
                        tried.push(addr);
                        self.gf_pending.insert(
                            key,
                            PendingGf { msg: msg.clone(), tried, retries_left: ack.max_retries },
                        );
                    }
                }
                vec![RouterAction::Transmit(Frame::unicast(self.addr(), addr, position, msg))]
            }
            GfDecision::NoProgress => self.on_no_progress(msg, position, exclude, now),
        }
    }

    /// Applies the configured no-progress policy.
    fn on_no_progress(
        &mut self,
        msg: SecuredPacket,
        position: Position,
        exclude: Vec<GnAddress>,
        now: SimTime,
    ) -> Vec<RouterAction> {
        use crate::config::NoProgressPolicy;
        match self.config.no_progress {
            NoProgressPolicy::Broadcast => {
                // Any receiver closer to the area continues forwarding.
                self.note(now, TraceEvent::GfFallback { packet: packet_ref_of(&msg) });
                vec![RouterAction::Transmit(Frame::broadcast(self.addr(), position, msg))]
            }
            NoProgressPolicy::BufferRetry { delay, max_attempts } => {
                let Some(key) = PacketKey::of(&msg) else {
                    return Vec::new();
                };
                let attempts_left = match self.gf_buffer.get(&key) {
                    Some(b) if b.attempts_left == 0 => {
                        self.gf_buffer.remove(&key);
                        self.note(
                            now,
                            TraceEvent::Dropped {
                                packet: packet_ref(key),
                                reason: DropReason::NoNextHop,
                            },
                        );
                        return Vec::new();
                    }
                    Some(b) => b.attempts_left - 1,
                    None => {
                        self.note(
                            now,
                            TraceEvent::GfBuffered { packet: packet_ref(key), attempt: 1 },
                        );
                        max_attempts
                    }
                };
                self.gf_buffer.insert(key, BufferedGf { msg, exclude, attempts_left });
                vec![RouterAction::GfRetry { key, delay }]
            }
            NoProgressPolicy::Drop => {
                self.note(
                    now,
                    TraceEvent::Dropped {
                        packet: packet_ref_of(&msg),
                        reason: DropReason::NoNextHop,
                    },
                );
                Vec::new()
            }
        }
    }

    /// Handles a forwarding-buffer recheck scheduled by an earlier
    /// [`RouterAction::GfRetry`]: re-runs greedy forwarding over the
    /// (possibly refreshed) location table.
    pub fn handle_gf_retry(
        &mut self,
        key: PacketKey,
        position: Position,
        now: SimTime,
    ) -> Vec<RouterAction> {
        let Some(buffered) = self.gf_buffer.remove(&key) else {
            return Vec::new();
        };
        // Re-insert so a repeated NoProgress decrements the budget.
        self.gf_buffer.insert(key, BufferedGf { msg: buffered.msg.clone(), ..buffered.clone() });
        let actions = self.forward_greedy(buffered.msg, position, buffered.exclude, now);
        // If forwarding succeeded (or the packet was dropped) the entry is
        // stale; only a fresh GfRetry keeps it alive.
        if !matches!(actions.first(), Some(RouterAction::GfRetry { .. })) {
            self.gf_buffer.remove(&key);
        }
        actions
    }

    /// Link-acknowledgement extension: the MAC confirmed delivery of the
    /// greedy unicast for `key`; forget the pending retry state.
    pub fn handle_ack_success(&mut self, key: PacketKey) {
        self.gf_pending.remove(&key);
    }

    /// Link-acknowledgement extension: the MAC gave up on the greedy
    /// unicast for `key`. Retries towards the next-best neighbour, or
    /// falls back to a broadcast once the retry budget is spent.
    ///
    /// Returns no actions when the extension is disabled or the packet is
    /// no longer pending.
    pub fn handle_ack_failure(
        &mut self,
        key: PacketKey,
        position: Position,
        now: SimTime,
    ) -> Vec<RouterAction> {
        let Some(mut pending) = self.gf_pending.remove(&key) else {
            return Vec::new();
        };
        if pending.retries_left == 0 {
            // Out of retries: last resort is the broadcast fallback.
            self.note(
                now,
                TraceEvent::Dropped { packet: packet_ref(key), reason: DropReason::AckExhausted },
            );
            self.note(now, TraceEvent::GfFallback { packet: packet_ref(key) });
            return vec![RouterAction::Transmit(Frame::broadcast(
                self.addr(),
                position,
                pending.msg,
            ))];
        }
        pending.retries_left -= 1;
        let budget = self.config.link_ack.map_or(0, |a| a.max_retries);
        self.note(
            now,
            TraceEvent::GfAckRetry {
                packet: packet_ref(key),
                attempt: u32::from(budget.saturating_sub(pending.retries_left)),
            },
        );
        let retries_left = pending.retries_left;
        let tried = pending.tried.clone();
        let actions = self.forward_greedy(pending.msg, position, tried, now);
        // `forward_greedy` re-registered the pending entry with a full
        // budget; restore the decremented one.
        if let Some(p) = self.gf_pending.get_mut(&key) {
            p.retries_left = retries_left;
        }
        actions
    }

    /// Handles a CBF contention-timer expiry scheduled by an earlier
    /// [`RouterAction::CbfTimer`].
    pub fn handle_cbf_timer(
        &mut self,
        key: PacketKey,
        generation: u64,
        position: Position,
        now: SimTime,
    ) -> Vec<RouterAction> {
        match self.cbf.take_expired(key, generation) {
            Some(packet) => {
                self.note(now, TraceEvent::CbfFired { packet: packet_ref(key) });
                vec![RouterAction::Transmit(Frame::broadcast(self.addr(), position, packet))]
            }
            None => Vec::new(),
        }
    }
}

impl std::fmt::Debug for GnRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GnRouter")
            .field("addr", &self.addr())
            .field("loct", &self.loct.stored_count())
            .field("cbf_buffered", &self.cbf.buffered_count())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MitigationConfig;
    use crate::security::CertificateAuthority;
    use geonet_sim::SimTime;

    const NOW: SimTime = SimTime::from_secs(30);

    struct Harness {
        ca: CertificateAuthority,
        reference: GeoReference,
        config: GnConfig,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                ca: CertificateAuthority::new(0xABCD),
                reference: GeoReference::default(),
                config: GnConfig::paper_default(1_283.0),
            }
        }

        fn router(&self, addr: u64) -> GnRouter {
            GnRouter::new(
                self.ca.enroll(GnAddress::vehicle(addr)),
                self.ca.verifier(),
                self.config,
                self.reference,
            )
        }

        fn router_with(&self, addr: u64, config: GnConfig) -> GnRouter {
            GnRouter::new(
                self.ca.enroll(GnAddress::vehicle(addr)),
                self.ca.verifier(),
                config,
                self.reference,
            )
        }
    }

    fn east_area() -> Area {
        Area::circle(Position::new(4_020.0, 0.0), 50.0)
    }

    #[test]
    fn beacon_populates_neighbor_loct() {
        let h = Harness::new();
        let sender = h.router(1);
        let mut receiver = h.router(2);
        let beacon = sender.make_beacon(NOW, Position::new(300.0, 0.0), 30.0, Heading::EAST);
        let actions = receiver.handle_frame(&beacon, Position::ORIGIN, NOW);
        assert!(actions.is_empty());
        assert_eq!(receiver.stats().beacons_accepted, 1);
        let e = receiver.loct().get(GnAddress::vehicle(1), NOW).unwrap();
        assert!(e.position.distance(Position::new(300.0, 0.0)) < 0.05);
    }

    #[test]
    fn tampered_beacon_rejected() {
        let h = Harness::new();
        let sender = h.router(1);
        let mut receiver = h.router(2);
        let mut beacon = sender.make_beacon(NOW, Position::new(300.0, 0.0), 30.0, Heading::EAST);
        // Attacker tries the classic false-position attack: move the PV.
        match &mut beacon.msg.packet.extended {
            crate::wire::Extended::Beacon { so_pv } => so_pv.coord.lon += 10_000,
            _ => unreachable!(),
        }
        receiver.handle_frame(&beacon, Position::ORIGIN, NOW);
        assert_eq!(receiver.stats().auth_failures, 1);
        assert!(receiver.loct().get(GnAddress::vehicle(1), NOW).is_none());
    }

    #[test]
    fn stale_beacon_rejected_by_freshness() {
        let h = Harness::new();
        let sender = h.router(1);
        let mut receiver = h.router(2);
        let beacon = sender.make_beacon(NOW, Position::new(300.0, 0.0), 30.0, Heading::EAST);
        // Replay 5 s later (max_pv_age is 1 s): rejected.
        let later = NOW + SimDuration::from_secs(5);
        receiver.handle_frame(&beacon, Position::ORIGIN, later);
        assert_eq!(receiver.stats().freshness_failures, 1);
        assert!(receiver.loct().get(GnAddress::vehicle(1), later).is_none());
    }

    #[test]
    fn replayed_fresh_beacon_accepted_without_plausibility_check() {
        // The paper's inter-area vulnerability in one test: an authentic
        // beacon from a node 700 m away (out of radio range) lands in the
        // LocT when replayed promptly, and GF then selects it.
        let h = Harness::new();
        let far = h.router(3);
        let near = h.router(2);
        let mut victim = h.router(1);

        let far_beacon = far.make_beacon(NOW, Position::new(700.0, 0.0), 30.0, Heading::EAST);
        let near_beacon = near.make_beacon(NOW, Position::new(300.0, 0.0), 30.0, Heading::EAST);
        // Attacker relays the far beacon 1 ms later — passes freshness.
        let replay_time = NOW + SimDuration::from_millis(1);
        victim.handle_frame(&far_beacon, Position::ORIGIN, replay_time);
        victim.handle_frame(&near_beacon, Position::ORIGIN, replay_time);

        let (_, actions) = victim.originate(
            &east_area(),
            vec![1],
            replay_time,
            Position::ORIGIN,
            30.0,
            Heading::EAST,
        );
        match &actions[..] {
            [RouterAction::Transmit(f)] => {
                assert_eq!(f.dst, Some(GnAddress::vehicle(3)), "poisoned entry wins GF");
            }
            other => panic!("expected one unicast, got {other:?}"),
        }
    }

    #[test]
    fn plausibility_mitigation_prefers_reachable_neighbor() {
        let h = Harness::new();
        let config = h.config.with_mitigations(MitigationConfig::plausibility(486.0));
        let far = h.router(3);
        let near = h.router(2);
        let mut victim = h.router_with(1, config);

        let t = NOW + SimDuration::from_millis(1);
        victim.handle_frame(
            &far.make_beacon(NOW, Position::new(700.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        victim.handle_frame(
            &near.make_beacon(NOW, Position::new(300.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        let (_, actions) =
            victim.originate(&east_area(), vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        match &actions[..] {
            [RouterAction::Transmit(f)] => {
                assert_eq!(f.dst, Some(GnAddress::vehicle(2)), "mitigated GF picks real neighbor");
            }
            other => panic!("expected one unicast, got {other:?}"),
        }
    }

    #[test]
    fn gradient_query_probes_without_mutating() {
        let h = Harness::new();
        let far = h.router(3);
        let mut victim = h.router(1);
        let dest = Position::new(4_020.0, 0.0);
        let t = NOW + SimDuration::from_millis(1);
        assert_eq!(
            victim.gradient_query(Position::ORIGIN, dest, t),
            GfDecision::NoProgress,
            "empty location table"
        );
        // A replayed beacon advertises a neighbour 700 m away — beyond
        // radio reach, the poisoned-gradient case the topology observer
        // classifies.
        victim.handle_frame(
            &far.make_beacon(NOW, Position::new(700.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        let before = victim.stats();
        match victim.gradient_query(Position::ORIGIN, dest, t) {
            GfDecision::NextHop { addr, advertised } => {
                assert_eq!(addr, GnAddress::vehicle(3));
                // The advertised position survives the beacon's wire
                // quantization (within a metre).
                assert!(advertised.distance(Position::new(700.0, 0.0)) < 1.0);
            }
            other => panic!("expected the poisoned next hop, got {other}"),
        }
        assert_eq!(victim.stats(), before, "the probe must not count as a decision");
    }

    #[test]
    fn originate_inside_area_broadcasts() {
        let h = Harness::new();
        let mut src = h.router(1);
        let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0);
        let (key, actions) =
            src.originate(&area, vec![7], NOW, Position::new(1_000.0, 2.5), 30.0, Heading::EAST);
        assert_eq!(key.source, GnAddress::vehicle(1));
        match &actions[..] {
            [RouterAction::Transmit(f)] => {
                assert_eq!(f.dst, None);
                assert_eq!(f.msg.rhl(), 10);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn originate_with_no_neighbors_falls_back_to_broadcast() {
        let h = Harness::new();
        let mut src = h.router(1);
        let (_, actions) =
            src.originate(&east_area(), vec![1], NOW, Position::ORIGIN, 30.0, Heading::EAST);
        match &actions[..] {
            [RouterAction::Transmit(f)] => assert_eq!(f.dst, None),
            other => panic!("{other:?}"),
        }
        assert_eq!(src.stats().gf_fallback, 1);
    }

    #[test]
    fn sequence_numbers_increment_per_packet() {
        let h = Harness::new();
        let mut src = h.router(1);
        let (k1, _) =
            src.originate(&east_area(), vec![], NOW, Position::ORIGIN, 30.0, Heading::EAST);
        let (k2, _) =
            src.originate(&east_area(), vec![], NOW, Position::ORIGIN, 30.0, Heading::EAST);
        assert_eq!(k1.sn.next(), k2.sn);
    }

    #[test]
    fn in_area_reception_delivers_and_contends() {
        let h = Harness::new();
        let mut src = h.router(1);
        let mut dst = h.router(2);
        let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0);
        let (key, actions) =
            src.originate(&area, vec![9], NOW, Position::new(1_000.0, 2.5), 30.0, Heading::EAST);
        let RouterAction::Transmit(frame) = &actions[0] else { panic!() };
        let got = dst.handle_frame(frame, Position::new(1_400.0, 2.5), NOW);
        assert_eq!(got.len(), 2);
        assert!(
            matches!(&got[0], RouterAction::Deliver { key: k, payload } if *k == key && payload == &vec![9])
        );
        match &got[1] {
            RouterAction::CbfTimer { key: k, delay, .. } => {
                assert_eq!(*k, key);
                assert_eq!(*delay, h.config.cbf_params().contention_timeout(400.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cbf_timer_rebroadcasts_with_decremented_rhl() {
        let h = Harness::new();
        let mut src = h.router(1);
        let mut dst = h.router(2);
        let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0);
        let (key, actions) =
            src.originate(&area, vec![9], NOW, Position::new(1_000.0, 2.5), 30.0, Heading::EAST);
        let RouterAction::Transmit(frame) = &actions[0] else { panic!() };
        let got = dst.handle_frame(frame, Position::new(1_400.0, 2.5), NOW);
        let RouterAction::CbfTimer { generation, delay, .. } = got[1] else { panic!() };
        let fire = NOW + delay;
        let out = dst.handle_cbf_timer(key, generation, Position::new(1_400.0, 2.5), fire);
        match &out[..] {
            [RouterAction::Transmit(f)] => {
                assert_eq!(f.dst, None);
                assert_eq!(f.msg.rhl(), 9);
                assert_eq!(f.src, GnAddress::vehicle(2));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(dst.stats().cbf_rebroadcast, 1);
    }

    #[test]
    fn duplicate_cancels_contention() {
        let h = Harness::new();
        let mut src = h.router(1);
        let mut dst = h.router(2);
        let mut peer = h.router(3);
        let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0);
        let (key, actions) =
            src.originate(&area, vec![9], NOW, Position::new(1_000.0, 2.5), 30.0, Heading::EAST);
        let RouterAction::Transmit(frame) = &actions[0] else { panic!() };
        // dst buffers; peer (farther) wins contention and re-broadcasts.
        let got = dst.handle_frame(frame, Position::new(1_200.0, 2.5), NOW);
        let RouterAction::CbfTimer { generation, .. } = got[1] else { panic!() };
        let peer_got = peer.handle_frame(frame, Position::new(1_450.0, 2.5), NOW);
        let RouterAction::CbfTimer { generation: pg, delay: pd, .. } = peer_got[1] else {
            panic!()
        };
        let rebroadcast = peer.handle_cbf_timer(key, pg, Position::new(1_450.0, 2.5), NOW + pd);
        let RouterAction::Transmit(dup) = &rebroadcast[0] else { panic!() };
        // dst hears the duplicate before its own (larger) timer fires.
        let dup_actions = dst.handle_frame(dup, Position::new(1_200.0, 2.5), NOW + pd);
        assert!(dup_actions.is_empty());
        assert_eq!(dst.stats().cbf_discards, 1);
        // dst's stale timer yields nothing.
        let nothing = dst.handle_cbf_timer(key, generation, Position::new(1_200.0, 2.5), NOW + pd);
        assert!(nothing.is_empty());
    }

    #[test]
    fn unicast_for_other_node_ignored() {
        let h = Harness::new();
        let mut a = h.router(1);
        let b = h.router(2);
        let mut c = h.router(3);
        // a learns of b, forwards to b; c overhears but must not process.
        let t = NOW + SimDuration::from_millis(1);
        a.handle_frame(
            &b.make_beacon(NOW, Position::new(400.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        let (_, actions) =
            a.originate(&east_area(), vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        let RouterAction::Transmit(f) = &actions[0] else { panic!() };
        assert_eq!(f.dst, Some(GnAddress::vehicle(2)));
        assert!(c.handle_frame(f, Position::new(350.0, 0.0), t).is_empty());
        assert_eq!(c.stats(), RouterStats::default());
    }

    #[test]
    fn forwarder_outside_area_unicasts_onward() {
        let h = Harness::new();
        let mut a = h.router(1);
        let mut b = h.router(2);
        let c = h.router(3);
        let t = NOW + SimDuration::from_millis(1);
        // a knows b; b knows c (closer to the area).
        a.handle_frame(
            &b.make_beacon(NOW, Position::new(400.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        b.handle_frame(
            &c.make_beacon(NOW, Position::new(800.0, 0.0), 30.0, Heading::EAST),
            Position::new(400.0, 0.0),
            t,
        );
        let (_, actions) =
            a.originate(&east_area(), vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        let RouterAction::Transmit(f1) = &actions[0] else { panic!() };
        let actions2 = b.handle_frame(f1, Position::new(400.0, 0.0), t);
        match &actions2[..] {
            [RouterAction::Transmit(f2)] => {
                assert_eq!(f2.dst, Some(GnAddress::vehicle(3)));
                assert_eq!(f2.msg.rhl(), 9, "RHL decremented at the forwarder");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rhl_exhaustion_stops_forwarding() {
        let h = Harness::new();
        let mut a = h.router(1);
        let mut b = h.router(2);
        let t = NOW + SimDuration::from_millis(1);
        a.handle_frame(
            &b.make_beacon(NOW, Position::new(400.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        let (_, actions) =
            a.originate(&east_area(), vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        let RouterAction::Transmit(f) = &actions[0] else { panic!() };
        // Clamp the RHL to 1 (as the attacker can): b decrements to 0 and
        // drops instead of forwarding.
        let clamped = Frame { msg: f.msg.with_rhl(1), ..f.clone() };
        let out = b.handle_frame(&clamped, Position::new(400.0, 0.0), t);
        assert!(out.is_empty());
        assert_eq!(b.stats().rhl_exhausted, 1);
    }

    #[test]
    fn forwarder_handles_each_packet_once() {
        let h = Harness::new();
        let mut a = h.router(1);
        let mut b = h.router(2);
        let t = NOW + SimDuration::from_millis(1);
        let (_, actions) =
            a.originate(&east_area(), vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        let RouterAction::Transmit(f) = &actions[0] else { panic!() };
        let first = b.handle_frame(f, Position::new(400.0, 0.0), t);
        assert_eq!(first.len(), 1);
        let second = b.handle_frame(f, Position::new(400.0, 0.0), t);
        assert!(second.is_empty(), "GF loop suppression");
    }

    #[test]
    fn buffer_retry_policy_parks_and_recovers() {
        use crate::config::NoProgressPolicy;
        let h = Harness::new();
        let config = h.config.with_no_progress(NoProgressPolicy::BufferRetry {
            delay: SimDuration::from_millis(500),
            max_attempts: 2,
        });
        let mut a = h.router_with(1, config);
        // No neighbours yet: the packet parks in the forwarding buffer.
        let (key, actions) =
            a.originate(&east_area(), vec![1], NOW, Position::ORIGIN, 30.0, Heading::EAST);
        match &actions[..] {
            [RouterAction::GfRetry { key: k, delay }] => {
                assert_eq!(*k, key);
                assert_eq!(*delay, SimDuration::from_millis(500));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(a.stats().gf_buffered, 1);
        // A beacon arrives before the recheck fires.
        let b = h.router(2);
        let t1 = NOW + SimDuration::from_millis(400);
        a.handle_frame(
            &b.make_beacon(t1, Position::new(300.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t1,
        );
        // The recheck now finds the neighbour and forwards.
        let t2 = NOW + SimDuration::from_millis(500);
        let retry = a.handle_gf_retry(key, Position::ORIGIN, t2);
        match &retry[..] {
            [RouterAction::Transmit(f)] => assert_eq!(f.dst, Some(GnAddress::vehicle(2))),
            other => panic!("{other:?}"),
        }
        // The buffer entry is gone: another recheck is a no-op.
        assert!(a.handle_gf_retry(key, Position::ORIGIN, t2).is_empty());
    }

    #[test]
    fn buffer_retry_budget_exhausts_into_drop() {
        use crate::config::NoProgressPolicy;
        let h = Harness::new();
        let config = h.config.with_no_progress(NoProgressPolicy::BufferRetry {
            delay: SimDuration::from_millis(500),
            max_attempts: 1,
        });
        let mut a = h.router_with(1, config);
        let (key, actions) =
            a.originate(&east_area(), vec![1], NOW, Position::ORIGIN, 30.0, Heading::EAST);
        assert!(matches!(&actions[..], [RouterAction::GfRetry { .. }]));
        // Still no neighbours at each recheck: one more retry, then drop.
        let t1 = NOW + SimDuration::from_millis(500);
        let r1 = a.handle_gf_retry(key, Position::ORIGIN, t1);
        assert!(matches!(&r1[..], [RouterAction::GfRetry { .. }]), "{r1:?}");
        let t2 = t1 + SimDuration::from_millis(500);
        let r2 = a.handle_gf_retry(key, Position::ORIGIN, t2);
        assert!(r2.is_empty(), "{r2:?}");
        assert_eq!(a.stats().gf_dropped, 1);
    }

    #[test]
    fn drop_policy_discards_immediately() {
        use crate::config::NoProgressPolicy;
        let h = Harness::new();
        let config = h.config.with_no_progress(NoProgressPolicy::Drop);
        let mut a = h.router_with(1, config);
        let (_, actions) =
            a.originate(&east_area(), vec![1], NOW, Position::ORIGIN, 30.0, Heading::EAST);
        assert!(actions.is_empty());
        assert_eq!(a.stats().gf_dropped, 1);
    }

    #[test]
    fn ack_failure_retries_next_best_neighbor() {
        let h = Harness::new();
        let config = h.config.with_link_ack(crate::config::LinkAckConfig::default());
        let mut a = h.router_with(1, config);
        let b = h.router(2);
        let c = h.router(3);
        let t = NOW + SimDuration::from_millis(1);
        // a knows both; GF prefers c (farther east), which will "fail".
        a.handle_frame(
            &b.make_beacon(NOW, Position::new(300.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        a.handle_frame(
            &c.make_beacon(NOW, Position::new(460.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        let (key, actions) =
            a.originate(&east_area(), vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        let RouterAction::Transmit(f1) = &actions[0] else { panic!() };
        assert_eq!(f1.dst, Some(GnAddress::vehicle(3)));
        // No acknowledgement arrives: the router retries towards b.
        let retry = a.handle_ack_failure(key, Position::ORIGIN, t + SimDuration::from_millis(5));
        match &retry[..] {
            [RouterAction::Transmit(f2)] => {
                assert_eq!(f2.dst, Some(GnAddress::vehicle(2)), "retry must exclude v3");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(a.stats().gf_ack_retries, 1);
        // Success clears the pending state: further failures are no-ops.
        a.handle_ack_success(key);
        assert!(a
            .handle_ack_failure(key, Position::ORIGIN, t + SimDuration::from_millis(10))
            .is_empty());
    }

    #[test]
    fn ack_retry_budget_exhausts_into_broadcast() {
        let h = Harness::new();
        let config = h.config.with_link_ack(crate::config::LinkAckConfig {
            timeout: SimDuration::from_millis(5),
            max_retries: 1,
        });
        let mut a = h.router_with(1, config);
        let b = h.router(2);
        let c = h.router(3);
        let t = NOW + SimDuration::from_millis(1);
        a.handle_frame(
            &b.make_beacon(NOW, Position::new(300.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        a.handle_frame(
            &c.make_beacon(NOW, Position::new(460.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        let (key, _) = a.originate(&east_area(), vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        // First failure: one retry allowed (to v2).
        let r1 = a.handle_ack_failure(key, Position::ORIGIN, t + SimDuration::from_millis(5));
        assert!(
            matches!(&r1[..], [RouterAction::Transmit(f)] if f.dst == Some(GnAddress::vehicle(2)))
        );
        // Second failure: budget spent, fall back to broadcast.
        let r2 = a.handle_ack_failure(key, Position::ORIGIN, t + SimDuration::from_millis(10));
        assert!(matches!(&r2[..], [RouterAction::Transmit(f)] if f.dst.is_none()), "{r2:?}");
        assert_eq!(a.stats().gf_ack_exhausted, 1);
    }

    #[test]
    fn ack_disabled_means_no_pending_state() {
        let h = Harness::new();
        let mut a = h.router(1);
        let b = h.router(2);
        let t = NOW + SimDuration::from_millis(1);
        a.handle_frame(
            &b.make_beacon(NOW, Position::new(300.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        let (key, _) = a.originate(&east_area(), vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        assert!(a.handle_ack_failure(key, Position::ORIGIN, t).is_empty());
    }

    #[test]
    fn guc_routes_hop_by_hop_to_destination() {
        let h = Harness::new();
        let mut a = h.router(1);
        let mut b = h.router(2);
        let mut c = h.router(3);
        let t = NOW + SimDuration::from_millis(1);
        let b_pos = Position::new(400.0, 0.0);
        let c_pos = Position::new(800.0, 0.0);
        // a knows b; b knows c (the destination).
        let c_beacon = c.make_beacon(NOW, c_pos, 30.0, Heading::EAST);
        a.handle_frame(&b.make_beacon(NOW, b_pos, 30.0, Heading::EAST), Position::ORIGIN, t);
        b.handle_frame(&c_beacon, b_pos, t);
        let de_pv = crate::wire::ShortPositionVector::from_long(c_beacon.msg.packet.so_pv());

        let (key, actions) =
            a.originate_guc(de_pv, vec![0x61], t, Position::ORIGIN, 30.0, Heading::EAST);
        // a does not know c: greedy hop towards c's position goes via b.
        let RouterAction::Transmit(f1) = &actions[0] else { panic!() };
        assert_eq!(f1.dst, Some(GnAddress::vehicle(2)));
        let actions2 = b.handle_frame(f1, b_pos, t);
        // b knows the destination directly: addressed unicast.
        let RouterAction::Transmit(f2) = &actions2[0] else { panic!() };
        assert_eq!(f2.dst, Some(GnAddress::vehicle(3)));
        assert_eq!(f2.msg.rhl(), 9);
        let actions3 = c.handle_frame(f2, c_pos, t);
        assert!(
            matches!(&actions3[..], [RouterAction::Deliver { key: k, payload }]
                if *k == key && payload == &vec![0x61]),
            "{actions3:?}"
        );
        // A replayed copy is not delivered twice.
        assert!(c.handle_frame(f2, c_pos, t).is_empty());
    }

    #[test]
    fn guc_rhl_exhaustion_drops() {
        let h = Harness::new();
        let mut a = h.router(1);
        let mut b = h.router(2);
        let t = NOW + SimDuration::from_millis(1);
        let c = h.router(3);
        let c_beacon = c.make_beacon(NOW, Position::new(900.0, 0.0), 30.0, Heading::EAST);
        a.handle_frame(
            &b.make_beacon(NOW, Position::new(400.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        let de_pv = crate::wire::ShortPositionVector::from_long(c_beacon.msg.packet.so_pv());
        let (_, actions) =
            a.originate_guc(de_pv, vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        let RouterAction::Transmit(f1) = &actions[0] else { panic!() };
        // Clamp the (unprotected) RHL to 1: b decrements to 0 and drops.
        let clamped = Frame { msg: f1.msg.with_rhl(1), ..f1.clone() };
        assert!(b.handle_frame(&clamped, Position::new(400.0, 0.0), t).is_empty());
        assert_eq!(b.stats().rhl_exhausted, 1);
    }

    #[test]
    fn tsb_floods_with_duplicate_suppression() {
        let h = Harness::new();
        let mut src = h.router(1);
        let mut relay = h.router(2);
        let (key, actions) =
            src.originate_tsb(vec![0x77], 5, NOW, Position::ORIGIN, 30.0, Heading::EAST);
        let RouterAction::Transmit(f) = &actions[0] else { panic!() };
        assert_eq!(f.dst, None);
        let got = relay.handle_frame(f, Position::new(300.0, 0.0), NOW);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(matches!(&got[0], RouterAction::Deliver { key: k, .. } if *k == key));
        match &got[1] {
            RouterAction::Transmit(rf) => {
                assert_eq!(rf.dst, None);
                assert_eq!(rf.msg.rhl(), 4, "hop limit decremented");
            }
            other => panic!("{other:?}"),
        }
        // A duplicate copy is ignored entirely.
        assert!(relay.handle_frame(f, Position::new(300.0, 0.0), NOW).is_empty());
        // The source ignores its own echo.
        assert!(src.handle_frame(f, Position::ORIGIN, NOW).is_empty());
    }

    #[test]
    fn tsb_stops_at_hop_limit() {
        let h = Harness::new();
        let mut src = h.router(1);
        let mut last = h.router(2);
        let (_, actions) =
            src.originate_tsb(vec![1], 1, NOW, Position::ORIGIN, 30.0, Heading::EAST);
        let RouterAction::Transmit(f) = &actions[0] else { panic!() };
        let got = last.handle_frame(f, Position::new(100.0, 0.0), NOW);
        assert_eq!(got.len(), 1, "delivered but not re-broadcast: {got:?}");
        assert!(matches!(got[0], RouterAction::Deliver { .. }));
        assert_eq!(last.stats().rhl_exhausted, 1);
    }

    #[test]
    fn shb_delivers_and_updates_loct() {
        let h = Harness::new();
        let mut src = h.router(1);
        let mut rx = h.router(2);
        let actions =
            src.originate_shb(vec![0xCA], NOW, Position::new(250.0, 0.0), 30.0, Heading::EAST);
        let RouterAction::Transmit(f) = &actions[0] else { panic!() };
        assert_eq!(f.msg.rhl(), 1);
        let got = rx.handle_frame(f, Position::ORIGIN, NOW);
        assert_eq!(got.len(), 1);
        assert!(matches!(&got[0], RouterAction::Deliver { payload, .. } if payload == &vec![0xCA]));
        // The SHB source is a genuine neighbour: LocT updated.
        let e = rx.loct().get(GnAddress::vehicle(1), NOW).expect("LocT entry");
        assert!(e.position.distance(Position::new(250.0, 0.0)) < 0.05);
    }

    #[test]
    fn beacon_jitter_within_bounds() {
        let h = Harness::new();
        let r = h.router(1);
        let mut rng = SimRng::seed(9);
        for _ in 0..200 {
            let d = r.next_beacon_delay(&mut rng);
            assert!(d >= SimDuration::from_secs(3));
            assert!(d <= SimDuration::from_secs(3) + SimDuration::from_millis(750));
        }
    }

    #[test]
    fn debug_mentions_addr() {
        let h = Harness::new();
        let r = h.router(1);
        assert!(format!("{r:?}").contains("GnRouter"));
    }

    #[test]
    fn tracer_records_cbf_cancellation_with_culprit() {
        use geonet_sim::{shared, Tracer, VecSink};
        let h = Harness::new();
        let mut src = h.router(1);
        let mut dst = h.router(2);
        let mut peer = h.router(3);
        let sink = shared(VecSink::new());
        dst.set_tracer(Tracer::attached(sink.clone()).for_node(2));
        let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0);
        let (key, actions) =
            src.originate(&area, vec![9], NOW, Position::new(1_000.0, 2.5), 30.0, Heading::EAST);
        let RouterAction::Transmit(frame) = &actions[0] else { panic!() };
        dst.handle_frame(frame, Position::new(1_200.0, 2.5), NOW);
        let peer_got = peer.handle_frame(frame, Position::new(1_450.0, 2.5), NOW);
        let RouterAction::CbfTimer { generation: pg, delay: pd, .. } = peer_got[1] else {
            panic!()
        };
        let rebroadcast = peer.handle_cbf_timer(key, pg, Position::new(1_450.0, 2.5), NOW + pd);
        let RouterAction::Transmit(dup) = &rebroadcast[0] else { panic!() };
        dst.handle_frame(dup, Position::new(1_200.0, 2.5), NOW + pd);

        let records = sink.borrow().records().to_vec();
        let pkt = super::packet_ref(key);
        let names: Vec<&str> = records.iter().map(|r| r.event.name()).collect();
        assert_eq!(names, ["delivered", "cbf_armed", "cbf_cancelled"], "{records:?}");
        assert!(records.iter().all(|r| r.node == 2));
        assert!(records.iter().all(|r| r.event.packet() == Some(pkt)));
        match records.last().unwrap().event {
            TraceEvent::CbfCancelled { by, .. } => {
                assert_eq!(by, GnAddress::vehicle(3).to_u64(), "cancelled by the peer's dup");
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_equal_fold_of_emitted_events() {
        use geonet_sim::{shared, Tracer, VecSink};
        let h = Harness::new();
        let mut a = h.router(1);
        let mut b = h.router(2);
        let sink = shared(VecSink::new());
        a.set_tracer(Tracer::attached(sink.clone()).for_node(1));
        let t = NOW + SimDuration::from_millis(1);
        // Exercise a mix of paths: beacon accept, GF unicast, fallback,
        // RHL exhaustion, stale + tampered beacons.
        a.handle_frame(
            &b.make_beacon(NOW, Position::new(400.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t,
        );
        a.originate(&east_area(), vec![1], t, Position::ORIGIN, 30.0, Heading::EAST);
        let (_, actions) =
            b.originate(&east_area(), vec![2], t, Position::new(4_500.0, 0.0), 30.0, Heading::EAST);
        if let Some(RouterAction::Transmit(f)) = actions.first() {
            let clamped = Frame { msg: f.msg.with_rhl(1), ..f.clone() };
            a.handle_frame(&clamped, Position::ORIGIN, t);
        }
        a.handle_frame(
            &b.make_beacon(NOW, Position::new(400.0, 0.0), 30.0, Heading::EAST),
            Position::ORIGIN,
            t + SimDuration::from_secs(5),
        );

        let mut derived = RouterStats::default();
        for r in sink.borrow().records() {
            derived.record(&r.event);
        }
        assert_ne!(a.stats(), RouterStats::default(), "the scenario exercised something");
        assert_eq!(a.stats(), derived, "stats are exactly the fold of the trace");
    }
}
