//! Position vectors (EN 302 636-4-1 §8.5).
//!
//! Every beacon and every GeoNetworking packet carries the *long position
//! vector* (LPV) of its source: address, timestamp, WGS-84 position,
//! position-accuracy indicator, speed and heading. The location table
//! stores the LPVs learned from neighbours, and greedy forwarding ranks
//! neighbours by the positions they advertised — which is exactly what the
//! paper's inter-area interception attack poisons by replaying stale-but-
//! authentic beacons out of their radio context.

use crate::types::{GnAddress, Timestamp};
use geonet_geo::{GeoCoord, GeoReference, Heading, Position};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The long position vector: the source's identity and kinematic state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongPositionVector {
    /// GeoNetworking address of the advertising node.
    pub addr: GnAddress,
    /// Time the position was acquired (ms mod 2³²).
    pub timestamp: Timestamp,
    /// WGS-84 position in wire units (1/10 micro-degree).
    pub coord: GeoCoord,
    /// Position accuracy indicator: `true` if the position is accurate.
    pub pai: bool,
    /// Speed in units of 0.01 m/s (signed; negative means reversing).
    pub speed_cm_s: i16,
    /// Heading in units of 0.1° clockwise from north.
    pub heading_decideg: u16,
}

impl LongPositionVector {
    /// Builds an LPV from simulation state.
    ///
    /// `position` is projected into WGS-84 wire units with `reference`;
    /// speed is clamped into the encodable ±327.67 m/s.
    #[must_use]
    pub fn from_sim(
        addr: GnAddress,
        now: geonet_sim::SimTime,
        position: Position,
        speed_m_s: f64,
        heading: Heading,
        reference: &GeoReference,
    ) -> Self {
        let speed_cm = (speed_m_s * 100.0).round().clamp(-32_768.0, 32_767.0) as i16;
        let heading_decideg = (heading.degrees() * 10.0).round().rem_euclid(3_600.0) as u16;
        LongPositionVector {
            addr,
            timestamp: Timestamp::from_sim(now),
            coord: reference.to_geo(position),
            pai: true,
            speed_cm_s: speed_cm,
            heading_decideg,
        }
    }

    /// The advertised position projected back onto the simulation plane.
    #[must_use]
    pub fn position(&self, reference: &GeoReference) -> Position {
        reference.to_plane(self.coord)
    }

    /// Speed in m/s.
    #[must_use]
    pub fn speed_m_s(&self) -> f64 {
        f64::from(self.speed_cm_s) / 100.0
    }

    /// Heading of travel.
    #[must_use]
    pub fn heading(&self) -> Heading {
        Heading::from_degrees(f64::from(self.heading_decideg) / 10.0)
    }
}

impl fmt::Display for LongPositionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PV[{} @ {} {} {:.1} m/s {}]",
            self.addr,
            self.coord,
            self.timestamp,
            self.speed_m_s(),
            self.heading()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet_sim::SimTime;
    use proptest::prelude::*;

    fn reference() -> GeoReference {
        GeoReference::default()
    }

    #[test]
    fn from_sim_round_trips_position() {
        let r = reference();
        let p = Position::new(1_500.0, 7.5);
        let pv = LongPositionVector::from_sim(
            GnAddress::vehicle(1),
            SimTime::from_secs(10),
            p,
            30.0,
            Heading::EAST,
            &r,
        );
        assert!(pv.position(&r).distance(p) < 0.02);
        assert_eq!(pv.speed_m_s(), 30.0);
        assert_eq!(pv.heading(), Heading::EAST);
        assert_eq!(pv.timestamp.millis(), 10_000);
        assert!(pv.pai);
    }

    #[test]
    fn speed_clamps_at_encoding_limits() {
        let r = reference();
        let pv = LongPositionVector::from_sim(
            GnAddress::vehicle(1),
            SimTime::ZERO,
            Position::ORIGIN,
            1_000.0,
            Heading::NORTH,
            &r,
        );
        assert_eq!(pv.speed_cm_s, 32_767);
    }

    #[test]
    fn heading_wraps_at_360() {
        let r = reference();
        let pv = LongPositionVector::from_sim(
            GnAddress::vehicle(1),
            SimTime::ZERO,
            Position::ORIGIN,
            0.0,
            Heading::from_degrees(359.99),
            &r,
        );
        assert!(pv.heading_decideg < 3_600);
    }

    #[test]
    fn display_mentions_address() {
        let r = reference();
        let pv = LongPositionVector::from_sim(
            GnAddress::vehicle(0xAB),
            SimTime::ZERO,
            Position::ORIGIN,
            0.0,
            Heading::NORTH,
            &r,
        );
        assert!(pv.to_string().contains("vehicle"), "{pv}");
    }

    proptest! {
        #[test]
        fn prop_kinematics_round_trip(x in 0.0f64..4_000.0, y in -20.0f64..20.0,
                                      speed in 0.0f64..100.0, hdg in 0.0f64..360.0) {
            let r = reference();
            let pv = LongPositionVector::from_sim(
                GnAddress::vehicle(1),
                SimTime::from_secs(1),
                Position::new(x, y),
                speed,
                Heading::from_degrees(hdg),
                &r,
            );
            prop_assert!(pv.position(&r).distance(Position::new(x, y)) < 0.05);
            prop_assert!((pv.speed_m_s() - speed).abs() < 0.006);
            prop_assert!(pv.heading().angle_to(Heading::from_degrees(hdg)) < 0.06);
        }
    }
}
