//! Contention-Based Forwarding (CBF, EN 302 636-4-1 annex F.3).
//!
//! Inside the destination area a GeoBroadcast packet floods by contention:
//! every receiver buffers the packet and starts a timer inversely
//! proportional to its distance from the previous sender,
//!
//! ```text
//! TO = TO_MIN                                        if DIST > DIST_MAX
//! TO = TO_MAX + (TO_MIN − TO_MAX) · DIST / DIST_MAX  otherwise
//! ```
//!
//! so the farthest receiver re-broadcasts first. A receiver that hears the
//! same packet again before its timer fires concludes a peer already
//! forwarded it, stops the timer and discards its copy.
//!
//! The paper's intra-area blockage attack abuses exactly that discard rule
//! (receivers verify neither the hop count nor the source of a
//! "duplicate"), plus the unprotected RHL. The mitigation — refusing to
//! treat a copy whose RHL dropped by more than a threshold as a duplicate
//! — is implemented here as [`CbfParams::rhl_drop_threshold`].

use crate::security::SecuredPacket;
use crate::types::{GnAddress, SequenceNumber};
use geonet_geo::Position;
use geonet_sim::{SimDuration, SimTime, StateHasher};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a GeoBroadcast packet for duplicate detection: the source
/// address plus the source-assigned sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketKey {
    /// The originating node.
    pub source: GnAddress,
    /// The source-assigned sequence number.
    pub sn: SequenceNumber,
}

impl PacketKey {
    /// The key of any sequence-numbered packet (GeoBroadcast, GeoUnicast
    /// or topologically-scoped broadcast), or `None` for beacons and
    /// single-hop broadcasts, which carry no sequence number.
    #[must_use]
    pub fn of(packet: &SecuredPacket) -> Option<PacketKey> {
        use crate::wire::Extended;
        match &packet.packet.extended {
            Extended::Gbc(g) => Some(PacketKey { source: g.so_pv.addr, sn: g.sn }),
            Extended::Guc(g) => Some(PacketKey { source: g.so_pv.addr, sn: g.sn }),
            Extended::Tsb { sn, so_pv } => Some(PacketKey { source: so_pv.addr, sn: *sn }),
            Extended::Beacon { .. } | Extended::Shb { .. } => None,
        }
    }
}

impl fmt::Display for PacketKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.source, self.sn)
    }
}

/// CBF timing parameters and the optional RHL-drop mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbfParams {
    /// Minimum buffering time (standard default 1 ms).
    pub to_min: SimDuration,
    /// Maximum buffering time (standard default 100 ms).
    pub to_max: SimDuration,
    /// Theoretical maximum communication range of the access technology,
    /// metres.
    pub dist_max: f64,
    /// The paper's mitigation (§V-B): a second copy whose RHL is lower
    /// than the buffered copy's by **more** than this threshold is *not*
    /// accepted as a duplicate. `None` disables the check (the standard's
    /// behaviour).
    pub rhl_drop_threshold: Option<u8>,
}

impl CbfParams {
    /// Standard defaults (TO_MIN 1 ms, TO_MAX 100 ms, no mitigation) with
    /// the given `DIST_MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `dist_max` is not finite and positive.
    #[must_use]
    pub fn default_for_dist_max(dist_max: f64) -> Self {
        assert!(dist_max.is_finite() && dist_max > 0.0, "invalid DIST_MAX: {dist_max}");
        CbfParams {
            to_min: SimDuration::from_millis(1),
            to_max: SimDuration::from_millis(100),
            dist_max,
            rhl_drop_threshold: None,
        }
    }

    /// Returns these parameters with the RHL-drop mitigation enabled at
    /// the given threshold (the paper uses 3).
    #[must_use]
    pub fn with_rhl_drop_threshold(self, threshold: u8) -> Self {
        CbfParams { rhl_drop_threshold: Some(threshold), ..self }
    }

    /// The contention timeout for a receiver `dist` metres from the
    /// previous sender.
    ///
    /// # Panics
    ///
    /// Panics if `dist` is negative or NaN.
    #[must_use]
    pub fn contention_timeout(&self, dist: f64) -> SimDuration {
        assert!(dist.is_finite() && dist >= 0.0, "invalid distance: {dist}");
        if dist > self.dist_max {
            return self.to_min;
        }
        let to_min = self.to_min.as_micros() as f64;
        let to_max = self.to_max.as_micros() as f64;
        let to = to_max + (to_min - to_max) * dist / self.dist_max;
        SimDuration::from_micros(to.round() as u64)
    }
}

/// The outcome of feeding a received GeoBroadcast packet to the CBF
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbfVerdict {
    /// First copy of this packet: deliver the payload to the application.
    /// If `contend` is set, schedule a contention timer for that delay
    /// with the given generation token; on expiry call
    /// [`CbfBuffer::take_expired`]. `contend` is `None` when the RHL is
    /// exhausted (decremented to zero) — receive but do not forward.
    FirstCopy {
        /// Contention timer to schedule, if the packet is forwardable.
        contend: Option<(SimDuration, u64)>,
    },
    /// A duplicate arrived while the packet was buffered: the timer was
    /// stopped and the buffered copy discarded (contention lost).
    DuplicateDiscarded,
    /// A duplicate arrived but the mitigation refused it (RHL drop above
    /// threshold); the buffered copy and its timer stand.
    DuplicateRejectedByMitigation,
    /// The packet was already handled earlier (forwarded or discarded);
    /// ignored.
    AlreadyHandled,
}

/// One buffered packet awaiting its contention timer.
#[derive(Debug, Clone)]
struct Buffered {
    /// The copy to re-broadcast (RHL already decremented).
    packet: SecuredPacket,
    /// Invalidates stale timer events after a discard.
    generation: u64,
    /// RHL of the copy we first received, for the mitigation's drop check.
    first_rhl: u8,
}

/// The per-node CBF state: buffered packets and the set of already-handled
/// packet keys.
///
/// Timers are owned by the caller's event loop: `on_packet` hands out a
/// `(delay, generation)` pair, and when the caller's timer fires it calls
/// [`CbfBuffer::take_expired`] with that generation — a stale generation
/// (the packet was discarded meanwhile) yields `None`. This "generation
/// token" pattern avoids needing cancellable timers in the kernel.
#[derive(Debug, Default)]
pub struct CbfBuffer {
    entries: BTreeMap<PacketKey, Buffered>,
    handled: BTreeMap<PacketKey, SimTime>,
    next_generation: u64,
}

impl CbfBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        CbfBuffer::default()
    }

    /// Number of packets currently buffered (contending).
    #[must_use]
    pub fn buffered_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of packet keys in the already-handled list — a state-depth
    /// gauge for telemetry (grows until purged by
    /// [`CbfBuffer::purge_handled_before`]).
    #[must_use]
    pub fn handled_count(&self) -> usize {
        self.handled.len()
    }

    /// Whether `key` has already been handled (delivered once).
    #[must_use]
    pub fn is_handled(&self, key: PacketKey) -> bool {
        self.handled.contains_key(&key)
    }

    /// Processes a received GeoBroadcast copy.
    ///
    /// `sender_position` is the position of the node the frame was
    /// physically received from (used for the contention timeout);
    /// `own_position` is the receiver's own position.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not a GeoBroadcast packet.
    pub fn on_packet(
        &mut self,
        packet: &SecuredPacket,
        sender_position: Position,
        own_position: Position,
        params: &CbfParams,
        now: SimTime,
    ) -> CbfVerdict {
        let key = PacketKey::of(packet).expect("CBF handles GeoBroadcast packets only");
        if let Some(buffered) = self.entries.get(&key) {
            // Second copy while contending. The standard discards
            // unconditionally; the mitigation first compares RHL values.
            let drop = buffered.first_rhl.saturating_sub(packet.rhl());
            if let Some(threshold) = params.rhl_drop_threshold {
                if drop > threshold {
                    return CbfVerdict::DuplicateRejectedByMitigation;
                }
            }
            self.entries.remove(&key);
            return CbfVerdict::DuplicateDiscarded;
        }
        if self.handled.contains_key(&key) {
            return CbfVerdict::AlreadyHandled;
        }
        // First copy: deliver, and contend unless the hop limit is spent.
        self.handled.insert(key, now);
        let rhl_after = packet.rhl().saturating_sub(1);
        if rhl_after == 0 {
            return CbfVerdict::FirstCopy { contend: None };
        }
        let generation = self.next_generation;
        self.next_generation += 1;
        self.entries.insert(
            key,
            Buffered { packet: packet.with_rhl(rhl_after), generation, first_rhl: packet.rhl() },
        );
        let delay = params.contention_timeout(own_position.distance(sender_position));
        CbfVerdict::FirstCopy { contend: Some((delay, generation)) }
    }

    /// Marks a packet as already handled without buffering it — used by
    /// the source itself, so echoes of its own broadcast are treated as
    /// duplicates of a handled packet rather than fresh receptions.
    pub fn mark_handled(&mut self, key: PacketKey, now: SimTime) {
        self.handled.insert(key, now);
    }

    /// Called when a contention timer fires: returns the packet to
    /// re-broadcast if the entry is still live and the generation matches,
    /// otherwise `None` (the contention was lost meanwhile).
    pub fn take_expired(&mut self, key: PacketKey, generation: u64) -> Option<SecuredPacket> {
        match self.entries.get(&key) {
            Some(b) if b.generation == generation => {
                let b = self.entries.remove(&key).expect("entry just seen");
                Some(b.packet)
            }
            _ => None,
        }
    }

    /// Drops handled-packet records older than `cutoff` (housekeeping for
    /// long runs).
    pub fn purge_handled_before(&mut self, cutoff: SimTime) {
        self.handled.retain(|_, &mut t| t >= cutoff);
    }

    /// Folds the buffer's canonical state — the generation counter, every
    /// contending entry (key, generation, RHL bookkeeping) and the
    /// handled-packet ledger — into an audit digest, in key order.
    pub fn digest_into(&self, h: &mut StateHasher) {
        h.write_u64(self.next_generation);
        h.write_u64(self.entries.len() as u64);
        for (key, b) in &self.entries {
            h.write_u64(key.source.to_u64());
            h.write_u64(u64::from(key.sn.0));
            h.write_u64(b.generation);
            h.write_u8(b.first_rhl);
            h.write_u8(b.packet.rhl());
        }
        h.write_u64(self.handled.len() as u64);
        for (key, t) in &self.handled {
            h.write_u64(key.source.to_u64());
            h.write_u64(u64::from(key.sn.0));
            h.write_u64(t.as_micros());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pv::LongPositionVector;
    use crate::security::CertificateAuthority;
    use crate::types::GnAddress;
    use crate::wire::GnPacket;
    use geonet_geo::{Area, GeoReference, Heading};
    use proptest::prelude::*;

    const NOW: SimTime = SimTime::from_secs(1);

    fn gbc_packet(source: u64, sn: u16, rhl: u8) -> SecuredPacket {
        let r = GeoReference::default();
        let ca = CertificateAuthority::new(7);
        let addr = GnAddress::vehicle(source);
        let creds = ca.enroll(addr);
        let pv = LongPositionVector::from_sim(
            addr,
            NOW,
            Position::new(0.0, 0.0),
            30.0,
            Heading::EAST,
            &r,
        );
        let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0);
        let mut p = GnPacket::geobroadcast(SequenceNumber(sn), pv, &area, &r, vec![1], rhl);
        p.basic.rhl = rhl;
        creds.sign(p)
    }

    fn params() -> CbfParams {
        CbfParams::default_for_dist_max(1_283.0)
    }

    #[test]
    fn timeout_formula_endpoints() {
        let p = params();
        assert_eq!(p.contention_timeout(0.0), SimDuration::from_millis(100));
        assert_eq!(p.contention_timeout(1_283.0), SimDuration::from_millis(1));
        assert_eq!(p.contention_timeout(2_000.0), SimDuration::from_millis(1));
        // Halfway: 100 + (1-100)/2 = 50.5 ms.
        assert_eq!(p.contention_timeout(641.5), SimDuration::from_micros(50_500));
    }

    #[test]
    fn farther_receiver_fires_first() {
        // The paper's Figure 2: V7 (farther) gets a smaller TO than V6.
        let p = params();
        assert!(p.contention_timeout(400.0) < p.contention_timeout(100.0));
    }

    #[test]
    fn first_copy_buffers_and_contends() {
        let mut buf = CbfBuffer::new();
        let pkt = gbc_packet(1, 1, 10);
        let v = buf.on_packet(&pkt, Position::ORIGIN, Position::new(400.0, 0.0), &params(), NOW);
        match v {
            CbfVerdict::FirstCopy { contend: Some((delay, generation)) } => {
                assert_eq!(delay, params().contention_timeout(400.0));
                // Timer fires: the re-broadcast copy has RHL decremented.
                let out = buf.take_expired(PacketKey::of(&pkt).unwrap(), generation).unwrap();
                assert_eq!(out.rhl(), 9);
            }
            other => panic!("expected contention, got {other:?}"),
        }
        assert_eq!(buf.buffered_count(), 0);
    }

    #[test]
    fn rhl_one_delivers_without_forwarding() {
        // The attacker's clamped packets: receivers count as receiving but
        // never contend.
        let mut buf = CbfBuffer::new();
        let pkt = gbc_packet(1, 1, 1);
        let v = buf.on_packet(&pkt, Position::ORIGIN, Position::new(10.0, 0.0), &params(), NOW);
        assert_eq!(v, CbfVerdict::FirstCopy { contend: None });
        assert_eq!(buf.buffered_count(), 0);
        assert!(buf.is_handled(PacketKey::of(&pkt).unwrap()));
    }

    #[test]
    fn duplicate_discards_buffered_copy() {
        let mut buf = CbfBuffer::new();
        let pkt = gbc_packet(1, 1, 10);
        let key = PacketKey::of(&pkt).unwrap();
        let generation = match buf.on_packet(
            &pkt,
            Position::ORIGIN,
            Position::new(100.0, 0.0),
            &params(),
            NOW,
        ) {
            CbfVerdict::FirstCopy { contend: Some((_, g)) } => g,
            other => panic!("{other:?}"),
        };
        // A peer's re-broadcast (RHL 9) arrives before our timer.
        let dup = gbc_packet(1, 1, 9);
        let v = buf.on_packet(
            &dup,
            Position::new(50.0, 0.0),
            Position::new(100.0, 0.0),
            &params(),
            NOW,
        );
        assert_eq!(v, CbfVerdict::DuplicateDiscarded);
        // The late timer finds nothing to send.
        assert!(buf.take_expired(key, generation).is_none());
        // Further copies are ignored.
        let v = buf.on_packet(&dup, Position::ORIGIN, Position::new(100.0, 0.0), &params(), NOW);
        assert_eq!(v, CbfVerdict::AlreadyHandled);
    }

    #[test]
    fn stale_generation_does_not_resurrect() {
        let mut buf = CbfBuffer::new();
        let pkt = gbc_packet(1, 1, 10);
        let key = PacketKey::of(&pkt).unwrap();
        let g1 = match buf.on_packet(
            &pkt,
            Position::ORIGIN,
            Position::new(100.0, 0.0),
            &params(),
            NOW,
        ) {
            CbfVerdict::FirstCopy { contend: Some((_, g)) } => g,
            other => panic!("{other:?}"),
        };
        assert!(buf.take_expired(key, g1 + 1).is_none(), "wrong generation");
        assert!(buf.take_expired(key, g1).is_some(), "right generation still there");
    }

    #[test]
    fn mitigation_rejects_steep_rhl_drop() {
        // Buffered at RHL 10; the attacker's copy arrives with RHL 1 —
        // a drop of 9 > 3. The mitigated node keeps contending.
        let p = params().with_rhl_drop_threshold(3);
        let mut buf = CbfBuffer::new();
        let pkt = gbc_packet(1, 1, 10);
        let key = PacketKey::of(&pkt).unwrap();
        let g = match buf.on_packet(&pkt, Position::ORIGIN, Position::new(100.0, 0.0), &p, NOW) {
            CbfVerdict::FirstCopy { contend: Some((_, g)) } => g,
            other => panic!("{other:?}"),
        };
        let attack_copy = pkt.with_rhl(1);
        let v = buf.on_packet(
            &attack_copy,
            Position::new(20.0, 0.0),
            Position::new(100.0, 0.0),
            &p,
            NOW,
        );
        assert_eq!(v, CbfVerdict::DuplicateRejectedByMitigation);
        // The timer still yields the packet: the attack failed.
        assert!(buf.take_expired(key, g).is_some());
    }

    #[test]
    fn mitigation_accepts_legitimate_duplicates() {
        // A real peer's re-broadcast drops RHL by exactly 1 — accepted.
        let p = params().with_rhl_drop_threshold(3);
        let mut buf = CbfBuffer::new();
        let pkt = gbc_packet(1, 1, 10);
        buf.on_packet(&pkt, Position::ORIGIN, Position::new(100.0, 0.0), &p, NOW);
        let dup = gbc_packet(1, 1, 9);
        let v = buf.on_packet(&dup, Position::new(400.0, 0.0), Position::new(100.0, 0.0), &p, NOW);
        assert_eq!(v, CbfVerdict::DuplicateDiscarded);
    }

    #[test]
    fn distinct_packets_contend_independently() {
        let mut buf = CbfBuffer::new();
        let a = gbc_packet(1, 1, 10);
        let b = gbc_packet(1, 2, 10); // same source, next SN
        let c = gbc_packet(2, 1, 10); // different source, same SN
        for pkt in [&a, &b, &c] {
            let v = buf.on_packet(pkt, Position::ORIGIN, Position::new(100.0, 0.0), &params(), NOW);
            assert!(matches!(v, CbfVerdict::FirstCopy { contend: Some(_) }), "{v:?}");
        }
        assert_eq!(buf.buffered_count(), 3);
    }

    #[test]
    fn purge_handled_forgets_old_keys() {
        let mut buf = CbfBuffer::new();
        let pkt = gbc_packet(1, 1, 1);
        buf.on_packet(&pkt, Position::ORIGIN, Position::new(10.0, 0.0), &params(), NOW);
        let key = PacketKey::of(&pkt).unwrap();
        assert!(buf.is_handled(key));
        buf.purge_handled_before(NOW + SimDuration::from_secs(60));
        assert!(!buf.is_handled(key));
    }

    #[test]
    fn packet_key_display() {
        let k = PacketKey { source: GnAddress::vehicle(3), sn: SequenceNumber(7) };
        assert!(k.to_string().contains("sn7"));
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn timeout_rejects_negative_distance() {
        let _ = params().contention_timeout(-1.0);
    }

    proptest! {
        #[test]
        fn prop_timeout_bounded_and_monotone(d1 in 0.0f64..3_000.0, d2 in 0.0f64..3_000.0) {
            let p = params();
            let t1 = p.contention_timeout(d1);
            let t2 = p.contention_timeout(d2);
            prop_assert!(t1 >= p.to_min && t1 <= p.to_max);
            // Monotone non-increasing in distance.
            if d1 <= d2 {
                prop_assert!(t1 >= t2);
            } else {
                prop_assert!(t2 >= t1);
            }
        }

        #[test]
        fn prop_first_copy_exactly_once(copies in 2u8..10) {
            // However many copies arrive, only the first is a FirstCopy.
            let mut buf = CbfBuffer::new();
            let pkt = gbc_packet(1, 1, 10);
            let mut firsts = 0;
            for i in 0..copies {
                let v = buf.on_packet(
                    &pkt.with_rhl(10 - (i % 3)),
                    Position::ORIGIN,
                    Position::new(100.0, 0.0),
                    &params(),
                    NOW,
                );
                if matches!(v, CbfVerdict::FirstCopy { .. }) {
                    firsts += 1;
                }
            }
            prop_assert_eq!(firsts, 1);
        }
    }
}
