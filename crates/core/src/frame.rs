//! Link-layer frames.

use crate::security::SecuredPacket;
use crate::types::GnAddress;
use geonet_geo::Position;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A link-layer frame as it travels on the air.
///
/// The link layer is **unauthenticated** (only the GeoNetworking payload is
/// signed), so the source field is just a claim — an attacker can use any
/// pseudonymous source address, as the paper's threat model allows for
/// privacy reasons.
///
/// `sender_position` models what a receiver learns about the transmitter
/// from the access layer and its location table: CBF uses it to compute
/// the contention timeout relative to the previous hop. For legitimate
/// nodes it is the transmitter's true position at transmission time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Claimed link-layer source.
    pub src: GnAddress,
    /// Link-layer destination: `Some` for unicast (GF forwarding),
    /// `None` for broadcast (beacons, CBF).
    pub dst: Option<GnAddress>,
    /// Transmitter position at transmission time.
    pub sender_position: Position,
    /// The secured GeoNetworking packet.
    pub msg: SecuredPacket,
}

impl Frame {
    /// Creates a broadcast frame.
    #[must_use]
    pub fn broadcast(src: GnAddress, sender_position: Position, msg: SecuredPacket) -> Self {
        Frame { src, dst: None, sender_position, msg }
    }

    /// Creates a unicast frame to `dst`.
    #[must_use]
    pub fn unicast(
        src: GnAddress,
        dst: GnAddress,
        sender_position: Position,
        msg: SecuredPacket,
    ) -> Self {
        Frame { src, dst: Some(dst), sender_position, msg }
    }

    /// Whether this frame should be processed by `addr`'s network layer:
    /// broadcasts by everyone, unicasts by the addressee only.
    ///
    /// A promiscuous sniffer (the attacker) ignores this filter.
    #[must_use]
    pub fn addressed_to(&self, addr: GnAddress) -> bool {
        match self.dst {
            None => true,
            Some(d) => d == addr,
        }
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dst {
            None => write!(f, "frame[{} → *]", self.src),
            Some(d) => write!(f, "frame[{} → {}]", self.src, d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pv::LongPositionVector;
    use crate::security::CertificateAuthority;
    use crate::wire::GnPacket;
    use geonet_geo::{GeoReference, Heading};
    use geonet_sim::SimTime;

    fn beacon_msg(addr: GnAddress) -> SecuredPacket {
        let ca = CertificateAuthority::new(1);
        let creds = ca.enroll(addr);
        let pv = LongPositionVector::from_sim(
            addr,
            SimTime::ZERO,
            Position::ORIGIN,
            0.0,
            Heading::NORTH,
            &GeoReference::default(),
        );
        creds.sign(GnPacket::beacon(pv))
    }

    #[test]
    fn broadcast_addressed_to_everyone() {
        let a = GnAddress::vehicle(1);
        let f = Frame::broadcast(a, Position::ORIGIN, beacon_msg(a));
        assert!(f.addressed_to(GnAddress::vehicle(2)));
        assert!(f.addressed_to(a));
        assert!(f.to_string().contains("→ *"));
    }

    #[test]
    fn unicast_addressed_to_destination_only() {
        let a = GnAddress::vehicle(1);
        let b = GnAddress::vehicle(2);
        let f = Frame::unicast(a, b, Position::ORIGIN, beacon_msg(a));
        assert!(f.addressed_to(b));
        assert!(!f.addressed_to(a));
        assert!(!f.addressed_to(GnAddress::vehicle(3)));
        assert!(f.to_string().contains("vehicle"));
    }
}
