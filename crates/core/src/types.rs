//! GeoNetworking primitive types (EN 302 636-4-1 §6 and §8).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of ITS station, carried in the GeoNetworking address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StationType {
    /// A passenger car or truck.
    Vehicle,
    /// A fixed roadside unit (the paper's R1).
    RoadsideUnit,
}

impl StationType {
    fn code(self) -> u8 {
        match self {
            StationType::Vehicle => 0,
            StationType::RoadsideUnit => 1,
        }
    }

    fn from_code(code: u8) -> Self {
        if code == 1 {
            StationType::RoadsideUnit
        } else {
            StationType::Vehicle
        }
    }
}

impl fmt::Display for StationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StationType::Vehicle => f.write_str("vehicle"),
            StationType::RoadsideUnit => f.write_str("RSU"),
        }
    }
}

/// A GeoNetworking address: station type plus a 48-bit link-layer
/// identifier (EN 302 636-4-1 §6.3, simplified: the country-code field is
/// folded into the identifier).
///
/// Vehicles may use pseudonymous identifiers for privacy; the address is
/// still what the location table is keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GnAddress {
    station_type: StationType,
    mid: u64,
}

impl GnAddress {
    /// Creates an address from a station type and a 48-bit identifier.
    ///
    /// # Panics
    ///
    /// Panics if `mid` does not fit in 48 bits.
    #[must_use]
    pub const fn new(station_type: StationType, mid: u64) -> Self {
        assert!(mid < (1 << 48), "link-layer id must fit in 48 bits");
        GnAddress { station_type, mid }
    }

    /// A vehicle address with the given identifier.
    #[must_use]
    pub const fn vehicle(mid: u64) -> Self {
        GnAddress::new(StationType::Vehicle, mid)
    }

    /// A roadside-unit address with the given identifier.
    #[must_use]
    pub const fn roadside(mid: u64) -> Self {
        GnAddress::new(StationType::RoadsideUnit, mid)
    }

    /// The station type.
    #[must_use]
    pub fn station_type(self) -> StationType {
        self.station_type
    }

    /// The 48-bit link-layer identifier.
    #[must_use]
    pub fn mid(self) -> u64 {
        self.mid
    }

    /// Packs the address into its 8-byte wire form.
    #[must_use]
    pub fn to_u64(self) -> u64 {
        (u64::from(self.station_type.code()) << 48) | self.mid
    }

    /// Unpacks an address from its 8-byte wire form.
    #[must_use]
    pub fn from_u64(raw: u64) -> Self {
        GnAddress {
            station_type: StationType::from_code(((raw >> 48) & 0xFF) as u8),
            mid: raw & 0xFFFF_FFFF_FFFF,
        }
    }
}

impl fmt::Display for GnAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:012x}", self.station_type, self.mid)
    }
}

/// A GeoNetworking timestamp: milliseconds modulo 2³², as carried in
/// position vectors (EN 302 636-4-1 §8.5.3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u32);

impl Timestamp {
    /// Builds a wire timestamp from simulation time.
    #[must_use]
    pub fn from_sim(t: geonet_sim::SimTime) -> Self {
        Timestamp((t.as_millis() & 0xFFFF_FFFF) as u32)
    }

    /// The raw millisecond value.
    #[must_use]
    pub fn millis(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A GeoBroadcast sequence number (16 bits, wrapping). Together with the
/// source address it identifies a packet for duplicate detection.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SequenceNumber(pub u16);

impl SequenceNumber {
    /// The next sequence number, wrapping at 2¹⁶.
    #[must_use]
    pub fn next(self) -> SequenceNumber {
        SequenceNumber(self.0.wrapping_add(1))
    }
}

impl fmt::Display for SequenceNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sn{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn address_round_trip() {
        let a = GnAddress::vehicle(0xABCDEF012345);
        assert_eq!(GnAddress::from_u64(a.to_u64()), a);
        let r = GnAddress::roadside(7);
        assert_eq!(GnAddress::from_u64(r.to_u64()), r);
        assert_ne!(a.to_u64(), GnAddress::roadside(0xABCDEF012345).to_u64());
    }

    #[test]
    fn address_accessors() {
        let a = GnAddress::vehicle(42);
        assert_eq!(a.station_type(), StationType::Vehicle);
        assert_eq!(a.mid(), 42);
        assert_eq!(a.to_string(), "vehicle:00000000002a");
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn address_rejects_wide_mid() {
        let _ = GnAddress::vehicle(1 << 48);
    }

    #[test]
    fn timestamp_from_sim_wraps() {
        use geonet_sim::SimTime;
        assert_eq!(Timestamp::from_sim(SimTime::from_millis(1_234)).millis(), 1_234);
        let big = SimTime::from_millis((1u64 << 32) + 5);
        assert_eq!(Timestamp::from_sim(big).millis(), 5);
    }

    #[test]
    fn sequence_number_wraps() {
        assert_eq!(SequenceNumber(0).next(), SequenceNumber(1));
        assert_eq!(SequenceNumber(u16::MAX).next(), SequenceNumber(0));
    }

    #[test]
    fn displays() {
        assert_eq!(Timestamp(5).to_string(), "5ms");
        assert_eq!(SequenceNumber(9).to_string(), "sn9");
        assert_eq!(StationType::RoadsideUnit.to_string(), "RSU");
    }

    proptest! {
        #[test]
        fn prop_address_round_trip(mid in 0u64..(1u64 << 48), rsu in any::<bool>()) {
            let a = if rsu { GnAddress::roadside(mid) } else { GnAddress::vehicle(mid) };
            prop_assert_eq!(GnAddress::from_u64(a.to_u64()), a);
        }
    }
}
