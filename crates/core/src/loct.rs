//! The location table (LocT, EN 302 636-4-1 §8.1).
//!
//! Every node stores the position vectors advertised by its neighbours,
//! keyed by GeoNetworking address, with a per-entry time-to-live (default
//! 20 s). Greedy forwarding ranks the live entries by distance to the
//! destination.
//!
//! The paper's second GF vulnerability lives here: entries are updated
//! from any authenticated beacon **without a distance-plausibility
//! check**, so a beacon replayed by a roadside attacker plants an
//! unreachable "neighbour" whose authentic position may be closer to the
//! destination than any real neighbour.

use crate::pv::LongPositionVector;
use crate::types::GnAddress;
use geonet_geo::Position;
use geonet_sim::{SimDuration, SimTime, StateHasher};
use std::collections::BTreeMap;
use std::fmt;

/// One location-table entry: the neighbour's last position vector, its
/// projected planar position, and when the entry expires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocTEntry {
    /// The advertised position vector.
    pub pv: LongPositionVector,
    /// The advertised position projected onto the simulation plane.
    pub position: Position,
    /// When the entry stops being valid (insertion time + TTL).
    pub expires: SimTime,
}

/// The location table of one node.
///
/// Backed by a `BTreeMap` so iteration order — and therefore greedy
/// forwarding's tie-breaking — is deterministic.
///
/// # Example
///
/// ```
/// use geonet::loct::LocationTable;
/// use geonet_sim::{SimDuration, SimTime};
///
/// let mut loct = LocationTable::new(SimDuration::from_secs(20));
/// assert_eq!(loct.live_count(SimTime::ZERO), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LocationTable {
    ttl: SimDuration,
    entries: BTreeMap<GnAddress, LocTEntry>,
}

impl LocationTable {
    /// Creates an empty table whose entries live for `ttl` (paper default:
    /// 20 s; swept down to 10 s and 5 s in Figure 7c).
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is zero.
    #[must_use]
    pub fn new(ttl: SimDuration) -> Self {
        assert!(ttl > SimDuration::ZERO, "LocT TTL must be positive");
        LocationTable { ttl, entries: BTreeMap::new() }
    }

    /// The configured TTL.
    #[must_use]
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Inserts or refreshes the entry for `pv.addr` at time `now`.
    ///
    /// Mirrors the standard: if the address is present the position vector
    /// is replaced, otherwise a new entry is created; either way the
    /// expiry is pushed out to `now + TTL`. No plausibility check is
    /// performed — see the module docs.
    pub fn update(&mut self, pv: LongPositionVector, position: Position, now: SimTime) {
        self.entries.insert(pv.addr, LocTEntry { pv, position, expires: now + self.ttl });
    }

    /// The live (unexpired) entry for `addr`, if any.
    #[must_use]
    pub fn get(&self, addr: GnAddress, now: SimTime) -> Option<&LocTEntry> {
        self.entries.get(&addr).filter(|e| e.expires > now)
    }

    /// Iterates over the live entries in address order.
    pub fn live_entries(&self, now: SimTime) -> impl Iterator<Item = (&GnAddress, &LocTEntry)> {
        self.entries.iter().filter(move |(_, e)| e.expires > now)
    }

    /// Number of live entries.
    #[must_use]
    pub fn live_count(&self, now: SimTime) -> usize {
        self.live_entries(now).count()
    }

    /// Drops expired entries (housekeeping; correctness never depends on
    /// calling this, since all reads filter by expiry).
    pub fn purge(&mut self, now: SimTime) {
        self.entries.retain(|_, e| e.expires > now);
    }

    /// Removes the entry for `addr` regardless of expiry.
    pub fn remove(&mut self, addr: GnAddress) {
        self.entries.remove(&addr);
    }

    /// Total number of stored entries including expired ones awaiting
    /// purge.
    #[must_use]
    pub fn stored_count(&self) -> usize {
        self.entries.len()
    }

    /// Folds the table's canonical state — TTL, then every stored entry's
    /// address, position vector, projected position and expiry, in address
    /// order — into an audit digest.
    pub fn digest_into(&self, h: &mut StateHasher) {
        h.write_u64(self.ttl.as_micros());
        h.write_u64(self.entries.len() as u64);
        for (addr, e) in &self.entries {
            h.write_u64(addr.to_u64());
            h.write_u64(u64::from(e.pv.timestamp.0));
            h.write_u64(e.pv.coord.lat as u64);
            h.write_u64(e.pv.coord.lon as u64);
            h.write_bool(e.pv.pai);
            h.write_u64(e.pv.speed_cm_s as u64);
            h.write_u64(u64::from(e.pv.heading_decideg));
            h.write_f64(e.position.x);
            h.write_f64(e.position.y);
            h.write_u64(e.expires.as_micros());
        }
    }
}

impl fmt::Display for LocationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LocT[{} entries, ttl {}]", self.entries.len(), self.ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet_geo::{GeoReference, Heading};
    use proptest::prelude::*;

    fn pv_at(addr: u64, x: f64, now: SimTime) -> (LongPositionVector, Position) {
        let r = GeoReference::default();
        let pos = Position::new(x, 2.5);
        let pv = LongPositionVector::from_sim(
            GnAddress::vehicle(addr),
            now,
            pos,
            30.0,
            Heading::EAST,
            &r,
        );
        (pv, pos)
    }

    #[test]
    fn update_and_get() {
        let mut t = LocationTable::new(SimDuration::from_secs(20));
        let now = SimTime::from_secs(1);
        let (pv, pos) = pv_at(1, 100.0, now);
        t.update(pv, pos, now);
        let e = t.get(GnAddress::vehicle(1), now).unwrap();
        assert_eq!(e.position, pos);
        assert_eq!(e.expires, now + SimDuration::from_secs(20));
    }

    #[test]
    fn entries_expire_at_ttl() {
        let mut t = LocationTable::new(SimDuration::from_secs(20));
        let (pv, pos) = pv_at(1, 100.0, SimTime::ZERO);
        t.update(pv, pos, SimTime::ZERO);
        assert!(t.get(GnAddress::vehicle(1), SimTime::from_secs(19)).is_some());
        // Expiry boundary: exactly at TTL the entry is gone.
        assert!(t.get(GnAddress::vehicle(1), SimTime::from_secs(20)).is_none());
        assert_eq!(t.live_count(SimTime::from_secs(20)), 0);
        assert_eq!(t.stored_count(), 1, "not yet purged");
        t.purge(SimTime::from_secs(20));
        assert_eq!(t.stored_count(), 0);
    }

    #[test]
    fn refresh_extends_expiry() {
        let mut t = LocationTable::new(SimDuration::from_secs(5));
        let (pv, pos) = pv_at(1, 100.0, SimTime::ZERO);
        t.update(pv, pos, SimTime::ZERO);
        let (pv2, pos2) = pv_at(1, 200.0, SimTime::from_secs(3));
        t.update(pv2, pos2, SimTime::from_secs(3));
        let e = t.get(GnAddress::vehicle(1), SimTime::from_secs(7)).unwrap();
        assert_eq!(e.position.x, 200.0, "newer PV replaces older");
        assert_eq!(e.expires, SimTime::from_secs(8));
    }

    #[test]
    fn live_entries_sorted_by_address() {
        let mut t = LocationTable::new(SimDuration::from_secs(20));
        let now = SimTime::ZERO;
        for addr in [5u64, 1, 3] {
            let (pv, pos) = pv_at(addr, addr as f64 * 10.0, now);
            t.update(pv, pos, now);
        }
        let addrs: Vec<u64> = t.live_entries(now).map(|(a, _)| a.mid()).collect();
        assert_eq!(addrs, vec![1, 3, 5]);
    }

    #[test]
    fn remove_drops_entry() {
        let mut t = LocationTable::new(SimDuration::from_secs(20));
        let (pv, pos) = pv_at(1, 0.0, SimTime::ZERO);
        t.update(pv, pos, SimTime::ZERO);
        t.remove(GnAddress::vehicle(1));
        assert!(t.get(GnAddress::vehicle(1), SimTime::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "TTL must be positive")]
    fn zero_ttl_rejected() {
        let _ = LocationTable::new(SimDuration::ZERO);
    }

    #[test]
    fn display_shows_count() {
        let t = LocationTable::new(SimDuration::from_secs(20));
        assert!(t.to_string().contains("0 entries"));
    }

    proptest! {
        #[test]
        fn prop_never_returns_expired(updates in prop::collection::vec((0u64..20, 0u64..100), 1..50),
                                      query in 0u64..150) {
            // TTL invariant: get/live_entries never yield an entry older
            // than TTL, regardless of the update pattern.
            let ttl = SimDuration::from_secs(10);
            let mut t = LocationTable::new(ttl);
            let mut sorted = updates.clone();
            sorted.sort_by_key(|&(_, s)| s);
            let mut last_update: std::collections::BTreeMap<u64, u64> = Default::default();
            for (addr, secs) in &sorted {
                let now = SimTime::from_secs(*secs);
                let (pv, pos) = pv_at(*addr, *secs as f64, now);
                t.update(pv, pos, now);
                last_update.insert(*addr, *secs);
            }
            let q = SimTime::from_secs(query);
            for (addr, entry) in t.live_entries(q) {
                prop_assert!(entry.expires > q);
                let upd = last_update[&addr.mid()];
                prop_assert!(query < upd + 10, "entry {addr} older than TTL");
            }
        }
    }
}
