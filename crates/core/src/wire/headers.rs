//! The basic and common headers.

use super::WireError;
use bytes::BufMut;
use serde::{Deserialize, Serialize};

/// What follows the basic header (EN 302 636-4-1 table 15, simplified to
/// the unsecured/secured distinction the simulation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NextAfterBasic {
    /// A plain common header follows.
    CommonHeader,
    /// A secured packet (security envelope wrapping the common header).
    SecuredPacket,
}

impl NextAfterBasic {
    fn code(self) -> u8 {
        match self {
            NextAfterBasic::CommonHeader => 1,
            NextAfterBasic::SecuredPacket => 2,
        }
    }

    fn from_code(c: u8) -> Result<Self, WireError> {
        match c {
            1 => Ok(NextAfterBasic::CommonHeader),
            2 => Ok(NextAfterBasic::SecuredPacket),
            other => Err(WireError::BadNextHeader(other)),
        }
    }
}

/// The basic header (4 bytes): version, next header, lifetime and the
/// **remaining hop limit** (RHL).
///
/// RHL is decremented by each forwarder and is therefore *outside* the
/// integrity envelope — the paper's third CBF vulnerability ("RHL is not
/// integrity protected") is a direct consequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BasicHeader {
    /// Protocol version; this implementation speaks version 1 (the 2020
    /// EN 302 636-4-1 release analysed by the paper).
    pub version: u8,
    /// What follows this header.
    pub next_header: NextAfterBasic,
    /// Packet lifetime in the standard's base-and-multiplier encoding
    /// (kept as the raw byte; the simulation does not expire packets by
    /// lifetime).
    pub lifetime: u8,
    /// Remaining hop limit: decremented per hop; the packet is not
    /// forwarded once it reaches zero.
    pub rhl: u8,
}

/// Wire size of the basic header.
pub(crate) const BASIC_LEN: usize = 4;

impl BasicHeader {
    /// The protocol version this stack implements.
    pub const VERSION: u8 = 1;

    /// Creates a version-1 basic header with the given RHL.
    #[must_use]
    pub fn new(next_header: NextAfterBasic, rhl: u8) -> Self {
        BasicHeader { version: Self::VERSION, next_header, lifetime: 0x4A, rhl }
    }

    /// Encodes into `out` (4 bytes).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u8((self.version << 4) | self.next_header.code());
        out.put_u8(0); // reserved
        out.put_u8(self.lifetime);
        out.put_u8(self.rhl);
    }

    /// Decodes from the front of `buf`, returning the header and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is short, the version is not 1
    /// or the next-header value is unknown.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        super::need(buf, 0, BASIC_LEN)?;
        let version = buf[0] >> 4;
        if version != Self::VERSION {
            return Err(WireError::BadVersion(version));
        }
        let next_header = NextAfterBasic::from_code(buf[0] & 0x0F)?;
        Ok((BasicHeader { version, next_header, lifetime: buf[2], rhl: buf[3] }, BASIC_LEN))
    }
}

/// The GeoNetworking packet kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeaderKind {
    /// A one-hop beacon advertising the source position vector.
    Beacon,
    /// GeoUnicast to a single destination position.
    GeoUnicast,
    /// GeoBroadcast into a circular destination area.
    GeoBroadcastCircle,
    /// GeoBroadcast into a rectangular destination area.
    GeoBroadcastRect,
    /// GeoBroadcast into an elliptical destination area.
    GeoBroadcastEllipse,
    /// Topologically-scoped broadcast: flood to all nodes within the hop
    /// limit, regardless of position.
    TopoBroadcast,
    /// Single-hop broadcast (used by CAM-style messaging).
    SingleHopBroadcast,
}

impl HeaderKind {
    /// `(header type, header subtype)` per EN 302 636-4-1 table 4.
    #[must_use]
    pub fn type_subtype(self) -> (u8, u8) {
        match self {
            HeaderKind::Beacon => (1, 0),
            HeaderKind::GeoUnicast => (2, 0),
            HeaderKind::GeoBroadcastCircle => (4, 0),
            HeaderKind::GeoBroadcastRect => (4, 1),
            HeaderKind::GeoBroadcastEllipse => (4, 2),
            HeaderKind::TopoBroadcast => (5, 0),
            HeaderKind::SingleHopBroadcast => (5, 1),
        }
    }

    fn from_type_subtype(ht: u8, hst: u8) -> Result<Self, WireError> {
        match (ht, hst) {
            (1, 0) => Ok(HeaderKind::Beacon),
            (2, 0) => Ok(HeaderKind::GeoUnicast),
            (4, 0) => Ok(HeaderKind::GeoBroadcastCircle),
            (4, 1) => Ok(HeaderKind::GeoBroadcastRect),
            (4, 2) => Ok(HeaderKind::GeoBroadcastEllipse),
            (5, 0) => Ok(HeaderKind::TopoBroadcast),
            (5, 1) => Ok(HeaderKind::SingleHopBroadcast),
            (t, s) => Err(WireError::BadHeaderType(t, s)),
        }
    }

    /// Whether this is any GeoBroadcast variant.
    #[must_use]
    pub fn is_geobroadcast(self) -> bool {
        matches!(
            self,
            HeaderKind::GeoBroadcastCircle
                | HeaderKind::GeoBroadcastRect
                | HeaderKind::GeoBroadcastEllipse
        )
    }
}

/// The common header (8 bytes): packet kind, traffic class, payload length
/// and maximum hop limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommonHeader {
    /// Packet kind (header type + subtype).
    pub kind: HeaderKind,
    /// Traffic class byte (DCC profile; carried verbatim).
    pub traffic_class: u8,
    /// Flags byte (bit 7: station is mobile).
    pub flags: u8,
    /// Length of the payload that follows the extended header.
    pub payload_length: u16,
    /// Maximum hop limit the packet was created with.
    pub max_hop_limit: u8,
}

/// Wire size of the common header.
pub(crate) const COMMON_LEN: usize = 8;

impl CommonHeader {
    /// Creates a common header for `kind` with the given payload length
    /// and maximum hop limit; mobile flag set (vehicles).
    #[must_use]
    pub fn new(kind: HeaderKind, payload_length: u16, max_hop_limit: u8) -> Self {
        CommonHeader { kind, traffic_class: 0, flags: 0x80, payload_length, max_hop_limit }
    }

    /// Encodes into `out` (8 bytes).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let (ht, hst) = self.kind.type_subtype();
        out.put_u8(0x10); // next header: "any" transport, reserved nibble
        out.put_u8((ht << 4) | hst);
        out.put_u8(self.traffic_class);
        out.put_u8(self.flags);
        out.put_u16(self.payload_length);
        out.put_u8(self.max_hop_limit);
        out.put_u8(0); // reserved
    }

    /// Decodes from the front of `buf`, returning the header and bytes
    /// consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is short or the header
    /// type/subtype is unknown.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        super::need(buf, 0, COMMON_LEN)?;
        let kind = HeaderKind::from_type_subtype(buf[1] >> 4, buf[1] & 0x0F)?;
        Ok((
            CommonHeader {
                kind,
                traffic_class: buf[2],
                flags: buf[3],
                payload_length: u16::from_be_bytes([buf[4], buf[5]]),
                max_hop_limit: buf[6],
            },
            COMMON_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_header_round_trip() {
        let h = BasicHeader::new(NextAfterBasic::SecuredPacket, 10);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), BASIC_LEN);
        let (back, used) = BasicHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, BASIC_LEN);
    }

    #[test]
    fn basic_header_rejects_bad_version() {
        let mut buf = Vec::new();
        BasicHeader::new(NextAfterBasic::CommonHeader, 5).encode(&mut buf);
        buf[0] = (3 << 4) | 1; // version 3
        assert_eq!(BasicHeader::decode(&buf), Err(WireError::BadVersion(3)));
    }

    #[test]
    fn basic_header_rejects_bad_next_header() {
        let mut buf = Vec::new();
        BasicHeader::new(NextAfterBasic::CommonHeader, 5).encode(&mut buf);
        buf[0] = (1 << 4) | 0xF;
        assert_eq!(BasicHeader::decode(&buf), Err(WireError::BadNextHeader(0xF)));
    }

    #[test]
    fn basic_header_truncated() {
        assert!(matches!(BasicHeader::decode(&[0x11, 0, 0]), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn rhl_survives_round_trip_at_all_values() {
        for rhl in [0u8, 1, 3, 10, 255] {
            let h = BasicHeader::new(NextAfterBasic::SecuredPacket, rhl);
            let mut buf = Vec::new();
            h.encode(&mut buf);
            assert_eq!(BasicHeader::decode(&buf).unwrap().0.rhl, rhl);
        }
    }

    #[test]
    fn common_header_round_trip_all_kinds() {
        for kind in [
            HeaderKind::Beacon,
            HeaderKind::GeoUnicast,
            HeaderKind::GeoBroadcastCircle,
            HeaderKind::GeoBroadcastRect,
            HeaderKind::GeoBroadcastEllipse,
            HeaderKind::TopoBroadcast,
            HeaderKind::SingleHopBroadcast,
        ] {
            let h = CommonHeader::new(kind, 1_234, 10);
            let mut buf = Vec::new();
            h.encode(&mut buf);
            assert_eq!(buf.len(), COMMON_LEN);
            let (back, used) = CommonHeader::decode(&buf).unwrap();
            assert_eq!(back, h);
            assert_eq!(used, COMMON_LEN);
        }
    }

    #[test]
    fn common_header_rejects_unknown_kind() {
        let mut buf = Vec::new();
        CommonHeader::new(HeaderKind::Beacon, 0, 1).encode(&mut buf);
        buf[1] = (9 << 4) | 9;
        assert_eq!(CommonHeader::decode(&buf), Err(WireError::BadHeaderType(9, 9)));
    }

    #[test]
    fn header_kind_properties() {
        assert!(!HeaderKind::Beacon.is_geobroadcast());
        assert!(!HeaderKind::GeoUnicast.is_geobroadcast());
        assert!(!HeaderKind::TopoBroadcast.is_geobroadcast());
        assert!(!HeaderKind::SingleHopBroadcast.is_geobroadcast());
        assert!(HeaderKind::GeoBroadcastRect.is_geobroadcast());
        assert_eq!(HeaderKind::GeoBroadcastCircle.type_subtype(), (4, 0));
        assert_eq!(HeaderKind::GeoUnicast.type_subtype(), (2, 0));
        assert_eq!(HeaderKind::SingleHopBroadcast.type_subtype(), (5, 1));
    }
}
