//! Binary wire formats (EN 302 636-4-1 §9).
//!
//! GeoNetworking packets are a chain of headers: a *basic header* (version,
//! lifetime and the mutable remaining-hop-limit), a *common header*
//! (header type, traffic class, payload length, maximum hop limit) and an
//! *extended header* that depends on the packet type — the source's long
//! position vector for beacons, plus sequence number and destination area
//! for GeoBroadcast.
//!
//! Encoding is big-endian throughout, as on the wire. The split between
//! the basic header and the rest matters for security: the standard's
//! integrity protection covers everything **except** the basic header's
//! RHL field, which forwarders must be able to decrement without
//! re-signing. [`GnPacket::encode_protected`] reflects that by zeroing the
//! RHL before producing the byte string that signatures cover.

mod headers;
mod packet;

pub use headers::{BasicHeader, CommonHeader, HeaderKind, NextAfterBasic};
pub use packet::{Extended, GbcHeader, GnPacket, GucHeader, ShortPositionVector, WireArea};

use std::fmt;

/// Errors produced when decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were available.
        got: usize,
    },
    /// Unsupported GeoNetworking protocol version.
    BadVersion(u8),
    /// Unknown header-type / subtype combination.
    BadHeaderType(u8, u8),
    /// Unknown next-header value after the basic header.
    BadNextHeader(u8),
    /// The common header's payload length disagrees with the bytes present.
    PayloadLengthMismatch {
        /// Length declared in the common header.
        declared: usize,
        /// Payload bytes actually present.
        present: usize,
    },
    /// A field held a value outside its legal range.
    BadFieldValue(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported GeoNetworking version {v}"),
            WireError::BadHeaderType(t, s) => write!(f, "unknown header type {t}.{s}"),
            WireError::BadNextHeader(n) => write!(f, "unknown next-header value {n}"),
            WireError::PayloadLengthMismatch { declared, present } => {
                write!(f, "payload length {declared} declared but {present} bytes present")
            }
            WireError::BadFieldValue(field) => write!(f, "field {field} out of range"),
        }
    }
}

impl std::error::Error for WireError {}

/// Checks that `buf` has at least `needed` more bytes from `offset`.
pub(crate) fn need(buf: &[u8], offset: usize, needed: usize) -> Result<(), WireError> {
    if buf.len() < offset + needed {
        Err(WireError::Truncated { needed: offset + needed, got: buf.len() })
    } else {
        Ok(())
    }
}
