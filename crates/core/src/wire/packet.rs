//! The extended headers and the assembled GeoNetworking packet.

use super::headers::{BASIC_LEN, COMMON_LEN};
use super::{BasicHeader, CommonHeader, HeaderKind, NextAfterBasic, WireError};
use crate::pv::LongPositionVector;
use crate::types::{GnAddress, SequenceNumber, Timestamp};
use bytes::BufMut;
use geonet_geo::{Area, AreaShape, GeoCoord, GeoReference};
use serde::{Deserialize, Serialize};

/// Wire size of a long position vector.
const LPV_LEN: usize = 24;

/// Encodes a long position vector (24 bytes).
fn encode_lpv(pv: &LongPositionVector, out: &mut Vec<u8>) {
    out.put_u64(pv.addr.to_u64());
    out.put_u32(pv.timestamp.0);
    out.put_i32(pv.coord.lat);
    out.put_i32(pv.coord.lon);
    // PAI (1 bit) + speed (15-bit two's complement, 0.01 m/s).
    let speed15 = pv.speed_cm_s.clamp(-16_384, 16_383);
    let packed = (u16::from(pv.pai) << 15) | ((speed15 as u16) & 0x7FFF);
    out.put_u16(packed);
    out.put_u16(pv.heading_decideg);
}

/// Decodes a long position vector from `buf[offset..]`.
fn decode_lpv(buf: &[u8], offset: usize) -> Result<LongPositionVector, WireError> {
    super::need(buf, offset, LPV_LEN)?;
    let b = &buf[offset..];
    let addr = GnAddress::from_u64(u64::from_be_bytes(b[0..8].try_into().expect("8 bytes")));
    let timestamp = Timestamp(u32::from_be_bytes(b[8..12].try_into().expect("4 bytes")));
    let lat = i32::from_be_bytes(b[12..16].try_into().expect("4 bytes"));
    let lon = i32::from_be_bytes(b[16..20].try_into().expect("4 bytes"));
    let packed = u16::from_be_bytes(b[20..22].try_into().expect("2 bytes"));
    let pai = packed >> 15 == 1;
    // Sign-extend the 15-bit speed.
    let raw15 = packed & 0x7FFF;
    let speed_cm_s = if raw15 & 0x4000 != 0 { (raw15 | 0x8000) as i16 } else { raw15 as i16 };
    let heading_decideg = u16::from_be_bytes(b[22..24].try_into().expect("2 bytes"));
    Ok(LongPositionVector {
        addr,
        timestamp,
        coord: GeoCoord { lat, lon },
        pai,
        speed_cm_s,
        heading_decideg,
    })
}

/// A short position vector: identity, timestamp and position only
/// (EN 302 636-4-1 §9.5.2), 20 bytes. Carried as the destination position
/// of GeoUnicast packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShortPositionVector {
    /// The node's address.
    pub addr: GnAddress,
    /// Time the position was acquired (ms mod 2³²).
    pub timestamp: Timestamp,
    /// WGS-84 position in wire units.
    pub coord: GeoCoord,
}

/// Wire size of a short position vector.
const SPV_LEN: usize = 20;

impl ShortPositionVector {
    /// Shortens a long position vector (drops speed/heading/PAI).
    #[must_use]
    pub fn from_long(pv: &LongPositionVector) -> Self {
        ShortPositionVector { addr: pv.addr, timestamp: pv.timestamp, coord: pv.coord }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64(self.addr.to_u64());
        out.put_u32(self.timestamp.0);
        out.put_i32(self.coord.lat);
        out.put_i32(self.coord.lon);
    }

    fn decode(buf: &[u8], offset: usize) -> Result<Self, WireError> {
        super::need(buf, offset, SPV_LEN)?;
        let b = &buf[offset..];
        Ok(ShortPositionVector {
            addr: GnAddress::from_u64(u64::from_be_bytes(b[0..8].try_into().expect("8 bytes"))),
            timestamp: Timestamp(u32::from_be_bytes(b[8..12].try_into().expect("4 bytes"))),
            coord: GeoCoord {
                lat: i32::from_be_bytes(b[12..16].try_into().expect("4 bytes")),
                lon: i32::from_be_bytes(b[16..20].try_into().expect("4 bytes")),
            },
        })
    }
}

/// A destination area in wire form: centre coordinate, half-axes in whole
/// metres and azimuth in whole degrees. The shape lives in the common
/// header's subtype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WireArea {
    /// Centre of the area.
    pub center: GeoCoord,
    /// Half-axis along the azimuth direction (radius for circles), metres.
    pub dist_a: u16,
    /// Half-axis across the azimuth direction, metres.
    pub dist_b: u16,
    /// Azimuth, degrees clockwise from north.
    pub angle_deg: u16,
}

/// Wire size of the area fields.
const AREA_LEN: usize = 14;

impl WireArea {
    /// Converts a planar [`Area`] into wire form. Half-axes are rounded up
    /// to whole metres so the wire area never undershoots the requested
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if a half-axis exceeds 65 535 m (not encodable).
    #[must_use]
    pub fn from_area(area: &Area, reference: &GeoReference) -> Self {
        let a = area.half_axis_a().ceil();
        let b = area.half_axis_b().ceil();
        assert!(a <= f64::from(u16::MAX) && b <= f64::from(u16::MAX), "area too large for wire");
        WireArea {
            center: reference.to_geo(area.center()),
            dist_a: a as u16,
            dist_b: b as u16,
            angle_deg: (area.azimuth_deg().round().rem_euclid(360.0)) as u16,
        }
    }

    /// Reconstructs the planar [`Area`] for a given shape.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadFieldValue`] if a half-axis is zero.
    pub fn to_area(&self, shape: AreaShape, reference: &GeoReference) -> Result<Area, WireError> {
        if self.dist_a == 0 || (shape != AreaShape::Circle && self.dist_b == 0) {
            return Err(WireError::BadFieldValue("area half-axis"));
        }
        let center = reference.to_plane(self.center);
        let a = f64::from(self.dist_a);
        let b = f64::from(self.dist_b);
        let az = f64::from(self.angle_deg);
        Ok(match shape {
            AreaShape::Circle => Area::circle(center, a),
            AreaShape::Rectangle => Area::rectangle(center, a, b, az),
            AreaShape::Ellipse => Area::ellipse(center, a, b, az),
        })
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.put_i32(self.center.lat);
        out.put_i32(self.center.lon);
        out.put_u16(self.dist_a);
        out.put_u16(self.dist_b);
        out.put_u16(self.angle_deg);
    }

    fn decode(buf: &[u8], offset: usize) -> Result<Self, WireError> {
        super::need(buf, offset, AREA_LEN)?;
        let b = &buf[offset..];
        Ok(WireArea {
            center: GeoCoord {
                lat: i32::from_be_bytes(b[0..4].try_into().expect("4 bytes")),
                lon: i32::from_be_bytes(b[4..8].try_into().expect("4 bytes")),
            },
            dist_a: u16::from_be_bytes(b[8..10].try_into().expect("2 bytes")),
            dist_b: u16::from_be_bytes(b[10..12].try_into().expect("2 bytes")),
            angle_deg: u16::from_be_bytes(b[12..14].try_into().expect("2 bytes")),
        })
    }
}

/// The GeoBroadcast extended header: sequence number, source position
/// vector and destination area (EN 302 636-4-1 §9.8.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbcHeader {
    /// Sequence number assigned by the source; `(source, sn)` identifies
    /// the packet for duplicate detection.
    pub sn: SequenceNumber,
    /// The source's long position vector.
    pub so_pv: LongPositionVector,
    /// The destination area.
    pub area: WireArea,
}

/// GBC extended header wire size: SN(2) + reserved(2) + LPV(24) + area(14)
/// + reserved(2).
const GBC_LEN: usize = 2 + 2 + LPV_LEN + AREA_LEN + 2;

/// Beacon extended header wire size: just the LPV.
const BEACON_LEN: usize = LPV_LEN;

/// The GeoUnicast extended header: sequence number, source position
/// vector and the destination's short position vector (§9.8.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GucHeader {
    /// Source-assigned sequence number.
    pub sn: SequenceNumber,
    /// The source's long position vector.
    pub so_pv: LongPositionVector,
    /// The destination's short position vector.
    pub de_pv: ShortPositionVector,
}

/// GUC extended header wire size: SN(2) + reserved(2) + LPV(24) + SPV(20).
const GUC_LEN: usize = 2 + 2 + LPV_LEN + SPV_LEN;

/// TSB extended header wire size: SN(2) + reserved(2) + LPV(24).
const TSB_LEN: usize = 2 + 2 + LPV_LEN;

/// SHB extended header wire size: LPV(24) + media-dependent reserved(4).
const SHB_LEN: usize = LPV_LEN + 4;

/// The extended header of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Extended {
    /// A beacon: the source position vector only.
    Beacon {
        /// The advertising node's position vector.
        so_pv: LongPositionVector,
    },
    /// A GeoUnicast header.
    Guc(GucHeader),
    /// A GeoBroadcast header.
    Gbc(GbcHeader),
    /// A topologically-scoped broadcast: sequence number and source PV.
    Tsb {
        /// Source-assigned sequence number.
        sn: SequenceNumber,
        /// The source's position vector.
        so_pv: LongPositionVector,
    },
    /// A single-hop broadcast: source PV plus a media-dependent word.
    Shb {
        /// The source's position vector.
        so_pv: LongPositionVector,
    },
}

impl Extended {
    /// The source position vector carried by any extended header.
    #[must_use]
    pub fn so_pv(&self) -> &LongPositionVector {
        match self {
            Extended::Beacon { so_pv } | Extended::Tsb { so_pv, .. } | Extended::Shb { so_pv } => {
                so_pv
            }
            Extended::Guc(g) => &g.so_pv,
            Extended::Gbc(g) => &g.so_pv,
        }
    }
}

/// A complete GeoNetworking packet: basic + common + extended header and
/// payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnPacket {
    /// Basic header (holds the mutable RHL).
    pub basic: BasicHeader,
    /// Common header.
    pub common: CommonHeader,
    /// Extended header.
    pub extended: Extended,
    /// Application payload (empty for beacons).
    pub payload: Vec<u8>,
}

impl GnPacket {
    /// Builds a beacon packet. Beacons are single-hop: RHL is 1.
    #[must_use]
    pub fn beacon(so_pv: LongPositionVector) -> Self {
        GnPacket {
            basic: BasicHeader::new(NextAfterBasic::SecuredPacket, 1),
            common: CommonHeader::new(HeaderKind::Beacon, 0, 1),
            extended: Extended::Beacon { so_pv },
            payload: Vec::new(),
        }
    }

    /// Builds a GeoBroadcast packet.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes or the area is too
    /// large for the wire encoding.
    #[must_use]
    pub fn geobroadcast(
        sn: SequenceNumber,
        so_pv: LongPositionVector,
        area: &Area,
        reference: &GeoReference,
        payload: Vec<u8>,
        max_hop_limit: u8,
    ) -> Self {
        let kind = match area.shape() {
            AreaShape::Circle => HeaderKind::GeoBroadcastCircle,
            AreaShape::Rectangle => HeaderKind::GeoBroadcastRect,
            AreaShape::Ellipse => HeaderKind::GeoBroadcastEllipse,
        };
        let len = u16::try_from(payload.len()).expect("payload too large");
        GnPacket {
            basic: BasicHeader::new(NextAfterBasic::SecuredPacket, max_hop_limit),
            common: CommonHeader::new(kind, len, max_hop_limit),
            extended: Extended::Gbc(GbcHeader {
                sn,
                so_pv,
                area: WireArea::from_area(area, reference),
            }),
            payload,
        }
    }

    /// Builds a GeoUnicast packet towards the node described by `de_pv`.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes.
    #[must_use]
    pub fn geounicast(
        sn: SequenceNumber,
        so_pv: LongPositionVector,
        de_pv: ShortPositionVector,
        payload: Vec<u8>,
        max_hop_limit: u8,
    ) -> Self {
        let len = u16::try_from(payload.len()).expect("payload too large");
        GnPacket {
            basic: BasicHeader::new(NextAfterBasic::SecuredPacket, max_hop_limit),
            common: CommonHeader::new(HeaderKind::GeoUnicast, len, max_hop_limit),
            extended: Extended::Guc(GucHeader { sn, so_pv, de_pv }),
            payload,
        }
    }

    /// Builds a topologically-scoped broadcast packet.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes.
    #[must_use]
    pub fn topo_broadcast(
        sn: SequenceNumber,
        so_pv: LongPositionVector,
        payload: Vec<u8>,
        max_hop_limit: u8,
    ) -> Self {
        let len = u16::try_from(payload.len()).expect("payload too large");
        GnPacket {
            basic: BasicHeader::new(NextAfterBasic::SecuredPacket, max_hop_limit),
            common: CommonHeader::new(HeaderKind::TopoBroadcast, len, max_hop_limit),
            extended: Extended::Tsb { sn, so_pv },
            payload,
        }
    }

    /// Builds a single-hop broadcast packet (RHL fixed at 1).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes.
    #[must_use]
    pub fn single_hop_broadcast(so_pv: LongPositionVector, payload: Vec<u8>) -> Self {
        let len = u16::try_from(payload.len()).expect("payload too large");
        GnPacket {
            basic: BasicHeader::new(NextAfterBasic::SecuredPacket, 1),
            common: CommonHeader::new(HeaderKind::SingleHopBroadcast, len, 1),
            extended: Extended::Shb { so_pv },
            payload,
        }
    }

    /// The source position vector (present in every packet kind).
    #[must_use]
    pub fn so_pv(&self) -> &LongPositionVector {
        self.extended.so_pv()
    }

    /// The GBC header, if this is a GeoBroadcast packet.
    #[must_use]
    pub fn gbc(&self) -> Option<&GbcHeader> {
        match &self.extended {
            Extended::Gbc(g) => Some(g),
            _ => None,
        }
    }

    /// The destination area of a GeoBroadcast packet, reconstructed on the
    /// simulation plane.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the packet is not a GBC packet or the area
    /// fields are invalid.
    pub fn destination_area(&self, reference: &GeoReference) -> Result<Area, WireError> {
        let gbc = self.gbc().ok_or(WireError::BadFieldValue("not a GeoBroadcast packet"))?;
        let shape = match self.common.kind {
            HeaderKind::GeoBroadcastCircle => AreaShape::Circle,
            HeaderKind::GeoBroadcastRect => AreaShape::Rectangle,
            HeaderKind::GeoBroadcastEllipse => AreaShape::Ellipse,
            _ => return Err(WireError::BadFieldValue("packet kind has no area")),
        };
        gbc.area.to_area(shape, reference)
    }

    /// Encodes the full packet to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BASIC_LEN + COMMON_LEN + GBC_LEN + self.payload.len());
        self.basic.encode(&mut out);
        self.common.encode(&mut out);
        match &self.extended {
            Extended::Beacon { so_pv } => encode_lpv(so_pv, &mut out),
            Extended::Guc(g) => {
                out.put_u16(g.sn.0);
                out.put_u16(0); // reserved
                encode_lpv(&g.so_pv, &mut out);
                g.de_pv.encode(&mut out);
            }
            Extended::Gbc(g) => {
                out.put_u16(g.sn.0);
                out.put_u16(0); // reserved
                encode_lpv(&g.so_pv, &mut out);
                g.area.encode(&mut out);
                out.put_u16(0); // reserved
            }
            Extended::Tsb { sn, so_pv } => {
                out.put_u16(sn.0);
                out.put_u16(0); // reserved
                encode_lpv(so_pv, &mut out);
            }
            Extended::Shb { so_pv } => {
                encode_lpv(so_pv, &mut out);
                out.put_u32(0); // media-dependent data
            }
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// The byte string covered by the integrity envelope: the full
    /// encoding with the basic header's RHL byte zeroed.
    ///
    /// Per the standard, forwarders decrement RHL in flight, so signatures
    /// cannot cover it — which is exactly the gap the paper's intra-area
    /// attacker exploits by rewriting RHL on replayed packets.
    #[must_use]
    pub fn encode_protected(&self) -> Vec<u8> {
        let mut bytes = self.encode();
        bytes[3] = 0; // RHL is the 4th byte of the basic header
        bytes
    }

    /// Decodes a packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, unknown header values or a
    /// payload length mismatch.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (basic, mut off) = BasicHeader::decode(buf)?;
        let (common, used) = CommonHeader::decode(&buf[off..])?;
        off += used;
        let extended = match common.kind {
            HeaderKind::Beacon => {
                let so_pv = decode_lpv(buf, off)?;
                off += BEACON_LEN;
                Extended::Beacon { so_pv }
            }
            HeaderKind::GeoUnicast => {
                super::need(buf, off, GUC_LEN)?;
                let sn = SequenceNumber(u16::from_be_bytes(
                    buf[off..off + 2].try_into().expect("2 bytes"),
                ));
                let so_pv = decode_lpv(buf, off + 4)?;
                let de_pv = ShortPositionVector::decode(buf, off + 4 + LPV_LEN)?;
                off += GUC_LEN;
                Extended::Guc(GucHeader { sn, so_pv, de_pv })
            }
            HeaderKind::TopoBroadcast => {
                super::need(buf, off, TSB_LEN)?;
                let sn = SequenceNumber(u16::from_be_bytes(
                    buf[off..off + 2].try_into().expect("2 bytes"),
                ));
                let so_pv = decode_lpv(buf, off + 4)?;
                off += TSB_LEN;
                Extended::Tsb { sn, so_pv }
            }
            HeaderKind::SingleHopBroadcast => {
                super::need(buf, off, SHB_LEN)?;
                let so_pv = decode_lpv(buf, off)?;
                off += SHB_LEN;
                Extended::Shb { so_pv }
            }
            _ => {
                super::need(buf, off, GBC_LEN)?;
                let sn = SequenceNumber(u16::from_be_bytes(
                    buf[off..off + 2].try_into().expect("2 bytes"),
                ));
                let so_pv = decode_lpv(buf, off + 4)?;
                let area = WireArea::decode(buf, off + 4 + LPV_LEN)?;
                off += GBC_LEN;
                Extended::Gbc(GbcHeader { sn, so_pv, area })
            }
        };
        let present = buf.len() - off;
        let declared = usize::from(common.payload_length);
        if present != declared {
            return Err(WireError::PayloadLengthMismatch { declared, present });
        }
        Ok(GnPacket { basic, common, extended, payload: buf[off..].to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet_geo::Position;
    use geonet_sim::SimTime;
    use proptest::prelude::*;

    fn sample_pv(addr: u64) -> LongPositionVector {
        LongPositionVector::from_sim(
            GnAddress::vehicle(addr),
            SimTime::from_secs(12),
            Position::new(1_000.0, 2.5),
            30.0,
            geonet_geo::Heading::EAST,
            &GeoReference::default(),
        )
    }

    #[test]
    fn beacon_round_trip() {
        let p = GnPacket::beacon(sample_pv(5));
        let bytes = p.encode();
        let back = GnPacket::decode(&bytes).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.so_pv().addr, GnAddress::vehicle(5));
        assert!(back.gbc().is_none());
    }

    #[test]
    fn gbc_round_trip_all_shapes() {
        let r = GeoReference::default();
        let areas = [
            Area::circle(Position::new(4_020.0, 0.0), 50.0),
            Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0),
            Area::ellipse(Position::new(100.0, 0.0), 300.0, 40.0, 45.0),
        ];
        for area in &areas {
            let p = GnPacket::geobroadcast(
                SequenceNumber(42),
                sample_pv(9),
                area,
                &r,
                vec![1, 2, 3, 4],
                10,
            );
            let back = GnPacket::decode(&p.encode()).unwrap();
            assert_eq!(back, p);
            let area_back = back.destination_area(&r).unwrap();
            assert_eq!(area_back.shape(), area.shape());
            assert!(area_back.center().distance(area.center()) < 0.05);
            assert!((area_back.half_axis_a() - area.half_axis_a()).abs() <= 1.0);
        }
    }

    #[test]
    fn geounicast_round_trip() {
        let so = sample_pv(9);
        let de = ShortPositionVector::from_long(&sample_pv(7));
        let p = GnPacket::geounicast(SequenceNumber(11), so, de, vec![1, 2, 3], 10);
        let bytes = p.encode();
        // Basic(4) + common(8) + GUC(48) + payload(3).
        assert_eq!(bytes.len(), 4 + 8 + 48 + 3);
        let back = GnPacket::decode(&bytes).unwrap();
        assert_eq!(back, p);
        match back.extended {
            Extended::Guc(g) => {
                assert_eq!(g.de_pv.addr, GnAddress::vehicle(7));
                assert_eq!(g.sn, SequenceNumber(11));
            }
            other => panic!("{other:?}"),
        }
        assert!(back.gbc().is_none());
        assert!(back.destination_area(&GeoReference::default()).is_err());
    }

    #[test]
    fn topo_broadcast_round_trip() {
        let p = GnPacket::topo_broadcast(SequenceNumber(5), sample_pv(3), vec![0xAA], 7);
        let bytes = p.encode();
        // Basic(4) + common(8) + TSB(28) + payload(1).
        assert_eq!(bytes.len(), 4 + 8 + 28 + 1);
        let back = GnPacket::decode(&bytes).unwrap();
        assert_eq!(back, p);
        assert!(matches!(back.extended, Extended::Tsb { sn: SequenceNumber(5), .. }));
    }

    #[test]
    fn single_hop_broadcast_round_trip() {
        let p = GnPacket::single_hop_broadcast(sample_pv(2), vec![9, 9]);
        assert_eq!(p.basic.rhl, 1, "SHB is single-hop by construction");
        let bytes = p.encode();
        // Basic(4) + common(8) + SHB(28) + payload(2).
        assert_eq!(bytes.len(), 4 + 8 + 28 + 2);
        let back = GnPacket::decode(&bytes).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.so_pv().addr, GnAddress::vehicle(2));
    }

    #[test]
    fn short_pv_from_long_drops_kinematics() {
        let long = sample_pv(4);
        let short = ShortPositionVector::from_long(&long);
        assert_eq!(short.addr, long.addr);
        assert_eq!(short.timestamp, long.timestamp);
        assert_eq!(short.coord, long.coord);
    }

    #[test]
    fn protected_encoding_zeroes_rhl_only() {
        let r = GeoReference::default();
        let area = Area::circle(Position::new(4_020.0, 0.0), 50.0);
        let mut p = GnPacket::geobroadcast(SequenceNumber(1), sample_pv(2), &area, &r, vec![9], 10);
        let protected_at_10 = p.encode_protected();
        p.basic.rhl = 1; // forwarder (or attacker) rewrites RHL
        let protected_at_1 = p.encode_protected();
        // Integrity-covered bytes identical regardless of RHL...
        assert_eq!(protected_at_10, protected_at_1);
        // ...but the on-air encodings differ exactly at the RHL byte.
        let mut q = p.clone();
        q.basic.rhl = 10;
        let a = p.encode();
        let b = q.encode();
        let diffs: Vec<usize> = (0..a.len()).filter(|&i| a[i] != b[i]).collect();
        assert_eq!(diffs, vec![3]);
    }

    #[test]
    fn payload_length_mismatch_detected() {
        let p = GnPacket::beacon(sample_pv(1));
        let mut bytes = p.encode();
        bytes.push(0xFF); // extra byte not declared
        assert!(matches!(
            GnPacket::decode(&bytes),
            Err(WireError::PayloadLengthMismatch { declared: 0, present: 1 })
        ));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let r = GeoReference::default();
        let area = Area::circle(Position::new(0.0, 0.0), 100.0);
        let p =
            GnPacket::geobroadcast(SequenceNumber(7), sample_pv(3), &area, &r, vec![1, 2, 3], 10);
        let bytes = p.encode();
        for len in 0..bytes.len() {
            assert!(
                GnPacket::decode(&bytes[..len]).is_err(),
                "decode succeeded on {len}-byte prefix"
            );
        }
        assert!(GnPacket::decode(&bytes).is_ok());
    }

    #[test]
    fn zero_half_axis_rejected() {
        let wa =
            WireArea { center: GeoCoord { lat: 0, lon: 0 }, dist_a: 0, dist_b: 10, angle_deg: 0 };
        assert_eq!(
            wa.to_area(AreaShape::Circle, &GeoReference::default()),
            Err(WireError::BadFieldValue("area half-axis"))
        );
    }

    #[test]
    fn circle_ignores_dist_b_zero() {
        let wa = WireArea {
            center: GeoCoord { lat: 391_000_000, lon: -768_000_000 },
            dist_a: 100,
            dist_b: 0,
            angle_deg: 0,
        };
        assert!(wa.to_area(AreaShape::Circle, &GeoReference::default()).is_ok());
        assert!(wa.to_area(AreaShape::Rectangle, &GeoReference::default()).is_err());
    }

    #[test]
    fn wire_error_display() {
        let e = WireError::Truncated { needed: 10, got: 3 };
        assert!(e.to_string().contains("10"));
        assert!(WireError::BadVersion(3).to_string().contains('3'));
        assert!(WireError::BadHeaderType(9, 9).to_string().contains("9.9"));
    }

    proptest! {
        #[test]
        fn prop_beacon_round_trip(addr in 0u64..(1 << 48),
                                  x in 0.0f64..4_000.0, y in -20.0f64..20.0,
                                  speed in -160.0f64..160.0, hdg in 0.0f64..360.0,
                                  secs in 0u64..4_000) {
            let pv = LongPositionVector::from_sim(
                GnAddress::vehicle(addr),
                SimTime::from_secs(secs),
                Position::new(x, y),
                speed,
                geonet_geo::Heading::from_degrees(hdg),
                &GeoReference::default(),
            );
            let p = GnPacket::beacon(pv);
            prop_assert_eq!(GnPacket::decode(&p.encode()).unwrap(), p);
        }

        #[test]
        fn prop_gbc_round_trip(sn in any::<u16>(), rhl in 0u8..=255,
                               payload in prop::collection::vec(any::<u8>(), 0..64),
                               radius in 1.0f64..5_000.0) {
            let r = GeoReference::default();
            let area = Area::circle(Position::new(2_000.0, 0.0), radius);
            let mut p = GnPacket::geobroadcast(
                SequenceNumber(sn), sample_pv(1), &area, &r, payload, 10);
            p.basic.rhl = rhl;
            prop_assert_eq!(GnPacket::decode(&p.encode()).unwrap(), p);
        }

        #[test]
        fn prop_guc_tsb_shb_round_trip(sn in any::<u16>(),
                                       payload in prop::collection::vec(any::<u8>(), 0..32),
                                       which in 0usize..3) {
            let p = match which {
                0 => GnPacket::geounicast(
                    SequenceNumber(sn),
                    sample_pv(1),
                    ShortPositionVector::from_long(&sample_pv(2)),
                    payload,
                    10,
                ),
                1 => GnPacket::topo_broadcast(SequenceNumber(sn), sample_pv(1), payload, 10),
                _ => GnPacket::single_hop_broadcast(sample_pv(1), payload),
            };
            prop_assert_eq!(GnPacket::decode(&p.encode()).unwrap(), p);
        }

        #[test]
        fn prop_protected_excludes_exactly_rhl(rhl1 in 0u8..=255, rhl2 in 0u8..=255) {
            let r = GeoReference::default();
            let area = Area::circle(Position::new(0.0, 0.0), 10.0);
            let mut p = GnPacket::geobroadcast(
                SequenceNumber(1), sample_pv(1), &area, &r, vec![], 10);
            p.basic.rhl = rhl1;
            let a = p.encode_protected();
            p.basic.rhl = rhl2;
            let b = p.encode_protected();
            prop_assert_eq!(a, b);
        }
    }
}
