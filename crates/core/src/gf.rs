//! Greedy Forwarding (GF) next-hop selection (EN 302 636-4-1 annex E.2).
//!
//! A forwarder outside the destination area picks, among its location-table
//! neighbours, the one closest to the destination — provided that
//! neighbour makes *progress* (is strictly closer to the destination than
//! the forwarder itself). If no neighbour makes progress the standard
//! falls back to buffering or broadcasting; this implementation reports
//! [`GfDecision::NoProgress`] and the router broadcasts.
//!
//! The paper's plausibility-check mitigation is implemented here as an
//! optional filter: candidates whose *advertised* position lies farther
//! from the forwarder than a threshold (the expected communication range)
//! are skipped, defeating the replayed-beacon poisoning.

use crate::loct::LocationTable;
use crate::types::GnAddress;
use geonet_geo::Position;
use geonet_sim::SimTime;
use std::fmt;

/// The outcome of a greedy-forwarding next-hop selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GfDecision {
    /// Forward to this neighbour (link-layer unicast). The position is the
    /// neighbour's advertised position at decision time.
    NextHop {
        /// The selected neighbour.
        addr: GnAddress,
        /// Its advertised position (from the LocT).
        advertised: Position,
    },
    /// No live neighbour makes progress towards the destination; fall back
    /// to a topologically-scoped broadcast.
    NoProgress,
}

impl fmt::Display for GfDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfDecision::NextHop { addr, .. } => write!(f, "next-hop {addr}"),
            GfDecision::NoProgress => f.write_str("no progress"),
        }
    }
}

/// Selects the greedy next hop for a packet heading to `dest_center`.
///
/// * `own_addr` / `own_position` — the forwarder itself (excluded from the
///   candidates).
/// * `exclude` — the link-layer sender the packet just arrived from, if
///   any; forwarding straight back would loop.
/// * `plausibility_threshold` — when `Some(r)`, the paper's mitigation:
///   only neighbours whose advertised position is within `r` metres of
///   the forwarder are considered.
///
/// Ties (two neighbours at exactly the same distance) break towards the
/// smaller address, which is deterministic because the location table
/// iterates in address order.
#[must_use]
pub fn greedy_select(
    loct: &LocationTable,
    own_addr: GnAddress,
    own_position: Position,
    dest_center: Position,
    exclude: Option<GnAddress>,
    plausibility_threshold: Option<f64>,
    now: SimTime,
) -> GfDecision {
    let exclude: &[GnAddress] = match &exclude {
        Some(a) => std::slice::from_ref(a),
        None => &[],
    };
    greedy_select_excluding(
        loct,
        own_addr,
        own_position,
        dest_center,
        exclude,
        plausibility_threshold,
        now,
    )
}

/// Like [`greedy_select`] with an arbitrary exclusion set — used by the
/// link-layer-acknowledgement extension, where every next hop that failed
/// to acknowledge is excluded from the retry.
#[must_use]
pub fn greedy_select_excluding(
    loct: &LocationTable,
    own_addr: GnAddress,
    own_position: Position,
    dest_center: Position,
    exclude: &[GnAddress],
    plausibility_threshold: Option<f64>,
    now: SimTime,
) -> GfDecision {
    let own_dist = own_position.distance(dest_center);
    let mut best: Option<(f64, GnAddress, Position)> = None;
    for (&addr, entry) in loct.live_entries(now) {
        if addr == own_addr || exclude.contains(&addr) {
            continue;
        }
        if let Some(threshold) = plausibility_threshold {
            // Mitigation (paper §V-A): skip neighbours whose advertised
            // position is implausibly far to be reachable.
            if own_position.distance(entry.position) > threshold {
                continue;
            }
        }
        let d = entry.position.distance(dest_center);
        let better = match &best {
            None => true,
            Some((bd, _, _)) => d < *bd,
        };
        if better {
            best = Some((d, addr, entry.position));
        }
    }
    match best {
        Some((d, addr, advertised)) if d < own_dist => GfDecision::NextHop { addr, advertised },
        _ => GfDecision::NoProgress,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pv::LongPositionVector;
    use geonet_geo::{GeoReference, Heading};
    use geonet_sim::SimDuration;
    use proptest::prelude::*;

    const NOW: SimTime = SimTime::from_secs(10);

    fn table_with(neighbors: &[(u64, f64)]) -> LocationTable {
        let r = GeoReference::default();
        let mut t = LocationTable::new(SimDuration::from_secs(20));
        for &(addr, x) in neighbors {
            let pos = Position::new(x, 0.0);
            let pv = LongPositionVector::from_sim(
                GnAddress::vehicle(addr),
                NOW,
                pos,
                30.0,
                Heading::EAST,
                &r,
            );
            t.update(pv, pos, NOW);
        }
        t
    }

    fn select(t: &LocationTable, own_x: f64, dest_x: f64, threshold: Option<f64>) -> GfDecision {
        greedy_select(
            t,
            GnAddress::vehicle(999),
            Position::new(own_x, 0.0),
            Position::new(dest_x, 0.0),
            None,
            threshold,
            NOW,
        )
    }

    #[test]
    fn picks_neighbor_closest_to_destination() {
        // The paper's Figure 2: V1 at 0 picks V3 (farther east) over V2.
        let t = table_with(&[(2, 200.0), (3, 400.0)]);
        match select(&t, 0.0, 4_020.0, None) {
            GfDecision::NextHop { addr, .. } => assert_eq!(addr, GnAddress::vehicle(3)),
            other => panic!("expected next hop, got {other}"),
        }
    }

    #[test]
    fn requires_progress() {
        // All neighbours are farther from the destination than we are.
        let t = table_with(&[(2, -100.0), (3, -200.0)]);
        assert_eq!(select(&t, 0.0, 4_020.0, None), GfDecision::NoProgress);
    }

    #[test]
    fn empty_table_means_no_progress() {
        let t = table_with(&[]);
        assert_eq!(select(&t, 0.0, 4_020.0, None), GfDecision::NoProgress);
    }

    #[test]
    fn expired_entries_ignored() {
        let t = table_with(&[(2, 500.0)]);
        let later = NOW + SimDuration::from_secs(25); // past 20 s TTL
        let d = greedy_select(
            &t,
            GnAddress::vehicle(999),
            Position::ORIGIN,
            Position::new(4_020.0, 0.0),
            None,
            None,
            later,
        );
        assert_eq!(d, GfDecision::NoProgress);
    }

    #[test]
    fn excludes_previous_hop() {
        let t = table_with(&[(2, 300.0), (3, 250.0)]);
        let d = greedy_select(
            &t,
            GnAddress::vehicle(999),
            Position::ORIGIN,
            Position::new(4_020.0, 0.0),
            Some(GnAddress::vehicle(2)),
            None,
            NOW,
        );
        match d {
            GfDecision::NextHop { addr, .. } => assert_eq!(addr, GnAddress::vehicle(3)),
            other => panic!("expected v3, got {other}"),
        }
    }

    #[test]
    fn excludes_self_entry() {
        // A node may see its own address in the table (e.g. from a replayed
        // beacon); it must never pick itself.
        let r = GeoReference::default();
        let mut t = table_with(&[]);
        let own = GnAddress::vehicle(999);
        let pv = LongPositionVector::from_sim(
            own,
            NOW,
            Position::new(1_000.0, 0.0),
            30.0,
            Heading::EAST,
            &r,
        );
        t.update(pv, Position::new(1_000.0, 0.0), NOW);
        let d =
            greedy_select(&t, own, Position::ORIGIN, Position::new(4_020.0, 0.0), None, None, NOW);
        assert_eq!(d, GfDecision::NoProgress);
    }

    #[test]
    fn plausibility_check_filters_implausible_neighbors() {
        // The attack scenario: a replayed beacon advertises a node 700 m
        // away while the radio range is 486 m. Without the check it wins;
        // with the check the real 300 m neighbour wins.
        let t = table_with(&[(2, 300.0), (3, 700.0)]);
        match select(&t, 0.0, 4_020.0, None) {
            GfDecision::NextHop { addr, .. } => assert_eq!(addr, GnAddress::vehicle(3)),
            other => panic!("unmitigated GF should pick the poisoned entry, got {other}"),
        }
        match select(&t, 0.0, 4_020.0, Some(486.0)) {
            GfDecision::NextHop { addr, .. } => assert_eq!(addr, GnAddress::vehicle(2)),
            other => panic!("mitigated GF should pick the real neighbour, got {other}"),
        }
    }

    #[test]
    fn plausibility_check_can_empty_the_candidate_set() {
        let t = table_with(&[(2, 700.0)]);
        assert_eq!(select(&t, 0.0, 4_020.0, Some(486.0)), GfDecision::NoProgress);
    }

    #[test]
    fn tie_breaks_to_lower_address() {
        let t = table_with(&[(5, 300.0), (2, 300.0)]);
        match select(&t, 0.0, 4_020.0, None) {
            GfDecision::NextHop { addr, .. } => assert_eq!(addr, GnAddress::vehicle(2)),
            other => panic!("expected v2, got {other}"),
        }
    }

    #[test]
    fn decision_display() {
        assert_eq!(GfDecision::NoProgress.to_string(), "no progress");
        let d = GfDecision::NextHop { addr: GnAddress::vehicle(1), advertised: Position::ORIGIN };
        assert!(d.to_string().contains("next-hop"));
    }

    proptest! {
        #[test]
        fn prop_selected_hop_always_makes_progress(
            neighbors in prop::collection::vec((1u64..100, -2_000.0f64..6_000.0), 0..30),
            own_x in 0.0f64..4_000.0,
            threshold in prop::option::of(100.0f64..2_000.0))
        {
            let t = table_with(&neighbors);
            let own = Position::new(own_x, 0.0);
            let dest = Position::new(4_020.0, 0.0);
            let d = greedy_select(
                &t, GnAddress::vehicle(999), own, dest, None, threshold, NOW);
            if let GfDecision::NextHop { advertised, .. } = d {
                // Progress invariant.
                prop_assert!(advertised.distance(dest) < own.distance(dest));
                // Plausibility invariant.
                if let Some(r) = threshold {
                    prop_assert!(own.distance(advertised) <= r);
                }
                // Optimality: no other (plausible) neighbour is closer.
                for (_, e) in t.live_entries(NOW) {
                    if threshold.is_none_or(|r| own.distance(e.position) <= r) {
                        prop_assert!(
                            advertised.distance(dest) <= e.position.distance(dest) + 1e-9);
                    }
                }
            }
        }
    }
}
