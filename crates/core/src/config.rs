//! Protocol configuration.

use crate::cbf::CbfParams;
use geonet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Link-layer acknowledgement configuration for greedy unicast forwarding.
///
/// The paper dismisses acknowledgements as a mitigation ("does not prevent
/// victim vehicles from making wrong forwarding decisions; reduces
/// communication efficiency when ACKs are lost") — this extension
/// implements them anyway so the trade-off can be measured: a forwarder
/// whose unicast goes unacknowledged retries towards its next-best
/// neighbour, up to `max_retries` times, before falling back to a
/// broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkAckConfig {
    /// How long to wait for the MAC acknowledgement before declaring the
    /// next hop unreachable.
    pub timeout: SimDuration,
    /// How many alternative next hops to try before broadcasting.
    pub max_retries: u8,
}

impl Default for LinkAckConfig {
    fn default() -> Self {
        // 802.11p-scale retry budget: a few ms per attempt.
        LinkAckConfig { timeout: SimDuration::from_millis(5), max_retries: 3 }
    }
}

/// What a greedy forwarder does when no live neighbour makes progress
/// towards the destination (EN 302 636-4-1 leaves the choice between
/// buffering in the forwarding buffer and falling back to a
/// topologically-scoped broadcast; the paper phrases it as "either
/// rechecks its LocT later or broadcasts").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoProgressPolicy {
    /// Broadcast the packet; any receiver closer to the destination
    /// continues forwarding (the default used for the paper experiments).
    Broadcast,
    /// Buffer the packet and re-run greedy forwarding after `delay`,
    /// up to `max_attempts` times ("recheck the LocT later"); dropped
    /// when the attempts are exhausted.
    BufferRetry {
        /// Time between retries.
        delay: SimDuration,
        /// Retry budget.
        max_attempts: u8,
    },
    /// Drop the packet immediately.
    Drop,
}

/// The two standard-compatible mitigations proposed by the paper (§V).
///
/// Both default to **off**, which is the standard's (vulnerable)
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MitigationConfig {
    /// GF plausibility check (§V-A): before forwarding, only consider
    /// neighbours whose advertised position is within this many metres.
    /// The paper sets it to the median DSRC NLoS range (486 m).
    pub gf_plausibility_threshold: Option<f64>,
    /// CBF RHL-drop check (§V-B): refuse "duplicates" whose RHL dropped by
    /// more than this many hops since the buffered copy. The paper uses 3.
    pub cbf_rhl_drop_threshold: Option<u8>,
}

impl MitigationConfig {
    /// Both mitigations at the paper's parameters (486 m threshold, RHL
    /// drop 3).
    #[must_use]
    pub fn paper_both() -> Self {
        MitigationConfig { gf_plausibility_threshold: Some(486.0), cbf_rhl_drop_threshold: Some(3) }
    }

    /// Only the GF plausibility check, with the given threshold.
    #[must_use]
    pub fn plausibility(threshold: f64) -> Self {
        MitigationConfig {
            gf_plausibility_threshold: Some(threshold),
            cbf_rhl_drop_threshold: None,
        }
    }

    /// Only the CBF RHL-drop check, with the given threshold.
    #[must_use]
    pub fn rhl_check(threshold: u8) -> Self {
        MitigationConfig {
            gf_plausibility_threshold: None,
            cbf_rhl_drop_threshold: Some(threshold),
        }
    }
}

/// Per-node GeoNetworking protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GnConfig {
    /// Beacon period (standard: 3 s).
    pub beacon_interval: SimDuration,
    /// Maximum random jitter added to each beacon period (standard:
    /// 750 ms).
    pub beacon_jitter: SimDuration,
    /// Location-table entry lifetime (standard default: 20 s; the paper
    /// sweeps 5/10/20 s).
    pub loct_ttl: SimDuration,
    /// CBF minimum buffering time (standard: 1 ms).
    pub to_min: SimDuration,
    /// CBF maximum buffering time (standard: 100 ms).
    pub to_max: SimDuration,
    /// `DIST_MAX` for the CBF timeout: the access technology's theoretical
    /// maximum communication range, metres.
    pub dist_max: f64,
    /// Hop limit assigned to originated GeoBroadcast packets (the paper
    /// uses a "large" value, e.g. 10).
    pub default_hop_limit: u8,
    /// Maximum acceptable age of a received position vector; older
    /// messages fail the standard's freshness check. Replay within the
    /// attack's ~1 ms processing delay passes easily.
    pub max_pv_age: SimDuration,
    /// Mitigation switches (both off by default).
    pub mitigations: MitigationConfig,
    /// Link-layer acknowledgement + retry for greedy unicasts (extension;
    /// `None` = the standard's fire-and-forget behaviour the paper
    /// analyses).
    pub link_ack: Option<LinkAckConfig>,
    /// Behaviour when greedy forwarding finds no neighbour making
    /// progress.
    pub no_progress: NoProgressPolicy,
}

impl GnConfig {
    /// The paper's configuration for an access technology with the given
    /// `DIST_MAX` (use [`geonet_radio::RangeProfile::dist_max`]).
    ///
    /// # Panics
    ///
    /// Panics if `dist_max` is not finite and positive.
    #[must_use]
    pub fn paper_default(dist_max: f64) -> Self {
        assert!(dist_max.is_finite() && dist_max > 0.0, "invalid DIST_MAX: {dist_max}");
        GnConfig {
            beacon_interval: SimDuration::from_secs(3),
            beacon_jitter: SimDuration::from_millis(750),
            loct_ttl: SimDuration::from_secs(20),
            to_min: SimDuration::from_millis(1),
            to_max: SimDuration::from_millis(100),
            dist_max,
            default_hop_limit: 10,
            max_pv_age: SimDuration::from_secs(1),
            mitigations: MitigationConfig::default(),
            link_ack: None,
            no_progress: NoProgressPolicy::Broadcast,
        }
    }

    /// Returns this configuration with a different no-progress policy.
    #[must_use]
    pub fn with_no_progress(self, no_progress: NoProgressPolicy) -> Self {
        GnConfig { no_progress, ..self }
    }

    /// Returns this configuration with link-layer acknowledgements
    /// enabled for greedy unicasts (extension, see [`LinkAckConfig`]).
    #[must_use]
    pub fn with_link_ack(self, ack: LinkAckConfig) -> Self {
        GnConfig { link_ack: Some(ack), ..self }
    }

    /// Returns this configuration with a different LocT TTL (Figure 7c /
    /// 9c sweeps).
    #[must_use]
    pub fn with_loct_ttl(self, ttl: SimDuration) -> Self {
        GnConfig { loct_ttl: ttl, ..self }
    }

    /// Returns this configuration with the given mitigations.
    #[must_use]
    pub fn with_mitigations(self, mitigations: MitigationConfig) -> Self {
        GnConfig { mitigations, ..self }
    }

    /// The CBF parameters implied by this configuration.
    #[must_use]
    pub fn cbf_params(&self) -> CbfParams {
        CbfParams {
            to_min: self.to_min,
            to_max: self.to_max,
            dist_max: self.dist_max,
            rhl_drop_threshold: self.mitigations.cbf_rhl_drop_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_progress_defaults_to_broadcast() {
        let c = GnConfig::paper_default(1_283.0);
        assert_eq!(c.no_progress, NoProgressPolicy::Broadcast);
        let c = c.with_no_progress(NoProgressPolicy::BufferRetry {
            delay: SimDuration::from_millis(500),
            max_attempts: 4,
        });
        assert!(matches!(c.no_progress, NoProgressPolicy::BufferRetry { max_attempts: 4, .. }));
    }

    #[test]
    fn link_ack_off_by_default_and_composable() {
        let c = GnConfig::paper_default(1_283.0);
        assert!(c.link_ack.is_none());
        let c = c.with_link_ack(LinkAckConfig::default());
        let ack = c.link_ack.unwrap();
        assert_eq!(ack.timeout, SimDuration::from_millis(5));
        assert_eq!(ack.max_retries, 3);
    }

    #[test]
    fn paper_default_matches_standard() {
        let c = GnConfig::paper_default(1_283.0);
        assert_eq!(c.beacon_interval, SimDuration::from_secs(3));
        assert_eq!(c.beacon_jitter, SimDuration::from_millis(750));
        assert_eq!(c.loct_ttl, SimDuration::from_secs(20));
        assert_eq!(c.to_min, SimDuration::from_millis(1));
        assert_eq!(c.to_max, SimDuration::from_millis(100));
        assert_eq!(c.default_hop_limit, 10);
        assert_eq!(c.mitigations, MitigationConfig::default());
    }

    #[test]
    fn mitigations_off_by_default() {
        let m = MitigationConfig::default();
        assert!(m.gf_plausibility_threshold.is_none());
        assert!(m.cbf_rhl_drop_threshold.is_none());
    }

    #[test]
    fn paper_both_mitigation_values() {
        let m = MitigationConfig::paper_both();
        assert_eq!(m.gf_plausibility_threshold, Some(486.0));
        assert_eq!(m.cbf_rhl_drop_threshold, Some(3));
    }

    #[test]
    fn builders_compose() {
        let c = GnConfig::paper_default(1_283.0)
            .with_loct_ttl(SimDuration::from_secs(5))
            .with_mitigations(MitigationConfig::plausibility(486.0));
        assert_eq!(c.loct_ttl, SimDuration::from_secs(5));
        assert_eq!(c.mitigations.gf_plausibility_threshold, Some(486.0));
        assert!(c.mitigations.cbf_rhl_drop_threshold.is_none());
        let c2 = c.with_mitigations(MitigationConfig::rhl_check(3));
        assert_eq!(c2.mitigations.cbf_rhl_drop_threshold, Some(3));
    }

    #[test]
    fn cbf_params_inherit_mitigation() {
        let c = GnConfig::paper_default(1_283.0).with_mitigations(MitigationConfig::rhl_check(3));
        let p = c.cbf_params();
        assert_eq!(p.rhl_drop_threshold, Some(3));
        assert_eq!(p.dist_max, 1_283.0);
    }

    #[test]
    #[should_panic(expected = "invalid DIST_MAX")]
    fn rejects_bad_dist_max() {
        let _ = GnConfig::paper_default(0.0);
    }
}
