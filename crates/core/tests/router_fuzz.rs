//! Adversarial fuzzing of the router: arbitrary frame streams — replayed,
//! reordered, RHL-mutated, cross-wired between nodes — must never panic,
//! never emit a forwardable packet with a spent hop limit, and never
//! accept tampered content.

use geonet::wire::GnPacket;
use geonet::{CertificateAuthority, Frame, GnAddress, GnConfig, GnRouter, RouterAction};
use geonet_geo::{Area, GeoReference, Heading, Position};
use geonet_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn router(ca: &CertificateAuthority, mid: u64) -> GnRouter {
    GnRouter::new(
        ca.enroll(GnAddress::vehicle(mid)),
        ca.verifier(),
        GnConfig::paper_default(1_283.0),
        GeoReference::default(),
    )
}

/// A pool of authentic frames to replay/mutate: beacons, GBC, TSB, SHB.
fn frame_pool(ca: &CertificateAuthority, now: SimTime) -> Vec<Frame> {
    let mut frames = Vec::new();
    let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_050.0, 25.0, 90.0);
    let far_area = Area::circle(Position::new(4_020.0, 0.0), 40.0);
    for mid in 1..5u64 {
        let mut r = router(ca, mid);
        let pos = Position::new(mid as f64 * 250.0, 2.5);
        frames.push(r.make_beacon(now, pos, 30.0, Heading::EAST));
        let (_, actions) = r.originate(&area, vec![mid as u8], now, pos, 30.0, Heading::EAST);
        let (_, actions2) = r.originate(&far_area, vec![mid as u8], now, pos, 30.0, Heading::EAST);
        let (_, actions3) = r.originate_tsb(vec![mid as u8], 5, now, pos, 30.0, Heading::EAST);
        let actions4 = r.originate_shb(vec![mid as u8], now, pos, 30.0, Heading::EAST);
        for a in actions.into_iter().chain(actions2).chain(actions3).chain(actions4) {
            if let RouterAction::Transmit(f) = a {
                frames.push(f);
            }
        }
    }
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn router_survives_arbitrary_frame_streams(
        choices in prop::collection::vec((0usize..16, 0u8..=255, any::<bool>(), 0u64..60), 1..60))
    {
        let ca = CertificateAuthority::new(99);
        let t0 = SimTime::from_secs(1);
        let pool = frame_pool(&ca, t0);
        let mut victim = router(&ca, 77);
        let victim_pos = Position::new(600.0, 2.5);

        for (idx, rhl, spoof_src, delay_ms) in choices {
            let base = &pool[idx % pool.len()];
            // The attacker's full power set: replay, reorder (delay),
            // rewrite the unprotected RHL, spoof the link-layer source.
            let mut frame = Frame {
                msg: base.msg.with_rhl(rhl),
                ..base.clone()
            };
            if spoof_src {
                frame.src = GnAddress::vehicle(0xFFFF);
            }
            let now = t0 + SimDuration::from_millis(delay_ms);
            let actions = victim.handle_frame(&frame, victim_pos, now);
            for a in actions {
                match a {
                    RouterAction::Transmit(out) => {
                        // Anything the victim transmits must be authentic
                        // (it only ever signs its own or forwards valid
                        // packets)...
                        prop_assert!(ca.verifier().verify(&out.msg));
                        // ...and a forwarded multi-hop packet never leaves
                        // with a spent hop limit.
                        if out.msg.packet.gbc().is_some() {
                            prop_assert!(out.msg.rhl() >= 1);
                        }
                    }
                    RouterAction::Deliver { payload, .. } => {
                        prop_assert!(payload.len() <= 16);
                    }
                    RouterAction::CbfTimer { delay, .. } => {
                        prop_assert!(delay >= SimDuration::from_millis(1));
                        prop_assert!(delay <= SimDuration::from_millis(100));
                    }
                    RouterAction::GfRetry { delay, .. } => {
                        prop_assert!(delay > SimDuration::ZERO);
                    }
                }
            }
        }
    }

    #[test]
    fn router_rejects_all_single_bit_tampering(byte in 4usize..56, bit in 0u8..8) {
        // Flip one bit of the integrity-covered region (anything past the
        // basic header) of a signed GBC packet: the router must drop it.
        let ca = CertificateAuthority::new(7);
        let t0 = SimTime::from_secs(1);
        let mut src = router(&ca, 1);
        let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_050.0, 25.0, 90.0);
        let (_, actions) =
            src.originate(&area, vec![0xAB], t0, Position::new(1_000.0, 2.5), 30.0, Heading::EAST);
        let RouterAction::Transmit(frame) = &actions[0] else { panic!() };

        let mut bytes = frame.msg.packet.encode();
        prop_assume!(byte < bytes.len());
        bytes[byte] ^= 1 << bit;
        if let Ok(tampered) = GnPacket::decode(&bytes) {
            prop_assume!(tampered != frame.msg.packet); // reserved bits absorb some flips
            let msg = frame.msg.with_packet(tampered);
            let mut victim = router(&ca, 2);
            let actions =
                victim.handle_frame(&Frame { msg, ..frame.clone() }, Position::new(1_400.0, 2.5), t0);
            prop_assert!(actions.is_empty(), "tampered packet was processed");
            prop_assert_eq!(victim.stats().auth_failures, 1);
        }
    }
}

#[test]
fn replayed_pool_frames_are_all_authentic() {
    // Sanity for the fuzz pool itself.
    let ca = CertificateAuthority::new(99);
    let pool = frame_pool(&ca, SimTime::from_secs(1));
    assert!(pool.len() >= 16);
    for f in &pool {
        assert!(ca.verifier().verify(&f.msg));
    }
}
