//! Local tangent-plane projection between planar metres and WGS-84.
//!
//! GeoNetworking wire formats carry latitude/longitude as signed 32-bit
//! integers in units of 1/10 micro-degree (EN 302 636-4-1 §8.5). The
//! simulation works in planar metres, so a [`GeoReference`] anchors the
//! plane at a reference WGS-84 coordinate and converts both ways with an
//! equirectangular approximation — exact enough over the paper's 4 km road
//! segment (sub-centimetre error).

use crate::Position;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in metres (IUGG).
const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Units of the wire format: 1/10 micro-degree per unit.
const TENTH_MICRODEG_PER_DEG: f64 = 1e7;

/// A WGS-84 coordinate in wire-format units (1/10 micro-degree integers).
///
/// This is the exact representation carried inside GeoNetworking position
/// vectors, so converting through `GeoCoord` quantises positions the same
/// way real packets do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GeoCoord {
    /// Latitude in 1/10 micro-degrees, positive north.
    pub lat: i32,
    /// Longitude in 1/10 micro-degrees, positive east.
    pub lon: i32,
}

impl GeoCoord {
    /// Creates a coordinate from latitude/longitude in degrees.
    ///
    /// # Panics
    ///
    /// Panics if the latitude is outside ±90° or the longitude outside
    /// ±180°.
    #[must_use]
    pub fn from_degrees(lat_deg: f64, lon_deg: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat_deg), "latitude out of range: {lat_deg}");
        assert!((-180.0..=180.0).contains(&lon_deg), "longitude out of range: {lon_deg}");
        GeoCoord {
            lat: (lat_deg * TENTH_MICRODEG_PER_DEG).round() as i32,
            lon: (lon_deg * TENTH_MICRODEG_PER_DEG).round() as i32,
        }
    }

    /// Latitude in degrees.
    #[must_use]
    pub fn lat_degrees(self) -> f64 {
        f64::from(self.lat) / TENTH_MICRODEG_PER_DEG
    }

    /// Longitude in degrees.
    #[must_use]
    pub fn lon_degrees(self) -> f64 {
        f64::from(self.lon) / TENTH_MICRODEG_PER_DEG
    }
}

impl fmt::Display for GeoCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.7}°, {:.7}°)", self.lat_degrees(), self.lon_degrees())
    }
}

/// A local tangent plane anchored at a reference WGS-84 coordinate.
///
/// Planar `(x, y)` metres map to (east, north) displacements from the
/// anchor using an equirectangular projection.
///
/// # Example
///
/// ```
/// use geonet_geo::{GeoReference, Position};
///
/// // Anchor near the Baltimore-Washington Parkway (the paper's road data).
/// let r = GeoReference::new(39.1, -76.8);
/// let p = Position::new(1_000.0, 250.0);
/// let coord = r.to_geo(p);
/// let back = r.to_plane(coord);
/// assert!(p.distance(back) < 0.02); // quantisation only
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoReference {
    anchor_lat_deg: f64,
    anchor_lon_deg: f64,
}

impl GeoReference {
    /// Creates a reference frame anchored at the given WGS-84 degrees.
    ///
    /// # Panics
    ///
    /// Panics if the anchor latitude is within 0.1° of a pole (the
    /// equirectangular east-west scale degenerates there) or out of range.
    #[must_use]
    pub fn new(anchor_lat_deg: f64, anchor_lon_deg: f64) -> Self {
        assert!(
            (-89.9..=89.9).contains(&anchor_lat_deg),
            "anchor latitude too close to a pole: {anchor_lat_deg}"
        );
        assert!(
            (-180.0..=180.0).contains(&anchor_lon_deg),
            "anchor longitude out of range: {anchor_lon_deg}"
        );
        GeoReference { anchor_lat_deg, anchor_lon_deg }
    }

    /// A reference anchored near the Baltimore-Washington Parkway, the road
    /// whose traffic volumes calibrate the paper's simulation.
    #[must_use]
    pub fn baltimore_washington_parkway() -> Self {
        GeoReference::new(39.1, -76.8)
    }

    /// Converts a planar position to a wire-format WGS-84 coordinate.
    #[must_use]
    pub fn to_geo(&self, p: Position) -> GeoCoord {
        let lat_deg = self.anchor_lat_deg + (p.y / EARTH_RADIUS_M).to_degrees();
        let lon_deg = self.anchor_lon_deg
            + (p.x / (EARTH_RADIUS_M * self.anchor_lat_deg.to_radians().cos())).to_degrees();
        GeoCoord::from_degrees(lat_deg, lon_deg)
    }

    /// Converts a wire-format WGS-84 coordinate back to a planar position.
    #[must_use]
    pub fn to_plane(&self, c: GeoCoord) -> Position {
        let dlat = (c.lat_degrees() - self.anchor_lat_deg).to_radians();
        let dlon = (c.lon_degrees() - self.anchor_lon_deg).to_radians();
        Position::new(
            dlon * EARTH_RADIUS_M * self.anchor_lat_deg.to_radians().cos(),
            dlat * EARTH_RADIUS_M,
        )
    }
}

impl Default for GeoReference {
    fn default() -> Self {
        GeoReference::baltimore_washington_parkway()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn anchor_maps_to_origin() {
        let r = GeoReference::new(39.1, -76.8);
        let c = r.to_geo(Position::ORIGIN);
        assert!((c.lat_degrees() - 39.1).abs() < 1e-7);
        assert!((c.lon_degrees() + 76.8).abs() < 1e-7);
        assert!(r.to_plane(c).norm() < 0.02);
    }

    #[test]
    fn one_degree_of_latitude_is_about_111_km() {
        let r = GeoReference::new(0.0, 0.0);
        let c = GeoCoord::from_degrees(1.0, 0.0);
        let p = r.to_plane(c);
        assert!((p.y - 111_195.0).abs() < 100.0, "got {}", p.y);
        assert!(p.x.abs() < 1e-6);
    }

    #[test]
    fn quantisation_is_sub_two_centimetres() {
        // 1/10 µ° of latitude ≈ 1.1 cm.
        let r = GeoReference::default();
        let p = Position::new(1_234.567_8, 987.654_3);
        let back = r.to_plane(r.to_geo(p));
        assert!(p.distance(back) < 0.02, "error {}", p.distance(back));
    }

    #[test]
    fn geocoord_degree_round_trip() {
        let c = GeoCoord::from_degrees(39.123_456_7, -76.765_432_1);
        assert!((c.lat_degrees() - 39.123_456_7).abs() < 1e-7);
        assert!((c.lon_degrees() + 76.765_432_1).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn from_degrees_rejects_bad_latitude() {
        let _ = GeoCoord::from_degrees(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "too close to a pole")]
    fn reference_rejects_pole() {
        let _ = GeoReference::new(90.0, 0.0);
    }

    proptest! {
        #[test]
        fn prop_round_trip_error_bounded(x in -10_000.0f64..10_000.0,
                                         y in -10_000.0f64..10_000.0) {
            let r = GeoReference::default();
            let p = Position::new(x, y);
            let back = r.to_plane(r.to_geo(p));
            // Dominated by 1/10 µ° quantisation (~1 cm).
            prop_assert!(p.distance(back) < 0.05);
        }

        #[test]
        fn prop_distances_preserved(ax in 0.0f64..4_000.0, ay in -20.0f64..20.0,
                                    bx in 0.0f64..4_000.0, by in -20.0f64..20.0) {
            // Over the paper's road-segment scale the projection must
            // preserve distances to better than 10 cm.
            let r = GeoReference::default();
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            let a2 = r.to_plane(r.to_geo(a));
            let b2 = r.to_plane(r.to_geo(b));
            prop_assert!((a.distance(b) - a2.distance(b2)).abs() < 0.1);
        }
    }
}
