//! Headings (direction of travel) in the GeoNetworking convention.

use crate::Position;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A direction of travel in degrees **clockwise from true north**, in
/// `[0, 360)`.
///
/// This matches the encoding used by the GeoNetworking long position vector
/// (heading in units of 0.1° clockwise from north). East is 90°, south 180°,
/// west 270°.
///
/// # Example
///
/// ```
/// use geonet_geo::{Heading, Position};
///
/// let east = Heading::EAST;
/// assert_eq!(east.degrees(), 90.0);
/// // A vehicle heading east moves along +x.
/// let v = east.unit_vector();
/// assert!((v.x - 1.0).abs() < 1e-12 && v.y.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Heading(f64);

impl Heading {
    /// Due north (0°), the +y direction.
    pub const NORTH: Heading = Heading(0.0);
    /// Due east (90°), the +x direction — the paper's eastbound traffic.
    pub const EAST: Heading = Heading(90.0);
    /// Due south (180°), the −y direction.
    pub const SOUTH: Heading = Heading(180.0);
    /// Due west (270°), the −x direction — the paper's westbound traffic.
    pub const WEST: Heading = Heading(270.0);

    /// Creates a heading from degrees clockwise from north, normalising
    /// into `[0, 360)`.
    #[must_use]
    pub fn from_degrees(deg: f64) -> Self {
        Heading(deg.rem_euclid(360.0))
    }

    /// Creates the heading of motion along the displacement `v`, or `None`
    /// for a zero displacement.
    #[must_use]
    pub fn from_vector(v: Position) -> Option<Self> {
        if v.x == 0.0 && v.y == 0.0 {
            return None;
        }
        // atan2 measured from +x counter-clockwise; convert to clockwise
        // from north (+y).
        let ccw_from_east = v.y.atan2(v.x).to_degrees();
        Some(Heading::from_degrees(90.0 - ccw_from_east))
    }

    /// The heading in degrees clockwise from north, in `[0, 360)`.
    #[must_use]
    pub fn degrees(self) -> f64 {
        self.0
    }

    /// The unit displacement vector of a node travelling with this heading.
    #[must_use]
    pub fn unit_vector(self) -> Position {
        let rad = self.0.to_radians();
        // Clockwise from north: x = sin, y = cos.
        Position::new(rad.sin(), rad.cos())
    }

    /// The smallest absolute angular difference to `other`, in `[0, 180]`
    /// degrees. Used to decide whether two vehicles head in roughly the
    /// same or opposite directions.
    #[must_use]
    pub fn angle_to(self, other: Heading) -> f64 {
        let diff = (self.0 - other.0).rem_euclid(360.0);
        diff.min(360.0 - diff)
    }

    /// Returns `true` if the two headings differ by more than 90°, i.e. the
    /// vehicles travel in opposing directions (e.g. the two directions of a
    /// two-way road).
    #[must_use]
    pub fn is_opposing(self, other: Heading) -> bool {
        self.angle_to(other) > 90.0
    }

    /// The opposite heading (rotated by 180°).
    #[must_use]
    pub fn reversed(self) -> Heading {
        Heading::from_degrees(self.0 + 180.0)
    }
}

impl Default for Heading {
    fn default() -> Self {
        Heading::NORTH
    }
}

impl fmt::Display for Heading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}°", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cardinal_unit_vectors() {
        let cases = [
            (Heading::NORTH, Position::new(0.0, 1.0)),
            (Heading::EAST, Position::new(1.0, 0.0)),
            (Heading::SOUTH, Position::new(0.0, -1.0)),
            (Heading::WEST, Position::new(-1.0, 0.0)),
        ];
        for (h, v) in cases {
            let u = h.unit_vector();
            assert!((u.x - v.x).abs() < 1e-12 && (u.y - v.y).abs() < 1e-12, "{h}");
        }
    }

    #[test]
    fn from_vector_round_trips_cardinals() {
        assert_eq!(Heading::from_vector(Position::new(1.0, 0.0)).unwrap(), Heading::EAST);
        assert_eq!(Heading::from_vector(Position::new(-5.0, 0.0)).unwrap(), Heading::WEST);
        assert_eq!(Heading::from_vector(Position::new(0.0, 3.0)).unwrap(), Heading::NORTH);
        assert!(Heading::from_vector(Position::ORIGIN).is_none());
    }

    #[test]
    fn normalisation_wraps() {
        assert_eq!(Heading::from_degrees(-90.0).degrees(), 270.0);
        assert_eq!(Heading::from_degrees(720.0).degrees(), 0.0);
        assert_eq!(Heading::from_degrees(450.0).degrees(), 90.0);
    }

    #[test]
    fn opposing_detection() {
        assert!(Heading::EAST.is_opposing(Heading::WEST));
        assert!(!Heading::EAST.is_opposing(Heading::EAST));
        assert!(!Heading::EAST.is_opposing(Heading::from_degrees(120.0)));
        assert!(Heading::EAST.is_opposing(Heading::from_degrees(200.0)));
    }

    #[test]
    fn reversed_is_involution() {
        let h = Heading::from_degrees(37.5);
        assert_eq!(h.reversed().reversed(), h);
        assert_eq!(Heading::EAST.reversed(), Heading::WEST);
    }

    proptest! {
        #[test]
        fn prop_degrees_in_range(d in -1e4f64..1e4) {
            let h = Heading::from_degrees(d);
            prop_assert!((0.0..360.0).contains(&h.degrees()));
        }

        #[test]
        fn prop_unit_vector_round_trip(d in 0.0f64..360.0) {
            let h = Heading::from_degrees(d);
            let back = Heading::from_vector(h.unit_vector()).unwrap();
            prop_assert!(h.angle_to(back) < 1e-6);
        }

        #[test]
        fn prop_angle_to_symmetric(a in 0.0f64..360.0, b in 0.0f64..360.0) {
            let ha = Heading::from_degrees(a);
            let hb = Heading::from_degrees(b);
            prop_assert!((ha.angle_to(hb) - hb.angle_to(ha)).abs() < 1e-9);
            prop_assert!(ha.angle_to(hb) <= 180.0 + 1e-9);
        }
    }
}
