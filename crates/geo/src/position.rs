//! Planar positions in metres on a local tangent plane.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A position (or displacement) on the local tangent plane, in metres.
///
/// The `x` axis points east and the `y` axis points north, matching the
/// convention used by the road model (`x` is the longitudinal coordinate of
/// the paper's 4 km road segment).
///
/// `Position` doubles as a 2-D vector: subtraction of two positions yields a
/// displacement, and displacements can be added back to positions.
///
/// # Example
///
/// ```
/// use geonet_geo::Position;
///
/// let a = Position::new(3.0, 0.0);
/// let b = Position::new(0.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!((a + b).x, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// Eastward coordinate in metres.
    pub x: f64,
    /// Northward coordinate in metres.
    pub y: f64,
}

impl Position {
    /// The origin of the local tangent plane.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position from eastward (`x`) and northward (`y`) metres.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    #[must_use]
    pub fn distance(self, other: Position) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other`, in square metres.
    ///
    /// Cheaper than [`Position::distance`]; prefer it for comparisons.
    #[must_use]
    pub fn distance_squared(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Length of this position interpreted as a vector from the origin.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.distance(Position::ORIGIN)
    }

    /// Dot product with `other` (both interpreted as vectors).
    #[must_use]
    pub fn dot(self, other: Position) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Returns the unit vector pointing from `self` towards `target`, or
    /// `None` if the two positions coincide.
    #[must_use]
    pub fn direction_to(self, target: Position) -> Option<Position> {
        let d = target - self;
        let n = d.norm();
        if n == 0.0 {
            None
        } else {
            Some(Position::new(d.x / n, d.y / n))
        }
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other`
    /// (at `t = 1`). `t` outside `[0, 1]` extrapolates.
    #[must_use]
    pub fn lerp(self, other: Position, t: f64) -> Position {
        Position::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Rotates this vector by `radians` counter-clockwise about the origin.
    #[must_use]
    pub fn rotated(self, radians: f64) -> Position {
        let (s, c) = radians.sin_cos();
        Position::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Returns `true` if both coordinates are finite (not NaN or infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Returns `true` if `self` lies within `range` metres of `other`.
    ///
    /// This is the reachability predicate used by the unit-disk radio
    /// medium: nodes hear each other iff the sender's communication range
    /// covers the receiver.
    #[must_use]
    pub fn within_range(self, other: Position, range: f64) -> bool {
        self.distance_squared(other) <= range * range
    }
}

impl Add for Position {
    type Output = Position;
    fn add(self, rhs: Position) -> Position {
        Position::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Position {
    fn add_assign(&mut self, rhs: Position) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Position {
    type Output = Position;
    fn sub(self, rhs: Position) -> Position {
        Position::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Position {
    fn sub_assign(&mut self, rhs: Position) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Position {
    type Output = Position;
    fn mul(self, rhs: f64) -> Position {
        Position::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Position {
    type Output = Position;
    fn neg(self) -> Position {
        Position::new(-self.x, -self.y)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2} m, {:.2} m)", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Position::new(-2.0, 7.5);
        let b = Position::new(10.0, -1.25);
        assert!((a.distance_squared(b) - a.distance(b).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(3.0, -1.0);
        assert_eq!(a + b, Position::new(4.0, 1.0));
        assert_eq!(a - b, Position::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Position::new(2.0, 4.0));
        assert_eq!(-a, Position::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn direction_to_is_unit_length() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(10.0, 10.0);
        let d = a.direction_to(b).unwrap();
        assert!((d.norm() - 1.0).abs() < 1e-12);
        assert!(a.direction_to(a).is_none());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(100.0, -50.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Position::new(50.0, -25.0));
    }

    #[test]
    fn rotation_quarter_turn() {
        let east = Position::new(1.0, 0.0);
        let north = east.rotated(std::f64::consts::FRAC_PI_2);
        assert!((north.x).abs() < 1e-12);
        assert!((north.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn within_range_boundary_inclusive() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(486.0, 0.0);
        assert!(a.within_range(b, 486.0));
        assert!(!a.within_range(b, 485.999));
    }

    #[test]
    fn display_formats_metres() {
        let p = Position::new(1.2345, -6.0);
        assert_eq!(p.to_string(), "(1.23 m, -6.00 m)");
    }

    proptest! {
        #[test]
        fn prop_distance_symmetric(ax in -1e6f64..1e6, ay in -1e6f64..1e6,
                                   bx in -1e6f64..1e6, by in -1e6f64..1e6) {
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-6);
        }

        #[test]
        fn prop_triangle_inequality(ax in -1e5f64..1e5, ay in -1e5f64..1e5,
                                    bx in -1e5f64..1e5, by in -1e5f64..1e5,
                                    cx in -1e5f64..1e5, cy in -1e5f64..1e5) {
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            let c = Position::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
        }

        #[test]
        fn prop_rotation_preserves_norm(x in -1e4f64..1e4, y in -1e4f64..1e4,
                                        theta in -10.0f64..10.0) {
            let p = Position::new(x, y);
            prop_assert!((p.rotated(theta).norm() - p.norm()).abs() < 1e-6);
        }

        #[test]
        fn prop_within_range_consistent_with_distance(
            ax in -1e5f64..1e5, ay in -1e5f64..1e5,
            bx in -1e5f64..1e5, by in -1e5f64..1e5,
            r in 0.0f64..5e4)
        {
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            // Allow a tolerance band around the boundary for float error.
            let d = a.distance(b);
            if d < r - 1e-6 {
                prop_assert!(a.within_range(b, r));
            } else if d > r + 1e-6 {
                prop_assert!(!a.within_range(b, r));
            }
        }
    }
}
