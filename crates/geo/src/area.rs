//! GeoBroadcast destination areas per ETSI EN 302 931.
//!
//! A GeoNetworking destination area is a circle, rectangle or ellipse
//! described by a centre position, half-axes `a`/`b` and an azimuth angle.
//! EN 302 931 defines a *geometric function* `F(x, y)` that is positive
//! inside the area, zero on its border and negative outside; packet handling
//! (whether a node floods with CBF or forwards with GF) is decided by the
//! sign of `F` at the node's own position.

use crate::{Heading, Position};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a destination area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AreaShape {
    /// Circular area; only the `a` half-axis (the radius) is meaningful.
    Circle,
    /// Axis-aligned-then-rotated rectangle with half-width `a` (along the
    /// azimuth direction) and half-height `b`.
    Rectangle,
    /// Ellipse with semi-major axis `a` (along the azimuth direction) and
    /// semi-minor axis `b`.
    Ellipse,
}

impl fmt::Display for AreaShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AreaShape::Circle => "circle",
            AreaShape::Rectangle => "rectangle",
            AreaShape::Ellipse => "ellipse",
        };
        f.write_str(s)
    }
}

/// A GeoBroadcast destination area (EN 302 931).
///
/// # Example
///
/// ```
/// use geonet_geo::{Area, Position};
///
/// // The paper's intra-area experiments use a rectangle covering the whole
/// // 4 km road segment.
/// let road = Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0);
/// assert!(road.contains(Position::new(10.0, 2.5)));
/// assert!(!road.contains(Position::new(4_500.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Area {
    shape: AreaShape,
    center: Position,
    /// Half-axis along the azimuth direction, metres. For circles this is
    /// the radius.
    a: f64,
    /// Half-axis perpendicular to the azimuth direction, metres. Unused for
    /// circles.
    b: f64,
    /// Azimuth of the `a` axis in degrees clockwise from north.
    azimuth_deg: f64,
}

impl Area {
    /// Creates a circular area of radius `radius` metres centred at
    /// `center`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not finite and positive.
    #[must_use]
    pub fn circle(center: Position, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "radius must be positive, got {radius}");
        Area { shape: AreaShape::Circle, center, a: radius, b: radius, azimuth_deg: 0.0 }
    }

    /// Creates a rectangular area with half-length `a` along the azimuth
    /// direction and half-width `b` across it.
    ///
    /// `azimuth_deg` is measured clockwise from north; `90.0` therefore
    /// orients the `a` axis east-west, the layout of the paper's road.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is not finite and positive.
    #[must_use]
    pub fn rectangle(center: Position, a: f64, b: f64, azimuth_deg: f64) -> Self {
        assert!(a.is_finite() && a > 0.0, "half-axis a must be positive, got {a}");
        assert!(b.is_finite() && b > 0.0, "half-axis b must be positive, got {b}");
        Area { shape: AreaShape::Rectangle, center, a, b, azimuth_deg }
    }

    /// Creates an elliptical area with semi-major axis `a` along the
    /// azimuth direction and semi-minor axis `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is not finite and positive.
    #[must_use]
    pub fn ellipse(center: Position, a: f64, b: f64, azimuth_deg: f64) -> Self {
        assert!(a.is_finite() && a > 0.0, "half-axis a must be positive, got {a}");
        assert!(b.is_finite() && b > 0.0, "half-axis b must be positive, got {b}");
        Area { shape: AreaShape::Ellipse, center, a, b, azimuth_deg }
    }

    /// The shape of this area.
    #[must_use]
    pub fn shape(&self) -> AreaShape {
        self.shape
    }

    /// The centre of the area.
    #[must_use]
    pub fn center(&self) -> Position {
        self.center
    }

    /// Half-axis `a` (radius for circles), metres.
    #[must_use]
    pub fn half_axis_a(&self) -> f64 {
        self.a
    }

    /// Half-axis `b`, metres.
    #[must_use]
    pub fn half_axis_b(&self) -> f64 {
        self.b
    }

    /// Azimuth of the `a` axis, degrees clockwise from north.
    #[must_use]
    pub fn azimuth_deg(&self) -> f64 {
        self.azimuth_deg
    }

    /// The EN 302 931 geometric function: positive inside the area, zero on
    /// the border, negative outside.
    ///
    /// The standard defines, for a point at local canonical coordinates
    /// `(x, y)` (centre at origin, `x` along the `a` axis):
    ///
    /// * circle:    `F = 1 − (x/r)² − (y/r)²`
    /// * rectangle: `F = min(1 − (x/a)², 1 − (y/b)²)`
    /// * ellipse:   `F = 1 − (x/a)² − (y/b)²`
    #[must_use]
    pub fn geometric_function(&self, p: Position) -> f64 {
        // Transform `p` into the canonical frame: translate to centre, then
        // rotate so the azimuth direction becomes the +x axis. The azimuth
        // is clockwise from north, i.e. the axis direction vector is
        // (sin az, cos az); rotating by −(90° − az) ... simpler: project
        // onto the axis and its normal.
        let axis = Heading::from_degrees(self.azimuth_deg).unit_vector();
        let normal = Position::new(-axis.y, axis.x);
        let d = p - self.center;
        let x = d.dot(axis);
        let y = d.dot(normal);
        match self.shape {
            AreaShape::Circle => {
                let r = self.a;
                1.0 - (x / r).powi(2) - (y / r).powi(2)
            }
            AreaShape::Rectangle => {
                let fx = 1.0 - (x / self.a).powi(2);
                let fy = 1.0 - (y / self.b).powi(2);
                fx.min(fy)
            }
            AreaShape::Ellipse => 1.0 - (x / self.a).powi(2) - (y / self.b).powi(2),
        }
    }

    /// Returns `true` if `p` lies inside or on the border of the area
    /// (`F(p) ≥ 0`).
    #[must_use]
    pub fn contains(&self, p: Position) -> bool {
        self.geometric_function(p) >= 0.0
    }

    /// Distance from `p` to the area centre, metres.
    ///
    /// GeoNetworking's greedy forwarding measures *progress* as distance to
    /// the destination area's centre; this helper names that operation.
    #[must_use]
    pub fn distance_to_center(&self, p: Position) -> f64 {
        self.center.distance(p)
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} (a = {:.1} m, b = {:.1} m, az = {:.1}°)",
            self.shape, self.center, self.a, self.b, self.azimuth_deg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn circle_contains_center_and_border() {
        let c = Area::circle(Position::new(100.0, 50.0), 10.0);
        assert!(c.contains(Position::new(100.0, 50.0)));
        assert!(c.contains(Position::new(110.0, 50.0))); // border: F = 0
        assert!(!c.contains(Position::new(110.1, 50.0)));
    }

    #[test]
    fn rectangle_axis_aligned_east_west() {
        // a axis along east (azimuth 90°): spans x ∈ [−2000, 2000] around
        // the centre, y ∈ [−20, 20].
        let r = Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0);
        assert!(r.contains(Position::new(0.0, 0.0)));
        assert!(r.contains(Position::new(4_000.0, 19.9)));
        assert!(!r.contains(Position::new(4_000.1, 0.0)));
        assert!(!r.contains(Position::new(2_000.0, 20.5)));
    }

    #[test]
    fn rectangle_rotation_45_degrees() {
        let r = Area::rectangle(Position::ORIGIN, 10.0, 1.0, 45.0);
        // Along azimuth 45° (north-east diagonal).
        let diag = Heading::from_degrees(45.0).unit_vector() * 9.9;
        assert!(r.contains(diag));
        // Perpendicular to it, 2 m away: outside (half-width 1 m).
        let perp = Heading::from_degrees(135.0).unit_vector() * 2.0;
        assert!(!r.contains(perp));
    }

    #[test]
    fn ellipse_axes() {
        let e = Area::ellipse(Position::ORIGIN, 10.0, 5.0, 90.0);
        // a axis points east.
        assert!(e.contains(Position::new(9.9, 0.0)));
        assert!(!e.contains(Position::new(10.1, 0.0)));
        assert!(e.contains(Position::new(0.0, 4.9)));
        assert!(!e.contains(Position::new(0.0, 5.1)));
    }

    #[test]
    fn geometric_function_sign_convention() {
        let c = Area::circle(Position::ORIGIN, 100.0);
        assert!(c.geometric_function(Position::ORIGIN) > 0.0);
        assert!(c.geometric_function(Position::new(100.0, 0.0)).abs() < 1e-12);
        assert!(c.geometric_function(Position::new(200.0, 0.0)) < 0.0);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn circle_rejects_zero_radius() {
        let _ = Area::circle(Position::ORIGIN, 0.0);
    }

    #[test]
    #[should_panic(expected = "half-axis a must be positive")]
    fn rectangle_rejects_nan() {
        let _ = Area::rectangle(Position::ORIGIN, f64::NAN, 1.0, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let c = Area::circle(Position::ORIGIN, 500.0);
        let s = c.to_string();
        assert!(s.contains("circle") && s.contains("500.0 m"), "{s}");
    }

    proptest! {
        #[test]
        fn prop_center_always_inside(cx in -1e4f64..1e4, cy in -1e4f64..1e4,
                                     a in 1.0f64..1e4, b in 1.0f64..1e4,
                                     az in 0.0f64..360.0, shape in 0usize..3) {
            let center = Position::new(cx, cy);
            let area = match shape {
                0 => Area::circle(center, a),
                1 => Area::rectangle(center, a, b, az),
                _ => Area::ellipse(center, a, b, az),
            };
            prop_assert!(area.contains(center));
        }

        #[test]
        fn prop_far_point_outside(a in 1.0f64..1e3, b in 1.0f64..1e3,
                                  az in 0.0f64..360.0, shape in 0usize..3) {
            let center = Position::ORIGIN;
            let area = match shape {
                0 => Area::circle(center, a),
                1 => Area::rectangle(center, a, b, az),
                _ => Area::ellipse(center, a, b, az),
            };
            // Any point farther than the largest half-axis is outside.
            let far = Position::new(0.0, a.max(b) * 3.0 + 10.0);
            prop_assert!(!area.contains(far));
        }

        #[test]
        fn prop_containment_monotone_along_ray(a in 1.0f64..1e3, b in 1.0f64..1e3,
                                               az in 0.0f64..360.0,
                                               dir in 0.0f64..360.0,
                                               shape in 0usize..3) {
            // Walking outward from the centre along any fixed ray, once you
            // leave a convex area you never re-enter it.
            let center = Position::ORIGIN;
            let area = match shape {
                0 => Area::circle(center, a),
                1 => Area::rectangle(center, a, b, az),
                _ => Area::ellipse(center, a, b, az),
            };
            let u = Heading::from_degrees(dir).unit_vector();
            let mut exited = false;
            for i in 0..100 {
                let p = u * (i as f64 * (a.max(b) * 3.0 / 100.0));
                let inside = area.contains(p);
                if exited {
                    prop_assert!(!inside);
                }
                if !inside {
                    exited = true;
                }
            }
        }

        #[test]
        fn prop_circle_matches_distance(r in 1.0f64..1e4,
                                        px in -2e4f64..2e4, py in -2e4f64..2e4) {
            let c = Area::circle(Position::ORIGIN, r);
            let p = Position::new(px, py);
            let d = p.norm();
            if (d - r).abs() > 1e-6 {
                prop_assert_eq!(c.contains(p), d < r);
            }
        }
    }
}
