//! Geometry and addressing primitives for GeoNetworking simulation.
//!
//! This crate provides the spatial vocabulary shared by every other crate in
//! the workspace:
//!
//! * [`Position`] — a planar position in metres on a local tangent plane,
//!   with the usual vector arithmetic.
//! * [`Heading`] — a direction of travel in degrees clockwise from north,
//!   matching the encoding used by GeoNetworking position vectors.
//! * [`Area`] — a GeoBroadcast destination area (circle, rectangle or
//!   ellipse) with the *geometric function* `F(x, y)` defined by
//!   ETSI EN 302 931, used to decide whether a node is inside the area.
//! * [`GeoReference`] — a local tangent-plane projection mapping planar
//!   metre coordinates to and from the 1/10 micro-degree WGS-84 latitude /
//!   longitude integers carried in GeoNetworking wire formats.
//!
//! The simulation operates in planar metres (the paper's road segment is a
//! 4 km straight segment); the projection exists so that wire-format
//! encode/decode round-trips through real coordinate encodings.
//!
//! # Example
//!
//! ```
//! use geonet_geo::{Position, Area};
//!
//! let src = Position::new(0.0, 0.0);
//! let dst = Position::new(3_000.0, 0.0);
//! assert_eq!(src.distance(dst), 3_000.0);
//!
//! // A circular destination area of radius 500 m centred at `dst`.
//! let area = Area::circle(dst, 500.0);
//! assert!(area.contains(Position::new(2_700.0, 0.0)));
//! assert!(!area.contains(src));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod heading;
pub mod position;
pub mod projection;

pub use area::{Area, AreaShape};
pub use heading::Heading;
pub use position::Position;
pub use projection::{GeoCoord, GeoReference};
