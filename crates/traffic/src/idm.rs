//! The Intelligent Driver Model (IDM) car-following model.
//!
//! IDM computes a vehicle's longitudinal acceleration from its speed, the
//! gap to its leader and their speed difference:
//!
//! ```text
//! a = a_max · [ 1 − (v / v0)^δ − (s*(v, Δv) / s)² ]
//! s*(v, Δv) = s0 + v·T + v·Δv / (2·√(a_max·b))
//! ```
//!
//! with `v0` the desired velocity, `T` the safe time headway, `b` the
//! comfortable deceleration, `δ` the acceleration exponent and `s0` the
//! minimum distance. The paper's Table I parameter values are provided by
//! [`IdmParams::paper_default`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// IDM parameters (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdmParams {
    /// Desired velocity `v0`, m/s.
    pub desired_velocity: f64,
    /// Safe time headway `T`, seconds.
    pub safe_time_headway: f64,
    /// Maximum acceleration `a_max`, m/s².
    pub max_acceleration: f64,
    /// Comfortable deceleration `b`, m/s² (positive).
    pub comfortable_deceleration: f64,
    /// Acceleration exponent `δ`.
    pub acceleration_exponent: f64,
    /// Minimum bumper-to-bumper distance `s0`, metres.
    pub minimum_distance: f64,
}

impl IdmParams {
    /// The paper's Table I values: 30 m/s, 1.5 s, 1.0 m/s², 3.0 m/s²,
    /// exponent 4, minimum distance 2 m.
    #[must_use]
    pub const fn paper_default() -> Self {
        IdmParams {
            desired_velocity: 30.0,
            safe_time_headway: 1.5,
            max_acceleration: 1.0,
            comfortable_deceleration: 3.0,
            acceleration_exponent: 4.0,
            minimum_distance: 2.0,
        }
    }

    /// Validates that all parameters are finite and positive.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            ("desired_velocity", self.desired_velocity),
            ("safe_time_headway", self.safe_time_headway),
            ("max_acceleration", self.max_acceleration),
            ("comfortable_deceleration", self.comfortable_deceleration),
            ("acceleration_exponent", self.acceleration_exponent),
            ("minimum_distance", self.minimum_distance),
        ];
        for (name, v) in checks {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("IDM parameter {name} must be finite and positive, got {v}"));
            }
        }
        Ok(())
    }

    /// The desired dynamic gap `s*(v, Δv)`.
    ///
    /// `v` is the follower's speed and `dv = v − v_leader` the closing
    /// speed (positive when approaching the leader).
    #[must_use]
    pub fn desired_gap(&self, v: f64, dv: f64) -> f64 {
        let dynamic = v * self.safe_time_headway
            + v * dv / (2.0 * (self.max_acceleration * self.comfortable_deceleration).sqrt());
        // s* is floored at s0: the stationary term never shrinks below the
        // minimum distance even when the leader is pulling away fast.
        self.minimum_distance + dynamic.max(0.0)
    }

    /// IDM acceleration for a follower at speed `v` with bumper-to-bumper
    /// `gap` to its leader and closing speed `dv = v − v_leader`.
    ///
    /// Pass `gap = f64::INFINITY` (or use [`IdmParams::free_road_acceleration`])
    /// when there is no leader. The result is clamped below at `−2·b` to
    /// model a physical emergency-braking limit.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is not positive — IDM is undefined at zero gap; the
    /// caller (the traffic simulation) treats gap ≤ 0 as a collision
    /// before invoking the model.
    #[must_use]
    pub fn acceleration(&self, v: f64, gap: f64, dv: f64) -> f64 {
        assert!(gap > 0.0, "IDM undefined for non-positive gap: {gap}");
        let free = 1.0 - (v / self.desired_velocity).powf(self.acceleration_exponent);
        let interaction = (self.desired_gap(v, dv) / gap).powi(2);
        let a = self.max_acceleration * (free - interaction);
        a.max(-2.0 * self.comfortable_deceleration)
    }

    /// Acceleration on a free road (no leader).
    #[must_use]
    pub fn free_road_acceleration(&self, v: f64) -> f64 {
        self.max_acceleration * (1.0 - (v / self.desired_velocity).powf(self.acceleration_exponent))
    }
}

impl Default for IdmParams {
    fn default() -> Self {
        IdmParams::paper_default()
    }
}

impl fmt::Display for IdmParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IDM(v0={} m/s, T={} s, a={} m/s², b={} m/s², δ={}, s0={} m)",
            self.desired_velocity,
            self.safe_time_headway,
            self.max_acceleration,
            self.comfortable_deceleration,
            self.acceleration_exponent,
            self.minimum_distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table1_values() {
        let p = IdmParams::paper_default();
        assert_eq!(p.desired_velocity, 30.0);
        assert_eq!(p.safe_time_headway, 1.5);
        assert_eq!(p.max_acceleration, 1.0);
        assert_eq!(p.comfortable_deceleration, 3.0);
        assert_eq!(p.acceleration_exponent, 4.0);
        assert_eq!(p.minimum_distance, 2.0);
        assert!(p.validate().is_ok());
        assert_eq!(IdmParams::default(), p);
    }

    #[test]
    fn free_road_accelerates_below_desired_speed() {
        let p = IdmParams::paper_default();
        assert!(p.free_road_acceleration(0.0) > 0.99);
        assert!(p.free_road_acceleration(15.0) > 0.0);
        assert!(p.free_road_acceleration(30.0).abs() < 1e-12);
        assert!(p.free_road_acceleration(35.0) < 0.0);
    }

    #[test]
    fn close_gap_forces_braking() {
        let p = IdmParams::paper_default();
        // At 30 m/s with a 5 m gap to a stopped leader the model must brake
        // hard.
        let a = p.acceleration(30.0, 5.0, 30.0);
        assert!(a <= -2.0 * p.comfortable_deceleration + 1e-9, "a = {a}");
    }

    #[test]
    fn equilibrium_gap_is_headway_plus_minimum() {
        let p = IdmParams::paper_default();
        // Following at equal speed: desired gap = s0 + v·T.
        let g = p.desired_gap(30.0, 0.0);
        assert!((g - (2.0 + 45.0)).abs() < 1e-9);
    }

    #[test]
    fn desired_gap_never_below_minimum() {
        let p = IdmParams::paper_default();
        // Leader pulling away fast: dynamic term would be negative.
        assert!((p.desired_gap(10.0, -50.0) - p.minimum_distance).abs() < 1e-12);
    }

    #[test]
    fn acceleration_clamped_at_emergency_limit() {
        let p = IdmParams::paper_default();
        let a = p.acceleration(30.0, 0.1, 30.0);
        assert_eq!(a, -2.0 * p.comfortable_deceleration);
    }

    #[test]
    #[should_panic(expected = "non-positive gap")]
    fn zero_gap_panics() {
        let _ = IdmParams::paper_default().acceleration(10.0, 0.0, 0.0);
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut p = IdmParams::paper_default();
        p.safe_time_headway = -1.0;
        let err = p.validate().unwrap_err();
        assert!(err.contains("safe_time_headway"), "{err}");
    }

    #[test]
    fn display_lists_parameters() {
        let s = IdmParams::paper_default().to_string();
        assert!(s.contains("v0=30") && s.contains("s0=2"), "{s}");
    }

    proptest! {
        #[test]
        fn prop_acceleration_finite_and_bounded(v in 0.0f64..40.0,
                                                gap in 0.1f64..2_000.0,
                                                dv in -40.0f64..40.0) {
            let p = IdmParams::paper_default();
            let a = p.acceleration(v, gap, dv);
            prop_assert!(a.is_finite());
            prop_assert!(a <= p.max_acceleration + 1e-9);
            prop_assert!(a >= -2.0 * p.comfortable_deceleration - 1e-9);
        }

        #[test]
        fn prop_acceleration_monotone_in_gap(v in 0.0f64..40.0,
                                             g1 in 0.1f64..2_000.0,
                                             g2 in 0.1f64..2_000.0,
                                             dv in -40.0f64..40.0) {
            // A larger gap never yields a smaller acceleration.
            let p = IdmParams::paper_default();
            let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
            prop_assert!(p.acceleration(v, hi, dv) >= p.acceleration(v, lo, dv) - 1e-9);
        }

        #[test]
        fn prop_follower_never_collides_in_simulation(
            leader_v in 0.0f64..30.0, extra_gap in 0.0f64..200.0)
        {
            // Euler-integrate a follower behind a constant-speed leader at
            // the paper's 0.1 s timestep, starting from an equilibrium-safe
            // state (same speed, at least the desired gap): the gap must
            // never go below zero.
            let p = IdmParams::paper_default();
            let dt = 0.1;
            let mut v = leader_v;
            let mut gap = p.desired_gap(leader_v, 0.0) + extra_gap;
            for _ in 0..2_000 {
                let a = p.acceleration(v, gap.max(0.01), v - leader_v);
                let v_new = (v + a * dt).max(0.0);
                gap += (leader_v - (v + v_new) / 2.0) * dt;
                v = v_new;
                prop_assert!(gap > 0.0, "collision: gap = {gap}");
            }
        }
    }
}
