//! The fixed-timestep traffic simulation.

use crate::road::{Direction, RoadConfig};
use crate::vehicle::{Vehicle, VehicleId};
use geonet_geo::Position;
use geonet_sim::{SimTime, StateHasher, Telemetry, TraceEvent, Tracer};
use std::collections::HashMap;
use std::fmt;

/// Stable wire code for a direction, for audit digests.
fn direction_code(d: Direction) -> u8 {
    match d {
        Direction::East => 0,
        Direction::West => 1,
    }
}

/// A hazard blocking all lanes of one direction at a longitudinal
/// position (the paper's Figure 11a event blocks both eastbound lanes at
/// 3 600 m).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Hazard {
    direction: Direction,
    s: f64,
}

/// The traffic microsimulation.
///
/// Vehicles follow the Intelligent Driver Model within their lane. The road
/// is pre-filled at the configured inter-vehicle spacing so runs start in
/// steady state (the paper's "vehicles are 30 meters apart" default), and
/// new vehicles enter at 30 m/s whenever the vehicle ahead is more than the
/// spacing away from the entrance.
///
/// Hazards block a direction: vehicles treat the hazard as a stopped
/// leader and queue behind it. Each direction has an *entry gate* that the
/// scenario layer closes when the entrance is informed of a hazard — the
/// mechanism behind the paper's Figure 12 traffic-jam comparison.
///
/// # Example
///
/// ```
/// use geonet_traffic::{Direction, RoadConfig, TrafficSim};
///
/// let mut sim = TrafficSim::new(RoadConfig::paper_default());
/// assert!(sim.count_on_road() > 100); // pre-filled 4 km road
/// sim.add_hazard(Direction::East, 3_600.0);
/// sim.set_entry_open(Direction::East, false); // entrance informed
/// for _ in 0..100 { sim.step(0.1); }
/// ```
pub struct TrafficSim {
    road: RoadConfig,
    vehicles: Vec<Vehicle>,
    hazards: Vec<Hazard>,
    entry_open: HashMap<Direction, bool>,
    next_lane: HashMap<Direction, u8>,
    last_entered: HashMap<Direction, VehicleId>,
    collisions: u64,
    elapsed: f64,
    tracer: Tracer,
    telemetry: Telemetry,
}

impl TrafficSim {
    /// Creates a pre-filled simulation from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`RoadConfig::validate`].
    #[must_use]
    pub fn new(road: RoadConfig) -> Self {
        road.validate().unwrap_or_else(|e| panic!("invalid road config: {e}"));
        let mut sim = TrafficSim {
            road,
            vehicles: Vec::new(),
            hazards: Vec::new(),
            entry_open: road.directions().iter().map(|&d| (d, true)).collect(),
            next_lane: road.directions().iter().map(|&d| (d, 0)).collect(),
            last_entered: HashMap::new(),
            collisions: 0,
            elapsed: 0.0,
            tracer: Tracer::disabled(),
            telemetry: Telemetry::disabled(),
        };
        sim.prefill();
        sim
    }

    /// Pre-fills each direction with vehicles every `spacing` metres,
    /// alternating lanes, travelling at the entry speed.
    fn prefill(&mut self) {
        for &direction in self.road.directions() {
            let mut lane = 0u8;
            let mut s = self.road.length;
            while s >= self.road.spacing {
                let id = self.push_vehicle(direction, lane, s, self.road.entry_speed);
                self.last_entered.insert(direction, id);
                lane = (lane + 1) % self.road.lanes_per_direction;
                s -= self.road.spacing;
            }
            self.next_lane.insert(direction, lane);
        }
    }

    fn push_vehicle(&mut self, direction: Direction, lane: u8, s: f64, v: f64) -> VehicleId {
        let id = VehicleId(u32::try_from(self.vehicles.len()).expect("too many vehicles"));
        self.vehicles.push(Vehicle { id, direction, lane, s, v, exited: false });
        id
    }

    /// The road configuration.
    #[must_use]
    pub fn road(&self) -> &RoadConfig {
        &self.road
    }

    /// Simulated seconds elapsed.
    #[must_use]
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// All vehicles ever spawned (including exited ones), indexable by
    /// [`VehicleId::index`].
    #[must_use]
    pub fn all_vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// The vehicles currently on the road.
    pub fn active_vehicles(&self) -> impl Iterator<Item = &Vehicle> {
        self.vehicles.iter().filter(|v| !v.exited)
    }

    /// Looks up a vehicle by id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this simulation.
    #[must_use]
    pub fn vehicle(&self, id: VehicleId) -> &Vehicle {
        &self.vehicles[id.index()]
    }

    /// Planar position of a vehicle.
    #[must_use]
    pub fn position(&self, id: VehicleId) -> Position {
        let v = self.vehicle(id);
        v.position(&self.road)
    }

    /// Number of vehicles currently on the road segment proper (not yet
    /// past its end) — the paper's Figure 12 metric.
    #[must_use]
    pub fn count_on_road(&self) -> usize {
        self.active_vehicles().filter(|v| v.s <= self.road.length).count()
    }

    /// The vehicles on the road segment proper (excludes vehicles coasting
    /// through the off-road margin).
    pub fn on_segment_vehicles(&self) -> impl Iterator<Item = &Vehicle> {
        let length = self.road.length;
        self.active_vehicles().filter(move |v| v.s <= length)
    }

    /// Number of gap-collapse events observed (gap ≤ 0 between follower
    /// and leader). IDM alone never produces these; they indicate scripted
    /// interference.
    #[must_use]
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Opens or closes a direction's entry gate. While closed, no vehicles
    /// enter (the entrance has been informed of a hazard and traffic
    /// diverts).
    pub fn set_entry_open(&mut self, direction: Direction, open: bool) {
        self.entry_open.insert(direction, open);
    }

    /// Whether a direction's entry gate is open.
    #[must_use]
    pub fn entry_open(&self, direction: Direction) -> bool {
        self.entry_open.get(&direction).copied().unwrap_or(false)
    }

    /// Folds the simulation's canonical state — clock, collision count,
    /// every vehicle's kinematics, hazards and per-direction entry
    /// bookkeeping — into an audit digest. The hash-map state is walked
    /// via [`RoadConfig::directions`] so the digest never depends on
    /// `HashMap` iteration order.
    pub fn digest_into(&self, h: &mut StateHasher) {
        h.write_f64(self.elapsed);
        h.write_u64(self.collisions);
        h.write_u64(self.vehicles.len() as u64);
        for v in &self.vehicles {
            h.write_u64(u64::from(v.id.0));
            h.write_u8(direction_code(v.direction));
            h.write_u8(v.lane);
            h.write_f64(v.s);
            h.write_f64(v.v);
            h.write_bool(v.exited);
        }
        h.write_u64(self.hazards.len() as u64);
        for hz in &self.hazards {
            h.write_u8(direction_code(hz.direction));
            h.write_f64(hz.s);
        }
        for &d in self.road.directions() {
            h.write_u8(direction_code(d));
            h.write_bool(self.entry_open(d));
            h.write_u8(self.next_lane.get(&d).copied().unwrap_or(0));
            match self.last_entered.get(&d) {
                Some(id) => h.write_u64(u64::from(id.0) + 1),
                None => h.write_u64(0),
            }
        }
    }

    /// Places a hazard blocking all lanes of `direction` at longitudinal
    /// position `s`. Vehicles behind it queue; vehicles past it drive on
    /// and exit.
    ///
    /// # Panics
    ///
    /// Panics if `s` is outside the road.
    pub fn add_hazard(&mut self, direction: Direction, s: f64) {
        assert!(
            (0.0..=self.road.length).contains(&s),
            "hazard at {s} outside road of length {}",
            self.road.length
        );
        self.hazards.push(Hazard { direction, s });
        self.tracer.emit(SimTime::from_secs_f64(self.elapsed), || TraceEvent::HazardOnset { x: s });
    }

    /// Attaches a tracer; hazard onsets and collisions are emitted as
    /// [`TraceEvent`]s from now on.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a telemetry handle; every [`TrafficSim::step`] is
    /// wall-clock timed through it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Removes all hazards in `direction` (the event has been cleared).
    pub fn clear_hazards(&mut self, direction: Direction) {
        self.hazards.retain(|h| h.direction != direction);
    }

    /// The nearest hazard ahead of longitudinal position `s` in
    /// `direction`, if any.
    fn hazard_ahead(&self, direction: Direction, s: f64) -> Option<f64> {
        self.hazards
            .iter()
            .filter(|h| h.direction == direction && h.s > s)
            .map(|h| h.s)
            .min_by(|a, b| a.partial_cmp(b).expect("hazard positions are finite"))
    }

    /// Advances the simulation by `dt` seconds (the paper uses 0.1 s).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not finite and positive.
    pub fn step(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt > 0.0, "invalid timestep: {dt}");
        let _span = self.telemetry.time("traffic_step_ns");
        self.elapsed += dt;

        // Group active vehicle indices per (direction, lane), sorted by
        // longitudinal position descending (leader first).
        let mut lanes: HashMap<(Direction, u8), Vec<usize>> = HashMap::new();
        for (i, v) in self.vehicles.iter().enumerate() {
            if !v.exited {
                lanes.entry((v.direction, v.lane)).or_default().push(i);
            }
        }
        // Deterministic iteration: sort the lane keys.
        let mut keys: Vec<(Direction, u8)> = lanes.keys().copied().collect();
        keys.sort_by_key(|&(d, l)| (d == Direction::West, l));

        for key in keys {
            let mut idxs = lanes.remove(&key).expect("key from map");
            idxs.sort_by(|&a, &b| {
                self.vehicles[b].s.partial_cmp(&self.vehicles[a].s).expect("positions are finite")
            });
            // Compute accelerations against the current (pre-update) state,
            // then integrate — a synchronous update, standard for IDM.
            let mut accels = Vec::with_capacity(idxs.len());
            for (rank, &i) in idxs.iter().enumerate() {
                let v = &self.vehicles[i];
                let leader_gap = if rank == 0 {
                    None
                } else {
                    let lead = &self.vehicles[idxs[rank - 1]];
                    Some((lead.s - self.road.vehicle_length - v.s, lead.v))
                };
                // A hazard acts as a stopped, zero-length leader.
                let hazard_gap = self.hazard_ahead(v.direction, v.s).map(|hs| (hs - v.s, 0.0f64));
                let binding = match (leader_gap, hazard_gap) {
                    (Some(l), Some(h)) => Some(if l.0 <= h.0 { l } else { h }),
                    (l, h) => l.or(h),
                };
                let a = match binding {
                    Some((gap, lead_v)) => {
                        if gap <= 0.0 {
                            // Gap collapse: scripted interference (never
                            // produced by IDM itself). Record and stop dead.
                            self.collisions += 1;
                            let x = v.s;
                            self.tracer.emit(SimTime::from_secs_f64(self.elapsed), || {
                                TraceEvent::Collision { x }
                            });
                            -f64::INFINITY // sentinel: stop below
                        } else {
                            self.road.idm.acceleration(v.v, gap, v.v - lead_v)
                        }
                    }
                    None => self.road.idm.free_road_acceleration(v.v),
                };
                accels.push(a);
            }
            for (&i, &a) in idxs.iter().zip(&accels) {
                let veh = &mut self.vehicles[i];
                if a == -f64::INFINITY {
                    veh.v = 0.0;
                    continue;
                }
                let v_new = (veh.v + a * dt).max(0.0);
                veh.s += (veh.v + v_new) / 2.0 * dt;
                veh.v = v_new;
            }
        }

        // Exits: the vehicle has driven past the off-road margin and can
        // no longer matter to anything on the segment.
        let cutoff = self.road.length + self.road.offroad_margin;
        for v in &mut self.vehicles {
            if !v.exited && v.s > cutoff {
                v.exited = true;
            }
        }

        // Entries.
        let directions: Vec<Direction> = self.road.directions().to_vec();
        for direction in directions {
            self.try_spawn(direction);
        }
    }

    /// Entry rule: a vehicle enters at the configured speed when the last
    /// vehicle that entered this direction is more than `spacing` metres
    /// from the entrance (and the gate is open). Lanes are used round-robin.
    fn try_spawn(&mut self, direction: Direction) {
        if !self.entry_open(direction) {
            return;
        }
        if let Some(&last) = self.last_entered.get(&direction) {
            let lv = &self.vehicles[last.index()];
            if !lv.exited && lv.s <= self.road.spacing {
                return;
            }
        }
        let lane = *self.next_lane.get(&direction).unwrap_or(&0);
        // Lane safety: the rearmost vehicle in the target lane must also be
        // clear of the entrance.
        let lane_clear = self
            .vehicles
            .iter()
            .filter(|v| !v.exited && v.direction == direction && v.lane == lane)
            .all(|v| v.s > self.road.spacing);
        if !lane_clear {
            return;
        }
        let id = self.push_vehicle(direction, lane, 0.0, self.road.entry_speed);
        self.last_entered.insert(direction, id);
        self.next_lane.insert(direction, (lane + 1) % self.road.lanes_per_direction);
    }
}

impl fmt::Debug for TrafficSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrafficSim")
            .field("elapsed", &self.elapsed)
            .field("on_road", &self.count_on_road())
            .field("total_spawned", &self.vehicles.len())
            .field("hazards", &self.hazards.len())
            .field("collisions", &self.collisions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sim: &mut TrafficSim, seconds: f64) {
        let steps = (seconds / 0.1).round() as usize;
        for _ in 0..steps {
            sim.step(0.1);
        }
    }

    #[test]
    fn prefill_matches_spacing() {
        let sim = TrafficSim::new(RoadConfig::paper_default());
        // 4 000 / 30 = 133 vehicles pre-filled.
        assert_eq!(sim.count_on_road(), 133);
        // Consecutive vehicles in the direction stream are `spacing` apart.
        let mut ss: Vec<f64> = sim.active_vehicles().map(|v| v.s).collect();
        ss.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in ss.windows(2) {
            assert!((w[1] - w[0] - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prefill_alternates_lanes() {
        let sim = TrafficSim::new(RoadConfig::paper_default());
        let mut by_lane = [0usize; 2];
        for v in sim.active_vehicles() {
            by_lane[v.lane as usize] += 1;
        }
        assert!(by_lane[0].abs_diff(by_lane[1]) <= 1, "{by_lane:?}");
    }

    #[test]
    fn two_way_prefills_both_directions() {
        let sim = TrafficSim::new(RoadConfig::paper_two_way());
        assert_eq!(sim.count_on_road(), 266);
        assert!(sim.active_vehicles().any(|v| v.direction == Direction::West));
    }

    #[test]
    fn steady_state_flow_is_stable() {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        run(&mut sim, 60.0);
        // Entries balance exits: the on-road count stays near 133.
        let n = sim.count_on_road();
        assert!((120..=146).contains(&n), "count = {n}");
        // No collisions under pure IDM.
        assert_eq!(sim.collisions(), 0);
    }

    #[test]
    fn vehicles_exit_at_far_end() {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        run(&mut sim, 10.0);
        // After 10 s the head vehicle is past the segment but still
        // simulated (coasting through the off-road margin)...
        assert!(sim.all_vehicles().iter().all(|v| !v.exited));
        assert!(sim.active_vehicles().any(|v| v.s > 4_000.0));
        // ...and after 30 s it has cleared the margin and is gone.
        run(&mut sim, 20.0);
        assert!(sim.all_vehicles().iter().any(|v| v.exited));
    }

    #[test]
    fn spawn_rate_approximates_paper_volume() {
        // ≈1 vehicle/second at 30 m spacing and 30 m/s (the paper's
        // 94 951 AADT ≈ 1.1 vehicles/second).
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        let before = sim.all_vehicles().len();
        run(&mut sim, 100.0);
        let spawned = sim.all_vehicles().len() - before;
        assert!((85..=115).contains(&spawned), "spawned {spawned} in 100 s");
    }

    #[test]
    fn closed_gate_stops_entries() {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        sim.set_entry_open(Direction::East, false);
        let before = sim.all_vehicles().len();
        run(&mut sim, 30.0);
        assert_eq!(sim.all_vehicles().len(), before);
        assert!(!sim.entry_open(Direction::East));
    }

    #[test]
    fn hazard_queues_traffic() {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        sim.add_hazard(Direction::East, 3_600.0);
        run(&mut sim, 120.0);
        // Vehicles queue behind the hazard: none straddle it, and the
        // closest queued vehicle is (nearly) stopped short of it.
        let max_s = sim.active_vehicles().map(|v| v.s).fold(f64::NEG_INFINITY, f64::max);
        assert!(max_s < 3_600.0, "vehicle passed the hazard: {max_s}");
        let queue_head =
            sim.active_vehicles().max_by(|a, b| a.s.partial_cmp(&b.s).unwrap()).unwrap();
        assert!(queue_head.v < 1.0, "queue head still moving at {} m/s", queue_head.v);
        // With the gate open the jam grows past the steady-state count.
        assert!(sim.count_on_road() > 140, "count = {}", sim.count_on_road());
        assert_eq!(sim.collisions(), 0);
    }

    #[test]
    fn hazard_lets_downstream_vehicles_exit() {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        sim.add_hazard(Direction::East, 3_600.0);
        let downstream: Vec<VehicleId> =
            sim.active_vehicles().filter(|v| v.s > 3_600.0).map(|v| v.id).collect();
        assert!(!downstream.is_empty());
        // Worst case: (4 600 − 3 610) / 30 ≈ 33 s to clear the margin.
        run(&mut sim, 50.0);
        for id in downstream {
            assert!(sim.vehicle(id).exited, "{id} should have exited");
        }
    }

    #[test]
    fn clear_hazards_releases_queue() {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        sim.add_hazard(Direction::East, 1_000.0);
        run(&mut sim, 60.0);
        sim.clear_hazards(Direction::East);
        run(&mut sim, 30.0);
        let max_s = sim.active_vehicles().map(|v| v.s).fold(f64::NEG_INFINITY, f64::max);
        assert!(max_s > 1_000.0, "queue did not release: {max_s}");
    }

    #[test]
    fn wider_spacing_lowers_density() {
        let sparse = TrafficSim::new(RoadConfig::paper_default().with_spacing(300.0));
        assert_eq!(sparse.count_on_road(), 13); // 4000/300
    }

    #[test]
    #[should_panic(expected = "outside road")]
    fn hazard_outside_road_panics() {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        sim.add_hazard(Direction::East, 4_500.0);
    }

    #[test]
    #[should_panic(expected = "invalid timestep")]
    fn step_rejects_bad_dt() {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        sim.step(0.0);
    }

    #[test]
    fn determinism_same_config_same_trajectory() {
        let mut a = TrafficSim::new(RoadConfig::paper_default());
        let mut b = TrafficSim::new(RoadConfig::paper_default());
        run(&mut a, 20.0);
        run(&mut b, 20.0);
        assert_eq!(a.all_vehicles().len(), b.all_vehicles().len());
        for (va, vb) in a.all_vehicles().iter().zip(b.all_vehicles()) {
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn debug_output_mentions_counts() {
        let sim = TrafficSim::new(RoadConfig::paper_default());
        let s = format!("{sim:?}");
        assert!(s.contains("on_road"), "{s}");
    }

    #[test]
    fn positions_track_longitudinal_motion() {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        let id = sim.active_vehicles().next().unwrap().id;
        let before = sim.position(id);
        run(&mut sim, 1.0);
        let v = sim.vehicle(id);
        if !v.exited {
            let after = sim.position(id);
            assert!(after.x > before.x, "eastbound vehicle must move east");
        }
    }
}
