//! Vehicle identity and state.

use crate::road::Direction;
use geonet_geo::{Heading, Position};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a vehicle for the lifetime of a simulation run.
///
/// Ids are dense indices assigned in spawn order and never reused, so they
/// double as stable indices into per-vehicle side tables (the scenario
/// layer maps them 1:1 onto radio node ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VehicleId(pub u32);

impl VehicleId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The dynamic state of one vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Stable identity.
    pub id: VehicleId,
    /// Direction of travel.
    pub direction: Direction,
    /// Lane index within the direction (0 = innermost).
    pub lane: u8,
    /// Longitudinal position: distance of the front bumper from the
    /// direction's entrance, metres.
    pub s: f64,
    /// Speed, m/s (never negative).
    pub v: f64,
    /// Whether the vehicle has left the simulation entirely (driven past
    /// the off-road margin).
    pub exited: bool,
}

impl Vehicle {
    /// Whether the vehicle is on the instrumented road segment proper
    /// (`0 ≤ s ≤ length`). Vehicles past the end are still simulated (and
    /// still relay packets) until they pass the off-road margin, but do
    /// not count as "on the road".
    #[must_use]
    pub fn on_segment(&self, road: &crate::RoadConfig) -> bool {
        !self.exited && self.s <= road.length
    }
}

impl Vehicle {
    /// Planar position of the vehicle's front bumper given the road
    /// configuration.
    #[must_use]
    pub fn position(&self, road: &crate::RoadConfig) -> Position {
        road.to_position(self.direction, self.lane, self.s)
    }

    /// The vehicle's heading.
    #[must_use]
    pub fn heading(&self) -> Heading {
        self.direction.heading()
    }
}

impl fmt::Display for Vehicle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} lane {} s={:.1} m v={:.1} m/s{}",
            self.id,
            self.direction,
            self.lane,
            self.s,
            self.v,
            if self.exited { " (exited)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoadConfig;

    #[test]
    fn position_uses_road_geometry() {
        let road = RoadConfig::paper_default();
        let v = Vehicle {
            id: VehicleId(3),
            direction: Direction::East,
            lane: 1,
            s: 120.0,
            v: 30.0,
            exited: false,
        };
        let p = v.position(&road);
        assert_eq!(p, Position::new(120.0, 7.5));
        assert_eq!(v.heading(), Heading::EAST);
    }

    #[test]
    fn id_ordering_and_display() {
        assert!(VehicleId(1) < VehicleId(2));
        assert_eq!(VehicleId(9).to_string(), "v9");
        assert_eq!(VehicleId(9).index(), 9);
    }

    #[test]
    fn display_mentions_exit() {
        let road = RoadConfig::paper_default();
        let mut v = Vehicle {
            id: VehicleId(0),
            direction: Direction::West,
            lane: 0,
            s: 0.0,
            v: 0.0,
            exited: false,
        };
        assert!(!v.to_string().contains("exited"));
        v.exited = true;
        assert!(v.to_string().contains("exited"));
        let _ = v.position(&road);
    }
}
