//! Traffic microsimulation for the GeoNetworking attack evaluation.
//!
//! Reproduces the paper's traffic model (§IV-A):
//!
//! * [`IdmParams`] — the Intelligent Driver Model with the paper's
//!   Table I parameters (desired velocity 30 m/s, safe time headway 1.5 s,
//!   max acceleration 1 m/s², comfortable deceleration 3 m/s², exponent 4,
//!   minimum distance 2 m).
//! * [`RoadConfig`] — a 4 000 m road segment, two 5 m lanes per direction,
//!   one- or two-way, 4.5 m vehicles.
//! * [`TrafficSim`] — fixed-timestep microsimulation: IDM car-following,
//!   entry at 30 m/s when the vehicle ahead is more than the configured
//!   inter-vehicle space from the entrance, exit at the far end, hazard
//!   events that block a direction, and an entry gate that closes when the
//!   entrance is informed of a hazard (the paper's Figure 12 scenarios).
//!
//! # Example
//!
//! ```
//! use geonet_traffic::{RoadConfig, TrafficSim};
//!
//! let mut sim = TrafficSim::new(RoadConfig::paper_default());
//! let before = sim.count_on_road();
//! for _ in 0..100 {
//!     sim.step(0.1); // 10 s of traffic
//! }
//! assert!(sim.count_on_road() >= before); // flow is roughly steady
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod idm;
pub mod road;
pub mod sim;
pub mod vehicle;

pub use idm::IdmParams;
pub use road::{Direction, RoadConfig};
pub use sim::TrafficSim;
pub use vehicle::{Vehicle, VehicleId};
