//! Road geometry: the paper's 4 km segment.

use geonet_geo::{Heading, Position};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::IdmParams;

/// Direction of travel on the road.
///
/// The road runs east-west: eastbound vehicles enter at `x = 0` and exit at
/// `x = length`; westbound vehicles do the opposite. One-way roads carry
/// only eastbound traffic, matching the paper's default single-direction
/// scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Travelling towards increasing `x` (the paper's default direction).
    East,
    /// Travelling towards decreasing `x` (present on two-way roads only).
    West,
}

impl Direction {
    /// The heading of vehicles travelling in this direction.
    #[must_use]
    pub fn heading(self) -> Heading {
        match self {
            Direction::East => Heading::EAST,
            Direction::West => Heading::WEST,
        }
    }

    /// The opposite direction.
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::East => f.write_str("eastbound"),
            Direction::West => f.write_str("westbound"),
        }
    }
}

/// Configuration of the simulated road segment and its traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadConfig {
    /// Segment length, metres (paper: 4 000 m).
    pub length: f64,
    /// Lanes per direction (paper: 2).
    pub lanes_per_direction: u8,
    /// Lane width, metres (paper: 5 m).
    pub lane_width: f64,
    /// Whether westbound lanes exist (paper's "two directions" setting).
    pub two_way: bool,
    /// Target inter-vehicle spacing, metres: initial placement gap and the
    /// entry rule's headway (paper default: 30 m; swept to 100 m / 300 m).
    pub spacing: f64,
    /// Vehicle length, metres (paper: 4.5 m).
    pub vehicle_length: f64,
    /// Entry speed, m/s (paper: 30 m/s).
    pub entry_speed: f64,
    /// How far past the end of the segment a vehicle keeps driving (and
    /// communicating) before it is dropped from the simulation, metres.
    ///
    /// Physically, a car does not vanish at the segment boundary: it
    /// drives on, still able to relay packets to the destination nodes
    /// placed 20 m beyond the ends. The margin is sized so that a
    /// vehicle's location-table ghost (TTL 20 s ≈ 600 m at 30 m/s) never
    /// outlives the real, still-reachable vehicle.
    pub offroad_margin: f64,
    /// Car-following parameters (paper Table I).
    pub idm: IdmParams,
}

impl RoadConfig {
    /// The paper's default simulation settings: single-direction two-lane
    /// 4 000 m road, 30 m inter-vehicle space, 30 m/s entry speed, 4.5 m
    /// vehicles, Table I IDM parameters.
    #[must_use]
    pub fn paper_default() -> Self {
        RoadConfig {
            length: 4_000.0,
            lanes_per_direction: 2,
            lane_width: 5.0,
            two_way: false,
            spacing: 30.0,
            vehicle_length: 4.5,
            entry_speed: 30.0,
            offroad_margin: 600.0,
            idm: IdmParams::paper_default(),
        }
    }

    /// The paper's two-direction variant.
    #[must_use]
    pub fn paper_two_way() -> Self {
        RoadConfig { two_way: true, ..RoadConfig::paper_default() }
    }

    /// Returns this configuration with a different inter-vehicle spacing.
    #[must_use]
    pub fn with_spacing(self, spacing: f64) -> Self {
        RoadConfig { spacing, ..self }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            ("length", self.length),
            ("lane_width", self.lane_width),
            ("spacing", self.spacing),
            ("vehicle_length", self.vehicle_length),
            ("entry_speed", self.entry_speed),
            ("offroad_margin", self.offroad_margin),
        ];
        for (name, v) in checks {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("road config {name} must be finite and positive, got {v}"));
            }
        }
        if self.lanes_per_direction == 0 {
            return Err("road needs at least one lane per direction".into());
        }
        if self.spacing <= self.vehicle_length {
            return Err(format!(
                "spacing {} must exceed vehicle length {}",
                self.spacing, self.vehicle_length
            ));
        }
        self.idm.validate()
    }

    /// The directions present on this road.
    #[must_use]
    pub fn directions(&self) -> &'static [Direction] {
        if self.two_way {
            &[Direction::East, Direction::West]
        } else {
            &[Direction::East]
        }
    }

    /// The lateral (`y`) centre-line coordinate of a lane.
    ///
    /// Eastbound lanes sit at positive `y` (lane 0 innermost), westbound at
    /// negative `y`, mirroring a real divided road.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range for the configuration.
    #[must_use]
    pub fn lane_y(&self, direction: Direction, lane: u8) -> f64 {
        assert!(lane < self.lanes_per_direction, "lane {lane} out of range");
        let offset = (f64::from(lane) + 0.5) * self.lane_width;
        match direction {
            Direction::East => offset,
            Direction::West => -offset,
        }
    }

    /// Converts a longitudinal coordinate (distance travelled from the
    /// direction's entrance) to a planar position in the given lane.
    #[must_use]
    pub fn to_position(&self, direction: Direction, lane: u8, s: f64) -> Position {
        let x = match direction {
            Direction::East => s,
            Direction::West => self.length - s,
        };
        Position::new(x, self.lane_y(direction, lane))
    }

    /// Converts a planar `x` coordinate to the longitudinal coordinate of
    /// the given direction.
    #[must_use]
    pub fn to_longitudinal(&self, direction: Direction, x: f64) -> f64 {
        match direction {
            Direction::East => x,
            Direction::West => self.length - x,
        }
    }
}

impl Default for RoadConfig {
    fn default() -> Self {
        RoadConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_iv() {
        let r = RoadConfig::paper_default();
        assert_eq!(r.length, 4_000.0);
        assert_eq!(r.lanes_per_direction, 2);
        assert_eq!(r.lane_width, 5.0);
        assert!(!r.two_way);
        assert_eq!(r.spacing, 30.0);
        assert_eq!(r.vehicle_length, 4.5);
        assert_eq!(r.entry_speed, 30.0);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn two_way_has_both_directions() {
        assert_eq!(RoadConfig::paper_default().directions(), &[Direction::East]);
        assert_eq!(RoadConfig::paper_two_way().directions(), &[Direction::East, Direction::West]);
    }

    #[test]
    fn lane_y_mirrors_directions() {
        let r = RoadConfig::paper_default();
        assert_eq!(r.lane_y(Direction::East, 0), 2.5);
        assert_eq!(r.lane_y(Direction::East, 1), 7.5);
        assert_eq!(r.lane_y(Direction::West, 0), -2.5);
        assert_eq!(r.lane_y(Direction::West, 1), -7.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_y_rejects_bad_lane() {
        let _ = RoadConfig::paper_default().lane_y(Direction::East, 2);
    }

    #[test]
    fn longitudinal_round_trip() {
        let r = RoadConfig::paper_default();
        let p = r.to_position(Direction::West, 1, 1_000.0);
        assert_eq!(p.x, 3_000.0);
        assert_eq!(p.y, -7.5);
        assert_eq!(r.to_longitudinal(Direction::West, p.x), 1_000.0);
        let p = r.to_position(Direction::East, 0, 250.0);
        assert_eq!(p.x, 250.0);
        assert_eq!(r.to_longitudinal(Direction::East, p.x), 250.0);
    }

    #[test]
    fn direction_helpers() {
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::West.opposite(), Direction::East);
        assert_eq!(Direction::East.heading(), geonet_geo::Heading::EAST);
        assert_eq!(Direction::East.to_string(), "eastbound");
    }

    #[test]
    fn validate_catches_errors() {
        let mut r = RoadConfig::paper_default();
        r.spacing = 4.0; // below vehicle length
        assert!(r.validate().unwrap_err().contains("spacing"));
        let mut r = RoadConfig::paper_default();
        r.lanes_per_direction = 0;
        assert!(r.validate().is_err());
        let mut r = RoadConfig::paper_default();
        r.length = f64::NAN;
        assert!(r.validate().is_err());
    }

    #[test]
    fn with_spacing_builder() {
        let r = RoadConfig::paper_default().with_spacing(100.0);
        assert_eq!(r.spacing, 100.0);
        assert_eq!(r.length, 4_000.0);
    }
}
