//! Deterministic run auditing: state digests, divergence diffing and
//! online invariant checking.
//!
//! The simulator's headline property — a run is a pure function of
//! `(config, attacker setup, seed)` — is easy to claim and hard to keep.
//! This module turns it into a machine-checked property, in three parts:
//!
//! * **State digests.** A [`StateHasher`] (stable, dependency-free
//!   FNV-1a 64) folds each component's canonical state — event queue,
//!   RNG stream positions, per-node LocT/CBF/duplicate-cache contents,
//!   vehicle kinematics, radio entries, delivery sets — into one `u64`
//!   per component. A [`Checkpoint`] collects the per-component hashes
//!   at one simulation time; an [`AuditRecorder`] accumulates a
//!   checkpoint timeline at a configurable sim-time interval. Worlds
//!   hold a cheap [`Auditor`] handle that mirrors
//!   [`Tracer`](crate::trace::Tracer): disabled by default, a single
//!   branch per traffic step when detached.
//!
//! * **Record / diff.** The timeline plus free-form run metadata
//!   serializes to a `.audit.json` artifact ([`AuditArtifact`], same
//!   hand-rolled JSON discipline as the trace and telemetry modules).
//!   [`diff_artifacts`] compares two artifacts — a same-seed re-run, a
//!   baseline-vs-attacked pair, or pre/post-refactor runs — and reports
//!   the first diverging checkpoint, which components diverged, and the
//!   sim-time window to inspect; [`trace_window`] joins that window
//!   against a packet-lifecycle trace (PR 1's JSONL schema) for the
//!   events that caused it.
//!
//! * **Invariants.** An [`InvariantChecker`] is a
//!   [`TraceSink`] that replays the event
//!   stream online against the EN 302 636-4-1 rules the attacks abuse:
//!   packets originate once and deliver at most once per node, CBF
//!   contention delays stay within `[TO_MIN, TO_MAX]` and timers fire
//!   exactly when armed, handled packets are never re-armed or re-fired
//!   (duplicate-cache no-reforward), and greedy next hops are backed by
//!   a location-table entry younger than the TTL. A violation cites the
//!   offending event's index in the stream, so `--check-invariants`
//!   failures point straight at the evidence.
//!
//! # Example
//!
//! ```
//! use geonet_sim::audit::{shared_auditor, Checkpoint, StateHasher};
//! use geonet_sim::{SimDuration, SimTime};
//!
//! let auditor = shared_auditor(SimDuration::from_secs(1));
//! let mut b = Checkpoint::builder(SimTime::from_secs(1));
//! let mut h = StateHasher::new();
//! h.write_u64(42);
//! b.push("rng", h.finish());
//! auditor.borrow_mut().record(b.finish());
//! assert_eq!(auditor.borrow().checkpoints().len(), 1);
//! ```

use crate::telemetry::json;
use crate::time::{SimDuration, SimTime};
use crate::trace::{PacketRef, TraceEvent, TraceRecord, TraceSink};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Stable hashing
// ---------------------------------------------------------------------

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable, dependency-free 64-bit state hasher (FNV-1a).
///
/// Unlike `std::hash::DefaultHasher`, the output is specified and
/// identical across processes, platforms and toolchain versions — the
/// property that makes digests comparable between two artifacts written
/// by different invocations. Not collision-resistant against an
/// adversary; it fingerprints honest state.
#[derive(Debug, Clone)]
pub struct StateHasher {
    state: u64,
}

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher::new()
    }
}

impl StateHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        StateHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Folds an `f64` by its exact bit pattern (no rounding, `-0.0` and
    /// `0.0` digest differently — byte-identical state is the contract).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string's UTF-8 bytes, length-prefixed so `("ab","c")` and
    /// `("a","bc")` digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything written so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        // One splitmix-style finalization round so short inputs spread
        // over the whole output space.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// An order-independent digest combiner for sets whose iteration order
/// is unspecified (the event queue's heap layout).
///
/// Each absorbed element hash contributes through commutative operations
/// (wrapping sum and xor), so two queues holding the same `(time, seq)`
/// set digest identically regardless of heap shape.
#[derive(Debug, Clone, Default)]
pub struct UnorderedDigest {
    sum: u64,
    xor: u64,
    count: u64,
}

impl UnorderedDigest {
    /// Creates an empty combiner.
    #[must_use]
    pub fn new() -> Self {
        UnorderedDigest::default()
    }

    /// Absorbs one element's hash.
    pub fn absorb(&mut self, element_hash: u64) {
        self.sum = self.sum.wrapping_add(element_hash);
        self.xor ^= element_hash;
        self.count += 1;
    }

    /// Folds the combined digest into `h`.
    pub fn fold_into(&self, h: &mut StateHasher) {
        h.write_u64(self.count);
        h.write_u64(self.sum);
        h.write_u64(self.xor);
    }
}

// ---------------------------------------------------------------------
// Checkpoints and the recorder
// ---------------------------------------------------------------------

/// One component's digest within a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDigest {
    /// Component name (`"event_queue"`, `"rng"`, `"routers"`, …).
    pub component: String,
    /// The component's state hash.
    pub hash: u64,
}

/// The per-component digests of one simulation instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Simulation time of the sample.
    pub at: SimTime,
    /// Per-component digests, in the order the sampler pushed them.
    pub components: Vec<ComponentDigest>,
    /// Hash over all component digests — compare this first.
    pub combined: u64,
}

impl Checkpoint {
    /// Starts building a checkpoint for time `at`.
    #[must_use]
    pub fn builder(at: SimTime) -> CheckpointBuilder {
        CheckpointBuilder { at, components: Vec::new() }
    }

    /// The hash of one component, if sampled.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<u64> {
        self.components.iter().find(|c| c.component == name).map(|c| c.hash)
    }
}

/// Accumulates component digests into a [`Checkpoint`].
#[derive(Debug)]
pub struct CheckpointBuilder {
    at: SimTime,
    components: Vec<ComponentDigest>,
}

impl CheckpointBuilder {
    /// Adds one component's digest.
    pub fn push(&mut self, component: &str, hash: u64) {
        self.components.push(ComponentDigest { component: component.to_string(), hash });
    }

    /// Seals the checkpoint, computing the combined hash.
    #[must_use]
    pub fn finish(self) -> Checkpoint {
        let mut h = StateHasher::new();
        h.write_u64(self.at.as_micros());
        for c in &self.components {
            h.write_str(&c.component);
            h.write_u64(c.hash);
        }
        Checkpoint { at: self.at, components: self.components, combined: h.finish() }
    }
}

/// Collects a digest timeline at a fixed sim-time interval, plus
/// free-form run metadata (seed, scenario, attack setup…).
#[derive(Debug)]
pub struct AuditRecorder {
    interval: SimDuration,
    next_due: SimTime,
    meta: BTreeMap<String, String>,
    checkpoints: Vec<Checkpoint>,
}

impl AuditRecorder {
    /// Creates a recorder sampling every `interval` of simulation time
    /// (the first checkpoint is due immediately).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO, "audit interval must be positive");
        AuditRecorder {
            interval,
            next_due: SimTime::ZERO,
            meta: BTreeMap::new(),
            checkpoints: Vec::new(),
        }
    }

    /// The sampling interval.
    #[must_use]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Attaches one metadata key (seed, scenario label, …). Values must
    /// stay free of `"` and `\` — the artifact encoding is escape-free.
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        assert!(
            !key.contains(['"', '\\']) && !value.contains(['"', '\\']),
            "audit metadata must not contain quotes or backslashes"
        );
        self.meta.insert(key.to_string(), value);
    }

    /// Whether a checkpoint is due at `now`.
    #[must_use]
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Appends a checkpoint and advances the next due time.
    pub fn record(&mut self, checkpoint: Checkpoint) {
        self.next_due = checkpoint.at + self.interval;
        self.checkpoints.push(checkpoint);
    }

    /// The recorded timeline.
    #[must_use]
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Snapshots the recorder into a serializable artifact.
    #[must_use]
    pub fn to_artifact(&self) -> AuditArtifact {
        AuditArtifact {
            meta: self.meta.clone(),
            interval: self.interval,
            checkpoints: self.checkpoints.clone(),
        }
    }
}

/// A shared, interiorly-mutable recorder handed to a world.
pub type SharedAuditor = Rc<RefCell<AuditRecorder>>;

/// Creates a [`SharedAuditor`] sampling every `interval`.
#[must_use]
pub fn shared_auditor(interval: SimDuration) -> SharedAuditor {
    Rc::new(RefCell::new(AuditRecorder::new(interval)))
}

/// The zero-cost-when-disabled auditing handle a world holds, mirroring
/// [`Tracer`](crate::trace::Tracer) and
/// [`Telemetry`](crate::telemetry::Telemetry): with no recorder attached
/// every call is a single branch on an `Option` and no state is ever
/// digested.
#[derive(Clone, Default)]
pub struct Auditor {
    recorder: Option<SharedAuditor>,
}

impl fmt::Debug for Auditor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Auditor").field("enabled", &self.recorder.is_some()).finish()
    }
}

impl Auditor {
    /// A handle with no recorder — all operations are no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        Auditor { recorder: None }
    }

    /// A handle feeding `recorder`.
    #[must_use]
    pub fn attached(recorder: SharedAuditor) -> Self {
        Auditor { recorder: Some(recorder) }
    }

    /// Whether a recorder is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Whether a checkpoint is due at `now`. Always `false` when
    /// disabled — the caller skips the (expensive) state digesting.
    #[must_use]
    pub fn due(&self, now: SimTime) -> bool {
        self.recorder.as_ref().is_some_and(|r| r.borrow().due(now))
    }

    /// Records a checkpoint (no-op when disabled).
    pub fn record(&self, checkpoint: Checkpoint) {
        if let Some(r) = &self.recorder {
            r.borrow_mut().record(checkpoint);
        }
    }
}

// ---------------------------------------------------------------------
// The .audit.json artifact
// ---------------------------------------------------------------------

/// A serialized digest timeline: run metadata, sampling interval and the
/// checkpoint sequence. Two artifacts from identically-seeded runs are
/// byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditArtifact {
    /// Free-form run metadata (seed, scenario, attacked, …).
    pub meta: BTreeMap<String, String>,
    /// The sampling interval the timeline was recorded at.
    pub interval: SimDuration,
    /// The digest timeline, in sampling order.
    pub checkpoints: Vec<Checkpoint>,
}

impl AuditArtifact {
    /// Renders the artifact as JSON (one checkpoint per line, so the
    /// timeline greps well). Deterministic: metadata is sorted, hashes
    /// are decimal `u64`s.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"meta\":{");
        let mut first = true;
        for (k, v) in &self.meta {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{k}\":\"{v}\"");
        }
        let _ = write!(out, "}},\"interval_us\":{},\"checkpoints\":[", self.interval.as_micros());
        for (i, cp) in self.checkpoints.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "{{\"t_us\":{},\"combined\":{},\"components\":{{",
                cp.at.as_micros(),
                cp.combined
            );
            for (j, c) in cp.components.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", c.component, c.hash);
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses an artifact previously produced by
    /// [`AuditArtifact::to_json`].
    ///
    /// # Errors
    ///
    /// Fails with a description of the first malformed construct.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        let root = root.as_object("top level")?;
        let mut meta = BTreeMap::new();
        let mut interval = None;
        let mut checkpoints = Vec::new();
        for (key, value) in root {
            match key.as_str() {
                "meta" => {
                    for (k, v) in value.as_object("meta")? {
                        match v {
                            json::Value::String(s) => {
                                meta.insert(k.clone(), s.clone());
                            }
                            other => {
                                return Err(format!("meta {k:?}: expected string, got {other:?}"))
                            }
                        }
                    }
                }
                "interval_us" => {
                    interval = Some(SimDuration::from_micros(value.as_u64("interval_us")?));
                }
                "checkpoints" => {
                    for entry in value.as_array("checkpoints")? {
                        checkpoints.push(parse_checkpoint(entry)?);
                    }
                }
                other => return Err(format!("unknown top-level key {other:?}")),
            }
        }
        let interval = interval.ok_or("missing interval_us")?;
        Ok(AuditArtifact { meta, interval, checkpoints })
    }
}

fn parse_checkpoint(value: &json::Value) -> Result<Checkpoint, String> {
    let fields = value.as_object("checkpoint")?;
    let mut at = None;
    let mut combined = None;
    let mut components = Vec::new();
    for (k, v) in fields {
        match k.as_str() {
            "t_us" => at = Some(SimTime::from_micros(v.as_u64("t_us")?)),
            "combined" => combined = Some(v.as_u64("combined")?),
            "components" => {
                for (name, hash) in v.as_object("components")? {
                    components.push(ComponentDigest {
                        component: name.clone(),
                        hash: hash.as_u64(name)?,
                    });
                }
            }
            other => return Err(format!("unknown checkpoint field {other:?}")),
        }
    }
    let at = at.ok_or("checkpoint missing t_us")?;
    let combined = combined.ok_or("checkpoint missing combined")?;
    // Trust but verify: the combined hash must match the components, so
    // a hand-edited artifact cannot silently claim agreement.
    let mut b = Checkpoint::builder(at);
    for c in &components {
        b.push(&c.component, c.hash);
    }
    let rebuilt = b.finish();
    if rebuilt.combined != combined {
        return Err(format!(
            "checkpoint at {} µs: combined hash {} does not match components (expected {})",
            at.as_micros(),
            combined,
            rebuilt.combined
        ));
    }
    Ok(rebuilt)
}

// ---------------------------------------------------------------------
// Divergence diffing
// ---------------------------------------------------------------------

/// The first point where two digest timelines disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first diverging checkpoint.
    pub index: usize,
    /// Simulation time of that checkpoint.
    pub at: SimTime,
    /// Time of the last agreeing checkpoint ([`SimTime::ZERO`] if the
    /// very first checkpoint diverged) — the divergence happened in
    /// `(window_start, at]`.
    pub window_start: SimTime,
    /// Names of the components whose hashes differ (including components
    /// present on only one side, and `"checkpoint_time"` if the sample
    /// times themselves disagree).
    pub components: Vec<String>,
}

/// The outcome of comparing two audit artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// The first diverging checkpoint, or `None` if every compared
    /// checkpoint agrees.
    pub first_divergence: Option<Divergence>,
    /// How many checkpoint pairs were compared (the shorter length).
    pub compared: usize,
    /// Timeline lengths of the two artifacts.
    pub lengths: (usize, usize),
    /// Metadata keys whose values differ (or are present on one side
    /// only), as `(key, a-value, b-value)`.
    pub meta_differences: Vec<(String, Option<String>, Option<String>)>,
}

impl DivergenceReport {
    /// Whether the two timelines are digest-identical (metadata may
    /// still differ — a baseline-vs-attacked pair is *expected* to
    /// differ in metadata).
    #[must_use]
    pub fn identical(&self) -> bool {
        self.first_divergence.is_none() && self.lengths.0 == self.lengths.1
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (key, a, b) in &self.meta_differences {
            writeln!(
                f,
                "meta {key}: {} vs {}",
                a.as_deref().unwrap_or("<absent>"),
                b.as_deref().unwrap_or("<absent>")
            )?;
        }
        match &self.first_divergence {
            None if self.lengths.0 == self.lengths.1 => {
                writeln!(f, "identical: {} checkpoints agree", self.compared)
            }
            None => writeln!(
                f,
                "no diverging checkpoint, but timelines have different lengths: {} vs {}",
                self.lengths.0, self.lengths.1
            ),
            Some(d) => {
                writeln!(
                    f,
                    "DIVERGENCE at checkpoint {} (t = {} µs): component(s) {}",
                    d.index,
                    d.at.as_micros(),
                    d.components.join(", ")
                )?;
                writeln!(
                    f,
                    "window: ({} µs, {} µs] — join the runs' traces over this window",
                    d.window_start.as_micros(),
                    d.at.as_micros()
                )
            }
        }
    }
}

/// Compares two digest timelines and reports the first divergence.
#[must_use]
pub fn diff_artifacts(a: &AuditArtifact, b: &AuditArtifact) -> DivergenceReport {
    let mut meta_differences = Vec::new();
    let keys: BTreeSet<&String> = a.meta.keys().chain(b.meta.keys()).collect();
    for key in keys {
        let (va, vb) = (a.meta.get(key), b.meta.get(key));
        if va != vb {
            meta_differences.push((key.clone(), va.cloned(), vb.cloned()));
        }
    }
    let compared = a.checkpoints.len().min(b.checkpoints.len());
    let mut first_divergence = None;
    for i in 0..compared {
        let (ca, cb) = (&a.checkpoints[i], &b.checkpoints[i]);
        if ca.combined == cb.combined && ca.at == cb.at {
            continue;
        }
        let mut components = Vec::new();
        if ca.at != cb.at {
            components.push("checkpoint_time".to_string());
        }
        let names: BTreeSet<&String> = ca
            .components
            .iter()
            .map(|c| &c.component)
            .chain(cb.components.iter().map(|c| &c.component))
            .collect();
        for name in names {
            if ca.component(name) != cb.component(name) {
                components.push(name.clone());
            }
        }
        let window_start = if i == 0 { SimTime::ZERO } else { a.checkpoints[i - 1].at };
        first_divergence = Some(Divergence { index: i, at: ca.at, window_start, components });
        break;
    }
    DivergenceReport {
        first_divergence,
        compared,
        lengths: (a.checkpoints.len(), b.checkpoints.len()),
        meta_differences,
    }
}

/// The trace records falling inside a divergence window `(from, to]` —
/// the events to inspect once [`diff_artifacts`] has localized a
/// divergence. Pass `from = SimTime::ZERO` to include the run start.
pub fn trace_window(
    records: &[TraceRecord],
    from: SimTime,
    to: SimTime,
) -> impl Iterator<Item = &TraceRecord> {
    records.iter().filter(move |r| r.at > from && r.at <= to)
}

// ---------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------

/// The protocol parameters the invariants are checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantParams {
    /// CBF minimum contention time (`TO_MIN`).
    pub to_min: SimDuration,
    /// CBF maximum contention time (`TO_MAX`).
    pub to_max: SimDuration,
    /// Location-table entry lifetime.
    pub loct_ttl: SimDuration,
}

/// One invariant violation, citing the offending event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Zero-based index of the offending event in the consumed stream.
    pub event_index: u64,
    /// Simulation time of the offending event.
    pub at: SimTime,
    /// Node that emitted it.
    pub node: u32,
    /// Short stable rule name (`"no-reforward"`, `"cbf-delay-range"`, …).
    pub rule: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event #{} (t = {} µs, node {}): [{}] {}",
            self.event_index,
            self.at.as_micros(),
            self.node,
            self.rule,
            self.detail
        )
    }
}

/// Keeps at most this many violations (a broken run can emit millions of
/// identical ones; the first few carry all the signal).
const MAX_VIOLATIONS: usize = 64;

/// An online checker of the EN 302 636-4-1 forwarding invariants,
/// consuming [`TraceEvent`]s as a [`TraceSink`].
///
/// Rules:
///
/// * **originate-once** — a `(source, sn)` pair is originated at most
///   once across the whole run.
/// * **deliver-once** — a node delivers a given packet at most once
///   (packet conservation's at-most-once half; the at-least-once half
///   is a liveness property the run horizon can legitimately cut).
/// * **cbf-delay-range** — every armed contention delay lies within
///   `[TO_MIN, TO_MAX]`.
/// * **cbf-fire-time** — a contention timer fires exactly `delay` after
///   it was armed.
/// * **no-reforward** — once a node has fired or cancelled a packet's
///   timer (its duplicate cache marks the packet handled), it never
///   fires or re-arms that packet again; firing or cancelling without a
///   pending timer is flagged too.
/// * **loct-ttl** — a greedy next hop must be backed by a beacon
///   accepted from that neighbour within the location-table TTL.
#[derive(Debug)]
pub struct InvariantChecker {
    params: InvariantParams,
    next_index: u64,
    violations: Vec<Violation>,
    suppressed: u64,
    /// `(source, sn)` → originating node, for originate-once.
    originated: BTreeMap<PacketRef, u32>,
    /// Per-node delivered packets, for deliver-once.
    delivered: BTreeSet<(u32, PacketRef)>,
    /// Armed (pending) contention timers: arm time and delay.
    armed: BTreeMap<(u32, PacketRef), (SimTime, u64)>,
    /// Packets a node has already fired or cancelled (handled).
    handled: BTreeSet<(u32, PacketRef)>,
    /// Last beacon acceptance per `(node, neighbour address)`.
    beacons: BTreeMap<(u32, u64), SimTime>,
}

impl InvariantChecker {
    /// Creates a checker for the given protocol parameters.
    #[must_use]
    pub fn new(params: InvariantParams) -> Self {
        InvariantChecker {
            params,
            next_index: 0,
            violations: Vec::new(),
            suppressed: 0,
            originated: BTreeMap::new(),
            delivered: BTreeSet::new(),
            armed: BTreeMap::new(),
            handled: BTreeSet::new(),
            beacons: BTreeMap::new(),
        }
    }

    /// Events consumed so far.
    #[must_use]
    pub fn events_checked(&self) -> u64 {
        self.next_index
    }

    /// All recorded violations (capped at an internal limit; see
    /// [`InvariantChecker::suppressed`]).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations beyond the recording cap that were counted but not
    /// stored.
    #[must_use]
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// The earliest violation, if any — the fail-fast citation.
    #[must_use]
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Whether every consumed event satisfied the invariants.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    fn violate(&mut self, index: u64, at: SimTime, node: u32, rule: &'static str, detail: String) {
        if self.violations.len() >= MAX_VIOLATIONS {
            self.suppressed += 1;
            return;
        }
        self.violations.push(Violation { event_index: index, at, node, rule, detail });
    }

    fn check(&mut self, at: SimTime, node: u32, event: &TraceEvent) {
        let index = self.next_index;
        self.next_index += 1;
        match event {
            TraceEvent::Originated { packet } => {
                if let Some(&prev) = self.originated.get(packet) {
                    self.violate(
                        index,
                        at,
                        node,
                        "originate-once",
                        format!("packet {packet} already originated by node {prev}"),
                    );
                } else {
                    self.originated.insert(*packet, node);
                }
            }
            TraceEvent::Delivered { packet } if !self.delivered.insert((node, *packet)) => {
                self.violate(
                    index,
                    at,
                    node,
                    "deliver-once",
                    format!("packet {packet} delivered twice at this node"),
                );
            }
            TraceEvent::Delivered { .. } => {}
            TraceEvent::BeaconAccepted { from } => {
                self.beacons.insert((node, *from), at);
            }
            TraceEvent::CbfArmed { packet, delay_us } => {
                let (lo, hi) = (self.params.to_min.as_micros(), self.params.to_max.as_micros());
                if *delay_us < lo || *delay_us > hi {
                    self.violate(
                        index,
                        at,
                        node,
                        "cbf-delay-range",
                        format!("delay {delay_us} µs outside [{lo}, {hi}] µs for {packet}"),
                    );
                }
                if self.handled.contains(&(node, *packet)) {
                    self.violate(
                        index,
                        at,
                        node,
                        "no-reforward",
                        format!("re-armed {packet} after it was already handled"),
                    );
                }
                if self.armed.insert((node, *packet), (at, *delay_us)).is_some() {
                    self.violate(
                        index,
                        at,
                        node,
                        "no-reforward",
                        format!("re-armed {packet} while its timer was still pending"),
                    );
                }
            }
            TraceEvent::CbfFired { packet } => match self.armed.remove(&(node, *packet)) {
                Some((armed_at, delay_us)) => {
                    let expected = armed_at + SimDuration::from_micros(delay_us);
                    if at != expected {
                        self.violate(
                            index,
                            at,
                            node,
                            "cbf-fire-time",
                            format!(
                                "{packet} fired at {} µs, armed at {} µs + {delay_us} µs",
                                at.as_micros(),
                                armed_at.as_micros()
                            ),
                        );
                    }
                    self.handled.insert((node, *packet));
                }
                None => {
                    let rule_detail = if self.handled.contains(&(node, *packet)) {
                        format!("{packet} fired again after being handled (duplicate forward)")
                    } else {
                        format!("{packet} fired without a pending contention timer")
                    };
                    self.violate(index, at, node, "no-reforward", rule_detail);
                    self.handled.insert((node, *packet));
                }
            },
            TraceEvent::CbfCancelled { packet, .. } => {
                if self.armed.remove(&(node, *packet)).is_none() {
                    self.violate(
                        index,
                        at,
                        node,
                        "no-reforward",
                        format!("{packet} cancelled without a pending contention timer"),
                    );
                }
                self.handled.insert((node, *packet));
            }
            TraceEvent::GfNextHop { packet, next_hop } => {
                let fresh = self
                    .beacons
                    .get(&(node, *next_hop))
                    .is_some_and(|&t| at.saturating_since(t) < self.params.loct_ttl);
                if !fresh {
                    self.violate(
                        index,
                        at,
                        node,
                        "loct-ttl",
                        format!(
                            "next hop {next_hop:#x} for {packet} has no beacon younger than \
                             the {} s LocT TTL",
                            self.params.loct_ttl.as_secs()
                        ),
                    );
                }
            }
            // Remaining events carry no online-checkable obligation.
            _ => {}
        }
    }

    /// One-line summary for reports.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.ok() {
            format!("ok: {} events, 0 violations", self.next_index)
        } else {
            format!(
                "{} violations over {} events (first: {})",
                self.violations.len() as u64 + self.suppressed,
                self.next_index,
                self.violations.first().map(ToString::to_string).unwrap_or_default()
            )
        }
    }
}

impl TraceSink for InvariantChecker {
    fn record(&mut self, at: SimTime, node: u32, event: &TraceEvent) {
        self.check(at, node, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_stable_across_invocations() {
        // Golden value: the digest is part of the artifact format, so a
        // hash-function change must be a conscious, test-breaking act.
        let mut h = StateHasher::new();
        h.write_u64(42);
        h.write_str("abc");
        h.write_f64(1.5);
        h.write_bool(true);
        assert_eq!(h.finish(), 0xbb6b_b5fb_988d_e59c);
    }

    #[test]
    fn hasher_is_order_sensitive_and_prefix_free() {
        let mut a = StateHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StateHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = StateHasher::new();
        c.write_u64(1);
        c.write_u64(2);
        let mut d = StateHasher::new();
        d.write_u64(2);
        d.write_u64(1);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn unordered_digest_ignores_order() {
        let mut a = UnorderedDigest::new();
        let mut b = UnorderedDigest::new();
        for x in [1u64, 2, 3, 99] {
            a.absorb(x);
        }
        for x in [99u64, 3, 1, 2] {
            b.absorb(x);
        }
        let fin = |u: &UnorderedDigest| {
            let mut h = StateHasher::new();
            u.fold_into(&mut h);
            h.finish()
        };
        assert_eq!(fin(&a), fin(&b));
        let mut c = UnorderedDigest::new();
        c.absorb(1);
        assert_ne!(fin(&a), fin(&c));
    }

    fn checkpoint(at_s: u64, rng: u64) -> Checkpoint {
        let mut b = Checkpoint::builder(SimTime::from_secs(at_s));
        b.push("rng", rng);
        b.push("routers", 7);
        b.finish()
    }

    #[test]
    fn combined_hash_reflects_components() {
        assert_eq!(checkpoint(1, 5), checkpoint(1, 5));
        assert_ne!(checkpoint(1, 5).combined, checkpoint(1, 6).combined);
        assert_ne!(checkpoint(1, 5).combined, checkpoint(2, 5).combined);
    }

    #[test]
    fn recorder_cadence_and_due() {
        let mut rec = AuditRecorder::new(SimDuration::from_secs(1));
        assert!(rec.due(SimTime::ZERO));
        rec.record(checkpoint(0, 1));
        assert!(!rec.due(SimTime::from_millis(900)));
        assert!(rec.due(SimTime::from_secs(1)));
        rec.record(checkpoint(1, 2));
        assert_eq!(rec.checkpoints().len(), 2);
    }

    #[test]
    fn disabled_auditor_is_never_due() {
        let a = Auditor::disabled();
        assert!(!a.is_enabled());
        assert!(!a.due(SimTime::from_secs(100)));
        a.record(checkpoint(1, 1)); // no-op, must not panic
    }

    fn artifact() -> AuditArtifact {
        let rec = {
            let mut r = AuditRecorder::new(SimDuration::from_secs(1));
            r.set_meta("seed", "42");
            r.set_meta("scenario", "interarea");
            r.record(checkpoint(0, 10));
            r.record(checkpoint(1, 11));
            r.record(checkpoint(2, 12));
            r
        };
        rec.to_artifact()
    }

    #[test]
    fn artifact_json_roundtrip() {
        let a = artifact();
        let text = a.to_json();
        let parsed = AuditArtifact::from_json(&text).expect("own output parses");
        assert_eq!(parsed, a);
        // Determinism of the encoding itself.
        assert_eq!(text, parsed.to_json());
    }

    #[test]
    fn artifact_rejects_tampered_combined_hash() {
        let text = artifact().to_json();
        let tampered = text.replacen("\"routers\":7", "\"routers\":8", 1);
        let err = AuditArtifact::from_json(&tampered).unwrap_err();
        assert!(err.contains("does not match"), "got: {err}");
    }

    #[test]
    fn diff_identical_artifacts() {
        let report = diff_artifacts(&artifact(), &artifact());
        assert!(report.identical());
        assert_eq!(report.compared, 3);
        assert!(report.to_string().contains("identical"));
    }

    #[test]
    fn diff_names_first_divergence_and_component() {
        let a = artifact();
        let mut b = artifact();
        b.checkpoints[1] = {
            let mut cb = Checkpoint::builder(SimTime::from_secs(1));
            cb.push("rng", 999); // diverged
            cb.push("routers", 7);
            cb.finish()
        };
        let report = diff_artifacts(&a, &b);
        let d = report.first_divergence.clone().expect("divergence found");
        assert_eq!(d.index, 1);
        assert_eq!(d.at, SimTime::from_secs(1));
        assert_eq!(d.window_start, SimTime::from_secs(0));
        assert_eq!(d.components, vec!["rng".to_string()]);
        assert!(!report.identical());
        assert!(report.to_string().contains("DIVERGENCE"));
    }

    #[test]
    fn diff_reports_meta_and_length_differences() {
        let a = artifact();
        let mut b = artifact();
        b.meta.insert("seed".into(), "43".into());
        b.checkpoints.pop();
        let report = diff_artifacts(&a, &b);
        assert!(report.first_divergence.is_none());
        assert!(!report.identical(), "length mismatch is not identical");
        assert_eq!(report.lengths, (3, 2));
        assert_eq!(report.meta_differences.len(), 1);
        assert_eq!(report.meta_differences[0].0, "seed");
    }

    #[test]
    fn trace_window_is_half_open() {
        let rec = |s: u64| TraceRecord {
            at: SimTime::from_secs(s),
            node: 0,
            event: TraceEvent::Originated { packet: PacketRef::new(1, 1) },
        };
        let records = vec![rec(1), rec(2), rec(3), rec(4)];
        let window: Vec<u64> = trace_window(&records, SimTime::from_secs(1), SimTime::from_secs(3))
            .map(|r| r.at.as_secs())
            .collect();
        assert_eq!(window, vec![2, 3]);
    }

    // ---------------- invariant checker ----------------

    fn params() -> InvariantParams {
        InvariantParams {
            to_min: SimDuration::from_millis(1),
            to_max: SimDuration::from_millis(100),
            loct_ttl: SimDuration::from_secs(20),
        }
    }

    fn pkt() -> PacketRef {
        PacketRef::new(0x1000_0001, 7)
    }

    #[test]
    fn clean_cbf_lifecycle_passes() {
        let mut c = InvariantChecker::new(params());
        let t0 = SimTime::from_secs(1);
        c.record(t0, 1, &TraceEvent::Originated { packet: pkt() });
        c.record(t0, 2, &TraceEvent::CbfArmed { packet: pkt(), delay_us: 50_000 });
        c.record(t0, 3, &TraceEvent::CbfArmed { packet: pkt(), delay_us: 2_000 });
        c.record(t0 + SimDuration::from_micros(2_000), 3, &TraceEvent::CbfFired { packet: pkt() });
        c.record(
            t0 + SimDuration::from_micros(2_500),
            2,
            &TraceEvent::CbfCancelled { packet: pkt(), by: 3 },
        );
        c.record(t0 + SimDuration::from_secs(1), 2, &TraceEvent::Delivered { packet: pkt() });
        assert!(c.ok(), "{:?}", c.violations());
        assert_eq!(c.events_checked(), 6);
        assert!(c.summary().starts_with("ok"));
    }

    #[test]
    fn duplicate_forward_is_caught_with_event_id() {
        let mut c = InvariantChecker::new(params());
        let t0 = SimTime::from_secs(1);
        c.record(t0, 3, &TraceEvent::CbfArmed { packet: pkt(), delay_us: 2_000 });
        let fire_at = t0 + SimDuration::from_micros(2_000);
        c.record(fire_at, 3, &TraceEvent::CbfFired { packet: pkt() });
        // The injected violation: the same node forwards the same packet
        // again.
        c.record(fire_at, 3, &TraceEvent::CbfFired { packet: pkt() });
        let v = c.first_violation().expect("violation recorded");
        assert_eq!(v.event_index, 2, "cites the offending event");
        assert_eq!(v.rule, "no-reforward");
        assert!(v.detail.contains("duplicate forward"), "{v}");
    }

    #[test]
    fn fire_after_cancel_is_caught() {
        let mut c = InvariantChecker::new(params());
        let t0 = SimTime::from_secs(1);
        c.record(t0, 3, &TraceEvent::CbfArmed { packet: pkt(), delay_us: 2_000 });
        c.record(t0, 3, &TraceEvent::CbfCancelled { packet: pkt(), by: 9 });
        c.record(t0 + SimDuration::from_micros(2_000), 3, &TraceEvent::CbfFired { packet: pkt() });
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].rule, "no-reforward");
    }

    #[test]
    fn delay_out_of_range_is_caught() {
        let mut c = InvariantChecker::new(params());
        c.record(
            SimTime::from_secs(1),
            3,
            &TraceEvent::CbfArmed { packet: pkt(), delay_us: 200_000 },
        );
        assert_eq!(c.violations()[0].rule, "cbf-delay-range");
    }

    #[test]
    fn late_fire_is_caught() {
        let mut c = InvariantChecker::new(params());
        let t0 = SimTime::from_secs(1);
        c.record(t0, 3, &TraceEvent::CbfArmed { packet: pkt(), delay_us: 2_000 });
        c.record(t0 + SimDuration::from_micros(3_000), 3, &TraceEvent::CbfFired { packet: pkt() });
        assert_eq!(c.violations()[0].rule, "cbf-fire-time");
    }

    #[test]
    fn double_origination_and_delivery_are_caught() {
        let mut c = InvariantChecker::new(params());
        let t = SimTime::from_secs(1);
        c.record(t, 1, &TraceEvent::Originated { packet: pkt() });
        c.record(t, 2, &TraceEvent::Originated { packet: pkt() });
        c.record(t, 5, &TraceEvent::Delivered { packet: pkt() });
        c.record(t, 5, &TraceEvent::Delivered { packet: pkt() });
        let rules: Vec<&str> = c.violations().iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["originate-once", "deliver-once"]);
    }

    #[test]
    fn stale_next_hop_is_caught_and_fresh_one_passes() {
        let mut c = InvariantChecker::new(params());
        let t0 = SimTime::from_secs(1);
        c.record(t0, 4, &TraceEvent::BeaconAccepted { from: 0xBEEF });
        c.record(
            t0 + SimDuration::from_secs(5),
            4,
            &TraceEvent::GfNextHop { packet: pkt(), next_hop: 0xBEEF },
        );
        assert!(c.ok(), "fresh beacon must pass: {:?}", c.violations());
        c.record(
            t0 + SimDuration::from_secs(25),
            4,
            &TraceEvent::GfNextHop { packet: pkt(), next_hop: 0xBEEF },
        );
        assert_eq!(c.violations()[0].rule, "loct-ttl");
        // A next hop never heard from at all.
        c.record(t0, 9, &TraceEvent::GfNextHop { packet: pkt(), next_hop: 0xF00D });
        assert_eq!(c.violations()[1].rule, "loct-ttl");
    }

    #[test]
    fn violation_flood_is_capped() {
        let mut c = InvariantChecker::new(params());
        let t = SimTime::from_secs(1);
        // The first delivery is legal; every repeat after that violates.
        for _ in 0..(MAX_VIOLATIONS + 11) {
            c.record(t, 5, &TraceEvent::Delivered { packet: pkt() });
        }
        assert_eq!(c.violations().len(), MAX_VIOLATIONS);
        assert_eq!(c.suppressed(), 10);
        assert!(!c.ok());
        assert!(c.summary().contains("violations"));
    }
}
