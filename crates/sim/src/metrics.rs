//! Time-binned metrics and the paper's A/B rate computations.
//!
//! The paper evaluates every setting with A/B testing: an attacker-free run
//! (A) and an attacked run (B), each 200 s long, repeated 100 times. Packet
//! reception rates are computed per 5-second time bin (40 bins per run) and
//! the headline numbers are:
//!
//! * interception rate **γ** — the average drop of the reception rate from
//!   A to B over the 40 bins (inter-area attack), and
//! * blockage rate **λ** — the same quantity for the intra-area attack.
//!
//! [`TimeBins`] accumulates success/total counts per bin across many runs;
//! [`AbComparison`] derives γ/λ and the accumulated (cumulative-over-time)
//! rates plotted in the paper's Figures 8 and 10.

use crate::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Success/total counters per fixed-width time bin.
///
/// # Example
///
/// ```
/// use geonet_sim::{SimDuration, SimTime, TimeBins};
///
/// // 40 bins of 5 s — the paper's layout for a 200 s run.
/// let mut bins = TimeBins::new(SimDuration::from_secs(5), 40);
/// bins.record(SimTime::from_secs(2), true);
/// bins.record(SimTime::from_secs(3), false);
/// assert_eq!(bins.rate(0), Some(0.5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBins {
    width: SimDuration,
    success: Vec<u64>,
    total: Vec<u64>,
}

impl TimeBins {
    /// Creates `count` bins of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `count` is zero.
    #[must_use]
    pub fn new(width: SimDuration, count: usize) -> Self {
        assert!(width > SimDuration::ZERO, "bin width must be positive");
        assert!(count > 0, "need at least one bin");
        TimeBins { width, success: vec![0; count], total: vec![0; count] }
    }

    /// The paper's layout: 40 bins × 5 s covering a 200 s run.
    #[must_use]
    pub fn paper_default() -> Self {
        TimeBins::new(SimDuration::from_secs(5), 40)
    }

    /// Number of bins.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total.len()
    }

    /// Returns `true` if there are no bins (never true for constructed
    /// values; exists for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total.is_empty()
    }

    /// Width of each bin.
    #[must_use]
    pub fn bin_width(&self) -> SimDuration {
        self.width
    }

    /// Records one trial at time `t`: `ok` indicates success (e.g. the
    /// packet was received). Events past the last bin are attributed to the
    /// last bin, so a trial exactly at the run horizon still counts.
    pub fn record(&mut self, t: SimTime, ok: bool) {
        let idx = ((t.as_micros() / self.width.as_micros()) as usize).min(self.total.len() - 1);
        self.total[idx] += 1;
        if ok {
            self.success[idx] += 1;
        }
    }

    /// Records a trial with an explicit weight, for metrics where a trial
    /// covers many receivers (e.g. "fraction of vehicles that received the
    /// broadcast": `successes` receivers out of `trials` on-road vehicles).
    pub fn record_weighted(&mut self, t: SimTime, successes: u64, trials: u64) {
        let idx = ((t.as_micros() / self.width.as_micros()) as usize).min(self.total.len() - 1);
        self.total[idx] += trials;
        self.success[idx] += successes;
    }

    /// Success rate of bin `idx`, or `None` if the bin is empty or out of
    /// range.
    #[must_use]
    pub fn rate(&self, idx: usize) -> Option<f64> {
        let &total = self.total.get(idx)?;
        if total == 0 {
            None
        } else {
            Some(self.success[idx] as f64 / total as f64)
        }
    }

    /// Success rates for all bins; empty bins yield `None`.
    #[must_use]
    pub fn rates(&self) -> Vec<Option<f64>> {
        (0..self.len()).map(|i| self.rate(i)).collect()
    }

    /// Overall success rate across all bins, or `None` if nothing was
    /// recorded.
    #[must_use]
    pub fn overall_rate(&self) -> Option<f64> {
        let total: u64 = self.total.iter().sum();
        if total == 0 {
            None
        } else {
            let success: u64 = self.success.iter().sum();
            Some(success as f64 / total as f64)
        }
    }

    /// Mean of the non-empty per-bin rates (the paper averages bin rates,
    /// not raw counts), or `None` if every bin is empty.
    #[must_use]
    pub fn mean_bin_rate(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.len() {
            if let Some(r) = self.rate(i) {
                sum += r;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Cumulative success rate up to and including each bin — the
    /// "accumulated rate over time" series of the paper's Figures 8/10
    /// (there plotted as accumulated *interception* rate, i.e. one minus
    /// this for attacked runs relative to baseline).
    #[must_use]
    pub fn accumulated_rates(&self) -> Vec<Option<f64>> {
        let mut out = Vec::with_capacity(self.len());
        let mut s = 0u64;
        let mut t = 0u64;
        for i in 0..self.len() {
            s += self.success[i];
            t += self.total[i];
            out.push(if t == 0 { None } else { Some(s as f64 / t as f64) });
        }
        out
    }

    /// Merges another set of bins into this one (same width and count).
    ///
    /// Used to aggregate the 100 runs of one experiment setting.
    ///
    /// # Panics
    ///
    /// Panics if the bin layouts differ.
    pub fn merge(&mut self, other: &TimeBins) {
        assert_eq!(self.width, other.width, "bin width mismatch");
        assert_eq!(self.len(), other.len(), "bin count mismatch");
        for i in 0..self.len() {
            self.success[i] += other.success[i];
            self.total[i] += other.total[i];
        }
    }
}

impl fmt::Display for TimeBins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeBins[{} × {}]", self.len(), self.width)?;
        if let Some(r) = self.overall_rate() {
            write!(f, " overall={:.3}", r)?;
        }
        Ok(())
    }
}

/// The paper's A/B comparison: attacker-free bins (A) vs attacked bins (B).
///
/// `drop_rate()` is the γ/λ statistic: the average, over bins where both
/// runs have data and the baseline is non-zero, of the **relative** drop
/// `(rate_A − rate_B) / rate_A`, floored at zero per bin (an attack cannot
/// "negatively intercept"; tiny negative diffs are sampling noise). The
/// relative form is what the paper reports: its γ reaches 99.9 % even in
/// scenarios whose attacker-free reception is far below 100 %.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbComparison {
    baseline: TimeBins,
    attacked: TimeBins,
}

impl AbComparison {
    /// Pairs a baseline (attacker-free) run's bins with an attacked run's.
    ///
    /// # Panics
    ///
    /// Panics if the two bin layouts differ.
    #[must_use]
    pub fn new(baseline: TimeBins, attacked: TimeBins) -> Self {
        assert_eq!(baseline.bin_width(), attacked.bin_width(), "bin width mismatch");
        assert_eq!(baseline.len(), attacked.len(), "bin count mismatch");
        AbComparison { baseline, attacked }
    }

    /// The attacker-free bins.
    #[must_use]
    pub fn baseline(&self) -> &TimeBins {
        &self.baseline
    }

    /// The attacked bins.
    #[must_use]
    pub fn attacked(&self) -> &TimeBins {
        &self.attacked
    }

    /// The γ/λ statistic: average per-bin **relative** drop of the success
    /// rate from baseline to attacked, over bins where both have data and
    /// the baseline rate is non-zero. Returns `None` if no such bin
    /// exists.
    #[must_use]
    pub fn drop_rate(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.baseline.len() {
            if let (Some(a), Some(b)) = (self.baseline.rate(i), self.attacked.rate(i)) {
                if a > 0.0 {
                    sum += ((a - b) / a).max(0.0);
                    n += 1;
                }
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Accumulated drop rate over time: for each bin, the relative drop
    /// between the cumulative baseline and cumulative attacked rates
    /// (Figures 8/10).
    #[must_use]
    pub fn accumulated_drop_rates(&self) -> Vec<Option<f64>> {
        let a = self.baseline.accumulated_rates();
        let b = self.attacked.accumulated_rates();
        a.into_iter()
            .zip(b)
            .map(|(a, b)| match (a, b) {
                (Some(a), Some(b)) if a > 0.0 => Some(((a - b) / a).max(0.0)),
                _ => None,
            })
            .collect()
    }
}

/// Streaming mean/variance/min/max over `f64` samples (Welford's method).
///
/// # Example
///
/// ```
/// use geonet_sim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] { s.push(x); }
/// assert_eq!(s.mean(), Some(2.0));
/// assert_eq!(s.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        RunningStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN — a NaN sample silently poisons every derived
    /// statistic, so it is rejected loudly instead.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one, as if every sample pushed
    /// into `other` had been pushed here (Chan et al.'s parallel variance
    /// combination). Mirrors [`TimeBins::merge`]: it lets per-run stats be
    /// aggregated across a campaign without re-pushing raw samples.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let (n1, n2) = (self.n as f64, other.n as f64);
        self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2);
        self.mean += delta * n2 / (n1 + n2);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.n = n;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample standard deviation, or `None` with fewer than two
    /// samples.
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        (self.n > 1).then(|| (self.m2 / (self.n - 1) as f64).sqrt())
    }

    /// Smallest sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(
                f,
                "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
                self.n,
                m,
                self.std_dev().unwrap_or(0.0),
                self.min,
                self.max
            ),
            None => write!(f, "n=0"),
        }
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bins_40x5() -> TimeBins {
        TimeBins::new(SimDuration::from_secs(5), 40)
    }

    #[test]
    fn record_lands_in_correct_bin() {
        let mut b = bins_40x5();
        b.record(SimTime::from_secs(0), true);
        b.record(SimTime::from_secs(4), false);
        b.record(SimTime::from_secs(5), true); // bin 1
        assert_eq!(b.rate(0), Some(0.5));
        assert_eq!(b.rate(1), Some(1.0));
        assert_eq!(b.rate(2), None);
    }

    #[test]
    fn record_at_horizon_goes_to_last_bin() {
        let mut b = bins_40x5();
        b.record(SimTime::from_secs(200), true); // bin index would be 40
        assert_eq!(b.rate(39), Some(1.0));
    }

    #[test]
    fn weighted_record() {
        let mut b = bins_40x5();
        b.record_weighted(SimTime::from_secs(1), 70, 100);
        assert_eq!(b.rate(0), Some(0.7));
        assert_eq!(b.overall_rate(), Some(0.7));
    }

    #[test]
    fn accumulated_rates_are_cumulative() {
        let mut b = TimeBins::new(SimDuration::from_secs(1), 3);
        b.record_weighted(SimTime::from_secs(0), 1, 1);
        b.record_weighted(SimTime::from_secs(1), 0, 1);
        b.record_weighted(SimTime::from_secs(2), 1, 2);
        let acc = b.accumulated_rates();
        assert_eq!(acc[0], Some(1.0));
        assert_eq!(acc[1], Some(0.5));
        assert_eq!(acc[2], Some(0.5));
    }

    #[test]
    fn merge_accumulates_runs() {
        let mut a = bins_40x5();
        a.record(SimTime::from_secs(1), true);
        let mut b = bins_40x5();
        b.record(SimTime::from_secs(1), false);
        a.merge(&b);
        assert_eq!(a.rate(0), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn merge_rejects_mismatched_layout() {
        let mut a = bins_40x5();
        let b = TimeBins::new(SimDuration::from_secs(5), 20);
        a.merge(&b);
    }

    #[test]
    fn drop_rate_matches_paper_definition() {
        // Baseline 100 % everywhere, attacked 60 % everywhere ⇒ γ = 0.4.
        let mut a = bins_40x5();
        let mut b = bins_40x5();
        for s in 0..200 {
            a.record(SimTime::from_secs(s), true);
            b.record(SimTime::from_secs(s), s % 5 < 3);
        }
        let cmp = AbComparison::new(a, b);
        let g = cmp.drop_rate().unwrap();
        assert!((g - 0.4).abs() < 1e-9, "γ = {g}");
    }

    #[test]
    fn drop_rate_floors_negative_bins() {
        // Attacked better than baseline ⇒ γ = 0, not negative.
        let mut a = bins_40x5();
        let mut b = bins_40x5();
        a.record(SimTime::from_secs(1), true);
        a.record(SimTime::from_secs(1), false); // baseline 50 %
        b.record(SimTime::from_secs(1), true); // attacked 100 %
        let cmp = AbComparison::new(a, b);
        assert_eq!(cmp.drop_rate(), Some(0.0));
    }

    #[test]
    fn drop_rate_is_relative() {
        // Baseline 50 %, attacked 10 % ⇒ relative drop 80 % (the paper's
        // γ semantics: near-total interception even off a lossy baseline).
        let mut a = bins_40x5();
        let mut b = bins_40x5();
        for i in 0..10 {
            a.record(SimTime::from_secs(1), i % 2 == 0);
            b.record(SimTime::from_secs(1), i < 1);
        }
        let cmp = AbComparison::new(a, b);
        assert!((cmp.drop_rate().unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn drop_rate_skips_zero_baseline_bins() {
        let mut a = bins_40x5();
        let mut b = bins_40x5();
        a.record(SimTime::from_secs(1), false); // baseline 0 in bin 0
        b.record(SimTime::from_secs(1), true);
        let cmp = AbComparison::new(a, b);
        assert_eq!(cmp.drop_rate(), None);
    }

    #[test]
    fn drop_rate_none_when_disjoint_bins() {
        let mut a = bins_40x5();
        let mut b = bins_40x5();
        a.record(SimTime::from_secs(1), true);
        b.record(SimTime::from_secs(100), true);
        let cmp = AbComparison::new(a, b);
        assert_eq!(cmp.drop_rate(), None);
    }

    #[test]
    fn accumulated_drop_rates_shape() {
        let mut a = bins_40x5();
        let mut b = bins_40x5();
        for s in 0..200 {
            a.record(SimTime::from_secs(s), true);
            b.record(SimTime::from_secs(s), false);
        }
        let cmp = AbComparison::new(a, b);
        let acc = cmp.accumulated_drop_rates();
        assert_eq!(acc.len(), 40);
        assert!(acc.iter().all(|r| *r == Some(1.0)));
    }

    #[test]
    fn running_stats_basics() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), Some(5.0));
        assert!((s.std_dev().unwrap() - 2.138_089_935).abs() < 1e-6);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn running_stats_rejects_nan() {
        let mut s = RunningStats::new();
        s.push(f64::NAN);
    }

    #[test]
    fn running_stats_merge_matches_single_accumulator() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0];
        let ys = [5.0, 7.0, 9.0];
        let mut a: RunningStats = xs.into_iter().collect();
        let b: RunningStats = ys.into_iter().collect();
        a.merge(&b);
        let all: RunningStats = xs.into_iter().chain(ys).collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-12);
        assert!((a.std_dev().unwrap() - all.std_dev().unwrap()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn running_stats_merge_with_empty_is_identity() {
        let full: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let mut a = full;
        a.merge(&RunningStats::new());
        assert_eq!(a, full);
        let mut b = RunningStats::new();
        b.merge(&full);
        assert_eq!(b, full);
        let mut c = RunningStats::new();
        c.merge(&RunningStats::new());
        assert_eq!(c.mean(), None);
    }

    proptest! {
        #[test]
        fn prop_rates_in_unit_interval(events in prop::collection::vec((0u64..200, any::<bool>()), 1..500)) {
            let mut b = bins_40x5();
            for (s, ok) in events {
                b.record(SimTime::from_secs(s), ok);
            }
            for r in b.rates().into_iter().flatten() {
                prop_assert!((0.0..=1.0).contains(&r));
            }
            for r in b.accumulated_rates().into_iter().flatten() {
                prop_assert!((0.0..=1.0).contains(&r));
            }
            let overall = b.overall_rate().unwrap();
            prop_assert!((0.0..=1.0).contains(&overall));
        }

        #[test]
        fn prop_drop_rate_in_unit_interval(
            a_events in prop::collection::vec((0u64..200, any::<bool>()), 1..200),
            b_events in prop::collection::vec((0u64..200, any::<bool>()), 1..200))
        {
            let mut a = bins_40x5();
            for (s, ok) in a_events { a.record(SimTime::from_secs(s), ok); }
            let mut b = bins_40x5();
            for (s, ok) in b_events { b.record(SimTime::from_secs(s), ok); }
            if let Some(g) = AbComparison::new(a, b).drop_rate() {
                prop_assert!((0.0..=1.0).contains(&g));
            }
        }

        #[test]
        fn prop_merge_equals_single_accumulator(
            xs in prop::collection::vec(-1e6f64..1e6, 0..100),
            ys in prop::collection::vec(-1e6f64..1e6, 0..100))
        {
            let mut merged: RunningStats = xs.iter().copied().collect();
            merged.merge(&ys.iter().copied().collect());
            let all: RunningStats = xs.iter().chain(&ys).copied().collect();
            prop_assert_eq!(merged.count(), all.count());
            match (merged.mean(), all.mean()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6),
                (a, b) => prop_assert_eq!(a, b),
            }
            match (merged.std_dev(), all.std_dev()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6),
                (a, b) => prop_assert_eq!(a, b),
            }
        }

        #[test]
        fn prop_running_stats_mean_bounded(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: RunningStats = xs.iter().copied().collect();
            let mean = s.mean().unwrap();
            prop_assert!(s.min().unwrap() <= mean + 1e-9);
            prop_assert!(mean <= s.max().unwrap() + 1e-9);
        }
    }
}
