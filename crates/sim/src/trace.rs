//! Packet-lifecycle tracing: structured events, pluggable sinks, and a
//! zero-overhead-when-disabled emission handle.
//!
//! Every layer of the stack — the GeoNetworking router, the radio world,
//! the traffic microsimulation and the attackers — reports what it did to
//! a packet as a [`TraceEvent`]. Events flow through a [`Tracer`] handle
//! into a [`TraceSink`]:
//!
//! * [`NullSink`] — the default; the `Tracer` holds no sink at all, so an
//!   emission is a single branch on an `Option` and the event is never
//!   constructed observably.
//! * [`CountingSink`] — typed per-event counters, total and per node; the
//!   router's public statistics are derived from the same events.
//! * [`JsonlSink`] — one JSON object per line (simulation timestamp, node
//!   id, event payload), hand-encoded so it works offline without a real
//!   serde backend, and parseable back into [`TraceRecord`]s for
//!   post-mortem forensics.
//! * [`VecSink`] — an in-memory record buffer for tests and the
//!   forensic reconstruction in `geonet-scenarios`.
//!
//! The event vocabulary is deliberately flat and primitive-typed: packets
//! are identified by [`PacketRef`] (48-bit source address + sequence
//! number), peers by their raw address bits, so the bottom-of-the-stack
//! `geonet-sim` crate needs no knowledge of the wire types above it.

use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::rc::Rc;

macro_rules! fmt_via_name {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(self.name())
        }
    };
}

/// Identity of one routed packet: the originator's address bits plus the
/// originator-assigned sequence number.
///
/// This mirrors the router's `PacketKey` (source address, sequence
/// number) but is defined here, below the wire types, so every crate in
/// the workspace can stamp events with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketRef {
    /// The originator's GeoNetworking address as raw bits.
    pub source: u64,
    /// The originator-assigned sequence number.
    pub sn: u16,
}

impl PacketRef {
    /// Creates a packet reference.
    #[must_use]
    pub const fn new(source: u64, sn: u16) -> Self {
        PacketRef { source, sn }
    }
}

impl fmt::Display for PacketRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}#{}", self.source, self.sn)
    }
}

/// Why a router discarded a packet instead of delivering or forwarding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// The security envelope failed verification.
    AuthFailure,
    /// The security timestamp was outside the freshness window.
    StaleTimestamp,
    /// The remaining hop limit reached zero.
    RhlExhausted,
    /// Greedy forwarding found no neighbour with positive progress and
    /// the no-progress policy gave up (buffer attempts exhausted or
    /// immediate drop).
    NoNextHop,
    /// Link-layer acknowledgements ran out of retries.
    AckExhausted,
}

impl DropReason {
    /// Every drop reason, for exhaustive reports.
    pub const ALL: [DropReason; 5] = [
        DropReason::AuthFailure,
        DropReason::StaleTimestamp,
        DropReason::RhlExhausted,
        DropReason::NoNextHop,
        DropReason::AckExhausted,
    ];

    /// Stable snake_case name used in the JSONL encoding and reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DropReason::AuthFailure => "auth_failure",
            DropReason::StaleTimestamp => "stale_timestamp",
            DropReason::RhlExhausted => "rhl_exhausted",
            DropReason::NoNextHop => "no_next_hop",
            DropReason::AckExhausted => "ack_exhausted",
        }
    }

    /// Index into [`DropReason::ALL`]-sized count arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            DropReason::AuthFailure => 0,
            DropReason::StaleTimestamp => 1,
            DropReason::RhlExhausted => 2,
            DropReason::NoNextHop => 3,
            DropReason::AckExhausted => 4,
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        DropReason::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for DropReason {
    fmt_via_name!();
}

/// What an attacker just did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackKind {
    /// The inter-area attacker captured a sniffed beacon for replay.
    InterceptionCapture,
    /// The inter-area attacker replayed a beacon with its own sender
    /// position, poisoning downstream location tables.
    InterceptionReplay,
    /// The intra-area attacker replayed a first copy (RHL clamped or
    /// power controlled) to cancel CBF contention timers.
    BlockageReplay,
}

impl AttackKind {
    /// Stable snake_case name used in the JSONL encoding and reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AttackKind::InterceptionCapture => "interception_capture",
            AttackKind::InterceptionReplay => "interception_replay",
            AttackKind::BlockageReplay => "blockage_replay",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        [
            AttackKind::InterceptionCapture,
            AttackKind::InterceptionReplay,
            AttackKind::BlockageReplay,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

impl fmt::Display for AttackKind {
    fmt_via_name!();
}

/// One structured observation about a packet (or the world around it).
///
/// The emitting node and the simulation timestamp are not part of the
/// event; the [`Tracer`] supplies them, and [`TraceRecord`] carries the
/// complete triple.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A node created a new packet and handed it to its router.
    Originated {
        /// The new packet.
        packet: PacketRef,
    },
    /// A beacon passed verification and updated the location table.
    BeaconAccepted {
        /// Address bits of the beaconing neighbour.
        from: u64,
    },
    /// A frame left this node's radio.
    FrameTx {
        /// The routed packet inside the frame, if any (beacons carry none).
        packet: Option<PacketRef>,
        /// Link-layer destination address bits for unicast, `None` for
        /// broadcast.
        dst: Option<u64>,
        /// Whether the frame is a beacon.
        beacon: bool,
    },
    /// A frame arrived at this node's radio.
    FrameRx {
        /// The routed packet inside the frame, if any.
        packet: Option<PacketRef>,
        /// Link-layer source address bits.
        from: u64,
        /// Whether the frame is a beacon.
        beacon: bool,
    },
    /// The radio dropped a frame on the air (stochastic frame loss).
    FrameLost {
        /// The routed packet inside the frame, if any.
        packet: Option<PacketRef>,
        /// Link-layer source address bits of the transmitter.
        from: u64,
    },
    /// The packet reached a destination inside the target area.
    Delivered {
        /// The delivered packet.
        packet: PacketRef,
    },
    /// A duplicate copy arrived and was discarded (GF duplicate
    /// suppression or a CBF copy for an already-handled packet).
    DuplicateDiscarded {
        /// The duplicated packet.
        packet: PacketRef,
    },
    /// CBF armed a contention timer for the first copy of a packet.
    CbfArmed {
        /// The contended packet.
        packet: PacketRef,
        /// The drawn contention delay, in microseconds.
        delay_us: u64,
    },
    /// A duplicate arrived during contention and cancelled the timer —
    /// the node will never rebroadcast this packet.
    CbfCancelled {
        /// The suppressed packet.
        packet: PacketRef,
        /// Link-layer source address bits of the duplicate that caused
        /// the cancellation (the paper's blockage attacker shows up
        /// here).
        by: u64,
    },
    /// The contention timer expired and the node rebroadcast the packet.
    CbfFired {
        /// The rebroadcast packet.
        packet: PacketRef,
    },
    /// The RHL-mitigation rejected a duplicate as implausible, so the
    /// contention timer kept running.
    CbfMitigationRejected {
        /// The contended packet.
        packet: PacketRef,
        /// Link-layer source address bits of the rejected duplicate.
        by: u64,
    },
    /// Greedy forwarding chose a unicast next hop.
    GfNextHop {
        /// The forwarded packet.
        packet: PacketRef,
        /// Address bits of the chosen neighbour.
        next_hop: u64,
    },
    /// Greedy forwarding found no progress and fell back to broadcast.
    GfFallback {
        /// The forwarded packet.
        packet: PacketRef,
    },
    /// Greedy forwarding found no progress and buffered the packet for a
    /// later retry.
    GfBuffered {
        /// The buffered packet.
        packet: PacketRef,
        /// 1-based buffering attempt.
        attempt: u32,
    },
    /// A link-layer acknowledgement timed out and the packet was
    /// rescheduled to another next hop.
    GfAckRetry {
        /// The retried packet.
        packet: PacketRef,
        /// 1-based retry attempt.
        attempt: u32,
    },
    /// The router discarded the packet for good.
    Dropped {
        /// The discarded packet.
        packet: PacketRef,
        /// Why it was discarded.
        reason: DropReason,
    },
    /// An attacker acted.
    AttackAction {
        /// What the attacker did.
        kind: AttackKind,
        /// The packet involved, when the action concerns a routed packet.
        packet: Option<PacketRef>,
    },
    /// The traffic simulation placed a hazard on the road.
    HazardOnset {
        /// Road x-coordinate of the hazard, in metres.
        x: f64,
    },
    /// Two vehicles collided.
    Collision {
        /// Road x-coordinate of the collision, in metres.
        x: f64,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the variant, used as the JSONL `ev`
    /// field and as the counter key in reports.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            TraceEvent::Originated { .. } => "originated",
            TraceEvent::BeaconAccepted { .. } => "beacon_accepted",
            TraceEvent::FrameTx { .. } => "frame_tx",
            TraceEvent::FrameRx { .. } => "frame_rx",
            TraceEvent::FrameLost { .. } => "frame_lost",
            TraceEvent::Delivered { .. } => "delivered",
            TraceEvent::DuplicateDiscarded { .. } => "duplicate_discarded",
            TraceEvent::CbfArmed { .. } => "cbf_armed",
            TraceEvent::CbfCancelled { .. } => "cbf_cancelled",
            TraceEvent::CbfFired { .. } => "cbf_fired",
            TraceEvent::CbfMitigationRejected { .. } => "cbf_mitigation_rejected",
            TraceEvent::GfNextHop { .. } => "gf_next_hop",
            TraceEvent::GfFallback { .. } => "gf_fallback",
            TraceEvent::GfBuffered { .. } => "gf_buffered",
            TraceEvent::GfAckRetry { .. } => "gf_ack_retry",
            TraceEvent::Dropped { .. } => "dropped",
            TraceEvent::AttackAction { .. } => "attack_action",
            TraceEvent::HazardOnset { .. } => "hazard_onset",
            TraceEvent::Collision { .. } => "collision",
        }
    }

    /// The packet this event concerns, when there is one.
    #[must_use]
    pub const fn packet(&self) -> Option<PacketRef> {
        match self {
            TraceEvent::Originated { packet }
            | TraceEvent::Delivered { packet }
            | TraceEvent::DuplicateDiscarded { packet }
            | TraceEvent::CbfArmed { packet, .. }
            | TraceEvent::CbfCancelled { packet, .. }
            | TraceEvent::CbfFired { packet }
            | TraceEvent::CbfMitigationRejected { packet, .. }
            | TraceEvent::GfNextHop { packet, .. }
            | TraceEvent::GfFallback { packet }
            | TraceEvent::GfBuffered { packet, .. }
            | TraceEvent::GfAckRetry { packet, .. }
            | TraceEvent::Dropped { packet, .. } => Some(*packet),
            TraceEvent::FrameTx { packet, .. }
            | TraceEvent::FrameRx { packet, .. }
            | TraceEvent::FrameLost { packet, .. }
            | TraceEvent::AttackAction { packet, .. } => *packet,
            TraceEvent::BeaconAccepted { .. }
            | TraceEvent::HazardOnset { .. }
            | TraceEvent::Collision { .. } => None,
        }
    }
}

/// A complete trace line: when, who, what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Node id of the emitter (the scenario world's node index).
    pub node: u32,
    /// The event itself.
    pub event: TraceEvent,
}

// ---------------------------------------------------------------------
// JSONL encoding
// ---------------------------------------------------------------------

impl TraceRecord {
    /// Encodes this record as a single JSON object (no trailing newline).
    ///
    /// The encoding is flat: `{"t_us":…,"node":…,"ev":"…", <fields>}`,
    /// with packet identity spread into `src`/`sn`. Hand-rolled because
    /// the vendored serde has no real backend — and the format doubles as
    /// the stable, documented schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"t_us\":");
        s.push_str(&self.at.as_micros().to_string());
        s.push_str(",\"node\":");
        s.push_str(&self.node.to_string());
        s.push_str(",\"ev\":\"");
        s.push_str(self.event.name());
        s.push('"');
        let put_u64 = |s: &mut String, key: &str, v: u64| {
            s.push_str(",\"");
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&v.to_string());
        };
        let put_packet = |s: &mut String, p: &PacketRef| {
            s.push_str(",\"src\":");
            s.push_str(&p.source.to_string());
            s.push_str(",\"sn\":");
            s.push_str(&p.sn.to_string());
        };
        match &self.event {
            TraceEvent::Originated { packet }
            | TraceEvent::Delivered { packet }
            | TraceEvent::DuplicateDiscarded { packet }
            | TraceEvent::CbfFired { packet }
            | TraceEvent::GfFallback { packet } => put_packet(&mut s, packet),
            TraceEvent::BeaconAccepted { from } => put_u64(&mut s, "from", *from),
            TraceEvent::FrameTx { packet, dst, beacon } => {
                if let Some(p) = packet {
                    put_packet(&mut s, p);
                }
                if let Some(d) = dst {
                    put_u64(&mut s, "dst", *d);
                }
                s.push_str(",\"beacon\":");
                s.push_str(if *beacon { "true" } else { "false" });
            }
            TraceEvent::FrameRx { packet, from, beacon } => {
                if let Some(p) = packet {
                    put_packet(&mut s, p);
                }
                put_u64(&mut s, "from", *from);
                s.push_str(",\"beacon\":");
                s.push_str(if *beacon { "true" } else { "false" });
            }
            TraceEvent::FrameLost { packet, from } => {
                if let Some(p) = packet {
                    put_packet(&mut s, p);
                }
                put_u64(&mut s, "from", *from);
            }
            TraceEvent::CbfArmed { packet, delay_us } => {
                put_packet(&mut s, packet);
                put_u64(&mut s, "delay_us", *delay_us);
            }
            TraceEvent::CbfCancelled { packet, by }
            | TraceEvent::CbfMitigationRejected { packet, by } => {
                put_packet(&mut s, packet);
                put_u64(&mut s, "by", *by);
            }
            TraceEvent::GfNextHop { packet, next_hop } => {
                put_packet(&mut s, packet);
                put_u64(&mut s, "next_hop", *next_hop);
            }
            TraceEvent::GfBuffered { packet, attempt }
            | TraceEvent::GfAckRetry { packet, attempt } => {
                put_packet(&mut s, packet);
                put_u64(&mut s, "attempt", u64::from(*attempt));
            }
            TraceEvent::Dropped { packet, reason } => {
                put_packet(&mut s, packet);
                s.push_str(",\"reason\":\"");
                s.push_str(reason.name());
                s.push('"');
            }
            TraceEvent::AttackAction { kind, packet } => {
                s.push_str(",\"kind\":\"");
                s.push_str(kind.name());
                s.push('"');
                if let Some(p) = packet {
                    put_packet(&mut s, p);
                }
            }
            TraceEvent::HazardOnset { x } | TraceEvent::Collision { x } => {
                s.push_str(",\"x\":");
                s.push_str(&format_f64(*x));
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL line produced by [`TraceRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or semantic problem.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let num = |key: &str| -> Result<u64, String> {
            match get(key) {
                Some(JsonValue::Number(n)) => {
                    n.parse::<u64>().map_err(|_| format!("field {key:?} is not a u64: {n:?}"))
                }
                Some(v) => Err(format!("field {key:?} is not an integer: {v:?}")),
                None => Err(format!("missing field {key:?}")),
            }
        };
        let opt_num = |key: &str| -> Result<Option<u64>, String> {
            match get(key) {
                None => Ok(None),
                Some(_) => num(key).map(Some),
            }
        };
        let string = |key: &str| -> Result<&str, String> {
            match get(key) {
                Some(JsonValue::String(v)) => Ok(v),
                Some(v) => Err(format!("field {key:?} is not a string: {v:?}")),
                None => Err(format!("missing field {key:?}")),
            }
        };
        let boolean = |key: &str| -> Result<bool, String> {
            match get(key) {
                Some(JsonValue::Bool(b)) => Ok(*b),
                Some(v) => Err(format!("field {key:?} is not a bool: {v:?}")),
                None => Err(format!("missing field {key:?}")),
            }
        };
        let float = |key: &str| -> Result<f64, String> {
            match get(key) {
                Some(JsonValue::Number(n)) => {
                    n.parse::<f64>().map_err(|_| format!("field {key:?} is not a number: {n:?}"))
                }
                Some(v) => Err(format!("field {key:?} is not a number: {v:?}")),
                None => Err(format!("missing field {key:?}")),
            }
        };
        let packet =
            || -> Result<PacketRef, String> { Ok(PacketRef::new(num("src")?, num("sn")? as u16)) };
        let opt_packet = || -> Result<Option<PacketRef>, String> {
            if get("src").is_some() {
                packet().map(Some)
            } else {
                Ok(None)
            }
        };

        let at = SimTime::from_micros(num("t_us")?);
        let node = num("node")? as u32;
        let ev = string("ev")?;
        let event = match ev {
            "originated" => TraceEvent::Originated { packet: packet()? },
            "beacon_accepted" => TraceEvent::BeaconAccepted { from: num("from")? },
            "frame_tx" => TraceEvent::FrameTx {
                packet: opt_packet()?,
                dst: opt_num("dst")?,
                beacon: boolean("beacon")?,
            },
            "frame_rx" => TraceEvent::FrameRx {
                packet: opt_packet()?,
                from: num("from")?,
                beacon: boolean("beacon")?,
            },
            "frame_lost" => TraceEvent::FrameLost { packet: opt_packet()?, from: num("from")? },
            "delivered" => TraceEvent::Delivered { packet: packet()? },
            "duplicate_discarded" => TraceEvent::DuplicateDiscarded { packet: packet()? },
            "cbf_armed" => TraceEvent::CbfArmed { packet: packet()?, delay_us: num("delay_us")? },
            "cbf_cancelled" => TraceEvent::CbfCancelled { packet: packet()?, by: num("by")? },
            "cbf_fired" => TraceEvent::CbfFired { packet: packet()? },
            "cbf_mitigation_rejected" => {
                TraceEvent::CbfMitigationRejected { packet: packet()?, by: num("by")? }
            }
            "gf_next_hop" => {
                TraceEvent::GfNextHop { packet: packet()?, next_hop: num("next_hop")? }
            }
            "gf_fallback" => TraceEvent::GfFallback { packet: packet()? },
            "gf_buffered" => {
                TraceEvent::GfBuffered { packet: packet()?, attempt: num("attempt")? as u32 }
            }
            "gf_ack_retry" => {
                TraceEvent::GfAckRetry { packet: packet()?, attempt: num("attempt")? as u32 }
            }
            "dropped" => TraceEvent::Dropped {
                packet: packet()?,
                reason: DropReason::from_name(string("reason")?)
                    .ok_or_else(|| format!("unknown drop reason {:?}", string("reason")))?,
            },
            "attack_action" => TraceEvent::AttackAction {
                kind: AttackKind::from_name(string("kind")?)
                    .ok_or_else(|| format!("unknown attack kind {:?}", string("kind")))?,
                packet: opt_packet()?,
            },
            "hazard_onset" => TraceEvent::HazardOnset { x: float("x")? },
            "collision" => TraceEvent::Collision { x: float("x")? },
            other => return Err(format!("unknown event {other:?}")),
        };
        Ok(TraceRecord { at, node, event })
    }
}

/// Formats an `f64` so it round-trips exactly and is valid JSON.
fn format_f64(x: f64) -> String {
    assert!(x.is_finite(), "trace coordinates must be finite: {x}");
    let s = format!("{x:?}"); // shortest representation that round-trips
    debug_assert!(s.parse::<f64>() == Ok(x));
    s
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    /// Kept as raw text: parsing through `f64` would silently truncate
    /// u64 address bits above 2^53.
    Number(String),
    String(String),
    Bool(bool),
}

/// Parses a flat JSON object (no nesting) into key/value pairs.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        // Key.
        let after_quote =
            rest.strip_prefix('"').ok_or_else(|| format!("expected quoted key at {rest:?}"))?;
        let end = after_quote.find('"').ok_or_else(|| format!("unterminated key at {rest:?}"))?;
        let key = after_quote[..end].to_string();
        rest = after_quote[end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key {key:?}"))?
            .trim_start();
        // Value: string, bool, or number.
        let value;
        if let Some(after) = rest.strip_prefix('"') {
            let end =
                after.find('"').ok_or_else(|| format!("unterminated string value for {key:?}"))?;
            value = JsonValue::String(after[..end].to_string());
            rest = &after[end + 1..];
        } else if let Some(after) = rest.strip_prefix("true") {
            value = JsonValue::Bool(true);
            rest = after;
        } else if let Some(after) = rest.strip_prefix("false") {
            value = JsonValue::Bool(false);
            rest = after;
        } else {
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            let token = rest[..end].trim();
            let _: f64 =
                token.parse().map_err(|_| format!("bad number {token:?} for key {key:?}"))?;
            value = JsonValue::Number(token.to_string());
            rest = &rest[end..];
        }
        fields.push((key, value));
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("trailing garbage: {rest:?}"));
        }
    }
    Ok(fields)
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Receives trace records. Implementations must be cheap: the router
/// calls into the sink from its hot path when tracing is enabled.
pub trait TraceSink {
    /// Records one event emitted by `node` at time `at`.
    fn record(&mut self, at: SimTime, node: u32, event: &TraceEvent);
}

/// Discards everything. With the default [`Tracer::disabled`] handle the
/// sink is not even consulted; this type exists for explicitness when an
/// API requires a sink object.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _at: SimTime, _node: u32, _event: &TraceEvent) {}
}

/// Collects records in memory; the forensic reconstruction and the tests
/// read them back.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    records: Vec<TraceRecord>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The records collected so far.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the sink, returning the collected records.
    #[must_use]
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Takes the records collected so far, leaving the sink empty —
    /// lets a driver consume the stream incrementally (e.g. once per
    /// simulated second) while the run continues to feed the sink.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, at: SimTime, node: u32, event: &TraceEvent) {
        self.records.push(TraceRecord { at, node, event: event.clone() });
    }
}

/// Typed counters for every event variant (drops split by reason).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Packets originated.
    pub originated: u64,
    /// Beacons accepted into the location table.
    pub beacons_accepted: u64,
    /// Frames transmitted.
    pub frames_tx: u64,
    /// Frames received.
    pub frames_rx: u64,
    /// Frames lost on the air.
    pub frames_lost: u64,
    /// Packets delivered in their destination area.
    pub delivered: u64,
    /// Duplicate copies discarded.
    pub duplicates_discarded: u64,
    /// CBF contention timers armed.
    pub cbf_armed: u64,
    /// CBF contention timers cancelled by a duplicate.
    pub cbf_cancelled: u64,
    /// CBF contention timers that fired (rebroadcasts).
    pub cbf_fired: u64,
    /// Duplicates rejected by the RHL-mitigation.
    pub cbf_mitigation_rejected: u64,
    /// Greedy unicast next-hop selections.
    pub gf_next_hop: u64,
    /// Greedy broadcast fallbacks.
    pub gf_fallback: u64,
    /// Packets buffered for lack of progress.
    pub gf_buffered: u64,
    /// Link-ack retries.
    pub gf_ack_retries: u64,
    /// Final drops, indexed by [`DropReason::index`].
    pub dropped: [u64; DropReason::ALL.len()],
    /// Attacker actions observed.
    pub attack_actions: u64,
    /// Hazards placed on the road.
    pub hazards: u64,
    /// Vehicle collisions.
    pub collisions: u64,
}

impl EventCounters {
    /// Updates the counters for one event.
    pub fn record(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Originated { .. } => self.originated += 1,
            TraceEvent::BeaconAccepted { .. } => self.beacons_accepted += 1,
            TraceEvent::FrameTx { .. } => self.frames_tx += 1,
            TraceEvent::FrameRx { .. } => self.frames_rx += 1,
            TraceEvent::FrameLost { .. } => self.frames_lost += 1,
            TraceEvent::Delivered { .. } => self.delivered += 1,
            TraceEvent::DuplicateDiscarded { .. } => self.duplicates_discarded += 1,
            TraceEvent::CbfArmed { .. } => self.cbf_armed += 1,
            TraceEvent::CbfCancelled { .. } => self.cbf_cancelled += 1,
            TraceEvent::CbfFired { .. } => self.cbf_fired += 1,
            TraceEvent::CbfMitigationRejected { .. } => self.cbf_mitigation_rejected += 1,
            TraceEvent::GfNextHop { .. } => self.gf_next_hop += 1,
            TraceEvent::GfFallback { .. } => self.gf_fallback += 1,
            TraceEvent::GfBuffered { .. } => self.gf_buffered += 1,
            TraceEvent::GfAckRetry { .. } => self.gf_ack_retries += 1,
            TraceEvent::Dropped { reason, .. } => self.dropped[reason.index()] += 1,
            TraceEvent::AttackAction { .. } => self.attack_actions += 1,
            TraceEvent::HazardOnset { .. } => self.hazards += 1,
            TraceEvent::Collision { .. } => self.collisions += 1,
        }
    }

    /// Drop count for one reason.
    #[must_use]
    pub fn dropped_for(&self, reason: DropReason) -> u64 {
        self.dropped[reason.index()]
    }

    /// Total drops across all reasons.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// `(label, count)` pairs for every non-zero counter, largest first —
    /// the shape the end-of-run summary prints.
    #[must_use]
    pub fn top_counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = [
            ("originated", self.originated),
            ("beacons_accepted", self.beacons_accepted),
            ("frames_tx", self.frames_tx),
            ("frames_rx", self.frames_rx),
            ("frames_lost", self.frames_lost),
            ("delivered", self.delivered),
            ("duplicates_discarded", self.duplicates_discarded),
            ("cbf_armed", self.cbf_armed),
            ("cbf_cancelled", self.cbf_cancelled),
            ("cbf_fired", self.cbf_fired),
            ("cbf_mitigation_rejected", self.cbf_mitigation_rejected),
            ("gf_next_hop", self.gf_next_hop),
            ("gf_fallback", self.gf_fallback),
            ("gf_buffered", self.gf_buffered),
            ("gf_ack_retries", self.gf_ack_retries),
            ("attack_actions", self.attack_actions),
            ("hazards", self.hazards),
            ("collisions", self.collisions),
        ]
        .into_iter()
        .filter(|&(_, v)| v > 0)
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        for reason in DropReason::ALL {
            let v = self.dropped_for(reason);
            if v > 0 {
                out.push((format!("dropped_{}", reason.name()), v));
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// Counts events, in total and per emitting node.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    totals: EventCounters,
    per_node: BTreeMap<u32, EventCounters>,
}

impl CountingSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Counters aggregated over all nodes.
    #[must_use]
    pub fn totals(&self) -> &EventCounters {
        &self.totals
    }

    /// Counters for one node, if it ever emitted.
    #[must_use]
    pub fn node(&self, node: u32) -> Option<&EventCounters> {
        self.per_node.get(&node)
    }

    /// Iterates over `(node, counters)` pairs in node order.
    pub fn nodes(&self) -> impl Iterator<Item = (u32, &EventCounters)> {
        self.per_node.iter().map(|(&n, c)| (n, c))
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, _at: SimTime, node: u32, event: &TraceEvent) {
        self.totals.record(event);
        self.per_node.entry(node).or_default().record(event);
    }
}

/// Streams records as JSON Lines to any [`Write`] target.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Callers owning file handles should pass a
    /// `BufWriter`; the sink writes one line per event.
    pub fn new(out: W) -> Self {
        JsonlSink { out, lines: 0 }
    }

    /// Number of lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, at: SimTime, node: u32, event: &TraceEvent) {
        let record = TraceRecord { at, node, event: event.clone() };
        // A full trace is advisory output; losing late lines to a broken
        // pipe must not abort a deterministic simulation run.
        let _ = writeln!(self.out, "{}", record.to_json());
        self.lines += 1;
    }
}

// ---------------------------------------------------------------------
// The emission handle
// ---------------------------------------------------------------------

/// Shared handle to a sink, cloned per node.
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// Wraps any sink for sharing between emitters.
pub fn shared<S: TraceSink + 'static>(sink: S) -> Rc<RefCell<S>> {
    Rc::new(RefCell::new(sink))
}

/// A node's handle for emitting trace events.
///
/// The disabled handle (the default) holds no sink: emitting is one
/// `Option` branch and the closure constructing the event is never
/// called, so instrumented hot paths pay no observable cost.
#[derive(Clone, Default)]
pub struct Tracer {
    node: u32,
    sink: Option<SharedSink>,
}

impl Tracer {
    /// A handle that drops everything (the default for every router).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A root handle attached to `sink`; derive per-node handles with
    /// [`Tracer::for_node`].
    #[must_use]
    pub fn attached(sink: SharedSink) -> Self {
        Tracer { node: u32::MAX, sink: Some(sink) }
    }

    /// A handle emitting under `node`'s id, sharing this handle's sink.
    #[must_use]
    pub fn for_node(&self, node: u32) -> Self {
        Tracer { node, sink: self.sink.clone() }
    }

    /// Whether a sink is attached. Callers can skip expensive event
    /// construction when this is `false`; [`Tracer::emit`] already does.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The node id this handle stamps on its events.
    #[must_use]
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Emits one event, constructing it lazily: with no sink attached the
    /// closure is never called.
    #[inline]
    pub fn emit(&self, at: SimTime, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(at, self.node, &event());
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("node", &self.node)
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One sample of every event variant, exercising every optional
    /// field shape.
    fn sample_events() -> Vec<TraceEvent> {
        let p = PacketRef::new(0x0000_8000_0000_2A01, 17);
        vec![
            TraceEvent::Originated { packet: p },
            TraceEvent::BeaconAccepted { from: 42 },
            TraceEvent::FrameTx { packet: Some(p), dst: Some(7), beacon: false },
            TraceEvent::FrameTx { packet: None, dst: None, beacon: true },
            TraceEvent::FrameRx { packet: Some(p), from: 3, beacon: false },
            TraceEvent::FrameRx { packet: None, from: 3, beacon: true },
            TraceEvent::FrameLost { packet: Some(p), from: 9 },
            TraceEvent::FrameLost { packet: None, from: 9 },
            TraceEvent::Delivered { packet: p },
            TraceEvent::DuplicateDiscarded { packet: p },
            TraceEvent::CbfArmed { packet: p, delay_us: 53_000 },
            TraceEvent::CbfCancelled { packet: p, by: 0xFFFF_FFFF_0000 },
            TraceEvent::CbfFired { packet: p },
            TraceEvent::CbfMitigationRejected { packet: p, by: 0xFFFF_FFFF_0000 },
            TraceEvent::GfNextHop { packet: p, next_hop: 88 },
            TraceEvent::GfFallback { packet: p },
            TraceEvent::GfBuffered { packet: p, attempt: 2 },
            TraceEvent::GfAckRetry { packet: p, attempt: 1 },
            TraceEvent::AttackAction { kind: AttackKind::BlockageReplay, packet: Some(p) },
            TraceEvent::AttackAction { kind: AttackKind::InterceptionCapture, packet: None },
            TraceEvent::HazardOnset { x: 2_611.25 },
            TraceEvent::Collision { x: 930.0625 },
        ]
        .into_iter()
        .chain(DropReason::ALL.map(|reason| TraceEvent::Dropped { packet: p, reason }))
        .collect()
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let record = TraceRecord {
                at: SimTime::from_micros(1_234_567 + i as u64),
                node: i as u32,
                event,
            };
            let line = record.to_json();
            let back = TraceRecord::from_json(&line)
                .unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
            assert_eq!(back, record, "line: {line}");
        }
    }

    #[test]
    fn json_lines_are_single_objects() {
        for event in sample_events() {
            let line = TraceRecord { at: SimTime::ZERO, node: 0, event }.to_json();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'), "{line}");
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "[1,2]",
            r#"{"t_us":1}"#,
            r#"{"t_us":1,"node":0,"ev":"no_such_event"}"#,
            r#"{"t_us":1,"node":0,"ev":"dropped","src":1,"sn":2,"reason":"bogus"}"#,
            r#"{"t_us":-4,"node":0,"ev":"originated","src":1,"sn":2}"#,
        ] {
            assert!(TraceRecord::from_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn counting_sink_counts_per_node_and_total() {
        let mut sink = CountingSink::new();
        let p = PacketRef::new(1, 1);
        sink.record(SimTime::ZERO, 3, &TraceEvent::Originated { packet: p });
        sink.record(
            SimTime::ZERO,
            3,
            &TraceEvent::Dropped { packet: p, reason: DropReason::RhlExhausted },
        );
        sink.record(SimTime::ZERO, 5, &TraceEvent::Delivered { packet: p });
        assert_eq!(sink.totals().originated, 1);
        assert_eq!(sink.totals().dropped_for(DropReason::RhlExhausted), 1);
        assert_eq!(sink.totals().total_dropped(), 1);
        assert_eq!(sink.node(3).unwrap().originated, 1);
        assert_eq!(sink.node(5).unwrap().delivered, 1);
        assert!(sink.node(9).is_none());
        assert_eq!(sink.nodes().count(), 2);
        let top = sink.totals().top_counters();
        assert!(top.contains(&("dropped_rhl_exhausted".to_string(), 1)));
    }

    #[test]
    fn event_counters_cover_every_variant() {
        let mut c = EventCounters::default();
        let events = sample_events();
        for e in &events {
            c.record(e);
        }
        // Every event must land in exactly one counter.
        let sum: u64 = c.top_counters().iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, events.len() as u64);
        for reason in DropReason::ALL {
            assert_eq!(c.dropped_for(reason), 1, "{reason}");
        }
    }

    #[test]
    fn disabled_tracer_never_constructs_events() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        tracer.emit(SimTime::ZERO, || panic!("event constructed despite disabled tracer"));
    }

    #[test]
    fn tracer_stamps_node_and_time() {
        let sink = shared(VecSink::new());
        let root = Tracer::attached(sink.clone());
        let t3 = root.for_node(3);
        let t9 = root.for_node(9);
        assert!(t3.is_enabled());
        t3.emit(SimTime::from_millis(5), || TraceEvent::BeaconAccepted { from: 1 });
        t9.emit(SimTime::from_millis(6), || TraceEvent::BeaconAccepted { from: 2 });
        let records = sink.borrow().records().to_vec();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].node, 3);
        assert_eq!(records[0].at, SimTime::from_millis(5));
        assert_eq!(records[1].node, 9);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        let p = PacketRef::new(6, 2);
        sink.record(SimTime::from_secs(1), 4, &TraceEvent::CbfFired { packet: p });
        sink.record(SimTime::from_secs(2), 4, &TraceEvent::CbfCancelled { packet: p, by: 11 });
        assert_eq!(sink.lines(), 2);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let records: Vec<TraceRecord> =
            text.lines().map(|l| TraceRecord::from_json(l).unwrap()).collect();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].event, TraceEvent::CbfCancelled { packet: p, by: 11 });
    }

    #[test]
    fn packet_accessor_matches_variants() {
        let p = PacketRef::new(5, 9);
        assert_eq!(TraceEvent::Delivered { packet: p }.packet(), Some(p));
        assert_eq!(TraceEvent::BeaconAccepted { from: 1 }.packet(), None);
        assert_eq!(
            TraceEvent::FrameTx { packet: Some(p), dst: None, beacon: false }.packet(),
            Some(p)
        );
        assert_eq!(TraceEvent::HazardOnset { x: 0.0 }.packet(), None);
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(DropReason::NoNextHop.to_string(), "no_next_hop");
        assert_eq!(AttackKind::InterceptionReplay.to_string(), "interception_replay");
        assert_eq!(PacketRef::new(255, 3).to_string(), "0xff#3");
    }
}
