//! Integer-microsecond simulation time.
//!
//! All protocol constants in the reproduced paper are exact in
//! microseconds: the CBF timer bounds (1 ms / 100 ms), the beacon period
//! (3 s ± 0.75 s jitter), the location-table TTL (5/10/20 s) and the
//! 200-second run length. Integer time makes event ordering exact and runs
//! bit-reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulation time, in microseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN or too large for the representation.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time in seconds: {s}");
        let us = (s * 1e6).round();
        assert!(us <= u64::MAX as f64, "time overflow: {s} s");
        SimTime(us as u64)
    }

    /// This time in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time in whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This time in whole seconds (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This time in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN or too large for the representation.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration in seconds: {s}");
        let us = (s * 1e6).round();
        assert!(us <= u64::MAX as f64, "duration overflow: {s} s");
        SimDuration(us as u64)
    }

    /// This duration in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This duration in whole seconds (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or NaN.
    #[must_use]
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid scale factor: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self` (integer division).
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions_are_consistent() {
        let t = SimTime::from_secs(3);
        assert_eq!(t.as_micros(), 3_000_000);
        assert_eq!(t.as_millis(), 3_000);
        assert_eq!(t.as_secs(), 3);
        assert_eq!(SimTime::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_secs(200).as_secs(), 200);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.1).as_millis(), 100);
    }

    #[test]
    #[should_panic(expected = "invalid time in seconds")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(5);
        let d = SimDuration::from_millis(100);
        assert_eq!((t + d).as_micros(), 5_100_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
        assert_eq!(SimDuration::from_secs(200) / SimDuration::from_secs(5), 40);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds_to_microsecond() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(50));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5µs");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000000s");
    }

    proptest! {
        #[test]
        fn prop_time_ordering_matches_micros(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
            let ta = SimTime::from_micros(a);
            let tb = SimTime::from_micros(b);
            prop_assert_eq!(ta < tb, a < b);
        }

        #[test]
        fn prop_add_sub_round_trip(t in 0u64..1u64<<40, d in 0u64..1u64<<40) {
            let time = SimTime::from_micros(t);
            let dur = SimDuration::from_micros(d);
            prop_assert_eq!((time + dur) - dur, time);
            prop_assert_eq!((time + dur) - time, dur);
        }

        #[test]
        fn prop_secs_f64_round_trip(us in 0u64..1u64<<40) {
            let d = SimDuration::from_micros(us);
            let back = SimDuration::from_secs_f64(d.as_secs_f64());
            // f64 has 53 bits of mantissa; within this range round-trip is
            // exact to the microsecond.
            prop_assert!(back.as_micros().abs_diff(us) <= 1);
        }
    }
}
