//! The discrete-event simulation loop.

use crate::{EventQueue, SimDuration, SimTime};

/// The discrete-event kernel: an event queue plus the simulation clock.
///
/// The kernel is deliberately minimal — it owns *when* things happen, not
/// *what* happens. Callers pop events and dispatch them against their own
/// world state, which keeps borrow-checking simple (the kernel is never
/// borrowed while the world mutates):
///
/// ```
/// use geonet_sim::{Kernel, SimDuration, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick(u32) }
///
/// let mut k = Kernel::new();
/// k.schedule_in(SimDuration::from_secs(1), Ev::Tick(1));
/// let mut fired = vec![];
/// while let Some((t, ev)) = k.pop() {
///     fired.push((t, ev));
///     if t < SimTime::from_secs(3) {
///         k.schedule_in(SimDuration::from_secs(1), Ev::Tick(0));
///     }
/// }
/// assert_eq!(fired.len(), 3);
/// assert_eq!(k.now(), SimTime::from_secs(3));
/// ```
#[derive(Debug)]
pub struct Kernel<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: Option<SimTime>,
    processed: u64,
}

impl<E> Kernel<E> {
    /// Creates a kernel with the clock at zero and no end-of-run horizon.
    #[must_use]
    pub fn new() -> Self {
        Kernel { queue: EventQueue::new(), now: SimTime::ZERO, horizon: None, processed: 0 }
    }

    /// Creates a kernel that stops delivering events after `horizon`.
    ///
    /// Events scheduled past the horizon stay in the queue but are never
    /// popped; [`Kernel::pop`] returns `None` once the next event would
    /// exceed the horizon. The paper's runs use a 200 s horizon.
    #[must_use]
    pub fn with_horizon(horizon: SimTime) -> Self {
        Kernel {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: Some(horizon),
            processed: 0,
        }
    }

    /// The current simulation time (the timestamp of the last popped
    /// event, or zero).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured horizon, if any.
    #[must_use]
    pub fn horizon(&self) -> Option<SimTime> {
        self.horizon
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending (including any past the horizon).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The `(time, insertion sequence)` keys of all pending events, in
    /// unspecified order — input to the audit layer's event-queue digest
    /// (see [`EventQueue::pending_keys`]).
    pub fn pending_keys(&self) -> impl Iterator<Item = (SimTime, u64)> + '_ {
        self.queue.pending_keys()
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time — scheduling
    /// into the past is always a logic error.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        self.queue.push(at, event);
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// The timestamp of the next pending event, disregarding the horizon.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event and advances the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty or the next event lies past
    /// the horizon (in which case the clock is advanced to the horizon so
    /// that `now()` reports the full run length).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let next = self.queue.peek_time()?;
        if let Some(h) = self.horizon {
            if next > h {
                self.now = h;
                return None;
            }
        }
        let (t, e) = self.queue.pop().expect("peeked time implies an event");
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }
}

impl<E> Default for Kernel<E> {
    fn default() -> Self {
        Kernel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut k = Kernel::new();
        k.schedule_at(SimTime::from_secs(2), 'b');
        k.schedule_at(SimTime::from_secs(1), 'a');
        assert_eq!(k.now(), SimTime::ZERO);
        assert_eq!(k.pop(), Some((SimTime::from_secs(1), 'a')));
        assert_eq!(k.now(), SimTime::from_secs(1));
        assert_eq!(k.pop(), Some((SimTime::from_secs(2), 'b')));
        assert_eq!(k.pop(), None);
        assert_eq!(k.events_processed(), 2);
    }

    #[test]
    fn horizon_stops_delivery_and_advances_clock() {
        let mut k = Kernel::with_horizon(SimTime::from_secs(200));
        k.schedule_at(SimTime::from_secs(199), 1);
        k.schedule_at(SimTime::from_secs(201), 2);
        assert_eq!(k.pop(), Some((SimTime::from_secs(199), 1)));
        assert_eq!(k.pop(), None);
        assert_eq!(k.now(), SimTime::from_secs(200));
        assert_eq!(k.pending(), 1, "past-horizon event remains queued");
    }

    #[test]
    fn event_exactly_at_horizon_is_delivered() {
        let mut k = Kernel::with_horizon(SimTime::from_secs(10));
        k.schedule_at(SimTime::from_secs(10), ());
        assert!(k.pop().is_some());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn schedule_into_past_panics() {
        let mut k = Kernel::new();
        k.schedule_at(SimTime::from_secs(5), ());
        let _ = k.pop();
        k.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut k = Kernel::new();
        k.schedule_in(SimDuration::from_secs(1), 'a');
        let _ = k.pop();
        k.schedule_in(SimDuration::from_secs(1), 'b');
        assert_eq!(k.pop(), Some((SimTime::from_secs(2), 'b')));
    }

    #[test]
    fn default_is_new() {
        let k: Kernel<()> = Kernel::default();
        assert_eq!(k.now(), SimTime::ZERO);
        assert_eq!(k.pending(), 0);
    }
}
