//! Spatial & topological observability: connectivity-graph snapshots
//! and their analytics.
//!
//! The paper's evaluation is *spatial* — interception succeeds because
//! the attacker makes itself the effective local maximum of the greedy
//! forwarding gradient, blockage silences a contention neighbourhood —
//! yet the trace/telemetry/audit layers are all *temporal*. This module
//! observes the missing dimension:
//!
//! * **Snapshots.** A [`TopoSnapshot`] captures the radio adjacency
//!   graph at one simulation instant: per-node position, TX range,
//!   attacker flag and greedy-gradient health, with the undirected edge
//!   set derived from a unit-disk rule (two legit nodes link within the
//!   smaller of their ranges; an attacker links within its own elevated
//!   sniff/TX range, mirroring the medium's line-of-sight model).
//!
//! * **Analytics**, computed in plain std Rust at build time: connected
//!   components over the legit relay subgraph (partition count and
//!   largest-component fraction), articulation points and bridges
//!   (iterative Tarjan low-link), per-node degree, greedy local-maximum
//!   detection toward the current destination, and per-attacker
//!   coverage (which legit nodes sit inside its sniff/TX range).
//!
//! * **Recording.** A [`TopoRecorder`] accumulates snapshots at a fixed
//!   sim-time interval; worlds hold a zero-cost-when-detached
//!   [`TopoObserver`] handle mirroring [`Tracer`](crate::trace::Tracer)
//!   / [`Telemetry`](crate::telemetry::Telemetry) /
//!   [`Auditor`](crate::audit::Auditor): with no recorder attached,
//!   every call is a single branch and no graph is ever built.
//!
//! * **Artifacts.** The timeline serializes to a `.topo.json` artifact
//!   ([`TopoArtifact`], same hand-rolled JSON discipline as the trace,
//!   telemetry and audit modules) whose parser *recomputes* every
//!   derived analytic from the serialized node set and rejects
//!   artifacts whose claimed analytics disagree — the same
//!   trust-but-verify stance as the audit checkpoints. Snapshots also
//!   render as Graphviz DOT via [`TopoSnapshot::to_dot`].
//!
//! # Example
//!
//! ```
//! use geonet_sim::topo::{shared_topo, TopoNode, TopoSnapshot};
//! use geonet_sim::{SimDuration, SimTime};
//!
//! let topo = shared_topo(SimDuration::from_secs(1));
//! let nodes = vec![
//!     TopoNode::new(0, 0.0, 0.0, 150.0, false),
//!     TopoNode::new(1, 100.0, 0.0, 150.0, false),
//! ];
//! let snap = TopoSnapshot::build(SimTime::from_secs(1), None, nodes);
//! assert_eq!(snap.partitions, 1);
//! topo.borrow_mut().record(snap);
//! assert_eq!(topo.borrow().snapshots().len(), 1);
//! ```

use crate::telemetry::json;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Nodes and gradient health
// ---------------------------------------------------------------------

/// The health of one node's greedy-forwarding gradient toward the
/// current destination, as classified by the world at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradientHealth {
    /// Not evaluated (no destination configured, or the node runs no
    /// router — e.g. the attacker).
    Unknown,
    /// The node's greedy selection yields a next hop that is physically
    /// reachable over the radio graph.
    Healthy,
    /// The node's greedy selection reports no progress: the node is a
    /// local maximum of its *location-table* gradient.
    Stuck,
    /// The node's greedy selection yields a next hop that is *not*
    /// physically reachable — its location table was poisoned (the
    /// replayed-beacon attack) and the frame it unicasts can only be
    /// sniffed by an elevated attacker, never delivered.
    Poisoned,
}

impl GradientHealth {
    /// Every variant, for iteration in tests and exporters.
    pub const ALL: [GradientHealth; 4] = [
        GradientHealth::Unknown,
        GradientHealth::Healthy,
        GradientHealth::Stuck,
        GradientHealth::Poisoned,
    ];

    /// Stable lowercase name used in the artifact encoding.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GradientHealth::Unknown => "unknown",
            GradientHealth::Healthy => "healthy",
            GradientHealth::Stuck => "stuck",
            GradientHealth::Poisoned => "poisoned",
        }
    }

    /// Inverse of [`GradientHealth::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        GradientHealth::ALL.into_iter().find(|g| g.name() == name)
    }
}

/// One node of a connectivity snapshot: position, TX range and the
/// flags the analytics need. Everything derived (edges, components,
/// articulation points, coverage…) is a pure function of the node set,
/// which is what lets the artifact parser verify a snapshot's claimed
/// analytics.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoNode {
    /// The node's id (the radio medium's `NodeId` value).
    pub id: u32,
    /// X coordinate in metres (longitudinal road position).
    pub x: f64,
    /// Y coordinate in metres (lane offset).
    pub y: f64,
    /// TX range in metres — the attacker's is its elevated sniff/TX
    /// range.
    pub range: f64,
    /// Whether this node is an attacker (elevated line-of-sight link
    /// rule, excluded from the relay subgraph).
    pub attacker: bool,
    /// Greedy-gradient health toward the snapshot destination.
    pub gradient: GradientHealth,
}

impl TopoNode {
    /// A node with an unevaluated gradient.
    #[must_use]
    pub fn new(id: u32, x: f64, y: f64, range: f64, attacker: bool) -> Self {
        TopoNode { id, x, y, range, attacker, gradient: GradientHealth::Unknown }
    }

    /// Sets the gradient classification (builder style).
    #[must_use]
    pub fn with_gradient(mut self, gradient: GradientHealth) -> Self {
        self.gradient = gradient;
        self
    }

    fn distance(&self, other: &TopoNode) -> f64 {
        let (dx, dy) = (self.x - other.x, self.y - other.y);
        (dx * dx + dy * dy).sqrt()
    }
}

/// The undirected link range between two nodes: two peers of the same
/// kind link within the smaller of their ranges (a bidirectional
/// unit-disk link); a legit–attacker pair links within the *attacker's*
/// range — the attacker both sniffs and transmits over its elevated
/// line-of-sight link, exactly the medium's special case.
fn link_range(a: &TopoNode, b: &TopoNode) -> f64 {
    if a.attacker == b.attacker {
        a.range.min(b.range)
    } else if a.attacker {
        a.range
    } else {
        b.range
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// One attacker's coverage within a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackerCoverage {
    /// The attacker's node id.
    pub id: u32,
    /// Ids of the legit nodes within its sniff/TX range, ascending.
    pub covered: Vec<u32>,
    /// `covered.len()` over the number of legit nodes (0 when there are
    /// none).
    pub fraction: f64,
}

/// The radio adjacency graph at one simulation instant, with its
/// derived analytics. Build one with [`TopoSnapshot::build`]; the
/// derived fields are a pure function of `(at, dest, nodes)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoSnapshot {
    /// Simulation time of the sample.
    pub at: SimTime,
    /// The destination the gradient analytics point toward, if any.
    pub dest: Option<(f64, f64)>,
    /// The node set, ascending by id.
    pub nodes: Vec<TopoNode>,
    /// Undirected edges as `(low id, high id)` pairs, ascending.
    pub edges: Vec<(u32, u32)>,
    /// Connected components of the *legit* relay subgraph (the attacker
    /// never relays, so connectivity through it is illusory).
    pub partitions: usize,
    /// Fraction of legit nodes in the largest component (0 when there
    /// are no legit nodes).
    pub largest_fraction: f64,
    /// Articulation points of the legit relay subgraph, ascending.
    pub articulation: Vec<u32>,
    /// Bridges of the legit relay subgraph as `(low id, high id)`
    /// pairs, ascending.
    pub bridges: Vec<(u32, u32)>,
    /// Nodes that are greedy local maxima toward `dest`: no graph
    /// neighbour is strictly closer to the destination. Empty when
    /// `dest` is `None`.
    pub local_max: Vec<u32>,
    /// Per-attacker coverage, ascending by attacker id.
    pub coverage: Vec<AttackerCoverage>,
}

impl TopoSnapshot {
    /// Builds a snapshot and computes every derived analytic.
    ///
    /// # Panics
    ///
    /// Panics if two nodes share an id or a coordinate/range is not
    /// finite.
    #[must_use]
    pub fn build(at: SimTime, dest: Option<(f64, f64)>, mut nodes: Vec<TopoNode>) -> Self {
        nodes.sort_by_key(|n| n.id);
        for n in &nodes {
            assert!(
                n.x.is_finite() && n.y.is_finite() && n.range.is_finite(),
                "node {} has a non-finite coordinate or range",
                n.id
            );
        }
        assert!(nodes.windows(2).all(|w| w[0].id != w[1].id), "duplicate node id");
        if let Some((dx, dy)) = dest {
            assert!(dx.is_finite() && dy.is_finite(), "destination must be finite");
        }

        // Adjacency by index, O(n²) pairwise unit-disk test.
        let n = nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if nodes[i].distance(&nodes[j]) <= link_range(&nodes[i], &nodes[j]) {
                    adj[i].push(j);
                    adj[j].push(i);
                    edges.push((nodes[i].id, nodes[j].id));
                }
            }
        }

        // Components over the legit relay subgraph.
        let legit: Vec<usize> = (0..n).filter(|&i| !nodes[i].attacker).collect();
        let legit_adj = |i: usize| adj[i].iter().copied().filter(|&j| !nodes[j].attacker);
        let mut component = vec![usize::MAX; n];
        let mut partitions = 0usize;
        let mut largest = 0usize;
        for &start in &legit {
            if component[start] != usize::MAX {
                continue;
            }
            let mut size = 0usize;
            let mut queue = vec![start];
            component[start] = partitions;
            while let Some(v) = queue.pop() {
                size += 1;
                for w in legit_adj(v) {
                    if component[w] == usize::MAX {
                        component[w] = partitions;
                        queue.push(w);
                    }
                }
            }
            largest = largest.max(size);
            partitions += 1;
        }
        let largest_fraction =
            if legit.is_empty() { 0.0 } else { largest as f64 / legit.len() as f64 };

        let (articulation, bridges) = articulation_and_bridges(&nodes, &adj);

        // Greedy local maxima toward the destination, over the full
        // graph (the attacker is somebody's neighbour physically).
        let mut local_max = Vec::new();
        if let Some((dx, dy)) = dest {
            let dist_to_dest = |i: usize| {
                let (ex, ey) = (nodes[i].x - dx, nodes[i].y - dy);
                (ex * ex + ey * ey).sqrt()
            };
            for i in 0..n {
                let own = dist_to_dest(i);
                if adj[i].iter().all(|&j| dist_to_dest(j) >= own) {
                    local_max.push(nodes[i].id);
                }
            }
        }

        // Per-attacker coverage of legit nodes.
        let mut coverage = Vec::new();
        for i in 0..n {
            if !nodes[i].attacker {
                continue;
            }
            let covered: Vec<u32> = legit
                .iter()
                .filter(|&&j| nodes[i].distance(&nodes[j]) <= nodes[i].range)
                .map(|&j| nodes[j].id)
                .collect();
            let fraction =
                if legit.is_empty() { 0.0 } else { covered.len() as f64 / legit.len() as f64 };
            coverage.push(AttackerCoverage { id: nodes[i].id, covered, fraction });
        }

        TopoSnapshot {
            at,
            dest,
            nodes,
            edges,
            partitions,
            largest_fraction,
            articulation,
            bridges,
            local_max,
            coverage,
        }
    }

    /// The degree of node `id` (0 if absent).
    #[must_use]
    pub fn degree(&self, id: u32) -> usize {
        self.edges.iter().filter(|&&(a, b)| a == id || b == id).count()
    }

    /// The node with the given id, if present.
    #[must_use]
    pub fn node(&self, id: u32) -> Option<&TopoNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Ids of nodes whose gradient was classified `health`.
    #[must_use]
    pub fn nodes_with_gradient(&self, health: GradientHealth) -> Vec<u32> {
        self.nodes.iter().filter(|n| n.gradient == health).map(|n| n.id).collect()
    }

    /// Renders the snapshot as a Graphviz DOT graph: attackers are red
    /// boxes, articulation points orange, everything positioned at its
    /// road coordinates. Deterministic — nodes and edges in ascending
    /// order.
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph topo {\n");
        let _ = writeln!(
            out,
            "  label=\"t={}us partitions={} largest={}\";",
            self.at.as_micros(),
            self.partitions,
            format_f64(self.largest_fraction)
        );
        for n in &self.nodes {
            let mut attrs = format!("pos=\"{},{}!\"", format_f64(n.x), format_f64(n.y));
            if n.attacker {
                attrs.push_str(",shape=box,color=red");
            } else if self.articulation.contains(&n.id) {
                attrs.push_str(",color=orange");
            }
            if n.gradient != GradientHealth::Unknown {
                let _ = write!(attrs, ",grad={}", n.gradient.name());
            }
            let _ = writeln!(out, "  n{} [{attrs}];", n.id);
        }
        for &(a, b) in &self.edges {
            let _ = writeln!(out, "  n{a} -- n{b};");
        }
        out.push_str("}\n");
        out
    }
}

/// Articulation points and bridges of the legit relay subgraph, via an
/// iterative Tarjan low-link DFS (a 400-node road chain would overflow
/// the stack recursively).
fn articulation_and_bridges(nodes: &[TopoNode], adj: &[Vec<usize>]) -> (Vec<u32>, Vec<(u32, u32)>) {
    let n = nodes.len();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_art = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer = 0usize;
    for root in 0..n {
        if nodes[root].attacker || disc[root] != usize::MAX {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;
        // (vertex, next child index to visit)
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(top) = stack.last_mut() {
            let v = top.0;
            if top.1 < adj[v].len() {
                let to = adj[v][top.1];
                top.1 += 1;
                if nodes[to].attacker || to == parent[v] {
                    continue;
                }
                if disc[to] == usize::MAX {
                    parent[to] = v;
                    disc[to] = timer;
                    low[to] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((to, 0));
                } else {
                    low[v] = low[v].min(disc[to]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[v]);
                    if low[v] >= disc[p] && p != root {
                        is_art[p] = true;
                    }
                    if low[v] > disc[p] {
                        let (a, b) = (nodes[p].id, nodes[v].id);
                        bridges.push((a.min(b), a.max(b)));
                    }
                }
            }
        }
        if root_children > 1 {
            is_art[root] = true;
        }
    }
    let articulation: Vec<u32> = (0..n).filter(|&i| is_art[i]).map(|i| nodes[i].id).collect();
    bridges.sort_unstable();
    (articulation, bridges)
}

// ---------------------------------------------------------------------
// Recorder and observer handle
// ---------------------------------------------------------------------

/// Collects a snapshot timeline at a fixed sim-time interval, plus
/// free-form run metadata — the topological twin of
/// [`AuditRecorder`](crate::audit::AuditRecorder).
#[derive(Debug)]
pub struct TopoRecorder {
    interval: SimDuration,
    next_due: SimTime,
    meta: BTreeMap<String, String>,
    snapshots: Vec<TopoSnapshot>,
}

impl TopoRecorder {
    /// Creates a recorder sampling every `interval` of simulation time
    /// (the first snapshot is due immediately).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO, "topo interval must be positive");
        TopoRecorder {
            interval,
            next_due: SimTime::ZERO,
            meta: BTreeMap::new(),
            snapshots: Vec::new(),
        }
    }

    /// The sampling interval.
    #[must_use]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Attaches one metadata key (seed, scenario label, …). Values must
    /// stay free of `"` and `\` — the artifact encoding is escape-free.
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        assert!(
            !key.contains(['"', '\\']) && !value.contains(['"', '\\']),
            "topo metadata must not contain quotes or backslashes"
        );
        self.meta.insert(key.to_string(), value);
    }

    /// Whether a snapshot is due at `now`.
    #[must_use]
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Appends a snapshot and advances the next due time.
    pub fn record(&mut self, snapshot: TopoSnapshot) {
        self.next_due = snapshot.at + self.interval;
        self.snapshots.push(snapshot);
    }

    /// The recorded timeline.
    #[must_use]
    pub fn snapshots(&self) -> &[TopoSnapshot] {
        &self.snapshots
    }

    /// Snapshots the recorder into a serializable artifact.
    #[must_use]
    pub fn to_artifact(&self) -> TopoArtifact {
        TopoArtifact {
            meta: self.meta.clone(),
            interval: self.interval,
            snapshots: self.snapshots.clone(),
        }
    }
}

/// A shared, interiorly-mutable recorder handed to a world.
pub type SharedTopo = Rc<RefCell<TopoRecorder>>;

/// Creates a [`SharedTopo`] sampling every `interval`.
#[must_use]
pub fn shared_topo(interval: SimDuration) -> SharedTopo {
    Rc::new(RefCell::new(TopoRecorder::new(interval)))
}

/// The zero-cost-when-detached topology handle a world holds, mirroring
/// [`Tracer`](crate::trace::Tracer),
/// [`Telemetry`](crate::telemetry::Telemetry) and
/// [`Auditor`](crate::audit::Auditor): with no recorder attached every
/// call is a single branch on an `Option` and no adjacency graph is
/// ever built.
#[derive(Clone, Default)]
pub struct TopoObserver {
    recorder: Option<SharedTopo>,
}

impl fmt::Debug for TopoObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TopoObserver").field("enabled", &self.recorder.is_some()).finish()
    }
}

impl TopoObserver {
    /// A handle with no recorder — all operations are no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        TopoObserver { recorder: None }
    }

    /// A handle feeding `recorder`.
    #[must_use]
    pub fn attached(recorder: SharedTopo) -> Self {
        TopoObserver { recorder: Some(recorder) }
    }

    /// Whether a recorder is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Whether a snapshot is due at `now`. Always `false` when
    /// detached — the caller skips the (expensive) graph build.
    #[must_use]
    pub fn due(&self, now: SimTime) -> bool {
        self.recorder.as_ref().is_some_and(|r| r.borrow().due(now))
    }

    /// Records a snapshot (no-op when detached).
    pub fn record(&self, snapshot: TopoSnapshot) {
        if let Some(r) = &self.recorder {
            r.borrow_mut().record(snapshot);
        }
    }
}

// ---------------------------------------------------------------------
// The .topo.json artifact
// ---------------------------------------------------------------------

/// A serialized snapshot timeline: run metadata, sampling interval and
/// the snapshot sequence. Two artifacts from identically-seeded runs
/// are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoArtifact {
    /// Free-form run metadata (seed, scenario, attacked, …).
    pub meta: BTreeMap<String, String>,
    /// The sampling interval the timeline was recorded at.
    pub interval: SimDuration,
    /// The snapshot timeline, in sampling order.
    pub snapshots: Vec<TopoSnapshot>,
}

impl TopoArtifact {
    /// Renders the artifact as JSON (one snapshot per line, so the
    /// timeline greps well). Deterministic: metadata is sorted, floats
    /// use the shortest round-tripping representation.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"meta\":{");
        let mut first = true;
        for (k, v) in &self.meta {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{k}\":\"{v}\"");
        }
        let _ = write!(out, "}},\"interval_us\":{},\"snapshots\":[", self.interval.as_micros());
        for (i, s) in self.snapshots.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            write_snapshot(&mut out, s);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses an artifact previously produced by
    /// [`TopoArtifact::to_json`], *recomputing* every derived analytic
    /// from each snapshot's node set and rejecting snapshots whose
    /// claimed analytics disagree (trust but verify, like the audit
    /// artifact's combined hashes).
    ///
    /// # Errors
    ///
    /// Fails with a description of the first malformed or inconsistent
    /// construct.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        let root = root.as_object("top level")?;
        let mut meta = BTreeMap::new();
        let mut interval = None;
        let mut snapshots = Vec::new();
        for (key, value) in root {
            match key.as_str() {
                "meta" => {
                    for (k, v) in value.as_object("meta")? {
                        match v {
                            json::Value::String(s) => {
                                meta.insert(k.clone(), s.clone());
                            }
                            other => {
                                return Err(format!("meta {k:?}: expected string, got {other:?}"))
                            }
                        }
                    }
                }
                "interval_us" => {
                    interval = Some(SimDuration::from_micros(value.as_u64("interval_us")?));
                }
                "snapshots" => {
                    for entry in value.as_array("snapshots")? {
                        snapshots.push(parse_snapshot(entry)?);
                    }
                }
                other => return Err(format!("unknown top-level key {other:?}")),
            }
        }
        let interval = interval.ok_or("missing interval_us")?;
        Ok(TopoArtifact { meta, interval, snapshots })
    }
}

fn write_snapshot(out: &mut String, s: &TopoSnapshot) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"t_us\":{},\"dest\":", s.at.as_micros());
    match s.dest {
        Some((x, y)) => {
            let _ = write!(out, "[{},{}]", format_f64(x), format_f64(y));
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"nodes\":[");
    for (i, n) in s.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"x\":{},\"y\":{},\"range\":{},\"attacker\":{},\"grad\":\"{}\"}}",
            n.id,
            format_f64(n.x),
            format_f64(n.y),
            format_f64(n.range),
            n.attacker,
            n.gradient.name()
        );
    }
    let _ = write!(
        out,
        "],\"derived\":{{\"partitions\":{},\"largest_fraction\":{},\"articulation\":",
        s.partitions,
        format_f64(s.largest_fraction)
    );
    write_id_list(out, &s.articulation);
    out.push_str(",\"bridges\":[");
    for (i, &(a, b)) in s.bridges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{a},{b}]");
    }
    out.push_str("],\"local_max\":");
    write_id_list(out, &s.local_max);
    out.push_str(",\"coverage\":[");
    for (i, c) in s.coverage.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ =
            write!(out, "{{\"id\":{},\"fraction\":{},\"covered\":", c.id, format_f64(c.fraction));
        write_id_list(out, &c.covered);
        out.push('}');
    }
    out.push_str("]}}");
}

fn write_id_list(out: &mut String, ids: &[u32]) {
    use std::fmt::Write as _;
    out.push('[');
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{id}");
    }
    out.push(']');
}

fn parse_id_list(value: &json::Value, what: &str) -> Result<Vec<u32>, String> {
    let mut out = Vec::new();
    for v in value.as_array(what)? {
        out.push(u32::try_from(v.as_u64(what)?).map_err(|_| format!("{what}: id too large"))?);
    }
    Ok(out)
}

fn parse_snapshot(value: &json::Value) -> Result<TopoSnapshot, String> {
    let fields = value.as_object("snapshot")?;
    let mut at = None;
    let mut dest = None;
    let mut nodes = Vec::new();
    let mut derived = None;
    for (k, v) in fields {
        match k.as_str() {
            "t_us" => at = Some(SimTime::from_micros(v.as_u64("t_us")?)),
            "dest" => {
                dest = match v {
                    json::Value::Null => None,
                    other => {
                        let pair = other.as_array("dest")?;
                        if pair.len() != 2 {
                            return Err("dest is not an [x,y] pair".into());
                        }
                        Some((pair[0].as_f64("dest x")?, pair[1].as_f64("dest y")?))
                    }
                };
            }
            "nodes" => {
                for entry in v.as_array("nodes")? {
                    nodes.push(parse_node(entry)?);
                }
            }
            "derived" => derived = Some(v),
            other => return Err(format!("unknown snapshot field {other:?}")),
        }
    }
    let at = at.ok_or("snapshot missing t_us")?;
    let derived = derived.ok_or("snapshot missing derived")?;
    // Trust but verify: recompute every analytic from the node set and
    // compare with the artifact's claims.
    let rebuilt = TopoSnapshot::build(at, dest, nodes);
    verify_derived(&rebuilt, derived)?;
    Ok(rebuilt)
}

fn parse_node(value: &json::Value) -> Result<TopoNode, String> {
    let fields = value.as_object("node")?;
    let (mut id, mut x, mut y, mut range) = (None, None, None, None);
    let mut attacker = false;
    let mut gradient = GradientHealth::Unknown;
    for (k, v) in fields {
        match k.as_str() {
            "id" => {
                id = Some(u32::try_from(v.as_u64("node id")?).map_err(|_| "node id too large")?);
            }
            "x" => x = Some(v.as_f64("node x")?),
            "y" => y = Some(v.as_f64("node y")?),
            "range" => range = Some(v.as_f64("node range")?),
            "attacker" => {
                attacker = match v {
                    json::Value::Bool(b) => *b,
                    other => return Err(format!("attacker: expected bool, got {other:?}")),
                };
            }
            "grad" => {
                gradient = match v {
                    json::Value::String(s) => GradientHealth::from_name(s)
                        .ok_or_else(|| format!("unknown gradient {s:?}"))?,
                    other => return Err(format!("grad: expected string, got {other:?}")),
                };
            }
            other => return Err(format!("unknown node field {other:?}")),
        }
    }
    Ok(TopoNode {
        id: id.ok_or("node missing id")?,
        x: x.ok_or("node missing x")?,
        y: y.ok_or("node missing y")?,
        range: range.ok_or("node missing range")?,
        attacker,
        gradient,
    })
}

fn verify_derived(rebuilt: &TopoSnapshot, derived: &json::Value) -> Result<(), String> {
    let t = rebuilt.at.as_micros();
    let mismatch = |what: &str, claimed: &dyn fmt::Debug, actual: &dyn fmt::Debug| {
        Err(format!(
            "snapshot at {t} µs: derived {what} {claimed:?} does not match recomputed {actual:?}"
        ))
    };
    for (k, v) in derived.as_object("derived")? {
        match k.as_str() {
            "partitions" => {
                let claimed = v.as_u64("partitions")? as usize;
                if claimed != rebuilt.partitions {
                    return mismatch("partitions", &claimed, &rebuilt.partitions);
                }
            }
            "largest_fraction" => {
                let claimed = v.as_f64("largest_fraction")?;
                if claimed != rebuilt.largest_fraction {
                    return mismatch("largest_fraction", &claimed, &rebuilt.largest_fraction);
                }
            }
            "articulation" => {
                let claimed = parse_id_list(v, "articulation")?;
                if claimed != rebuilt.articulation {
                    return mismatch("articulation", &claimed, &rebuilt.articulation);
                }
            }
            "bridges" => {
                let mut claimed = Vec::new();
                for pair in v.as_array("bridges")? {
                    let pair = pair.as_array("bridge")?;
                    if pair.len() != 2 {
                        return Err("bridge is not a pair".into());
                    }
                    claimed.push((
                        u32::try_from(pair[0].as_u64("bridge a")?)
                            .map_err(|_| "bridge id too large")?,
                        u32::try_from(pair[1].as_u64("bridge b")?)
                            .map_err(|_| "bridge id too large")?,
                    ));
                }
                if claimed != rebuilt.bridges {
                    return mismatch("bridges", &claimed, &rebuilt.bridges);
                }
            }
            "local_max" => {
                let claimed = parse_id_list(v, "local_max")?;
                if claimed != rebuilt.local_max {
                    return mismatch("local_max", &claimed, &rebuilt.local_max);
                }
            }
            "coverage" => {
                let mut claimed = Vec::new();
                for entry in v.as_array("coverage")? {
                    let (mut id, mut fraction, mut covered) = (None, None, None);
                    for (ck, cv) in entry.as_object("coverage entry")? {
                        match ck.as_str() {
                            "id" => {
                                id = Some(
                                    u32::try_from(cv.as_u64("coverage id")?)
                                        .map_err(|_| "coverage id too large")?,
                                );
                            }
                            "fraction" => fraction = Some(cv.as_f64("coverage fraction")?),
                            "covered" => covered = Some(parse_id_list(cv, "covered")?),
                            other => {
                                return Err(format!("unknown coverage field {other:?}"));
                            }
                        }
                    }
                    claimed.push(AttackerCoverage {
                        id: id.ok_or("coverage missing id")?,
                        covered: covered.ok_or("coverage missing covered")?,
                        fraction: fraction.ok_or("coverage missing fraction")?,
                    });
                }
                if claimed != rebuilt.coverage {
                    return mismatch("coverage", &claimed, &rebuilt.coverage);
                }
            }
            other => return Err(format!("unknown derived field {other:?}")),
        }
    }
    Ok(())
}

/// Shortest `f64` representation that round-trips (same contract as the
/// trace and telemetry modules' formatting).
fn format_f64(x: f64) -> String {
    assert!(x.is_finite(), "topology values must be finite: {x}");
    let s = format!("{x:?}");
    debug_assert!(s.parse::<f64>() == Ok(x));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A legit road node at `(x, 0)` with a 150 m range.
    fn road(id: u32, x: f64) -> TopoNode {
        TopoNode::new(id, x, 0.0, 150.0, false)
    }

    #[test]
    fn gradient_names_round_trip() {
        for g in GradientHealth::ALL {
            assert_eq!(GradientHealth::from_name(g.name()), Some(g));
        }
        assert_eq!(GradientHealth::from_name("bogus"), None);
    }

    #[test]
    fn chain_has_interior_articulation_points_and_all_bridges() {
        // 0 -- 1 -- 2 -- 3 (100 m spacing, 150 m range: only adjacent
        // nodes link).
        let s = TopoSnapshot::build(
            SimTime::from_secs(1),
            None,
            vec![road(0, 0.0), road(1, 100.0), road(2, 200.0), road(3, 300.0)],
        );
        assert_eq!(s.edges, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(s.partitions, 1);
        assert_eq!(s.largest_fraction, 1.0);
        assert_eq!(s.articulation, vec![1, 2]);
        assert_eq!(s.bridges, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(s.degree(1), 2);
        assert_eq!(s.degree(0), 1);
    }

    #[test]
    fn triangle_has_no_articulation_or_bridges() {
        let s = TopoSnapshot::build(
            SimTime::from_secs(1),
            None,
            vec![road(0, 0.0), road(1, 100.0), TopoNode::new(2, 50.0, 50.0, 150.0, false)],
        );
        assert_eq!(s.partitions, 1);
        assert!(s.articulation.is_empty());
        assert!(s.bridges.is_empty());
    }

    #[test]
    fn gap_partitions_the_relay_graph() {
        // Two clusters 1000 m apart.
        let s = TopoSnapshot::build(
            SimTime::from_secs(1),
            None,
            vec![road(0, 0.0), road(1, 100.0), road(2, 1100.0), road(3, 1200.0), road(4, 1300.0)],
        );
        assert_eq!(s.partitions, 2);
        assert_eq!(s.largest_fraction, 3.0 / 5.0);
    }

    #[test]
    fn attacker_does_not_heal_a_partition_but_links_by_its_own_range() {
        // Legit nodes at 0 and 600 cannot reach each other (150 m), but
        // a 400 m attacker at 350 links to both — partitions must still
        // count 2 because the attacker never relays.
        let s = TopoSnapshot::build(
            SimTime::from_secs(1),
            None,
            vec![road(0, 0.0), road(1, 600.0), TopoNode::new(9, 350.0, 0.0, 400.0, true)],
        );
        assert_eq!(s.edges, vec![(0, 9), (1, 9)]);
        assert_eq!(s.partitions, 2);
        assert_eq!(s.coverage.len(), 1);
        assert_eq!(s.coverage[0].id, 9);
        assert_eq!(s.coverage[0].covered, vec![0, 1]);
        assert_eq!(s.coverage[0].fraction, 1.0);
    }

    #[test]
    fn legit_pair_links_within_the_smaller_range() {
        let a = TopoNode::new(0, 0.0, 0.0, 500.0, false);
        let b = TopoNode::new(1, 300.0, 0.0, 150.0, false);
        let s = TopoSnapshot::build(SimTime::from_secs(1), None, vec![a, b]);
        assert!(s.edges.is_empty(), "300 m > min(500, 150)");
    }

    #[test]
    fn local_maxima_point_toward_the_destination() {
        // Chain toward a destination far east: only the easternmost
        // node (and an isolated straggler) are local maxima.
        let s = TopoSnapshot::build(
            SimTime::from_secs(1),
            Some((4020.0, 0.0)),
            vec![road(0, 0.0), road(1, 100.0), road(2, 200.0), road(3, 2000.0)],
        );
        assert_eq!(s.local_max, vec![2, 3]);
        let no_dest =
            TopoSnapshot::build(SimTime::from_secs(1), None, vec![road(0, 0.0), road(1, 100.0)]);
        assert!(no_dest.local_max.is_empty());
    }

    #[test]
    fn empty_snapshot_is_well_defined() {
        let s = TopoSnapshot::build(SimTime::ZERO, None, Vec::new());
        assert_eq!(s.partitions, 0);
        assert_eq!(s.largest_fraction, 0.0);
        assert!(s.edges.is_empty());
    }

    #[test]
    fn recorder_cadence_and_due() {
        let mut rec = TopoRecorder::new(SimDuration::from_secs(1));
        assert!(rec.due(SimTime::ZERO));
        rec.record(TopoSnapshot::build(SimTime::ZERO, None, vec![road(0, 0.0)]));
        assert!(!rec.due(SimTime::from_millis(900)));
        assert!(rec.due(SimTime::from_secs(1)));
        rec.record(TopoSnapshot::build(SimTime::from_secs(1), None, vec![road(0, 10.0)]));
        assert_eq!(rec.snapshots().len(), 2);
        assert_eq!(rec.interval(), SimDuration::from_secs(1));
    }

    #[test]
    fn detached_observer_is_never_due() {
        let t = TopoObserver::disabled();
        assert!(!t.is_enabled());
        assert!(!t.due(SimTime::from_secs(100)));
        t.record(TopoSnapshot::build(SimTime::ZERO, None, Vec::new())); // no-op
        assert_eq!(format!("{t:?}"), "TopoObserver { enabled: false }");
    }

    #[test]
    fn attached_observer_feeds_the_recorder() {
        let rec = shared_topo(SimDuration::from_secs(1));
        let t = TopoObserver::attached(rec.clone());
        assert!(t.is_enabled());
        assert!(t.due(SimTime::ZERO));
        t.record(TopoSnapshot::build(SimTime::ZERO, None, vec![road(0, 0.0)]));
        assert!(!t.due(SimTime::from_millis(1)));
        assert_eq!(rec.borrow().snapshots().len(), 1);
    }

    fn artifact() -> TopoArtifact {
        let mut rec = TopoRecorder::new(SimDuration::from_secs(1));
        rec.set_meta("seed", "42");
        rec.set_meta("scenario", "interception");
        rec.record(TopoSnapshot::build(
            SimTime::ZERO,
            Some((4020.0, 0.0)),
            vec![
                road(0, 0.0),
                road(1, 100.0),
                road(2, 200.0).with_gradient(GradientHealth::Poisoned),
                TopoNode::new(9, 350.0, -12.0, 400.0, true),
            ],
        ));
        rec.record(TopoSnapshot::build(
            SimTime::from_secs(1),
            Some((4020.0, 0.0)),
            vec![road(0, 30.0), road(1, 130.0).with_gradient(GradientHealth::Healthy)],
        ));
        rec.to_artifact()
    }

    #[test]
    fn artifact_json_roundtrip() {
        let a = artifact();
        let text = a.to_json();
        let parsed = TopoArtifact::from_json(&text).expect("own output parses");
        assert_eq!(parsed, a);
        // Determinism of the encoding itself.
        assert_eq!(text, parsed.to_json());
    }

    #[test]
    fn artifact_rejects_tampered_analytics() {
        let text = artifact().to_json();
        let tampered = text.replacen("\"partitions\":1", "\"partitions\":2", 1);
        let err = TopoArtifact::from_json(&tampered).unwrap_err();
        assert!(err.contains("does not match"), "got: {err}");
    }

    #[test]
    fn artifact_rejects_tampered_coverage() {
        let text = artifact().to_json();
        assert!(text.contains("\"coverage\":[{\"id\":9"), "fixture lost its attacker");
        let tampered = text.replacen("\"fraction\":1.0", "\"fraction\":0.5", 1);
        let err = TopoArtifact::from_json(&tampered).unwrap_err();
        assert!(err.contains("does not match"), "got: {err}");
    }

    #[test]
    fn gradient_classification_survives_the_artifact() {
        let text = artifact().to_json();
        let parsed = TopoArtifact::from_json(&text).expect("parses");
        assert_eq!(parsed.snapshots[0].nodes_with_gradient(GradientHealth::Poisoned), vec![2]);
    }

    #[test]
    fn dot_export_is_deterministic_and_complete() {
        let s = &artifact().snapshots[0];
        let dot = s.to_dot();
        assert_eq!(dot, s.to_dot());
        assert!(dot.starts_with("graph topo {"));
        for n in &s.nodes {
            assert!(dot.contains(&format!("n{} [", n.id)), "missing node {} in {dot}", n.id);
        }
        for (a, b) in &s.edges {
            assert!(dot.contains(&format!("n{a} -- n{b};")));
        }
        assert!(dot.contains("shape=box,color=red"), "attacker not highlighted");
        assert!(dot.contains("grad=poisoned"));
    }
}
