//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate replacing the open-source VANET simulator
//! used by the paper. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulation time,
//!   immune to floating-point drift.
//! * [`EventQueue`] — a priority queue with a deterministic total order:
//!   events at equal timestamps fire in insertion order, so a run is a pure
//!   function of its seed.
//! * [`Kernel`] — the event loop: schedule, pop, advance the clock.
//! * [`SimRng`] — a seedable, splittable random source; every node and
//!   every run derives an independent stream from one `u64` seed.
//! * [`metrics`] — time-binned success/total counters and the γ/λ rate
//!   computations used throughout the paper's evaluation (packet reception
//!   rate per 5 s bin, average drop rate between A/B runs).
//! * [`telemetry`] — quantitative telemetry: counters, gauges and
//!   log-bucketed histograms with scoped wall-clock timers and
//!   Prometheus/JSON exporters, behind a zero-cost-when-disabled
//!   [`Telemetry`] handle.
//! * [`audit`] — deterministic run auditing: per-component state digests
//!   on a checkpoint timeline, `.audit.json` artifacts with first-
//!   divergence diffing, and an online [`InvariantChecker`] for the
//!   EN 302 636-4-1 forwarding rules, behind a zero-cost-when-disabled
//!   [`Auditor`] handle.
//! * [`topo`] — spatial & topological observability: radio
//!   connectivity-graph snapshots with partition/articulation/local-
//!   maximum/coverage analytics, `.topo.json` + DOT artifacts, behind a
//!   zero-cost-when-detached [`TopoObserver`] handle.
//!
//! # Example
//!
//! ```
//! use geonet_sim::{Kernel, SimDuration};
//!
//! let mut kernel: Kernel<&'static str> = Kernel::new();
//! kernel.schedule_in(SimDuration::from_millis(5), "beacon");
//! kernel.schedule_in(SimDuration::from_millis(1), "packet");
//! let (t1, e1) = kernel.pop().unwrap();
//! assert_eq!(e1, "packet");
//! assert_eq!(t1.as_millis(), 1);
//! let (_, e2) = kernel.pop().unwrap();
//! assert_eq!(e2, "beacon");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod kernel;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod telemetry;
pub mod time;
pub mod topo;
pub mod trace;

pub use audit::{
    diff_artifacts, shared_auditor, trace_window, AuditArtifact, AuditRecorder, Auditor,
    Checkpoint, CheckpointBuilder, ComponentDigest, Divergence, DivergenceReport, InvariantChecker,
    InvariantParams, SharedAuditor, StateHasher, UnorderedDigest, Violation,
};
pub use kernel::Kernel;
pub use metrics::{AbComparison, RunningStats, TimeBins};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use telemetry::{
    shared_registry, Gauge, GaugeSummary, Histogram, MetricsRegistry, MetricsSnapshot, ScopedTimer,
    SharedRegistry, Telemetry,
};
pub use time::{SimDuration, SimTime};
pub use topo::{
    shared_topo, AttackerCoverage, GradientHealth, SharedTopo, TopoArtifact, TopoNode,
    TopoObserver, TopoRecorder, TopoSnapshot,
};
pub use trace::{
    shared, AttackKind, CountingSink, DropReason, EventCounters, JsonlSink, NullSink, PacketRef,
    SharedSink, TraceEvent, TraceRecord, TraceSink, Tracer, VecSink,
};
