//! Quantitative telemetry: counters, gauges, log-bucketed histograms and
//! scoped wall-clock timers, with Prometheus and JSON exporters.
//!
//! This module is the measurement substrate for performance work. It
//! mirrors the [`crate::trace::Tracer`] design: instrumented components
//! hold a cheap [`Telemetry`] handle that is a no-op unless a shared
//! [`MetricsRegistry`] has been attached, so the instrumented hot paths
//! (router frame handling, radio delivery, traffic stepping, kernel
//! dispatch) pay a single branch when telemetry is off.
//!
//! Three metric kinds are supported:
//!
//! * **counters** — monotonic `u64` totals (`Telemetry::add`),
//! * **gauges** — last-value samples with running mean/min/max over the
//!   sampled time series (`Telemetry::gauge`), used for internal state
//!   depths such as event-queue length or LocT size,
//! * **histograms** — log-bucketed `u64` distributions with p50/p95/p99
//!   and exact max (`Telemetry::observe`), used for wall-clock timings in
//!   nanoseconds via [`Telemetry::time`].
//!
//! # Histogram bucket layout
//!
//! Values `0..16` get exact unit buckets; beyond that each power of two is
//! split into 4 sub-buckets (an HDR-style log-linear layout), so the
//! relative quantile error is bounded by 25 % while the whole `u64` range
//! fits in 256 buckets. Quantiles report the upper bound of the bucket
//! containing the target rank, clamped to the exact observed maximum.
//!
//! # Example
//!
//! ```
//! use geonet_sim::telemetry::{shared_registry, Telemetry};
//!
//! let registry = shared_registry();
//! let telemetry = Telemetry::attached(registry.clone());
//! telemetry.add("frames_total", 3);
//! telemetry.gauge("queue_len", 7.0);
//! telemetry.observe("service_ns", 1_500);
//! let snapshot = registry.borrow().snapshot();
//! assert_eq!(snapshot.counter("frames_total"), Some(3));
//! assert!(snapshot.to_prometheus().contains("frames_total 3"));
//! ```

use crate::metrics::RunningStats;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::time::Instant;

/// Number of exact unit buckets at the low end of a [`Histogram`].
const LINEAR_CUTOFF: u64 = 16;
/// Sub-buckets per power of two past the linear region (4 ⇒ ≤ 25 % error).
const SUB_BUCKETS: usize = 4;
/// Total bucket count covering the full `u64` range.
const BUCKET_COUNT: usize = LINEAR_CUTOFF as usize + (64 - 4) * SUB_BUCKETS;

/// Index of the bucket that holds `v`.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // ≥ 4 here
        let sub = ((v >> (msb - 2)) & 3) as usize;
        LINEAR_CUTOFF as usize + (msb - 4) * SUB_BUCKETS + sub
    }
}

/// Largest value stored in bucket `idx` (inclusive).
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let k = idx - LINEAR_CUTOFF as usize;
        let msb = 4 + k / SUB_BUCKETS;
        let sub = (k % SUB_BUCKETS) as u64;
        (1u64 << msb).wrapping_add((sub + 1) << (msb - 2)).wrapping_sub(1)
    }
}

/// Log-bucketed `u64` histogram with p50/p95/p99 and exact max.
///
/// See the [module docs](self) for the bucket layout. Two histograms can
/// be combined losslessly with [`Histogram::merge`] because they share a
/// fixed global layout.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram { buckets: vec![0; BUCKET_COUNT], count: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact), or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns `true` if no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the target rank, clamped to the exact max. `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0 ..= 1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Some(bucket_upper_bound(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one (lossless: both share the
    /// same fixed bucket layout).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs in ascending
    /// order — the raw data behind the Prometheus `_bucket` lines.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper_bound(i), n))
    }

    /// Rebuilds a histogram from sparse `(bucket_upper_bound, count)`
    /// pairs plus the exact `sum` and `max` (the JSON snapshot encoding).
    ///
    /// # Errors
    ///
    /// Fails if an upper bound does not name an exact bucket boundary.
    pub fn from_sparse(pairs: &[(u64, u64)], sum: u64, max: u64) -> Result<Self, String> {
        let mut h = Histogram::new();
        for &(ub, n) in pairs {
            let idx = bucket_index(ub);
            if bucket_upper_bound(idx) != ub {
                return Err(format!("{ub} is not a histogram bucket boundary"));
            }
            h.buckets[idx] += n;
            h.count += n;
        }
        h.sum = sum;
        h.max = max;
        Ok(h)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

/// A sampled gauge: the most recent value plus running statistics over
/// every sample, so a periodically sampled depth (queue length, table
/// size) keeps its time-series mean/min/max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauge {
    last: f64,
    stats: RunningStats,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// Creates an empty gauge.
    #[must_use]
    pub fn new() -> Self {
        Gauge { last: 0.0, stats: RunningStats::new() }
    }

    /// Records a sample and makes it the current value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite.
    pub fn set(&mut self, v: f64) {
        assert!(v.is_finite(), "gauge sample must be finite: {v}");
        self.last = v;
        self.stats.push(v);
    }

    /// Most recent sample (0 if never set).
    #[must_use]
    pub fn last(&self) -> f64 {
        self.last
    }

    /// Running statistics over all samples.
    #[must_use]
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }
}

/// Central store for all metrics, keyed by `&'static str` names.
///
/// Names must be valid Prometheus metric names (`[a-zA-Z_][a-zA-Z0-9_]*`);
/// this is asserted when a metric is first created.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

fn assert_metric_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    assert!(
        head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_'),
        "invalid metric name: {name:?}"
    );
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `name` (saturating), creating it at zero
    /// first.
    pub fn add(&mut self, name: &'static str, n: u64) {
        let c = self.counters.entry(name).or_insert_with(|| {
            assert_metric_name(name);
            0
        });
        *c = c.saturating_add(n);
    }

    /// Records a gauge sample.
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges
            .entry(name)
            .or_insert_with(|| {
                assert_metric_name(name);
                Gauge::new()
            })
            .set(v);
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| {
                assert_metric_name(name);
                Histogram::new()
            })
            .record(v);
    }

    /// Current value of a counter, if it exists.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge by name, if it exists.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// A histogram by name, if it exists.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// An immutable point-in-time copy of every metric, with owned names —
    /// the unit that the exporters serialize.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, g)| (k.to_string(), GaugeSummary::of(g)))
                .collect(),
            histograms: self.histograms.iter().map(|(&k, h)| (k.to_string(), h.clone())).collect(),
        }
    }
}

/// Shared, interiorly mutable registry handle.
pub type SharedRegistry = Rc<RefCell<MetricsRegistry>>;

/// Creates a fresh [`SharedRegistry`].
#[must_use]
pub fn shared_registry() -> SharedRegistry {
    Rc::new(RefCell::new(MetricsRegistry::new()))
}

/// Cheap cloneable telemetry handle, mirroring [`crate::trace::Tracer`]:
/// every operation is a single branch when no registry is attached, and
/// [`Telemetry::time`] does not even read the clock then.
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Option<SharedRegistry>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_enabled()).finish()
    }
}

impl Telemetry {
    /// A handle that records nothing (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { registry: None }
    }

    /// A handle recording into `registry`.
    #[must_use]
    pub fn attached(registry: SharedRegistry) -> Self {
        Telemetry { registry: Some(registry) }
    }

    /// Whether a registry is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The attached registry, if any.
    #[must_use]
    pub fn registry(&self) -> Option<&SharedRegistry> {
        self.registry.as_ref()
    }

    /// Adds `n` to counter `name`.
    #[inline]
    pub fn add(&self, name: &'static str, n: u64) {
        if let Some(r) = &self.registry {
            r.borrow_mut().add(name, n);
        }
    }

    /// Records a gauge sample.
    #[inline]
    pub fn gauge(&self, name: &'static str, v: f64) {
        if let Some(r) = &self.registry {
            r.borrow_mut().set_gauge(name, v);
        }
    }

    /// Records a histogram sample.
    #[inline]
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(r) = &self.registry {
            r.borrow_mut().observe(name, v);
        }
    }

    /// Starts a scoped wall-clock timer; when the returned guard drops,
    /// the elapsed nanoseconds are recorded into histogram `name`. The
    /// clock is only read when telemetry is enabled.
    #[inline]
    pub fn time(&self, name: &'static str) -> ScopedTimer {
        ScopedTimer { inner: self.registry.as_ref().map(|r| (name, Rc::clone(r), Instant::now())) }
    }
}

/// Guard returned by [`Telemetry::time`]; records elapsed nanoseconds
/// into the named histogram on drop.
#[must_use = "dropping the timer immediately records ~0 ns"]
#[derive(Debug)]
pub struct ScopedTimer {
    inner: Option<(&'static str, SharedRegistry, Instant)>,
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((name, registry, start)) = self.inner.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            registry.borrow_mut().observe(name, ns);
        }
    }
}

/// Point-in-time summary of one [`Gauge`] (what the exporters emit; the
/// Welford `m2` term is intentionally dropped, so a parsed snapshot
/// preserves last/count/mean/min/max but not the standard deviation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSummary {
    /// Most recent sample.
    pub last: f64,
    /// Number of samples.
    pub count: u64,
    /// Mean over all samples.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl GaugeSummary {
    fn of(g: &Gauge) -> Self {
        GaugeSummary {
            last: g.last(),
            count: g.stats().count(),
            mean: g.stats().mean().unwrap_or(0.0),
            min: g.stats().min().unwrap_or(0.0),
            max: g.stats().max().unwrap_or(0.0),
        }
    }
}

/// Owned, serializable copy of a registry: what [`MetricsRegistry::snapshot`]
/// returns and what the JSON exporter round-trips.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeSummary>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Current value of a counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge summary by name, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<&GaugeSummary> {
        self.gauges.get(name)
    }

    /// A histogram by name, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Names of all histograms, in sorted order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Counters and gauges become one family each (gauges carry
    /// `{stat="last|mean|min|max"}` labels); histograms emit the standard
    /// `_bucket{le=...}` / `_sum` / `_count` series plus explicit
    /// `_p50` / `_p95` / `_p99` / `_max` gauge families so quantiles can
    /// be read without a PromQL engine.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{{stat=\"last\"}} {}", format_f64(g.last));
            let _ = writeln!(out, "{name}{{stat=\"mean\"}} {}", format_f64(g.mean));
            let _ = writeln!(out, "{name}{{stat=\"min\"}} {}", format_f64(g.min));
            let _ = writeln!(out, "{name}{{stat=\"max\"}} {}", format_f64(g.max));
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (ub, n) in h.nonzero_buckets() {
                cum += n;
                let _ = writeln!(out, "{name}_bucket{{le=\"{ub}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
            for (suffix, v) in [
                ("p50", h.p50().unwrap_or(0)),
                ("p95", h.p95().unwrap_or(0)),
                ("p99", h.p99().unwrap_or(0)),
                ("max", h.max()),
            ] {
                let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
                let _ = writeln!(out, "{name}_{suffix} {v}");
            }
        }
        out
    }

    /// Renders the snapshot as a single JSON object (counters, gauges and
    /// histograms keyed by name; histogram buckets stored sparsely as
    /// `[upper_bound, count]` pairs, plus derived `p50`/`p95`/`p99` for
    /// human consumption, which [`MetricsSnapshot::from_json`] recomputes
    /// rather than trusts).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (name, g) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{name}\":{{\"last\":{},\"count\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
                format_f64(g.last),
                g.count,
                format_f64(g.mean),
                format_f64(g.min),
                format_f64(g.max)
            );
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                h.count(),
                h.sum(),
                h.max(),
                h.p50().unwrap_or(0),
                h.p95().unwrap_or(0),
                h.p99().unwrap_or(0)
            );
            let mut first_bucket = true;
            for (ub, n) in h.nonzero_buckets() {
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                let _ = write!(out, "[{ub},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parses a snapshot previously produced by [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Fails with a description of the first malformed construct.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        let root = root.as_object("top level")?;
        let mut snap = MetricsSnapshot::default();
        for (key, value) in root {
            match key.as_str() {
                "counters" => {
                    for (name, v) in value.as_object("counters")? {
                        snap.counters.insert(name.clone(), v.as_u64(name)?);
                    }
                }
                "gauges" => {
                    for (name, v) in value.as_object("gauges")? {
                        let fields = v.as_object(name)?;
                        let mut g =
                            GaugeSummary { last: 0.0, count: 0, mean: 0.0, min: 0.0, max: 0.0 };
                        for (fk, fv) in fields {
                            match fk.as_str() {
                                "last" => g.last = fv.as_f64(fk)?,
                                "count" => g.count = fv.as_u64(fk)?,
                                "mean" => g.mean = fv.as_f64(fk)?,
                                "min" => g.min = fv.as_f64(fk)?,
                                "max" => g.max = fv.as_f64(fk)?,
                                other => return Err(format!("unknown gauge field {other:?}")),
                            }
                        }
                        snap.gauges.insert(name.clone(), g);
                    }
                }
                "histograms" => {
                    for (name, v) in value.as_object("histograms")? {
                        let fields = v.as_object(name)?;
                        let mut sum = 0u64;
                        let mut max = 0u64;
                        let mut pairs: Vec<(u64, u64)> = Vec::new();
                        for (fk, fv) in fields {
                            match fk.as_str() {
                                "sum" => sum = fv.as_u64(fk)?,
                                "max" => max = fv.as_u64(fk)?,
                                // count and quantiles are derived from the
                                // buckets on reconstruction.
                                "count" | "p50" | "p95" | "p99" => {}
                                "buckets" => {
                                    for entry in fv.as_array(fk)? {
                                        let pair = entry.as_array("bucket entry")?;
                                        if pair.len() != 2 {
                                            return Err("bucket entry is not a pair".into());
                                        }
                                        pairs.push((
                                            pair[0].as_u64("bucket bound")?,
                                            pair[1].as_u64("bucket count")?,
                                        ));
                                    }
                                }
                                other => return Err(format!("unknown histogram field {other:?}")),
                            }
                        }
                        snap.histograms
                            .insert(name.clone(), Histogram::from_sparse(&pairs, sum, max)?);
                    }
                }
                other => return Err(format!("unknown top-level key {other:?}")),
            }
        }
        Ok(snap)
    }
}

/// Shortest `f64` representation that round-trips (same contract as the
/// trace module's coordinate formatting).
fn format_f64(x: f64) -> String {
    assert!(x.is_finite(), "metric values must be finite: {x}");
    let s = format!("{x:?}");
    debug_assert!(s.parse::<f64>() == Ok(x));
    s
}

/// Minimal recursive-descent JSON parser for the exporter subset
/// (objects, arrays, numbers, strings without escapes, booleans, null).
/// Shared with the audit module's `.audit.json` artifact parser, the
/// topology module's `.topo.json` parser and the scenario crate's
/// heatmap parser.
pub mod json {
    /// Parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Numeric literal, kept as raw text so 64-bit integers survive
        /// without a round-trip through `f64` (which only has 53 bits).
        Number(String),
        /// String literal.
        String(String),
        /// `true` / `false`.
        Bool(bool),
        /// `null`.
        Null,
        /// Array of values.
        Array(Vec<Value>),
        /// Object as ordered key/value pairs.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The value as an object's key/value pairs; `what` names the
        /// construct in the error message.
        ///
        /// # Errors
        ///
        /// Fails if the value is not an object.
        pub fn as_object(&self, what: &str) -> Result<&Vec<(String, Value)>, String> {
            match self {
                Value::Object(fields) => Ok(fields),
                other => Err(format!("{what}: expected object, got {other:?}")),
            }
        }

        /// The value as an array's items.
        ///
        /// # Errors
        ///
        /// Fails if the value is not an array.
        pub fn as_array(&self, what: &str) -> Result<&Vec<Value>, String> {
            match self {
                Value::Array(items) => Ok(items),
                other => Err(format!("{what}: expected array, got {other:?}")),
            }
        }

        /// The value as an `f64`.
        ///
        /// # Errors
        ///
        /// Fails if the value is not a parseable number.
        pub fn as_f64(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Number(text) => {
                    text.parse().map_err(|_| format!("{what}: bad number {text:?}"))
                }
                other => Err(format!("{what}: expected number, got {other:?}")),
            }
        }

        /// The value as a `u64`, kept exact (no round-trip through
        /// `f64`, whose mantissa only has 53 bits).
        ///
        /// # Errors
        ///
        /// Fails if the value is not an unsigned integer literal.
        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Number(text) => text
                    .parse()
                    .map_err(|_| format!("{what}: expected unsigned integer, got {text:?}")),
                other => Err(format!("{what}: expected number, got {other:?}")),
            }
        }
    }

    /// Parses one JSON document (of the exporter subset) into a
    /// [`Value`].
    ///
    /// # Errors
    ///
    /// Fails with a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".into()),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.pos;
            while let Some(b) = self.peek() {
                match b {
                    b'"' => {
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?
                            .to_string();
                        self.pos += 1;
                        return Ok(s);
                    }
                    b'\\' => {
                        return Err(format!("escape sequences unsupported at byte {}", self.pos))
                    }
                    _ => self.pos += 1,
                }
            }
            Err("unterminated string".into())
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            // Validate now so malformed numbers fail at parse time even if
            // the field is never read.
            text.parse::<f64>().map_err(|_| format!("bad number {text:?}"))?;
            Ok(Value::Number(text.to_string()))
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_layout_is_consistent() {
        for v in (0..4096).chain([u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            let ub = bucket_upper_bound(idx);
            assert!(ub >= v, "upper bound {ub} < value {v}");
            if idx > 0 {
                assert!(bucket_upper_bound(idx - 1) < v, "value {v} below bucket {idx}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.p50(), Some(1));
        assert_eq!(h.quantile(1.0), Some(15));
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in 0..10_000u64 {
            h.record(v * 17);
        }
        let (p50, p95, p99) = (h.p50().unwrap(), h.p95().unwrap(), h.p99().unwrap());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max());
        // Log-linear layout: ≤ 25 % relative error on the median.
        let exact = 5_000.0 * 17.0;
        assert!((p50 as f64 - exact).abs() / exact < 0.25, "p50 = {p50}");
    }

    #[test]
    fn histogram_merge_equals_single_accumulator() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..1_000u64 {
            let v = v * v;
            if v % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn gauge_tracks_last_and_stats() {
        let mut g = Gauge::new();
        g.set(3.0);
        g.set(1.0);
        g.set(2.0);
        assert_eq!(g.last(), 2.0);
        assert_eq!(g.stats().mean(), Some(2.0));
        assert_eq!(g.stats().min(), Some(1.0));
        assert_eq!(g.stats().max(), Some(3.0));
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.add("c", 1);
        t.gauge("g", 1.0);
        t.observe("h", 1);
        drop(t.time("t"));
        assert!(t.registry().is_none());
    }

    #[test]
    fn attached_telemetry_records_everything() {
        let reg = shared_registry();
        let t = Telemetry::attached(reg.clone());
        t.add("c", 2);
        t.add("c", 3);
        t.gauge("g", 4.5);
        t.observe("h", 7);
        {
            let _timer = t.time("span_ns");
        }
        let r = reg.borrow();
        assert_eq!(r.counter("c"), Some(5));
        assert_eq!(r.gauge("g").unwrap().last(), 4.5);
        assert_eq!(r.histogram("h").unwrap().count(), 1);
        assert_eq!(r.histogram("span_ns").unwrap().count(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn rejects_bad_metric_names() {
        let mut r = MetricsRegistry::new();
        r.add("bad name", 1);
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = shared_registry();
        let t = Telemetry::attached(reg.clone());
        t.add("frames_total", 42);
        t.add("bytes_total", 9_000);
        t.gauge("queue_len", 3.0);
        t.gauge("queue_len", 8.0);
        t.gauge("loct_size", 12.5);
        for v in [5u64, 120, 4_000, 4_000, 80_000] {
            t.observe("handle_frame_ns", v);
        }
        let snap = reg.borrow().snapshot();
        snap
    }

    #[test]
    fn json_snapshot_round_trips() {
        let snap = sample_snapshot();
        let text = snap.to_json();
        let parsed = MetricsSnapshot::from_json(&text).expect("parse back");
        assert_eq!(parsed, snap);
        // And the round-tripped copy serializes identically.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(MetricsSnapshot::from_json("").is_err());
        assert!(MetricsSnapshot::from_json("{\"counters\":[]}").is_err());
        assert!(MetricsSnapshot::from_json("{\"counters\":{}} trailing").is_err());
        assert!(MetricsSnapshot::from_json("{\"histograms\":{\"h\":{\"buckets\":[[3]]}}}").is_err());
    }

    /// A parsed Prometheus sample: (name, labels, value).
    type PromSample = (String, Vec<(String, String)>, f64);

    /// Splits one Prometheus sample line into (name, labels, value).
    fn parse_prom_line(line: &str) -> Result<PromSample, String> {
        let name_end = line
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .ok_or_else(|| format!("no name/value split in {line:?}"))?;
        let name = &line[..name_end];
        if name.is_empty() || name.starts_with(|c: char| c.is_ascii_digit()) {
            return Err(format!("bad metric name in {line:?}"));
        }
        let mut rest = &line[name_end..];
        let mut labels = Vec::new();
        if let Some(inner) = rest.strip_prefix('{') {
            let close = inner.find('}').ok_or_else(|| format!("unclosed labels in {line:?}"))?;
            for pair in inner[..close].split(',') {
                let (k, v) = pair.split_once('=').ok_or_else(|| format!("bad label {pair:?}"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value {v:?}"))?;
                labels.push((k.to_string(), v.to_string()));
            }
            rest = &inner[close + 1..];
        }
        let value = rest.trim();
        if value == "+Inf" {
            return Ok((name.to_string(), labels, f64::INFINITY));
        }
        let value: f64 = value.parse().map_err(|_| format!("bad value in {line:?}"))?;
        Ok((name.to_string(), labels, value))
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        let mut samples = 0;
        let mut families = Vec::new();
        for line in text.lines() {
            if let Some(typed) = line.strip_prefix("# TYPE ") {
                let mut parts = typed.split(' ');
                let family = parts.next().unwrap().to_string();
                let kind = parts.next().unwrap();
                assert!(matches!(kind, "counter" | "gauge" | "histogram"), "kind {kind}");
                families.push(family);
                continue;
            }
            let (name, labels, value) = parse_prom_line(line).expect("sample line parses");
            // Every sample belongs to a declared family (histograms add
            // _bucket/_sum/_count suffixes onto theirs).
            assert!(
                families.iter().any(|f| {
                    name == *f
                        || name == format!("{f}_bucket")
                        || name == format!("{f}_sum")
                        || name == format!("{f}_count")
                }),
                "sample {name} has no TYPE declaration"
            );
            for (k, v) in &labels {
                assert!(matches!(k.as_str(), "stat" | "le"), "unexpected label {k}={v}");
            }
            assert!(!value.is_nan());
            samples += 1;
        }
        assert!(samples > 10, "expected a non-trivial exposition, got {samples} samples");
        // Spot-check the headline series.
        assert!(text.contains("frames_total 42"));
        assert!(text.contains("queue_len{stat=\"last\"} 8"));
        assert!(text.contains("handle_frame_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("handle_frame_ns_count 5"));
        assert!(text.contains("handle_frame_ns_p95"));
    }

    #[test]
    fn prometheus_bucket_counts_are_cumulative() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        let mut last = 0.0f64;
        for line in text.lines().filter(|l| l.starts_with("handle_frame_ns_bucket")) {
            let (_, _, v) = parse_prom_line(line).unwrap();
            assert!(v >= last, "bucket counts must be cumulative");
            last = v;
        }
        assert_eq!(last, 5.0);
    }

    #[test]
    fn scoped_timer_measures_elapsed_time() {
        let reg = shared_registry();
        let t = Telemetry::attached(reg.clone());
        {
            let _timer = t.time("busy_ns");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let r = reg.borrow();
        let h = r.histogram("busy_ns").unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000_000, "slept ≥ 2 ms but recorded {} ns", h.max());
    }

    proptest! {
        #[test]
        fn prop_bucket_bounds_cover_u64(v in any::<u64>()) {
            let idx = bucket_index(v);
            prop_assert!(idx < BUCKET_COUNT);
            prop_assert!(bucket_upper_bound(idx) >= v);
            if idx > 0 {
                prop_assert!(bucket_upper_bound(idx - 1) < v);
            }
        }

        #[test]
        fn prop_quantile_error_bounded(xs in prop::collection::vec(0u64..1_000_000, 1..300)) {
            let mut h = Histogram::new();
            for &x in &xs { h.record(x); }
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            for (q, rank) in [(0.5, sorted.len().div_ceil(2)), (1.0, sorted.len())] {
                let exact = sorted[rank - 1];
                let est = h.quantile(q).unwrap();
                // The estimate is the bucket upper bound: never below the
                // exact rank value, and within 25 % (or ±1 for tiny values).
                prop_assert!(est >= exact);
                prop_assert!(est as f64 <= exact as f64 * 1.25 + 1.0,
                    "q={q} exact={exact} est={est}");
            }
        }

        #[test]
        fn prop_json_round_trip(counts in prop::collection::vec(0u64..u64::MAX / 2, 1..20)) {
            let reg = shared_registry();
            let t = Telemetry::attached(reg.clone());
            for (i, &c) in counts.iter().enumerate() {
                t.add("events_total", c / 2 + 1);
                t.observe("lat_ns", c);
                t.gauge("depth", (i as f64) * 0.5);
            }
            let snap = reg.borrow().snapshot();
            let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
            prop_assert_eq!(parsed, snap);
        }

        /// Every metric kind, across each value's full domain: counters
        /// and histogram samples over all of `u64` (beyond the 2^53
        /// f64-exact range — the parser must keep integers as text, never
        /// detour through a double) and gauges over the wide finite `f64`
        /// range. The snapshot must survive export → parse bit-exactly.
        #[test]
        fn prop_json_round_trip_full_domain(
            counts in prop::collection::vec(any::<u64>(), 1..20),
            gauges in prop::collection::vec(-1.0e300..1.0e300f64, 1..20),
        ) {
            let reg = shared_registry();
            let t = Telemetry::attached(reg.clone());
            for (i, &c) in counts.iter().enumerate() {
                let counter = ["events_total", "frames_total", "drops_total"][i % 3];
                t.add(counter, c);
                let histogram = ["lat_ns", "queue_wait_ns"][i % 2];
                t.observe(histogram, c);
            }
            for (i, &g) in gauges.iter().enumerate() {
                let gauge = ["depth", "load", "rate"][i % 3];
                t.gauge(gauge, g);
            }
            let snap = reg.borrow().snapshot();
            let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
            prop_assert_eq!(parsed, snap);
        }
    }
}
