//! Seedable, splittable randomness for reproducible runs.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Mixes a 64-bit value with the splitmix64 finalizer. Used to derive
/// statistically independent sub-seeds from `(seed, stream)` pairs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random source for one simulation run.
///
/// Every run is seeded with a single `u64`; every node, service or workload
/// generator inside the run derives its own independent stream with
/// [`SimRng::split`], so adding a new consumer of randomness never perturbs
/// the draws seen by existing ones (a classic source of accidental
/// non-reproducibility in simulators).
///
/// # Example
///
/// ```
/// use geonet_sim::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed(42).split(7);
/// let mut b = SimRng::seed(42).split(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // same (seed, stream) ⇒ same draws
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    base: u64,
    /// Logical stream position: how many words this stream has produced.
    draws: u64,
}

impl SimRng {
    /// Creates the root random source for a run.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(splitmix64(seed)), base: seed, draws: 0 }
    }

    /// Derives an independent stream identified by `stream`.
    ///
    /// Splitting is a pure function of the *original* seed and the stream
    /// id — it does not consume state from `self` — so the set of streams a
    /// simulation uses can grow without reordering anyone's draws. The new
    /// stream's [`SimRng::draw_count`] starts at zero.
    #[must_use]
    pub fn split(&self, stream: u64) -> SimRng {
        let sub = splitmix64(self.base ^ splitmix64(stream.wrapping_add(0xA5A5_A5A5)));
        SimRng { inner: StdRng::seed_from_u64(sub), base: sub, draws: 0 }
    }

    /// The stream position: how many words have been drawn from this
    /// stream so far. A deterministic function of the request sequence
    /// (each `next_u32`/`next_u64` counts one; `fill_bytes` counts one
    /// per started 8-byte word), so two identically-seeded simulations
    /// that made the same requests report the same count — the audit
    /// layer digests this instead of cloning the generator.
    #[must_use]
    pub fn draw_count(&self) -> u64 {
        self.draws
    }

    /// Uniform draw in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "empty uniform range [{low}, {high})");
        Rng::gen_range(self, low..high)
    }

    /// Uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is empty");
        Rng::gen_range(self, 0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            Rng::gen_bool(self, p)
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.draws += (dest.len() as u64).div_ceil(8);
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.draws += (dest.len() as u64).div_ceil(8);
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_is_stateless() {
        let root = SimRng::seed(99);
        let mut s1 = root.split(5);
        // Splitting again after consuming draws from another split must not
        // change the stream.
        let mut burn = root.split(6);
        let _ = burn.next_u64();
        let mut s2 = root.split(5);
        for _ in 0..32 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn split_streams_are_distinct() {
        let root = SimRng::seed(7);
        let mut s1 = root.split(1);
        let mut s2 = root.split(2);
        let v1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = SimRng::seed(3);
        for _ in 0..1_000 {
            let x = r.uniform(-0.75, 0.75);
            assert!((-0.75..0.75).contains(&x));
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::seed(4);
        for _ in 0..1_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn uniform_rejects_empty_range() {
        let mut r = SimRng::seed(6);
        let _ = r.uniform(1.0, 1.0);
    }

    #[test]
    fn draw_count_starts_at_zero_and_advances() {
        let mut r = SimRng::seed(11);
        assert_eq!(r.draw_count(), 0);
        let _ = r.next_u64();
        assert_eq!(r.draw_count(), 1);
        let _ = r.next_u32();
        assert_eq!(r.draw_count(), 2);
        let mut buf = [0u8; 20];
        r.fill_bytes(&mut buf); // 20 bytes = 3 started 8-byte words
        assert_eq!(r.draw_count(), 5);
        r.fill_bytes(&mut []);
        assert_eq!(r.draw_count(), 5, "empty fill draws nothing");
        let s = r.split(1);
        assert_eq!(s.draw_count(), 0, "fresh streams start at zero");
        assert_eq!(r.draw_count(), 5, "splitting consumes no draws");
    }

    #[test]
    fn draw_count_covers_convenience_draws() {
        let mut r = SimRng::seed(12);
        let _ = r.uniform(0.0, 1.0);
        let after_uniform = r.draw_count();
        assert!(after_uniform > 0, "uniform must advance the stream position");
        let _ = r.below(17);
        assert!(r.draw_count() > after_uniform);
        let before = r.draw_count();
        let _ = r.chance(0.5);
        assert!(r.draw_count() > before);
    }

    #[test]
    fn identically_seeded_kernels_report_identical_draw_counts() {
        // Two kernels driven by the same seed make the same requests in
        // the same order, so the streams' positions must agree at every
        // point — the property the audit layer's RNG digest relies on.
        use crate::{Kernel, SimDuration};
        let run = |seed: u64| {
            let mut kernel: Kernel<u32> = Kernel::with_horizon(crate::SimTime::from_secs(60));
            let mut rng = SimRng::seed(seed).split(3);
            kernel.schedule_at(crate::SimTime::ZERO, 0);
            let mut positions = Vec::new();
            while let Some((_, n)) = kernel.pop() {
                // A beacon-like jittered reschedule plus a workload coin.
                let jitter = rng.uniform(0.0, 0.75);
                if rng.chance(0.9) {
                    kernel.schedule_in(SimDuration::from_secs_f64(1.0 + jitter), n + 1);
                }
                positions.push(rng.draw_count());
            }
            positions
        };
        let a = run(42);
        let b = run(42);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed must give the same stream positions");
        assert_ne!(a, run(43), "different seeds diverge");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seed(8);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
