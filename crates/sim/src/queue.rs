//! A deterministic event priority queue.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a time, ordered by `(time, insertion sequence)`.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event.
        // Ties broken by insertion sequence for determinism.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A priority queue of timestamped events with a deterministic total order.
///
/// Events with equal timestamps are popped in the order they were pushed,
/// which makes every simulation run a pure function of its inputs: no
/// dependence on hash ordering, allocation addresses or platform `sort`
/// stability.
///
/// # Example
///
/// ```
/// use geonet_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(10), "b");
/// q.push(SimTime::from_millis(10), "c");
/// q.push(SimTime::from_millis(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// The `(time, insertion sequence)` keys of every pending event, in
    /// unspecified order (the heap's internal layout). The audit layer
    /// folds these through an order-independent combiner to digest the
    /// queue's contents without draining it.
    pub fn pending_keys(&self) -> impl Iterator<Item = (SimTime, u64)> + '_ {
        self.heap.iter().map(|s| (s.time, s.seq))
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0);
        q.push(SimTime::ZERO, 1);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
            expected.sort(); // stable key (time, insertion index)
            let mut popped = Vec::new();
            while let Some((t, i)) = q.pop() {
                popped.push((t.as_micros(), i));
            }
            prop_assert_eq!(popped, expected);
        }
    }
}
