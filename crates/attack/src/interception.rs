//! The inter-area interception attack (paper §III-B).

use crate::ReplayOrder;
use geonet::Frame;
use geonet_geo::Position;
use geonet_sim::{AttackKind, SimDuration, SimTime, TraceEvent, Tracer};
use std::fmt;

/// The beacon-replay attacker.
///
/// Deployed statically at the roadside, it sniffs the public channel and
/// re-broadcasts **every beacon it hears** at its (larger) attack range —
/// the strategy the paper's evaluation uses ("the attacker rebroadcasts
/// all beacons that it hears to the vehicles within its communication
/// coverage"). Vehicles that would never have heard each other directly
/// thus poison each other's location tables with authentic but
/// unreachable neighbours.
///
/// The replayed frame is byte-identical to the captured one: signature,
/// position vector and timestamp all verify, which is why certificate
/// checks and integrity protection do not stop the attack.
#[derive(Debug, Clone)]
pub struct InterAreaAttacker {
    position: Position,
    attack_range: Option<f64>,
    processing_delay: SimDuration,
    beacons_sniffed: u64,
    beacons_replayed: u64,
    tracer: Tracer,
}

impl InterAreaAttacker {
    /// Creates an attacker whose sniffer sits at `position`.
    #[must_use]
    pub fn new(position: Position) -> Self {
        InterAreaAttacker {
            position,
            attack_range: None,
            processing_delay: SimDuration::from_millis(1),
            beacons_sniffed: 0,
            beacons_replayed: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer; each capture and replay emits an
    /// [`TraceEvent::AttackAction`] through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Overrides the capture-to-replay processing delay (default 1 ms).
    #[must_use]
    pub fn with_processing_delay(mut self, delay: SimDuration) -> Self {
        self.processing_delay = delay;
        self
    }

    /// The attacker's position.
    #[must_use]
    pub fn position(&self) -> Position {
        self.position
    }

    /// Declares the attacker's elevated sniff/TX range in metres, so
    /// the attacker object is self-describing for observability layers
    /// (blast-radius and coverage reports).
    #[must_use]
    pub fn with_attack_range(mut self, range: f64) -> Self {
        assert!(range.is_finite() && range >= 0.0, "invalid attack range: {range}");
        self.attack_range = Some(range);
        self
    }

    /// The declared sniff/TX range, if the deployer set one.
    #[must_use]
    pub fn attack_range(&self) -> Option<f64> {
        self.attack_range
    }

    /// Moves the attacker (the paper's discussion covers mobile
    /// attackers; replayed frames carry the new transmitter position).
    pub fn set_position(&mut self, position: Position) {
        self.position = position;
    }

    /// Beacons heard so far.
    #[must_use]
    pub fn beacons_sniffed(&self) -> u64 {
        self.beacons_sniffed
    }

    /// Beacons replayed so far.
    #[must_use]
    pub fn beacons_replayed(&self) -> u64 {
        self.beacons_replayed
    }

    /// Feeds one sniffed frame; returns a replay order for beacons.
    ///
    /// Data packets are ignored — this attack never touches them; it only
    /// corrupts the victims' view of the topology and lets greedy
    /// forwarding do the packet dropping itself.
    pub fn on_sniff(&mut self, frame: &Frame, now: SimTime) -> Option<ReplayOrder> {
        if frame.msg.packet.gbc().is_some() {
            return None; // not a beacon
        }
        self.beacons_sniffed += 1;
        self.beacons_replayed += 1;
        self.tracer.emit(now, || TraceEvent::AttackAction {
            kind: AttackKind::InterceptionCapture,
            packet: None,
        });
        self.tracer.emit(now, || TraceEvent::AttackAction {
            kind: AttackKind::InterceptionReplay,
            packet: None,
        });
        Some(ReplayOrder {
            frame: Frame {
                // Replayed verbatim at the network layer; the physical
                // transmitter is now the attacker.
                sender_position: self.position,
                ..frame.clone()
            },
            delay: self.processing_delay,
            range_cap: None,
        })
    }
}

impl fmt::Display for InterAreaAttacker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inter-area attacker at {} ({} sniffed, {} replayed)",
            self.position, self.beacons_sniffed, self.beacons_replayed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet::{CertificateAuthority, GnAddress, GnConfig, GnRouter};
    use geonet_geo::{Area, GeoReference, Heading};
    use geonet_sim::SimTime;

    fn router(ca: &CertificateAuthority, addr: u64) -> GnRouter {
        GnRouter::new(
            ca.enroll(GnAddress::vehicle(addr)),
            ca.verifier(),
            GnConfig::paper_default(1_283.0),
            GeoReference::default(),
        )
    }

    #[test]
    fn replays_beacons_with_default_delay() {
        let ca = CertificateAuthority::new(1);
        let v3 = router(&ca, 3);
        let mut atk = InterAreaAttacker::new(Position::new(500.0, -10.0));
        let beacon =
            v3.make_beacon(SimTime::from_secs(1), Position::new(700.0, 0.0), 30.0, Heading::EAST);
        let order = atk.on_sniff(&beacon, SimTime::from_secs(1)).expect("beacons are replayed");
        assert_eq!(order.delay, SimDuration::from_millis(1));
        assert_eq!(order.range_cap, None);
        // Network-layer content untouched.
        assert_eq!(order.frame.msg, beacon.msg);
        assert_eq!(order.frame.src, beacon.src);
        // Physical transmitter moved to the attacker.
        assert_eq!(order.frame.sender_position, atk.position());
        assert_eq!(atk.beacons_replayed(), 1);
    }

    #[test]
    fn ignores_data_packets() {
        let ca = CertificateAuthority::new(1);
        let mut v1 = router(&ca, 1);
        let mut atk = InterAreaAttacker::new(Position::new(500.0, -10.0));
        let area = Area::circle(Position::new(4_020.0, 0.0), 50.0);
        let (_, actions) = v1.originate(
            &area,
            vec![1],
            SimTime::from_secs(1),
            Position::ORIGIN,
            30.0,
            Heading::EAST,
        );
        let geonet::RouterAction::Transmit(frame) = &actions[0] else { panic!() };
        assert!(atk.on_sniff(frame, SimTime::from_secs(1)).is_none());
        assert_eq!(atk.beacons_sniffed(), 0);
    }

    #[test]
    fn end_to_end_poisoning_without_mitigation() {
        // The full §III-B chain: replayed beacon → LocT entry → GF picks
        // the unreachable node.
        let ca = CertificateAuthority::new(1);
        let mut v1 = router(&ca, 1); // victim at x = 0
        let v2 = router(&ca, 2); // real neighbour at 300 m
        let v3 = router(&ca, 3); // out of range at 700 m
        let mut atk = InterAreaAttacker::new(Position::new(400.0, -10.0));

        let t0 = SimTime::from_secs(1);
        let v2_beacon = v2.make_beacon(t0, Position::new(300.0, 0.0), 30.0, Heading::EAST);
        let v3_beacon = v3.make_beacon(t0, Position::new(700.0, 0.0), 30.0, Heading::EAST);

        // v1 hears v2 directly, and v3 only through the attacker.
        v1.handle_frame(&v2_beacon, Position::ORIGIN, t0);
        let order = atk.on_sniff(&v3_beacon, t0).unwrap();
        v1.handle_frame(&order.frame, Position::ORIGIN, t0 + order.delay);

        let area = Area::circle(Position::new(4_020.0, 0.0), 50.0);
        let (_, actions) =
            v1.originate(&area, vec![1], t0 + order.delay, Position::ORIGIN, 30.0, Heading::EAST);
        let geonet::RouterAction::Transmit(f) = &actions[0] else { panic!() };
        assert_eq!(f.dst, Some(GnAddress::vehicle(3)), "victim forwards into the void");
    }

    #[test]
    fn custom_processing_delay() {
        let atk = InterAreaAttacker::new(Position::ORIGIN)
            .with_processing_delay(SimDuration::from_micros(200));
        assert_eq!(atk.processing_delay, SimDuration::from_micros(200));
    }

    #[test]
    fn display_reports_counts() {
        let atk = InterAreaAttacker::new(Position::ORIGIN);
        assert!(atk.to_string().contains("inter-area attacker"));
    }
}
