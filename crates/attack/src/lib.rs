//! The paper's two outsider attacks against GeoNetworking.
//!
//! Both attackers are *outsiders* in the paper's threat model: they hold
//! no certificate (note that nothing in this crate ever receives
//! [`geonet::Credentials`]), cannot forge or alter signed content, and act
//! purely by **replaying** authentic frames they sniff from the public
//! channel — optionally rewriting the one field the standard leaves
//! outside the integrity envelope, the remaining hop limit.
//!
//! * [`InterAreaAttacker`] (paper §III-B) replays beacons so that victims
//!   learn authentic position vectors of vehicles that are *out of their
//!   radio range*; greedy forwarding then picks an unreachable next hop
//!   and the packet silently dies.
//! * [`IntraAreaAttacker`] (paper §III-C) impersonates the fastest CBF
//!   contender: it captures a GeoBroadcast packet, clamps its RHL to 1 and
//!   re-broadcasts immediately, making all buffered candidates discard
//!   their copies while new receivers decrement the RHL to zero and stop.
//!   The Spot-2 variant replays unmodified at reduced transmission power
//!   instead.
//!
//! The attackers are pure state machines like the routers: the scenario
//! layer feeds them every frame their sniffer can hear and executes the
//! [`ReplayOrder`]s they emit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockage;
pub mod interception;

pub use blockage::{BlockageMode, IntraAreaAttacker};
pub use interception::InterAreaAttacker;

use geonet::Frame;
use geonet_sim::SimDuration;

/// An instruction to transmit a (possibly modified) captured frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOrder {
    /// The frame to put on the air.
    pub frame: Frame,
    /// Processing delay before transmission. The paper argues ≤ 1 ms is
    /// achievable, comfortably inside the CBF window (TO_MIN = 1 ms).
    pub delay: SimDuration,
    /// Transmission-power control: cap the effective range to this many
    /// metres (`None` = full attack power). Used by the Spot-2 variant.
    pub range_cap: Option<f64>,
}
