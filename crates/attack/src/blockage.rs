//! The intra-area blockage attack (paper §III-C).

use crate::ReplayOrder;
use geonet::{Frame, GnAddress, PacketKey};
use geonet_geo::Position;
use geonet_sim::{AttackKind, PacketRef, SimDuration, SimTime, TraceEvent, Tracer};
use std::collections::BTreeSet;
use std::fmt;

/// How the attacker transmits its replayed copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockageMode {
    /// *Spot 1* / conservative strategy: clamp the (unprotected) RHL to 1
    /// and broadcast at full attack power. Buffered candidates discard
    /// their copies as "duplicates"; first-time receivers decrement the
    /// RHL to 0 and never forward.
    ClampRhl,
    /// *Spot 2* variant: replay the packet unmodified but control the
    /// transmission power so only the targeted candidate forwarders hear
    /// it (used in the paper's road-safety case study to silence a single
    /// roadside unit).
    PowerControlled {
        /// Effective replay range, metres.
        range: f64,
    },
}

impl fmt::Display for BlockageMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockageMode::ClampRhl => f.write_str("clamp-RHL"),
            BlockageMode::PowerControlled { range } => {
                write!(f, "power-controlled ({range:.0} m)")
            }
        }
    }
}

/// The CBF forwarder-impersonation attacker.
///
/// It captures the **first copy** of each GeoBroadcast packet it hears and
/// immediately replays it (within the paper's ≤ 1 ms processing window,
/// well inside TO_MIN), impersonating the contention winner. Buffered
/// candidate forwarders in its coverage treat the replay as a peer's
/// re-broadcast and discard their copies.
///
/// Subsequent copies of the same packet (legitimate re-broadcasts that
/// escaped the first replay) are replayed too — the attacker keeps
/// suppressing the flood wherever it can hear it — unless
/// `replay_once` is set, which models a minimal attacker.
#[derive(Debug, Clone)]
pub struct IntraAreaAttacker {
    position: Position,
    attack_range: Option<f64>,
    mode: BlockageMode,
    processing_delay: SimDuration,
    replay_once: bool,
    pseudonym: GnAddress,
    seen: BTreeSet<PacketKey>,
    packets_sniffed: u64,
    packets_replayed: u64,
    tracer: Tracer,
}

impl IntraAreaAttacker {
    /// The pseudonymous link-layer source replays are sent under unless
    /// overridden with [`IntraAreaAttacker::with_pseudonym`].
    pub const DEFAULT_PSEUDONYM: GnAddress = GnAddress::vehicle(0xFFFF_FFFF_0000);

    /// Creates an attacker at `position` using the given mode.
    #[must_use]
    pub fn new(position: Position, mode: BlockageMode) -> Self {
        IntraAreaAttacker {
            position,
            attack_range: None,
            mode,
            processing_delay: SimDuration::from_millis(1),
            replay_once: true,
            pseudonym: IntraAreaAttacker::DEFAULT_PSEUDONYM,
            seen: BTreeSet::new(),
            packets_sniffed: 0,
            packets_replayed: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer; each replay emits an
    /// [`TraceEvent::AttackAction`] through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Overrides the capture-to-replay processing delay (default 1 ms).
    #[must_use]
    pub fn with_processing_delay(mut self, delay: SimDuration) -> Self {
        self.processing_delay = delay;
        self
    }

    /// Controls whether each packet is replayed only on its first sighting
    /// (`true`, default — the paper's proof of concept) or on every
    /// sighting (`false`, a more aggressive attacker).
    #[must_use]
    pub fn with_replay_once(mut self, once: bool) -> Self {
        self.replay_once = once;
        self
    }

    /// Sets the pseudonymous link-layer source used for replays. The
    /// paper's threat model allows pseudonyms (they exist for privacy);
    /// the network-layer content stays authentic either way.
    #[must_use]
    pub fn with_pseudonym(mut self, pseudonym: GnAddress) -> Self {
        self.pseudonym = pseudonym;
        self
    }

    /// The pseudonymous link-layer source replays are sent under — what
    /// victims see in `CbfCancelled { by }` trace events, and what
    /// forensic attribution matches against.
    #[must_use]
    pub fn pseudonym(&self) -> GnAddress {
        self.pseudonym
    }

    /// The attacker's position.
    #[must_use]
    pub fn position(&self) -> Position {
        self.position
    }

    /// Declares the attacker's elevated sniff/TX range in metres, so
    /// the attacker object is self-describing for observability layers
    /// (blast-radius and coverage reports).
    #[must_use]
    pub fn with_attack_range(mut self, range: f64) -> Self {
        assert!(range.is_finite() && range >= 0.0, "invalid attack range: {range}");
        self.attack_range = Some(range);
        self
    }

    /// The declared sniff/TX range, if the deployer set one.
    #[must_use]
    pub fn attack_range(&self) -> Option<f64> {
        self.attack_range
    }

    /// The configured mode.
    #[must_use]
    pub fn mode(&self) -> BlockageMode {
        self.mode
    }

    /// Moves the attacker (mobile-attacker extension).
    pub fn set_position(&mut self, position: Position) {
        self.position = position;
    }

    /// GeoBroadcast packets heard so far (first copies).
    #[must_use]
    pub fn packets_sniffed(&self) -> u64 {
        self.packets_sniffed
    }

    /// Replays transmitted so far.
    #[must_use]
    pub fn packets_replayed(&self) -> u64 {
        self.packets_replayed
    }

    /// Feeds one sniffed frame; returns a replay order for GeoBroadcast
    /// packets.
    pub fn on_sniff(&mut self, frame: &Frame, now: SimTime) -> Option<ReplayOrder> {
        let key = PacketKey::of(&frame.msg)?; // beacons: None → ignore
        let first_sighting = self.seen.insert(key);
        self.packets_sniffed += u64::from(first_sighting);
        if self.replay_once && !first_sighting {
            return None;
        }
        self.packets_replayed += 1;
        self.tracer.emit(now, || TraceEvent::AttackAction {
            kind: AttackKind::BlockageReplay,
            packet: Some(PacketRef::new(key.source.to_u64(), key.sn.0)),
        });
        let (msg, range_cap) = match self.mode {
            BlockageMode::ClampRhl => (frame.msg.with_rhl(1), None),
            BlockageMode::PowerControlled { range } => (frame.msg.clone(), Some(range)),
        };
        Some(ReplayOrder {
            frame: Frame::broadcast(self.pseudonym, self.position, msg),
            delay: self.processing_delay,
            range_cap,
        })
    }
}

impl fmt::Display for IntraAreaAttacker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "intra-area attacker at {} mode {} ({} sniffed, {} replayed)",
            self.position, self.mode, self.packets_sniffed, self.packets_replayed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet::{CertificateAuthority, GnConfig, GnRouter, RouterAction};
    use geonet_geo::{Area, GeoReference, Heading};
    use geonet_sim::SimTime;

    fn router(ca: &CertificateAuthority, addr: u64) -> GnRouter {
        GnRouter::new(
            ca.enroll(GnAddress::vehicle(addr)),
            ca.verifier(),
            GnConfig::paper_default(1_283.0),
            GeoReference::default(),
        )
    }

    fn road_area() -> Area {
        Area::rectangle(Position::new(2_000.0, 0.0), 2_000.0, 20.0, 90.0)
    }

    fn originate_frame(ca: &CertificateAuthority, src: u64, x: f64) -> (PacketKey, Frame) {
        let mut v = router(ca, src);
        let (key, actions) = v.originate(
            &road_area(),
            vec![0xEE],
            SimTime::from_secs(1),
            Position::new(x, 2.5),
            30.0,
            Heading::EAST,
        );
        let RouterAction::Transmit(f) = &actions[0] else { panic!() };
        (key, f.clone())
    }

    #[test]
    fn clamp_mode_rewrites_rhl_to_one() {
        let ca = CertificateAuthority::new(1);
        let (_, frame) = originate_frame(&ca, 1, 1_000.0);
        assert_eq!(frame.msg.rhl(), 10);
        let mut atk = IntraAreaAttacker::new(Position::new(2_000.0, -10.0), BlockageMode::ClampRhl);
        let order = atk.on_sniff(&frame, SimTime::from_secs(1)).unwrap();
        assert_eq!(order.frame.msg.rhl(), 1);
        assert_eq!(order.range_cap, None);
        assert_eq!(order.delay, SimDuration::from_millis(1));
        // The clamped packet still authenticates — RHL is unprotected.
        assert!(ca.verifier().verify(&order.frame.msg));
    }

    #[test]
    fn power_controlled_mode_keeps_rhl_and_caps_range() {
        let ca = CertificateAuthority::new(1);
        let (_, frame) = originate_frame(&ca, 1, 1_000.0);
        let mut atk = IntraAreaAttacker::new(
            Position::new(2_000.0, -10.0),
            BlockageMode::PowerControlled { range: 120.0 },
        );
        let order = atk.on_sniff(&frame, SimTime::from_secs(1)).unwrap();
        assert_eq!(order.frame.msg.rhl(), 10);
        assert_eq!(order.range_cap, Some(120.0));
    }

    #[test]
    fn replays_each_packet_once_by_default() {
        let ca = CertificateAuthority::new(1);
        let (_, frame) = originate_frame(&ca, 1, 1_000.0);
        let mut atk = IntraAreaAttacker::new(Position::new(2_000.0, -10.0), BlockageMode::ClampRhl);
        assert!(atk.on_sniff(&frame, SimTime::from_secs(1)).is_some());
        assert!(atk.on_sniff(&frame, SimTime::from_secs(1)).is_none(), "same key ignored");
        assert_eq!(atk.packets_sniffed(), 1);
        assert_eq!(atk.packets_replayed(), 1);
        // A different packet is replayed again.
        let (_, frame2) = originate_frame(&ca, 2, 1_500.0);
        assert!(atk.on_sniff(&frame2, SimTime::from_secs(1)).is_some());
    }

    #[test]
    fn aggressive_attacker_replays_every_copy() {
        let ca = CertificateAuthority::new(1);
        let (_, frame) = originate_frame(&ca, 1, 1_000.0);
        let mut atk = IntraAreaAttacker::new(Position::ORIGIN, BlockageMode::ClampRhl)
            .with_replay_once(false);
        assert!(atk.on_sniff(&frame, SimTime::from_secs(1)).is_some());
        assert!(atk.on_sniff(&frame, SimTime::from_secs(1)).is_some());
        assert_eq!(atk.packets_replayed(), 2);
    }

    #[test]
    fn ignores_beacons() {
        let ca = CertificateAuthority::new(1);
        let v = router(&ca, 1);
        let beacon =
            v.make_beacon(SimTime::from_secs(1), Position::new(10.0, 0.0), 30.0, Heading::EAST);
        let mut atk = IntraAreaAttacker::new(Position::ORIGIN, BlockageMode::ClampRhl);
        assert!(atk.on_sniff(&beacon, SimTime::from_secs(1)).is_none());
        assert_eq!(atk.packets_sniffed(), 0);
    }

    #[test]
    fn replay_suppresses_buffered_candidate() {
        // The §III-C chain: V2 buffers V1's packet; the attacker's clamped
        // replay arrives within TO; V2 discards. A fresh receiver of the
        // replay delivers but never forwards (RHL exhausted).
        let ca = CertificateAuthority::new(1);
        let (key, frame) = originate_frame(&ca, 1, 1_000.0);
        let mut v2 = router(&ca, 2);
        let mut v3 = router(&ca, 3);
        let mut atk = IntraAreaAttacker::new(Position::new(1_400.0, -10.0), BlockageMode::ClampRhl);

        let t0 = SimTime::from_secs(1);
        // V2 (in area, in V1's range) buffers and contends.
        let a2 = v2.handle_frame(&frame, Position::new(1_400.0, 2.5), t0);
        let RouterAction::CbfTimer { generation, delay, .. } = a2[1] else { panic!() };
        // The attacker heard the same transmission and replays at +1 ms.
        let order = atk.on_sniff(&frame, t0).unwrap();
        assert!(order.delay < delay, "replay must beat the contention timer");
        let dup = v2.handle_frame(&order.frame, Position::new(1_400.0, 2.5), t0 + order.delay);
        assert!(dup.is_empty());
        assert_eq!(v2.stats().cbf_discards, 1);
        // V2's timer now yields nothing: the flood is dead here.
        let out = v2.handle_cbf_timer(key, generation, Position::new(1_400.0, 2.5), t0 + delay);
        assert!(out.is_empty());

        // V3 (beyond V1 but within attack range) receives the replay as
        // its first copy: delivered, but RHL 1 → never forwarded.
        let a3 = v3.handle_frame(&order.frame, Position::new(1_800.0, 2.5), t0 + order.delay);
        assert_eq!(a3.len(), 1);
        assert!(matches!(a3[0], RouterAction::Deliver { .. }));
        assert_eq!(v3.stats().rhl_exhausted, 1);
    }

    #[test]
    fn rhl_mitigation_defeats_clamped_replay() {
        let ca = CertificateAuthority::new(1);
        let (key, frame) = originate_frame(&ca, 1, 1_000.0);
        let mut v2 = GnRouter::new(
            ca.enroll(GnAddress::vehicle(2)),
            ca.verifier(),
            GnConfig::paper_default(1_283.0)
                .with_mitigations(geonet::MitigationConfig::rhl_check(3)),
            GeoReference::default(),
        );
        let mut atk = IntraAreaAttacker::new(Position::new(1_400.0, -10.0), BlockageMode::ClampRhl);
        let t0 = SimTime::from_secs(1);
        let a2 = v2.handle_frame(&frame, Position::new(1_400.0, 2.5), t0);
        let RouterAction::CbfTimer { generation, delay, .. } = a2[1] else { panic!() };
        let order = atk.on_sniff(&frame, t0).unwrap();
        v2.handle_frame(&order.frame, Position::new(1_400.0, 2.5), t0 + order.delay);
        assert_eq!(v2.stats().cbf_mitigation_rejects, 1);
        // Contention survives: V2 still re-broadcasts.
        let out = v2.handle_cbf_timer(key, generation, Position::new(1_400.0, 2.5), t0 + delay);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn replay_emits_attack_action_event() {
        use geonet_sim::{shared, VecSink};
        let ca = CertificateAuthority::new(1);
        let (key, frame) = originate_frame(&ca, 1, 1_000.0);
        let mut atk = IntraAreaAttacker::new(Position::new(1_400.0, -10.0), BlockageMode::ClampRhl);
        let sink = shared(VecSink::new());
        atk.set_tracer(Tracer::attached(sink.clone()).for_node(99));
        atk.on_sniff(&frame, SimTime::from_secs(1)).unwrap();
        let records = sink.borrow().records().to_vec();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].node, 99);
        match records[0].event {
            TraceEvent::AttackAction { kind: AttackKind::BlockageReplay, packet } => {
                assert_eq!(packet, Some(PacketRef::new(key.source.to_u64(), key.sn.0)));
            }
            ref other => panic!("{other:?}"),
        }
        // A suppressed duplicate (replay_once) emits nothing.
        assert!(atk.on_sniff(&frame, SimTime::from_secs(2)).is_none());
        assert_eq!(sink.borrow().records().len(), 1);
    }

    #[test]
    fn display_reports_mode() {
        let atk = IntraAreaAttacker::new(
            Position::ORIGIN,
            BlockageMode::PowerControlled { range: 120.0 },
        );
        let s = atk.to_string();
        assert!(s.contains("power-controlled"), "{s}");
        assert_eq!(BlockageMode::ClampRhl.to_string(), "clamp-RHL");
    }
}
