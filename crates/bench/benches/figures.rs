//! One bench target per paper table and figure.
//!
//! Each bench times a miniature A/B experiment (1 run × 30 s per side)
//! and prints the resulting γ/λ once, so `cargo bench` output doubles as
//! a quick-look reproduction report. Full-scale regeneration:
//! `cargo run --release -p geonet-scenarios --bin repro -- --runs 100 --duration 200 all`.

use criterion::{criterion_group, criterion_main, Criterion};
use geonet_bench::{bench_scale, report};
use geonet_radio::RangeProfile;
use geonet_scenarios::{impact, interarea, intraarea, mitigation, safety, ScenarioConfig};
use geonet_traffic::{IdmParams, RoadConfig, TrafficSim};
use std::hint::black_box;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_tables(c: &mut Criterion) {
    // Table I: the IDM at work — time a second of the pre-filled road.
    c.bench_function("table1_idm_traffic_step", |b| {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        b.iter(|| {
            for _ in 0..10 {
                sim.step(0.1);
            }
            black_box(sim.count_on_road())
        });
    });
    report("table1", "IDM params", Some(IdmParams::paper_default().desired_velocity / 100.0));

    // Table II: range-profile lookups (trivially fast; exists so every
    // table has a regeneration target).
    c.bench_function("table2_ranges", |b| {
        b.iter(|| {
            let d = RangeProfile::DSRC;
            let v = RangeProfile::CV2X;
            black_box(d.nlos_median() + v.nlos_median() + d.los_median() + v.nlos_worst())
        });
    });
}

fn bench_fig7(c: &mut Criterion) {
    let scale = bench_scale();
    let base = ScenarioConfig::paper_dsrc_default();
    let profile = base.profile();

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for (name, cfg) in [
        ("fig7a_wN_dsrc", base),
        ("fig7a_mN_dsrc", base.with_attack_range(profile.nlos_median())),
        ("fig7b_wN_cv2x", ScenarioConfig::paper_default(geonet_radio::AccessTechnology::CV2x)),
        ("fig7c_ttl5", base.with_loct_ttl(geonet_sim::SimDuration::from_secs(5))),
        ("fig7d_spacing100", base.with_spacing(100.0)),
        ("fig7e_twoway", base.with_two_way(true)),
    ] {
        let r = interarea::run_ab(&cfg, name, scale, 42);
        report(name, "gamma", r.gamma());
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(interarea::run_one(&cfg.with_duration(scale.duration()), true, seed))
            });
        });
    }
    group.finish();

    // Figure 8 is the accumulated series over the same runs.
    c.bench_function("fig8_accumulated_series", |b| {
        let r = interarea::run_ab(&base, "fig8", scale, 42);
        b.iter(|| black_box(r.accumulated_drop_series()));
    });
}

fn bench_fig9(c: &mut Criterion) {
    let scale = bench_scale();
    let base = ScenarioConfig::paper_dsrc_default();

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for (name, cfg) in [
        ("fig9a_500m_dsrc", base.with_attack_range(500.0)),
        ("fig9a_mN_dsrc", base.with_attack_range(486.0)),
        (
            "fig9b_mN_cv2x",
            ScenarioConfig::paper_default(geonet_radio::AccessTechnology::CV2x)
                .with_attack_range(593.0),
        ),
        (
            "fig9c_ttl5",
            base.with_attack_range(486.0).with_loct_ttl(geonet_sim::SimDuration::from_secs(5)),
        ),
        ("fig9d_spacing100", base.with_attack_range(486.0).with_spacing(100.0)),
        ("fig9e_twoway", base.with_attack_range(486.0).with_two_way(true)),
    ] {
        let r = intraarea::run_ab(&cfg, name, scale, 42);
        report(name, "lambda", r.gamma());
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(intraarea::run_one(&cfg.with_duration(scale.duration()), true, seed))
            });
        });
    }
    group.finish();

    // The §IV-A source-location split. (The 28 m fully-covered zone only
    // collects samples at larger scales; `repro fig9src` reports it.)
    let (inside, outside) = intraarea::fig9_source_split(bench_scale(), 42);
    report("fig9src", "inside", inside.gamma());
    report("fig9src", "outside", outside.gamma());
    let mut group = c.benchmark_group("fig9src");
    group.sample_size(10);
    group.bench_function("fig9_source_split", |b| {
        b.iter(|| black_box(intraarea::fig9_source_split(bench_scale(), 43)));
    });
    group.finish();

    c.bench_function("fig10_accumulated_series", |b| {
        let r = intraarea::run_ab(&base.with_attack_range(486.0), "fig10", bench_scale(), 42);
        b.iter(|| black_box(r.accumulated_drop_series()));
    });
}

fn bench_impact_and_safety(c: &mut Criterion) {
    let mut group = c.benchmark_group("impact");
    group.sample_size(10);
    group.bench_function("fig12a_gf_case", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(impact::run_case(impact::ImpactCase::GfNotification, true, 30, seed))
        });
    });
    group.bench_function("fig12b_cbf_case", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(impact::run_case(impact::ImpactCase::CbfNotification, true, 30, seed))
        });
    });
    group.finish();
    let (af, atk) = impact::fig12b(60, 42);
    report("fig12b", "af informed", af.informed_at_s.map(|_| 1.0));
    report("fig12b", "atk informed", atk.informed_at_s.map(|_| 1.0));

    c.bench_function("fig13_curve_case_study", |b| {
        b.iter(|| black_box(safety::fig13()));
    });
    let (saf, satk) = safety::fig13();
    report("fig13", "af collision", Some(f64::from(u8::from(saf.collision))));
    report("fig13", "atk collision", Some(f64::from(u8::from(satk.collision))));
}

fn bench_fig14(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    group.bench_function("fig14a_plausibility", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mitigation::fig14a(scale, seed))
        });
    });
    group.bench_function("fig14b_rhl_check", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mitigation::fig14b(scale, seed))
        });
    });
    group.finish();
    for r in mitigation::fig14a(scale, 42) {
        report("fig14a", &r.label, r.improvement());
    }
    for r in mitigation::fig14b(scale, 42) {
        report("fig14b", &r.label, r.improvement());
    }
}

criterion_group! {
    name = figures;
    config = {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_secs(8))
            .warm_up_time(std::time::Duration::from_secs(1));
        configure(&mut c);
        c
    };
    targets = bench_tables, bench_fig7, bench_fig9, bench_impact_and_safety, bench_fig14
}
criterion_main!(figures);
