//! Ablation benches for the design choices called out in DESIGN.md §5.
//!
//! Each ablation sweeps one knob and prints the resulting metric once, so
//! `cargo bench --bench ablations` regenerates the sensitivity analyses:
//!
//! * `ablation_event_queue` — the deterministic binary-heap queue vs a
//!   sorted-`Vec` baseline.
//! * `ablation_cbf_to` — blockage window sensitivity to `TO_MAX`.
//! * `ablation_attacker_latency` — attack success vs the attacker's
//!   processing delay, validating the paper's ≤ 1 ms feasibility claim.
//! * `ablation_plausibility_threshold` — mitigation strength vs the
//!   plausibility-check threshold.
//! * `ablation_offroad_margin` — the off-road coasting margin that keeps
//!   location-table ghosts honest (see DESIGN.md substitutions).

use criterion::{criterion_group, criterion_main, Criterion};
use geonet::{CbfParams, MitigationConfig};
use geonet_bench::{bench_scale, report};
use geonet_geo::Position;
use geonet_scenarios::config::AttackerSetup;
use geonet_scenarios::{interarea, intraarea, ScenarioConfig, World};
use geonet_sim::{EventQueue, SimDuration, SimTime};
use std::hint::black_box;

fn ablation_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_event_queue");
    let events: Vec<(u64, u32)> =
        (0..10_000u32).map(|i| ((u64::from(i).wrapping_mul(0x9E37_79B9) % 1_000_000), i)).collect();

    group.bench_function("binary_heap", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for &(t, e) in &events {
                q.push(SimTime::from_micros(t), e);
            }
            let mut out = 0u64;
            while let Some((_, e)) = q.pop() {
                out = out.wrapping_add(u64::from(e));
            }
            black_box(out)
        });
    });

    group.bench_function("sorted_vec_baseline", |b| {
        b.iter(|| {
            // The naive alternative: keep a Vec, sort once, drain. Valid
            // only for pre-known schedules — shown here as the lower
            // bound the heap competes against.
            let mut v: Vec<(u64, u32)> = events.clone();
            v.sort_unstable();
            let mut out = 0u64;
            for (_, e) in v {
                out = out.wrapping_add(u64::from(e));
            }
            black_box(out)
        });
    });
    group.finish();
}

fn ablation_cbf_to(c: &mut Criterion) {
    // How does the blockage rate react to the CBF TO_MAX? Larger windows
    // give the attacker more slack, but the attack already wins at the
    // standard's 100 ms — the ablation shows the insensitivity.
    let mut group = c.benchmark_group("ablation_cbf_to");
    group.sample_size(10);
    for to_max_ms in [20u64, 100, 400] {
        let mut cfg = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
        cfg.gn.to_max = SimDuration::from_millis(to_max_ms);
        let r = intraarea::run_ab(&cfg, "tomax", bench_scale(), 42);
        report("ablation_cbf_to", &format!("TO_MAX={to_max_ms}ms lambda"), r.gamma());
        group.bench_function(format!("to_max_{to_max_ms}ms"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(intraarea::run_one(
                    &cfg.with_duration(bench_scale().duration()),
                    true,
                    seed,
                ))
            });
        });
    }
    group.finish();

    // The timer formula itself, across the distance range.
    c.bench_function("cbf_timeout_formula", |b| {
        let p = CbfParams::default_for_dist_max(1_283.0);
        b.iter(|| {
            let mut acc = SimDuration::ZERO;
            for d in 0..1_300 {
                acc += p.contention_timeout(f64::from(d));
            }
            black_box(acc)
        });
    });
}

fn ablation_attacker_latency(c: &mut Criterion) {
    // The paper argues a 1 ms capture-to-replay delay suffices. Sweep the
    // delay: the attack holds well past 1 ms and collapses once the delay
    // exceeds typical contention timers.
    let mut group = c.benchmark_group("ablation_attacker_latency");
    group.sample_size(10);
    for delay_ms in [1u64, 10, 50, 200] {
        let cfg = ScenarioConfig::paper_dsrc_default().with_attack_range(500.0);
        // Thread the delay through a bespoke world: run the miniature
        // experiment manually with a tweaked attacker.
        let lambda = blockage_with_attacker_delay(&cfg, SimDuration::from_millis(delay_ms));
        report("ablation_attacker_latency", &format!("delay={delay_ms}ms lambda"), Some(lambda));
        group.bench_function(format!("delay_{delay_ms}ms"), |b| {
            b.iter(|| {
                black_box(blockage_with_attacker_delay(&cfg, SimDuration::from_millis(delay_ms)))
            });
        });
    }
    group.finish();
}

/// One miniature blockage measurement with a custom attacker processing
/// delay (single packet, single run).
fn blockage_with_attacker_delay(cfg: &ScenarioConfig, delay: SimDuration) -> f64 {
    use geonet_attack::BlockageMode;
    let cfg = cfg.with_duration(SimDuration::from_secs(20));
    let run = |attacked: bool| {
        let setup = attacked.then_some(AttackerSetup::IntraArea(BlockageMode::ClampRhl));
        let mut w = World::new(cfg, setup, 42);
        w.set_intra_attacker_delay(delay);
        w.run_until(SimTime::from_secs(4));
        let src = w.random_on_road_vehicle().expect("road populated");
        let snapshot = w.on_road_nodes();
        let key = w.originate_from(w.vehicle_node(src), &intraarea::road_area(&cfg), vec![1]);
        w.run_until(SimTime::from_secs(10));
        snapshot.iter().filter(|n| w.was_received(key, **n)).count() as f64 / snapshot.len() as f64
    };
    (run(false) - run(true)).max(0.0)
}

fn ablation_plausibility_threshold(c: &mut Criterion) {
    // Sweep the plausibility-check threshold around the paper's 486 m:
    // too small starves GF of candidates, too large readmits the poison.
    let mut group = c.benchmark_group("ablation_plausibility_threshold");
    group.sample_size(10);
    for threshold in [243.0, 486.0, 972.0] {
        let cfg = ScenarioConfig::paper_dsrc_default()
            .with_attack_range(486.0)
            .with_mitigations(MitigationConfig::plausibility(threshold));
        let r = interarea::run_ab(&cfg, "thr", bench_scale(), 42);
        report(
            "ablation_plausibility",
            &format!("threshold={threshold:.0}m attacked-reception"),
            r.attacked_rate(),
        );
        group.bench_function(format!("threshold_{threshold:.0}m"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(interarea::run_one(
                    &cfg.with_duration(bench_scale().duration()),
                    true,
                    seed,
                ))
            });
        });
    }
    group.finish();
}

fn ablation_offroad_margin(c: &mut Criterion) {
    // The off-road coasting margin: with 0 m, vehicles vanish at the
    // segment end and their location-table ghosts sabotage the eastbound
    // baseline; 600 m (20 s at 30 m/s, one LocT TTL) makes ghosts honest.
    let mut group = c.benchmark_group("ablation_offroad_margin");
    group.sample_size(10);
    for margin in [1.0, 150.0, 600.0] {
        let mut cfg = ScenarioConfig::paper_dsrc_default();
        cfg.road.offroad_margin = margin;
        let r = interarea::run_ab(&cfg, "margin", bench_scale(), 42);
        report(
            "ablation_offroad_margin",
            &format!("margin={margin:.0}m af-reception"),
            r.baseline_rate(),
        );
        group.bench_function(format!("margin_{margin:.0}m"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(interarea::run_one(
                    &cfg.with_duration(bench_scale().duration()),
                    false,
                    seed,
                ))
            });
        });
    }
    group.finish();
}

fn ablation_no_progress_policy(c: &mut Criterion) {
    // What a greedy forwarder does when stuck matters most on sparse
    // roads (300 m spacing): broadcast recovers fastest, buffering waits
    // for topology to change, dropping gives the floor.
    use geonet::config::NoProgressPolicy;
    let mut group = c.benchmark_group("ablation_no_progress");
    group.sample_size(10);
    let policies = [
        ("broadcast", NoProgressPolicy::Broadcast),
        (
            "buffer_retry",
            NoProgressPolicy::BufferRetry { delay: SimDuration::from_millis(500), max_attempts: 6 },
        ),
        ("drop", NoProgressPolicy::Drop),
    ];
    for (label, policy) in policies {
        let mut cfg = ScenarioConfig::paper_dsrc_default().with_spacing(300.0);
        cfg.gn = cfg.gn.with_no_progress(policy);
        let r = interarea::run_ab(&cfg, label, bench_scale(), 42);
        report("ablation_no_progress", &format!("{label} af-reception"), r.baseline_rate());
        group.bench_function(label, |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(interarea::run_one(
                    &cfg.with_duration(bench_scale().duration()),
                    false,
                    seed,
                ))
            });
        });
    }
    group.finish();
}

fn ablation_sight_distance(c: &mut Criterion) {
    // The safety case study's last line of defence: at what sight
    // distance does emergency braking alone prevent the collision even
    // with the warning blocked?
    use geonet_scenarios::safety;
    for (d, collision) in safety::sight_distance_sweep(&[5.0, 20.0, 60.0, 120.0]) {
        report(
            "ablation_sight_distance",
            &format!("sight={d:.0}m attacked-collision"),
            Some(f64::from(u8::from(collision))),
        );
    }
    c.bench_function("sight_distance_sweep", |b| {
        b.iter(|| black_box(safety::sight_distance_sweep(&[5.0, 20.0, 60.0, 120.0])));
    });
}

fn spot_anchor(_c: &mut Criterion) {
    // Anchor so Position is linked; keeps the import honest if ablations
    // are trimmed in the future.
    let _ = Position::ORIGIN;
}

criterion_group! {
    name = ablations;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(6))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = ablation_event_queue, ablation_cbf_to, ablation_attacker_latency,
              ablation_plausibility_threshold, ablation_offroad_margin,
              ablation_no_progress_policy, ablation_sight_distance, spot_anchor
}
criterion_main!(ablations);
