//! Microbenchmarks of the hot paths: wire codecs, the security envelope,
//! location-table operations, greedy selection, CBF bookkeeping, the
//! radio medium and raw event-loop throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use geonet::wire::GnPacket;
use geonet::{
    greedy_select, CbfBuffer, CbfParams, CertificateAuthority, Frame, GnAddress, GnConfig,
    GnRouter, LocationTable, LongPositionVector, SequenceNumber,
};
use geonet_geo::{Area, GeoReference, Heading, Position};
use geonet_radio::Medium;
use geonet_scenarios::{ScenarioConfig, World};
use geonet_sim::{
    shared, shared_registry, NullSink, SimDuration, SimTime, StateHasher, Telemetry, Tracer,
};
use geonet_traffic::{RoadConfig, TrafficSim};
use std::hint::black_box;

fn pv(addr: u64, x: f64) -> LongPositionVector {
    LongPositionVector::from_sim(
        GnAddress::vehicle(addr),
        SimTime::from_secs(1),
        Position::new(x, 2.5),
        30.0,
        Heading::EAST,
        &GeoReference::default(),
    )
}

fn bench_wire(c: &mut Criterion) {
    let r = GeoReference::default();
    let area = Area::circle(Position::new(4_020.0, 0.0), 40.0);
    let packet =
        GnPacket::geobroadcast(SequenceNumber(1), pv(1, 100.0), &area, &r, vec![0; 32], 10);
    let bytes = packet.encode();

    c.bench_function("wire_encode_gbc", |b| b.iter(|| black_box(packet.encode())));
    c.bench_function("wire_decode_gbc", |b| {
        b.iter(|| black_box(GnPacket::decode(&bytes).expect("valid")))
    });
    let beacon = GnPacket::beacon(pv(1, 100.0));
    c.bench_function("wire_encode_beacon", |b| b.iter(|| black_box(beacon.encode())));
}

fn bench_security(c: &mut Criterion) {
    let ca = CertificateAuthority::new(1);
    let creds = ca.enroll(GnAddress::vehicle(1));
    let verifier = ca.verifier();
    let beacon = GnPacket::beacon(pv(1, 100.0));
    let signed = creds.sign(beacon.clone());

    c.bench_function("security_sign_beacon", |b| b.iter(|| black_box(creds.sign(beacon.clone()))));
    c.bench_function("security_verify_beacon", |b| b.iter(|| black_box(verifier.verify(&signed))));
}

fn bench_loct_and_gf(c: &mut Criterion) {
    let now = SimTime::from_secs(5);
    let mut loct = LocationTable::new(SimDuration::from_secs(20));
    for i in 0..64u64 {
        let p = pv(i, i as f64 * 30.0);
        loct.update(p, Position::new(i as f64 * 30.0, 2.5), now);
    }
    c.bench_function("loct_update", |b| {
        let p = pv(99, 1_000.0);
        b.iter(|| loct.update(black_box(p), Position::new(1_000.0, 2.5), now));
    });
    c.bench_function("gf_select_64_neighbors", |b| {
        b.iter(|| {
            black_box(greedy_select(
                &loct,
                GnAddress::vehicle(999),
                Position::new(960.0, 2.5),
                Position::new(4_020.0, 0.0),
                None,
                Some(486.0),
                now,
            ))
        });
    });
}

fn bench_cbf(c: &mut Criterion) {
    let params = CbfParams::default_for_dist_max(1_283.0);
    let ca = CertificateAuthority::new(1);
    let creds = ca.enroll(GnAddress::vehicle(1));
    let r = GeoReference::default();
    let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_050.0, 25.0, 90.0);

    c.bench_function("cbf_first_copy_and_expire", |b| {
        let mut sn = 0u16;
        let mut buf = CbfBuffer::new();
        b.iter(|| {
            sn = sn.wrapping_add(1);
            let packet = creds.sign(GnPacket::geobroadcast(
                SequenceNumber(sn),
                pv(1, 1_000.0),
                &area,
                &r,
                vec![1],
                10,
            ));
            let v = buf.on_packet(
                &packet,
                Position::new(1_000.0, 2.5),
                Position::new(1_400.0, 2.5),
                &params,
                SimTime::from_secs(1),
            );
            if let geonet::CbfVerdict::FirstCopy { contend: Some((_, generation)) } = v {
                let key = geonet::PacketKey::of(&packet).expect("gbc");
                black_box(buf.take_expired(key, generation));
            }
        });
    });
}

fn bench_medium_and_traffic(c: &mut Criterion) {
    let mut medium = Medium::new();
    for i in 0..200 {
        medium.register(Position::new(f64::from(i) * 20.0, 2.5), 486.0);
    }
    c.bench_function("medium_receivers_200_nodes", |b| {
        b.iter(|| black_box(medium.receivers(geonet_radio::NodeId(100))));
    });

    c.bench_function("traffic_step_133_vehicles", |b| {
        let mut sim = TrafficSim::new(RoadConfig::paper_default());
        b.iter(|| {
            sim.step(0.1);
            black_box(sim.count_on_road())
        });
    });
}

fn bench_handle_frame(c: &mut Criterion) {
    // The acceptance criterion for the tracing layer: a router with the
    // default (disabled) tracer must not regress `handle_frame`, and an
    // attached `NullSink` must stay within noise of it — the closures
    // passed to `Tracer::emit` are never built when no sink is attached.
    let ca = CertificateAuthority::new(1);
    let verifier = ca.verifier();
    let cfg = GnConfig::paper_default(1_283.0);
    let beacon = ca.enroll(GnAddress::vehicle(2)).sign(GnPacket::beacon(pv(2, 520.0)));
    let frame = Frame::broadcast(GnAddress::vehicle(2), Position::new(520.0, 2.5), beacon);
    let own = Position::new(500.0, 2.5);

    c.bench_function("handle_frame_beacon_tracer_disabled", |b| {
        let mut router = GnRouter::new(
            ca.enroll(GnAddress::vehicle(1)),
            verifier.clone(),
            cfg,
            GeoReference::default(),
        );
        b.iter(|| black_box(router.handle_frame(black_box(&frame), own, SimTime::from_secs(1))));
    });
    c.bench_function("handle_frame_beacon_tracer_null_sink", |b| {
        let mut router = GnRouter::new(
            ca.enroll(GnAddress::vehicle(1)),
            verifier.clone(),
            cfg,
            GeoReference::default(),
        );
        router.set_tracer(Tracer::attached(shared(NullSink)));
        b.iter(|| black_box(router.handle_frame(black_box(&frame), own, SimTime::from_secs(1))));
    });
    // Same acceptance criterion for the telemetry layer: disabled
    // telemetry (the default above) reads no clock; an attached registry
    // pays two `Instant::now()` calls plus one histogram record.
    c.bench_function("handle_frame_beacon_telemetry_attached", |b| {
        let mut router = GnRouter::new(
            ca.enroll(GnAddress::vehicle(1)),
            verifier.clone(),
            cfg,
            GeoReference::default(),
        );
        router.set_telemetry(Telemetry::attached(shared_registry()));
        b.iter(|| black_box(router.handle_frame(black_box(&frame), own, SimTime::from_secs(1))));
    });
    // Same acceptance criterion for the audit layer: the auditor samples
    // at the world level (one `due()` branch per traffic step), so a
    // detached auditor must leave `handle_frame` itself untouched.
    c.bench_function("handle_frame_beacon_auditor_detached", |b| {
        let mut router = GnRouter::new(
            ca.enroll(GnAddress::vehicle(1)),
            verifier.clone(),
            cfg,
            GeoReference::default(),
        );
        b.iter(|| black_box(router.handle_frame(black_box(&frame), own, SimTime::from_secs(1))));
    });
}

fn bench_audit(c: &mut Criterion) {
    // What one audit checkpoint pays: hashing a loaded router, and
    // digesting the whole default world (all components).
    let ca = CertificateAuthority::new(1);
    let mut router = GnRouter::new(
        ca.enroll(GnAddress::vehicle(1)),
        ca.verifier(),
        GnConfig::paper_default(1_283.0),
        GeoReference::default(),
    );
    for i in 2..66u64 {
        let beacon =
            ca.enroll(GnAddress::vehicle(i)).sign(GnPacket::beacon(pv(i, i as f64 * 30.0)));
        let frame =
            Frame::broadcast(GnAddress::vehicle(i), Position::new(i as f64 * 30.0, 2.5), beacon);
        router.handle_frame(&frame, Position::new(500.0, 2.5), SimTime::from_secs(1));
    }
    c.bench_function("audit_router_digest_64_neighbors", |b| {
        b.iter(|| {
            let mut h = StateHasher::new();
            router.digest_into(&mut h);
            black_box(h.finish())
        });
    });

    let mut group = c.benchmark_group("audit_world");
    group.sample_size(10);
    group.bench_function("audit_world_checkpoint", |b| {
        let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(3_600));
        let mut w = World::new(cfg, None, 42);
        w.run_until(SimTime::from_secs(5));
        b.iter(|| black_box(w.audit_checkpoint()));
    });
    group.finish();
}

fn bench_topo(c: &mut Criterion) {
    // What one attached connectivity snapshot pays: enumerating the
    // whole default world's adjacency from the medium and running the
    // per-snapshot analytics (components, Tarjan articulation/bridges,
    // gradient grading toward the destination, attacker coverage) —
    // plus what rendering one snapshot to DOT costs on top.
    let mut group = c.benchmark_group("topo");
    group.sample_size(10);
    let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(3_600));
    let mut w = World::new(cfg, None, 42);
    w.run_until(SimTime::from_secs(5));
    w.set_topo_destination(Position::new(cfg.road.length + 20.0, 0.0));
    group.bench_function("topo_world_snapshot", |b| {
        b.iter(|| black_box(w.topo_snapshot()));
    });
    let snapshot = w.topo_snapshot();
    group.bench_function("topo_snapshot_to_dot", |b| {
        b.iter(|| black_box(snapshot.to_dot()));
    });
    group.finish();
}

fn bench_world_throughput(c: &mut Criterion) {
    // End-to-end event throughput: one simulated second of the full
    // default world (traffic + beacons + deliveries).
    let mut group = c.benchmark_group("world");
    group.sample_size(10);
    group.bench_function("world_one_simulated_second", |b| {
        let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(3_600));
        let mut w = World::new(cfg, None, 42);
        let mut t = 0;
        b.iter(|| {
            t += 1;
            w.run_until(SimTime::from_secs(t));
            black_box(w.traffic().count_on_road())
        });
    });
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_wire, bench_security, bench_loct_and_gf, bench_cbf,
              bench_handle_frame, bench_audit, bench_topo,
              bench_medium_and_traffic, bench_world_throughput
}
criterion_main!(micro);
