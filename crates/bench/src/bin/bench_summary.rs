//! `bench_summary` — dependency-free micro-runner behind the audit PR's
//! acceptance criterion.
//!
//! Criterion lives in `dev-dependencies`, so binaries cannot use it;
//! this runner times the `handle_frame` hot path with plain
//! `std::time::Instant` batches and writes best-case timings to a small JSON
//! report (default `BENCH_audit.json`, or the path given as the first
//! argument).
//!
//! ```text
//! bench_summary [AUDIT_OUT.json] [TOPO_OUT.json] [RADIO_OUT.json] [PARALLEL_OUT.json] [--check]
//! ```
//!
//! Measured variants: tracer/telemetry/auditor all off (the baseline),
//! tracer attached to a `NullSink`, telemetry attached to a registry,
//! and auditor detached (the audit layer samples at the world level, so
//! this must be indistinguishable from the baseline — the recorded
//! `auditor_detached_regression_pct` is the acceptance number). The
//! report also prices one audit checkpoint: a loaded router digest and a
//! whole-world digest sample.
//!
//! A second report (default `BENCH_topo.json`) does the same for the
//! topology observer, at the level it hooks: the world's traffic step.
//! Two same-seed default worlds — both with the observer in its default
//! detached state — advance in interleaved lockstep, and the recorded
//! `topo_detached_regression_pct` is that pair's divergence: the
//! detached observer's `due()` branch plus measurement noise. The report
//! also prices an attached observer's step (5 s snapshot interval) and
//! one whole-world snapshot.
//!
//! A third report (default `BENCH_radio.json`) gates the spatial-indexed
//! medium: the delivery path `World::transmit` actually ships
//! (grid-backed `receivers_into` on a reused buffer) against the
//! pre-index delivery path (the allocating linear scan,
//! `receivers_within_linear`), interleaved, on the paper's two-lane
//! road at 30/100/300 m inter-vehicle spacing. The new path must win
//! at 30 m (the dense case the index exists for) and must not regress
//! the 300 m sparse case by 2% or more; the allocating grid wrapper is
//! reported alongside as the alloc-matched index-only comparison.
//!
//! A fourth report (default `BENCH_parallel.json`) gates the campaign
//! job pool: an interarea `run_ab` campaign timed under `jobs = 1` vs
//! `jobs = 4` plus the pre-pool hand-written loop. The pooled
//! sequential path must stay within 2% of the raw loop, the `jobs = 4`
//! report must be byte-identical to `jobs = 1` (hard gate), and on
//! hosts that actually have ≥ 4 cores the campaign must run ≥ 2× faster
//! — on smaller hosts the speedup number is recorded but the gate is
//! skipped (`speedup_gate_enforced: false`).
//!
//! `--check` exits nonzero if the detached auditor or the detached
//! topology observer regresses its baseline by 2% or more, or if any of
//! the radio/parallel gates above fails.

use geonet::wire::GnPacket;
use geonet::{CertificateAuthority, Frame, GnAddress, GnConfig, GnRouter};
use geonet_geo::{GeoReference, Heading, Position};
use geonet_radio::{Medium, NodeId};
use geonet_scenarios::config::Scale;
use geonet_scenarios::{interarea, parallel, ScenarioConfig, World};
use geonet_sim::{
    shared, shared_registry, shared_topo, NullSink, SimDuration, SimTime, StateHasher, Telemetry,
    TimeBins, Tracer,
};
use std::hint::black_box;
use std::time::Instant;

/// Per-sample iteration count: large enough that one `Instant` read
/// amortises to well under a nanosecond per op.
const BATCH: u32 = 20_000;
/// Number of timed batches per variant; the per-batch *minimum* defeats
/// scheduler noise and one-off cache misses. (Preemption and frequency
/// throttling only ever add time, so on a shared runner the fastest
/// batch is the tightest estimate of the code's true cost — medians
/// flaked the 2% gates by ±3.5% on loaded single-core hosts.)
const SAMPLES: usize = 31;

fn fastest(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

/// Collapses paired interleaved samples into two comparable numbers:
/// `a`'s best batch sets the absolute scale, and `b` is placed relative
/// to it by the *median of per-sample ratios* `b[i] / a[i]`. Each ratio
/// comes from two batches only milliseconds apart, so sustained
/// slowdowns (frequency scaling, steal time) hit both sides of a ratio
/// multiplicatively and cancel — unlike `min(a)` vs `min(b)`, which may
/// pick its two minima from differently-throttled time windows and
/// manufacture a delta between identical code paths.
fn pair_summary(pa: Vec<f64>, pb: Vec<f64>) -> (f64, f64) {
    let mut ratios: Vec<f64> = pa.iter().zip(&pb).map(|(a, b)| b / a).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let ratio = ratios[ratios.len() / 2];
    let best_a = fastest(pa);
    (best_a, best_a * ratio)
}

/// Best-case ns/op of `f` over [`SAMPLES`] batches of [`BATCH`] calls.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..BATCH {
        f(); // warm-up: fill caches, settle branch predictors
    }
    let mut per_op = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        per_op.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
    }
    fastest(per_op)
}

/// Best-case ns/op of two closures with their batches interleaved, so CPU
/// frequency drift and cache warm-up hit both sides equally — the only
/// honest way to resolve a sub-2% difference between near-identical
/// code paths.
fn time_pair_ns(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    for _ in 0..BATCH {
        a();
        b();
    }
    let (mut pa, mut pb) = (Vec::with_capacity(SAMPLES), Vec::with_capacity(SAMPLES));
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            a();
        }
        pa.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
        let t0 = Instant::now();
        for _ in 0..BATCH {
            b();
        }
        pb.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
    }
    pair_summary(pa, pb)
}

fn beacon_pv(ca: &CertificateAuthority, addr: u64, x: f64) -> Frame {
    let pv = geonet::LongPositionVector::from_sim(
        GnAddress::vehicle(addr),
        SimTime::from_secs(1),
        Position::new(x, 2.5),
        30.0,
        Heading::EAST,
        &GeoReference::default(),
    );
    let beacon = ca.enroll(GnAddress::vehicle(addr)).sign(GnPacket::beacon(pv));
    Frame::broadcast(GnAddress::vehicle(addr), Position::new(x, 2.5), beacon)
}

fn fresh_router(ca: &CertificateAuthority) -> GnRouter {
    GnRouter::new(
        ca.enroll(GnAddress::vehicle(1)),
        ca.verifier(),
        GnConfig::paper_default(1_283.0),
        GeoReference::default(),
    )
}

/// Simulated seconds each world advances per timed sample; even, so the
/// first-mover alternation inside a sample splits exactly 50/50, and
/// small enough that [`SAMPLES`] interleaved samples stay far inside the
/// horizon.
const WORLD_SECONDS_PER_SAMPLE: u64 = 4;

/// Best-case ns per simulated second of two same-seed worlds advancing in
/// interleaved lockstep — the world-level analogue of [`time_pair_ns`],
/// so traffic growth and frequency drift hit both sides equally.
fn time_world_pair_ns(a: &mut World, b: &mut World, from_s: u64) -> (f64, f64) {
    let (mut pa, mut pb) = (Vec::with_capacity(SAMPLES), Vec::with_capacity(SAMPLES));
    let mut t = from_s;
    for _ in 0..SAMPLES {
        let (mut ea, mut eb) = (0u128, 0u128);
        for s in 1..=WORLD_SECONDS_PER_SAMPLE {
            // Alternate one-second slices, swapping who goes first each
            // second: cache state and frequency drift cancel out.
            let end = SimTime::from_secs(t + s);
            let (first, second, ef, es) = if s % 2 == 0 {
                (&mut *a, &mut *b, &mut ea, &mut eb)
            } else {
                (&mut *b, &mut *a, &mut eb, &mut ea)
            };
            let t0 = Instant::now();
            first.run_until(end);
            *ef += t0.elapsed().as_nanos();
            let t0 = Instant::now();
            second.run_until(end);
            *es += t0.elapsed().as_nanos();
        }
        pa.push(ea as f64 / WORLD_SECONDS_PER_SAMPLE as f64);
        pb.push(eb as f64 / WORLD_SECONDS_PER_SAMPLE as f64);
        t += WORLD_SECONDS_PER_SAMPLE;
    }
    pair_summary(pa, pb)
}

/// Whole-call seconds of two campaign closures, interleaved — one
/// sample is one full campaign, so far fewer samples than the
/// nanosecond batches above, summarised through the same
/// [`pair_summary`] ratio logic (a 300 ms campaign pair is still short
/// against the seconds-long load swings of a shared runner).
const CAMPAIGN_SAMPLES: usize = 15;

fn time_campaign_pair_s(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a(); // warm-up both sides once
    b();
    let (mut pa, mut pb) =
        (Vec::with_capacity(CAMPAIGN_SAMPLES), Vec::with_capacity(CAMPAIGN_SAMPLES));
    for _ in 0..CAMPAIGN_SAMPLES {
        let t0 = Instant::now();
        a();
        pa.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        b();
        pb.push(t0.elapsed().as_secs_f64());
    }
    pair_summary(pa, pb)
}

fn main() -> std::process::ExitCode {
    let mut check = false;
    let mut outs = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => outs.push(other.to_string()),
        }
    }
    let out = outs.first().cloned().unwrap_or_else(|| "BENCH_audit.json".to_string());
    let topo_out = outs.get(1).cloned().unwrap_or_else(|| "BENCH_topo.json".to_string());
    let radio_out = outs.get(2).cloned().unwrap_or_else(|| "BENCH_radio.json".to_string());
    let parallel_out = outs.get(3).cloned().unwrap_or_else(|| "BENCH_parallel.json".to_string());

    let ca = CertificateAuthority::new(1);
    let frame = beacon_pv(&ca, 2, 520.0);
    let own = Position::new(500.0, 2.5);
    let at = SimTime::from_secs(1);

    eprintln!("# timing handle_frame variants ({SAMPLES} x {BATCH} iters each)...");
    // The audit layer hooks the world's traffic step, not the router; a
    // detached auditor must therefore be the baseline in disguise. The
    // two sides are timed interleaved so the comparison resolves below
    // the 2% acceptance threshold.
    let mut r_base = fresh_router(&ca);
    let mut r_aud = fresh_router(&ca);
    let (baseline, auditor_detached) = time_pair_ns(
        || {
            black_box(r_base.handle_frame(black_box(&frame), own, at));
        },
        || {
            black_box(r_aud.handle_frame(black_box(&frame), own, at));
        },
    );
    let mut r = fresh_router(&ca);
    r.set_tracer(Tracer::attached(shared(NullSink)));
    let tracer_null = time_ns(|| {
        black_box(r.handle_frame(black_box(&frame), own, at));
    });
    let mut r = fresh_router(&ca);
    r.set_telemetry(Telemetry::attached(shared_registry()));
    let telemetry = time_ns(|| {
        black_box(r.handle_frame(black_box(&frame), own, at));
    });

    eprintln!("# timing audit digest costs...");
    let mut loaded = fresh_router(&ca);
    for i in 2..66u64 {
        let f = beacon_pv(&ca, i, i as f64 * 30.0);
        loaded.handle_frame(&f, own, at);
    }
    let router_digest = time_ns(|| {
        let mut h = StateHasher::new();
        loaded.digest_into(&mut h);
        black_box(h.finish());
    });
    let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(3_600));
    let mut w = World::new(cfg, None, 42);
    w.run_until(SimTime::from_secs(5));
    let mut world_samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..100 {
            black_box(w.audit_checkpoint());
        }
        world_samples.push(t0.elapsed().as_nanos() as f64 / 100.0);
    }
    let world_checkpoint = fastest(world_samples);

    let regression_pct = (auditor_detached - baseline) / baseline * 100.0;
    let json = format!(
        "{{\n  \"bench\": \"handle_frame_beacon\",\n  \"samples\": {SAMPLES},\n  \
         \"batch_iters\": {BATCH},\n  \"baseline_ns\": {baseline:.2},\n  \
         \"tracer_null_sink_ns\": {tracer_null:.2},\n  \"telemetry_attached_ns\": {telemetry:.2},\n  \
         \"auditor_detached_ns\": {auditor_detached:.2},\n  \
         \"auditor_detached_regression_pct\": {regression_pct:.2},\n  \
         \"audit_router_digest_64_neighbors_ns\": {router_digest:.2},\n  \
         \"audit_world_checkpoint_ns\": {world_checkpoint:.2}\n}}\n"
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: writing {out}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    print!("{json}");
    eprintln!("# wrote {out}");

    eprintln!("# timing world step with the topology observer detached vs attached...");
    // The topology observer hooks the traffic step exactly like the
    // auditor; its detached state is the world default, so both sides of
    // the pair run it — the measured divergence is the `due()` branch
    // plus noise, and must stay under the same 2% bar.
    let warm = SimTime::from_secs(5);
    let mut w_base = World::new(cfg, None, 42);
    let mut w_det = World::new(cfg, None, 42);
    w_base.run_until(warm);
    w_det.run_until(warm);
    let (step_baseline, step_detached) = time_world_pair_ns(&mut w_base, &mut w_det, 5);
    let mut w_att = World::new(cfg, None, 42);
    w_att.set_topo_observer(shared_topo(SimDuration::from_secs(5)));
    w_att.set_topo_destination(Position::new(4_020.0, 0.0));
    w_att.run_until(warm);
    let mut att_samples = Vec::with_capacity(SAMPLES);
    let mut t = 5u64;
    for _ in 0..SAMPLES {
        let end = t + WORLD_SECONDS_PER_SAMPLE;
        let t0 = Instant::now();
        w_att.run_until(SimTime::from_secs(end));
        att_samples.push(t0.elapsed().as_nanos() as f64 / WORLD_SECONDS_PER_SAMPLE as f64);
        t = end;
    }
    let step_attached = fastest(att_samples);
    let mut snap_samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..100 {
            black_box(w_att.topo_snapshot());
        }
        snap_samples.push(t0.elapsed().as_nanos() as f64 / 100.0);
    }
    let world_snapshot = fastest(snap_samples);

    let topo_regression_pct = (step_detached - step_baseline) / step_baseline * 100.0;
    let topo_json = format!(
        "{{\n  \"bench\": \"world_step_topo\",\n  \"samples\": {SAMPLES},\n  \
         \"seconds_per_sample\": {WORLD_SECONDS_PER_SAMPLE},\n  \
         \"baseline_step_ns\": {step_baseline:.2},\n  \
         \"topo_detached_step_ns\": {step_detached:.2},\n  \
         \"topo_detached_regression_pct\": {topo_regression_pct:.2},\n  \
         \"topo_attached_5s_step_ns\": {step_attached:.2},\n  \
         \"topo_world_snapshot_ns\": {world_snapshot:.2}\n}}\n"
    );
    if let Err(e) = std::fs::write(&topo_out, &topo_json) {
        eprintln!("error: writing {topo_out}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    print!("{topo_json}");
    eprintln!("# wrote {topo_out}");

    eprintln!("# timing receiver queries: grid vs linear scan at 30/100/300 m spacing...");
    // The paper's road: 4 km, two lanes, one vehicle per `spacing`
    // metres, everyone at the DSRC NLoS-median 486 m range — in the state
    // a 200 s campaign run actually reaches: ids are dense and permanent,
    // so every vehicle that entered and left the road since t=0 is still
    // in the entry table, inactive. The linear scan visits those corpses
    // on every broadcast; the grid holds active nodes only. The query is
    // the one `World::transmit` issues per broadcast, from a mid-road
    // sender. The gated pair is shipped-path vs shipped-path: before this
    // index the delivery loop called the allocating linear scan every
    // broadcast, after it calls `receivers_into` on a reused buffer — so
    // those two are interleaved and drive both gates. `grid_ns` (the
    // allocating wrapper) is reported alongside as the alloc-matched,
    // index-only comparison; it is not gated because at sparse spacings
    // the ~10 ns wrapper overhead sits inside measurement noise.
    let mut spacing_rows = String::new();
    let mut grid_beats_linear_30m = false;
    let mut grid_regression_300m_pct = 0.0;
    for &spacing in &[30.0f64, 100.0, 300.0] {
        let mut m = Medium::new();
        let per_lane = (4_000.0 / spacing) as u32 + 1;
        for lane in 0..2u32 {
            for i in 0..per_lane {
                let _ = m.register(
                    Position::new(f64::from(i) * spacing, 2.5 + f64::from(lane) * 3.5),
                    486.0,
                );
            }
        }
        // Flow at ~30 m/s means one departure per lane every
        // `spacing / 30` seconds; after 200 s that is the retired-entry
        // backlog below (e.g. 400 at 30 m spacing).
        let retired = (200.0 * 2.0 * 30.0 / spacing) as u32;
        for i in 0..retired {
            let id = m.register(Position::new(f64::from(i % per_lane) * spacing, 2.5), 486.0);
            m.set_active(id, false);
        }
        let sender = NodeId(per_lane / 2);
        let mut buf = Vec::new();
        let (grid_into_ns, linear_ns) = time_pair_ns(
            || {
                m.receivers_into(black_box(sender), 486.0, &mut buf);
                black_box(&buf);
            },
            || {
                black_box(m.receivers_within_linear(black_box(sender), 486.0));
            },
        );
        let grid_ns = time_ns(|| {
            black_box(m.receivers_within(black_box(sender), 486.0));
        });
        if spacing == 30.0 {
            grid_beats_linear_30m = grid_into_ns < linear_ns;
        }
        if spacing == 300.0 {
            grid_regression_300m_pct = (grid_into_ns - linear_ns) / linear_ns * 100.0;
        }
        if !spacing_rows.is_empty() {
            spacing_rows.push_str(",\n");
        }
        spacing_rows.push_str(&format!(
            "    {{ \"spacing_m\": {spacing:.0}, \"nodes\": {}, \"linear_ns\": {linear_ns:.2}, \
             \"grid_ns\": {grid_ns:.2}, \"grid_into_ns\": {grid_into_ns:.2}, \
             \"grid_speedup\": {:.2} }}",
            m.len(),
            linear_ns / grid_into_ns,
        ));
    }
    let radio_json = format!(
        "{{\n  \"bench\": \"radio_receiver_query\",\n  \"samples\": {SAMPLES},\n  \
         \"batch_iters\": {BATCH},\n  \"spacings\": [\n{spacing_rows}\n  ],\n  \
         \"grid_beats_linear_30m\": {grid_beats_linear_30m},\n  \
         \"grid_regression_300m_pct\": {grid_regression_300m_pct:.2}\n}}\n"
    );
    if let Err(e) = std::fs::write(&radio_out, &radio_json) {
        eprintln!("error: writing {radio_out}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    print!("{radio_json}");
    eprintln!("# wrote {radio_out}");

    eprintln!("# timing campaign: sequential loop vs job pool ({CAMPAIGN_SAMPLES} samples)...");
    // One interarea A/B campaign, small enough to sample repeatedly. The
    // raw loop is the pre-pool code shape: merge each seeded pair as it
    // completes on the calling thread.
    let scale = Scale { runs: 4, duration_s: 40 };
    let campaign_cfg = ScenarioConfig::paper_dsrc_default().with_duration(scale.duration());
    let campaign_seed = 42u64;
    let raw_loop = || {
        let bins = usize::try_from(scale.duration_s.div_ceil(5)).expect("bin count fits");
        let mut baseline = TimeBins::new(SimDuration::from_secs(5), bins);
        let mut attacked = TimeBins::new(SimDuration::from_secs(5), bins);
        for i in 0..scale.runs {
            let seed = campaign_seed.wrapping_add(u64::from(i) * 0x9E37);
            baseline.merge(&interarea::run_one(&campaign_cfg, false, seed));
            attacked.merge(&interarea::run_one(&campaign_cfg, true, seed));
        }
        black_box((baseline, attacked));
    };
    let pooled = |jobs: usize| {
        parallel::set_jobs(jobs);
        let r = interarea::run_ab(&campaign_cfg, "bench", scale, campaign_seed);
        parallel::set_jobs(1);
        r
    };
    let reports_byte_identical = {
        let seq = pooled(1);
        let par = pooled(4);
        seq == par && format!("{seq:?}") == format!("{par:?}")
    };
    let (raw_loop_s, jobs1_s) = time_campaign_pair_s(raw_loop, || {
        black_box(pooled(1));
    });
    let (jobs1b_s, jobs4_s) = time_campaign_pair_s(
        || {
            black_box(pooled(1));
        },
        || {
            black_box(pooled(4));
        },
    );
    let sequential_regression_pct = (jobs1_s - raw_loop_s) / raw_loop_s * 100.0;
    let speedup_4jobs = jobs1b_s / jobs4_s;
    let available = parallel::available_jobs();
    // A 2× speedup needs hardware that can actually run 4 workers; on
    // smaller hosts the number is recorded but not gated.
    let speedup_gate_enforced = available >= 4;
    let parallel_json = format!(
        "{{\n  \"bench\": \"campaign_parallelism\",\n  \
         \"campaign\": \"interarea run_ab, {} runs x {} s\",\n  \
         \"samples\": {CAMPAIGN_SAMPLES},\n  \"available_parallelism\": {available},\n  \
         \"raw_loop_s\": {raw_loop_s:.3},\n  \"jobs1_s\": {jobs1_s:.3},\n  \
         \"jobs4_s\": {jobs4_s:.3},\n  \
         \"sequential_regression_pct\": {sequential_regression_pct:.2},\n  \
         \"speedup_4jobs\": {speedup_4jobs:.2},\n  \
         \"reports_byte_identical\": {reports_byte_identical},\n  \
         \"speedup_gate_enforced\": {speedup_gate_enforced}\n}}\n",
        scale.runs, scale.duration_s,
    );
    if let Err(e) = std::fs::write(&parallel_out, &parallel_json) {
        eprintln!("error: writing {parallel_out}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    print!("{parallel_json}");
    eprintln!("# wrote {parallel_out}");

    if check && regression_pct >= 2.0 {
        eprintln!("error: auditor-detached handle_frame regressed {regression_pct:.2}% (>= 2%)");
        return std::process::ExitCode::FAILURE;
    }
    if check && topo_regression_pct >= 2.0 {
        eprintln!("error: topo-detached world step regressed {topo_regression_pct:.2}% (>= 2%)");
        return std::process::ExitCode::FAILURE;
    }
    if check && !grid_beats_linear_30m {
        eprintln!("error: grid receiver query lost to the linear scan at 30 m spacing");
        return std::process::ExitCode::FAILURE;
    }
    if check && grid_regression_300m_pct >= 2.0 {
        eprintln!(
            "error: grid receiver query regressed {grid_regression_300m_pct:.2}% \
             (>= 2%) at 300 m spacing"
        );
        return std::process::ExitCode::FAILURE;
    }
    if check && !reports_byte_identical {
        eprintln!("error: campaign reports differ between jobs=1 and jobs=4");
        return std::process::ExitCode::FAILURE;
    }
    if check && sequential_regression_pct >= 2.0 {
        eprintln!(
            "error: pooled sequential campaign path regressed \
             {sequential_regression_pct:.2}% (>= 2%) vs the raw loop"
        );
        return std::process::ExitCode::FAILURE;
    }
    if check && speedup_gate_enforced && speedup_4jobs < 2.0 {
        eprintln!(
            "error: campaign speedup at 4 jobs is {speedup_4jobs:.2}x (< 2x) \
             on a {available}-core host"
        );
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
