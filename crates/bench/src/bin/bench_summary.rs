//! `bench_summary` — dependency-free micro-runner behind the audit PR's
//! acceptance criterion.
//!
//! Criterion lives in `dev-dependencies`, so binaries cannot use it;
//! this runner times the `handle_frame` hot path with plain
//! `std::time::Instant` batches and writes the medians to a small JSON
//! report (default `BENCH_audit.json`, or the path given as the first
//! argument).
//!
//! ```text
//! bench_summary [OUT.json] [--check]
//! ```
//!
//! Measured variants: tracer/telemetry/auditor all off (the baseline),
//! tracer attached to a `NullSink`, telemetry attached to a registry,
//! and auditor detached (the audit layer samples at the world level, so
//! this must be indistinguishable from the baseline — the recorded
//! `auditor_detached_regression_pct` is the acceptance number). The
//! report also prices one audit checkpoint: a loaded router digest and a
//! whole-world digest sample. `--check` exits nonzero if the detached
//! auditor regresses the baseline by 2% or more.

use geonet::wire::GnPacket;
use geonet::{CertificateAuthority, Frame, GnAddress, GnConfig, GnRouter};
use geonet_geo::{GeoReference, Heading, Position};
use geonet_scenarios::{ScenarioConfig, World};
use geonet_sim::{
    shared, shared_registry, NullSink, SimDuration, SimTime, StateHasher, Telemetry, Tracer,
};
use std::hint::black_box;
use std::time::Instant;

/// Per-sample iteration count: large enough that one `Instant` read
/// amortises to well under a nanosecond per op.
const BATCH: u32 = 20_000;
/// Number of timed batches per variant; the median defeats scheduler
/// noise and one-off cache misses.
const SAMPLES: usize = 31;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Median ns/op of `f` over [`SAMPLES`] batches of [`BATCH`] calls.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..BATCH {
        f(); // warm-up: fill caches, settle branch predictors
    }
    let mut per_op = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        per_op.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
    }
    median(per_op)
}

/// Median ns/op of two closures with their batches interleaved, so CPU
/// frequency drift and cache warm-up hit both sides equally — the only
/// honest way to resolve a sub-2% difference between near-identical
/// code paths.
fn time_pair_ns(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    for _ in 0..BATCH {
        a();
        b();
    }
    let (mut pa, mut pb) = (Vec::with_capacity(SAMPLES), Vec::with_capacity(SAMPLES));
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            a();
        }
        pa.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
        let t0 = Instant::now();
        for _ in 0..BATCH {
            b();
        }
        pb.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
    }
    (median(pa), median(pb))
}

fn beacon_pv(ca: &CertificateAuthority, addr: u64, x: f64) -> Frame {
    let pv = geonet::LongPositionVector::from_sim(
        GnAddress::vehicle(addr),
        SimTime::from_secs(1),
        Position::new(x, 2.5),
        30.0,
        Heading::EAST,
        &GeoReference::default(),
    );
    let beacon = ca.enroll(GnAddress::vehicle(addr)).sign(GnPacket::beacon(pv));
    Frame::broadcast(GnAddress::vehicle(addr), Position::new(x, 2.5), beacon)
}

fn fresh_router(ca: &CertificateAuthority) -> GnRouter {
    GnRouter::new(
        ca.enroll(GnAddress::vehicle(1)),
        ca.verifier(),
        GnConfig::paper_default(1_283.0),
        GeoReference::default(),
    )
}

fn main() -> std::process::ExitCode {
    let mut out = String::from("BENCH_audit.json");
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => out = other.to_string(),
        }
    }

    let ca = CertificateAuthority::new(1);
    let frame = beacon_pv(&ca, 2, 520.0);
    let own = Position::new(500.0, 2.5);
    let at = SimTime::from_secs(1);

    eprintln!("# timing handle_frame variants ({SAMPLES} x {BATCH} iters each)...");
    // The audit layer hooks the world's traffic step, not the router; a
    // detached auditor must therefore be the baseline in disguise. The
    // two sides are timed interleaved so the comparison resolves below
    // the 2% acceptance threshold.
    let mut r_base = fresh_router(&ca);
    let mut r_aud = fresh_router(&ca);
    let (baseline, auditor_detached) = time_pair_ns(
        || {
            black_box(r_base.handle_frame(black_box(&frame), own, at));
        },
        || {
            black_box(r_aud.handle_frame(black_box(&frame), own, at));
        },
    );
    let mut r = fresh_router(&ca);
    r.set_tracer(Tracer::attached(shared(NullSink)));
    let tracer_null = time_ns(|| {
        black_box(r.handle_frame(black_box(&frame), own, at));
    });
    let mut r = fresh_router(&ca);
    r.set_telemetry(Telemetry::attached(shared_registry()));
    let telemetry = time_ns(|| {
        black_box(r.handle_frame(black_box(&frame), own, at));
    });

    eprintln!("# timing audit digest costs...");
    let mut loaded = fresh_router(&ca);
    for i in 2..66u64 {
        let f = beacon_pv(&ca, i, i as f64 * 30.0);
        loaded.handle_frame(&f, own, at);
    }
    let router_digest = time_ns(|| {
        let mut h = StateHasher::new();
        loaded.digest_into(&mut h);
        black_box(h.finish());
    });
    let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(3_600));
    let mut w = World::new(cfg, None, 42);
    w.run_until(SimTime::from_secs(5));
    let mut world_samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..100 {
            black_box(w.audit_checkpoint());
        }
        world_samples.push(t0.elapsed().as_nanos() as f64 / 100.0);
    }
    let world_checkpoint = median(world_samples);

    let regression_pct = (auditor_detached - baseline) / baseline * 100.0;
    let json = format!(
        "{{\n  \"bench\": \"handle_frame_beacon\",\n  \"samples\": {SAMPLES},\n  \
         \"batch_iters\": {BATCH},\n  \"baseline_ns\": {baseline:.2},\n  \
         \"tracer_null_sink_ns\": {tracer_null:.2},\n  \"telemetry_attached_ns\": {telemetry:.2},\n  \
         \"auditor_detached_ns\": {auditor_detached:.2},\n  \
         \"auditor_detached_regression_pct\": {regression_pct:.2},\n  \
         \"audit_router_digest_64_neighbors_ns\": {router_digest:.2},\n  \
         \"audit_world_checkpoint_ns\": {world_checkpoint:.2}\n}}\n"
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: writing {out}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    print!("{json}");
    eprintln!("# wrote {out}");
    if check && regression_pct >= 2.0 {
        eprintln!("error: auditor-detached handle_frame regressed {regression_pct:.2}% (>= 2%)");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
