//! `bench_summary` — dependency-free micro-runner behind the audit PR's
//! acceptance criterion.
//!
//! Criterion lives in `dev-dependencies`, so binaries cannot use it;
//! this runner times the `handle_frame` hot path with plain
//! `std::time::Instant` batches and writes the medians to a small JSON
//! report (default `BENCH_audit.json`, or the path given as the first
//! argument).
//!
//! ```text
//! bench_summary [AUDIT_OUT.json] [TOPO_OUT.json] [--check]
//! ```
//!
//! Measured variants: tracer/telemetry/auditor all off (the baseline),
//! tracer attached to a `NullSink`, telemetry attached to a registry,
//! and auditor detached (the audit layer samples at the world level, so
//! this must be indistinguishable from the baseline — the recorded
//! `auditor_detached_regression_pct` is the acceptance number). The
//! report also prices one audit checkpoint: a loaded router digest and a
//! whole-world digest sample.
//!
//! A second report (default `BENCH_topo.json`) does the same for the
//! topology observer, at the level it hooks: the world's traffic step.
//! Two same-seed default worlds — both with the observer in its default
//! detached state — advance in interleaved lockstep, and the recorded
//! `topo_detached_regression_pct` is that pair's divergence: the
//! detached observer's `due()` branch plus measurement noise. The report
//! also prices an attached observer's step (5 s snapshot interval) and
//! one whole-world snapshot. `--check` exits nonzero if the detached
//! auditor or the detached topology observer regresses its baseline by
//! 2% or more.

use geonet::wire::GnPacket;
use geonet::{CertificateAuthority, Frame, GnAddress, GnConfig, GnRouter};
use geonet_geo::{GeoReference, Heading, Position};
use geonet_scenarios::{ScenarioConfig, World};
use geonet_sim::{
    shared, shared_registry, shared_topo, NullSink, SimDuration, SimTime, StateHasher, Telemetry,
    Tracer,
};
use std::hint::black_box;
use std::time::Instant;

/// Per-sample iteration count: large enough that one `Instant` read
/// amortises to well under a nanosecond per op.
const BATCH: u32 = 20_000;
/// Number of timed batches per variant; the median defeats scheduler
/// noise and one-off cache misses.
const SAMPLES: usize = 31;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Median ns/op of `f` over [`SAMPLES`] batches of [`BATCH`] calls.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..BATCH {
        f(); // warm-up: fill caches, settle branch predictors
    }
    let mut per_op = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        per_op.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
    }
    median(per_op)
}

/// Median ns/op of two closures with their batches interleaved, so CPU
/// frequency drift and cache warm-up hit both sides equally — the only
/// honest way to resolve a sub-2% difference between near-identical
/// code paths.
fn time_pair_ns(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    for _ in 0..BATCH {
        a();
        b();
    }
    let (mut pa, mut pb) = (Vec::with_capacity(SAMPLES), Vec::with_capacity(SAMPLES));
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            a();
        }
        pa.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
        let t0 = Instant::now();
        for _ in 0..BATCH {
            b();
        }
        pb.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
    }
    (median(pa), median(pb))
}

fn beacon_pv(ca: &CertificateAuthority, addr: u64, x: f64) -> Frame {
    let pv = geonet::LongPositionVector::from_sim(
        GnAddress::vehicle(addr),
        SimTime::from_secs(1),
        Position::new(x, 2.5),
        30.0,
        Heading::EAST,
        &GeoReference::default(),
    );
    let beacon = ca.enroll(GnAddress::vehicle(addr)).sign(GnPacket::beacon(pv));
    Frame::broadcast(GnAddress::vehicle(addr), Position::new(x, 2.5), beacon)
}

fn fresh_router(ca: &CertificateAuthority) -> GnRouter {
    GnRouter::new(
        ca.enroll(GnAddress::vehicle(1)),
        ca.verifier(),
        GnConfig::paper_default(1_283.0),
        GeoReference::default(),
    )
}

/// Simulated seconds each world advances per timed sample; even, so the
/// first-mover alternation inside a sample splits exactly 50/50, and
/// small enough that [`SAMPLES`] interleaved samples stay far inside the
/// horizon.
const WORLD_SECONDS_PER_SAMPLE: u64 = 4;

/// Median ns per simulated second of two same-seed worlds advancing in
/// interleaved lockstep — the world-level analogue of [`time_pair_ns`],
/// so traffic growth and frequency drift hit both sides equally.
fn time_world_pair_ns(a: &mut World, b: &mut World, from_s: u64) -> (f64, f64) {
    let (mut pa, mut pb) = (Vec::with_capacity(SAMPLES), Vec::with_capacity(SAMPLES));
    let mut t = from_s;
    for _ in 0..SAMPLES {
        let (mut ea, mut eb) = (0u128, 0u128);
        for s in 1..=WORLD_SECONDS_PER_SAMPLE {
            // Alternate one-second slices, swapping who goes first each
            // second: cache state and frequency drift cancel out.
            let end = SimTime::from_secs(t + s);
            let (first, second, ef, es) = if s % 2 == 0 {
                (&mut *a, &mut *b, &mut ea, &mut eb)
            } else {
                (&mut *b, &mut *a, &mut eb, &mut ea)
            };
            let t0 = Instant::now();
            first.run_until(end);
            *ef += t0.elapsed().as_nanos();
            let t0 = Instant::now();
            second.run_until(end);
            *es += t0.elapsed().as_nanos();
        }
        pa.push(ea as f64 / WORLD_SECONDS_PER_SAMPLE as f64);
        pb.push(eb as f64 / WORLD_SECONDS_PER_SAMPLE as f64);
        t += WORLD_SECONDS_PER_SAMPLE;
    }
    (median(pa), median(pb))
}

fn main() -> std::process::ExitCode {
    let mut check = false;
    let mut outs = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => outs.push(other.to_string()),
        }
    }
    let out = outs.first().cloned().unwrap_or_else(|| "BENCH_audit.json".to_string());
    let topo_out = outs.get(1).cloned().unwrap_or_else(|| "BENCH_topo.json".to_string());

    let ca = CertificateAuthority::new(1);
    let frame = beacon_pv(&ca, 2, 520.0);
    let own = Position::new(500.0, 2.5);
    let at = SimTime::from_secs(1);

    eprintln!("# timing handle_frame variants ({SAMPLES} x {BATCH} iters each)...");
    // The audit layer hooks the world's traffic step, not the router; a
    // detached auditor must therefore be the baseline in disguise. The
    // two sides are timed interleaved so the comparison resolves below
    // the 2% acceptance threshold.
    let mut r_base = fresh_router(&ca);
    let mut r_aud = fresh_router(&ca);
    let (baseline, auditor_detached) = time_pair_ns(
        || {
            black_box(r_base.handle_frame(black_box(&frame), own, at));
        },
        || {
            black_box(r_aud.handle_frame(black_box(&frame), own, at));
        },
    );
    let mut r = fresh_router(&ca);
    r.set_tracer(Tracer::attached(shared(NullSink)));
    let tracer_null = time_ns(|| {
        black_box(r.handle_frame(black_box(&frame), own, at));
    });
    let mut r = fresh_router(&ca);
    r.set_telemetry(Telemetry::attached(shared_registry()));
    let telemetry = time_ns(|| {
        black_box(r.handle_frame(black_box(&frame), own, at));
    });

    eprintln!("# timing audit digest costs...");
    let mut loaded = fresh_router(&ca);
    for i in 2..66u64 {
        let f = beacon_pv(&ca, i, i as f64 * 30.0);
        loaded.handle_frame(&f, own, at);
    }
    let router_digest = time_ns(|| {
        let mut h = StateHasher::new();
        loaded.digest_into(&mut h);
        black_box(h.finish());
    });
    let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(3_600));
    let mut w = World::new(cfg, None, 42);
    w.run_until(SimTime::from_secs(5));
    let mut world_samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..100 {
            black_box(w.audit_checkpoint());
        }
        world_samples.push(t0.elapsed().as_nanos() as f64 / 100.0);
    }
    let world_checkpoint = median(world_samples);

    let regression_pct = (auditor_detached - baseline) / baseline * 100.0;
    let json = format!(
        "{{\n  \"bench\": \"handle_frame_beacon\",\n  \"samples\": {SAMPLES},\n  \
         \"batch_iters\": {BATCH},\n  \"baseline_ns\": {baseline:.2},\n  \
         \"tracer_null_sink_ns\": {tracer_null:.2},\n  \"telemetry_attached_ns\": {telemetry:.2},\n  \
         \"auditor_detached_ns\": {auditor_detached:.2},\n  \
         \"auditor_detached_regression_pct\": {regression_pct:.2},\n  \
         \"audit_router_digest_64_neighbors_ns\": {router_digest:.2},\n  \
         \"audit_world_checkpoint_ns\": {world_checkpoint:.2}\n}}\n"
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: writing {out}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    print!("{json}");
    eprintln!("# wrote {out}");

    eprintln!("# timing world step with the topology observer detached vs attached...");
    // The topology observer hooks the traffic step exactly like the
    // auditor; its detached state is the world default, so both sides of
    // the pair run it — the measured divergence is the `due()` branch
    // plus noise, and must stay under the same 2% bar.
    let warm = SimTime::from_secs(5);
    let mut w_base = World::new(cfg, None, 42);
    let mut w_det = World::new(cfg, None, 42);
    w_base.run_until(warm);
    w_det.run_until(warm);
    let (step_baseline, step_detached) = time_world_pair_ns(&mut w_base, &mut w_det, 5);
    let mut w_att = World::new(cfg, None, 42);
    w_att.set_topo_observer(shared_topo(SimDuration::from_secs(5)));
    w_att.set_topo_destination(Position::new(4_020.0, 0.0));
    w_att.run_until(warm);
    let mut att_samples = Vec::with_capacity(SAMPLES);
    let mut t = 5u64;
    for _ in 0..SAMPLES {
        let end = t + WORLD_SECONDS_PER_SAMPLE;
        let t0 = Instant::now();
        w_att.run_until(SimTime::from_secs(end));
        att_samples.push(t0.elapsed().as_nanos() as f64 / WORLD_SECONDS_PER_SAMPLE as f64);
        t = end;
    }
    let step_attached = median(att_samples);
    let mut snap_samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..100 {
            black_box(w_att.topo_snapshot());
        }
        snap_samples.push(t0.elapsed().as_nanos() as f64 / 100.0);
    }
    let world_snapshot = median(snap_samples);

    let topo_regression_pct = (step_detached - step_baseline) / step_baseline * 100.0;
    let topo_json = format!(
        "{{\n  \"bench\": \"world_step_topo\",\n  \"samples\": {SAMPLES},\n  \
         \"seconds_per_sample\": {WORLD_SECONDS_PER_SAMPLE},\n  \
         \"baseline_step_ns\": {step_baseline:.2},\n  \
         \"topo_detached_step_ns\": {step_detached:.2},\n  \
         \"topo_detached_regression_pct\": {topo_regression_pct:.2},\n  \
         \"topo_attached_5s_step_ns\": {step_attached:.2},\n  \
         \"topo_world_snapshot_ns\": {world_snapshot:.2}\n}}\n"
    );
    if let Err(e) = std::fs::write(&topo_out, &topo_json) {
        eprintln!("error: writing {topo_out}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    print!("{topo_json}");
    eprintln!("# wrote {topo_out}");

    if check && regression_pct >= 2.0 {
        eprintln!("error: auditor-detached handle_frame regressed {regression_pct:.2}% (>= 2%)");
        return std::process::ExitCode::FAILURE;
    }
    if check && topo_regression_pct >= 2.0 {
        eprintln!("error: topo-detached world step regressed {topo_regression_pct:.2}% (>= 2%)");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
