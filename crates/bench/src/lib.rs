//! Shared helpers for the benchmark harness.
//!
//! The benches serve two purposes: they time the simulator (Criterion
//! statistics), and — because each iteration *is* a miniature run of a
//! paper experiment — they regenerate the paper's headline statistics,
//! printed once per bench outside the timed region. `cargo bench` output
//! therefore doubles as a quick-look reproduction report; the full-scale
//! numbers come from the `repro` binary (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use geonet_scenarios::config::Scale;

/// The scale used inside benches: one A/B pair over a 30 s run. Small
/// enough for Criterion's repeated sampling, large enough that γ/λ have
/// the right shape.
#[must_use]
pub fn bench_scale() -> Scale {
    Scale { runs: 1, duration_s: 30 }
}

/// Prints a labelled headline statistic once, outside the timed region.
pub fn report(experiment: &str, label: &str, value: Option<f64>) {
    match value {
        Some(v) => eprintln!("[{experiment}] {label}: {:.1}%", v * 100.0),
        None => eprintln!("[{experiment}] {label}: n/a"),
    }
}
