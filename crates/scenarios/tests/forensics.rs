//! Integration tests of the tracing + forensics chain: events emitted by
//! real routers and attackers, serialised through `JsonlSink`, parsed
//! back, reconstructed into hop traces and attributed.

use geonet::{CertificateAuthority, GnAddress, GnConfig, GnRouter, RouterAction};
use geonet_attack::{BlockageMode, IntraAreaAttacker};
use geonet_geo::{Area, GeoReference, Heading, Position};
use geonet_scenarios::forensics::{hop_traces, AttributionReport, PacketFate};
use geonet_scenarios::{interarea, ScenarioConfig};
use geonet_sim::{
    shared, JsonlSink, PacketRef, SimDuration, SimTime, TraceEvent, TraceRecord, Tracer, VecSink,
};

fn router(ca: &CertificateAuthority, addr: u64, tracer: Tracer) -> GnRouter {
    let mut r = GnRouter::new(
        ca.enroll(GnAddress::vehicle(addr)),
        ca.verifier(),
        GnConfig::paper_default(1_283.0),
        GeoReference::default(),
    );
    r.set_tracer(tracer);
    r
}

/// The acceptance scenario: a blockage-attack run recorded through a
/// `JsonlSink` yields a hop trace for the suppressed packet whose final
/// event is a CBF-timer cancellation attributed to the attacker's
/// duplicate.
#[test]
fn blockage_run_traced_through_jsonl_attributes_the_suppression() {
    let ca = CertificateAuthority::new(7);
    let sink = shared(JsonlSink::new(Vec::<u8>::new()));
    let root = Tracer::attached(sink.clone());

    // v1 at x=1000 originates a GeoBroadcast across the road; v2 at
    // x=1400 is in the area and arms a contention timer; the attacker
    // sniffs the first copy and replays it RHL-clamped, cancelling v2's
    // timer — the packet never spreads past v2.
    let t0 = SimTime::from_secs(1);
    let mut v1 = router(&ca, 1, root.for_node(1));
    let mut v2 = router(&ca, 2, root.for_node(2));
    let mut atk = IntraAreaAttacker::new(Position::new(1_400.0, -10.0), BlockageMode::ClampRhl);
    atk.set_tracer(root.for_node(99));

    let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_050.0, 25.0, 90.0);
    let (key, actions) =
        v1.originate(&area, vec![0xCB], t0, Position::new(1_000.0, 2.5), 30.0, Heading::EAST);
    let RouterAction::Transmit(frame) = &actions[0] else { panic!("originate transmits") };

    // First copy reaches v2 (timer armed) and the attacker's sniffer.
    v2.handle_frame(frame, Position::new(1_400.0, 2.5), t0);
    let order = atk.on_sniff(frame, t0).expect("GBC packets are replayed");
    // The clamped duplicate arrives at v2 before its timer fires.
    v2.handle_frame(&order.frame, Position::new(1_400.0, 2.5), t0 + order.delay);
    assert_eq!(v2.stats().cbf_discards, 1, "the duplicate cancelled the timer");

    // Round-trip: the run's evidence is JSON Lines on disk.
    drop((v1, v2, atk, root));
    let bytes = std::rc::Rc::try_unwrap(sink)
        .expect("all tracer handles dropped")
        .into_inner()
        .into_inner()
        .expect("flush");
    let text = String::from_utf8(bytes).expect("utf-8");
    let records: Vec<TraceRecord> =
        text.lines().map(|l| TraceRecord::from_json(l).expect("parseable line")).collect();
    assert!(!records.is_empty());

    // The suppressed packet's hop trace ends in the cancellation, and
    // the cancellation names the attacker's pseudonym.
    let packet = PacketRef::new(key.source.to_u64(), key.sn.0);
    let traces = hop_traces(&records);
    let trace = &traces[&packet];
    let pseudonym = IntraAreaAttacker::DEFAULT_PSEUDONYM.to_u64();
    match trace.final_event().expect("non-empty trace").event {
        TraceEvent::CbfCancelled { packet: p, by } => {
            assert_eq!(p, packet);
            assert_eq!(by, pseudonym, "cancellation attributed to the attacker");
        }
        ref other => panic!("final event is {other:?}, not the cancellation"),
    }
    assert_eq!(trace.fate(Some(pseudonym)), PacketFate::Blocked { by: pseudonym });

    // And the per-run report counts it the same way.
    let report = AttributionReport::build(&records, Some(pseudonym));
    assert_eq!(report.blocked.get(&pseudonym), Some(&1));
    assert_eq!(report.delivered, 0);
    assert_eq!(report.attacker_cancellations, 1);
}

/// A full attacked inter-area world run: the attribution report pins the
/// losses on greedy forwards into phantom next hops, not on the radio.
#[test]
fn interception_world_run_attributes_losses_to_phantom_next_hops() {
    let cfg = ScenarioConfig::paper_dsrc_default()
        .with_attack_range(486.0)
        .with_duration(SimDuration::from_secs(20));
    let sink = shared(VecSink::new());
    let bins = interarea::run_one_traced(&cfg, true, 42, sink.clone());
    let records = sink.borrow().records().to_vec();
    assert!(!records.is_empty());

    // The mN attacker intercepts essentially everything (paper γ≈1.0).
    let rate = bins.overall_rate().unwrap_or(0.0);
    assert!(rate < 0.5, "attacked reception rate {rate}");

    let report = AttributionReport::build(&records, None);
    assert!(report.total > 0, "vulnerable packets were traced");
    let intercepted: usize = report.intercepted.values().sum();
    assert!(intercepted > 0, "interception shows up as phantom-next-hop fates: {report}");
    // The interception attack leaves the radio blameless: losses are
    // routing decisions, not frame loss (the default channel is
    // lossless).
    assert_eq!(report.lost_to_radio, 0, "{report}");
    // Consistency: every traced packet lands in exactly one bucket.
    let buckets = report.delivered
        + report.lost_to_radio
        + report.lost_to_hop_limit
        + intercepted
        + report.blocked.values().sum::<usize>()
        + report.dropped.iter().sum::<usize>()
        + report.unresolved;
    assert_eq!(buckets, report.total);
}
