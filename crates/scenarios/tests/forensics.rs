//! Integration tests of the tracing + forensics chain: events emitted by
//! real routers and attackers, serialised through `JsonlSink`, parsed
//! back, reconstructed into hop traces and attributed.

use geonet::{CertificateAuthority, GnAddress, GnConfig, GnRouter, RouterAction};
use geonet_attack::{BlockageMode, IntraAreaAttacker};
use geonet_geo::{Area, GeoReference, Heading, Position};
use geonet_scenarios::forensics::{hop_traces, AttributionReport, PacketFate};
use geonet_scenarios::{interarea, ScenarioConfig};
use geonet_sim::{
    shared, JsonlSink, PacketRef, SimDuration, SimTime, TraceEvent, TraceRecord, Tracer, VecSink,
};

fn router(ca: &CertificateAuthority, addr: u64, tracer: Tracer) -> GnRouter {
    let mut r = GnRouter::new(
        ca.enroll(GnAddress::vehicle(addr)),
        ca.verifier(),
        GnConfig::paper_default(1_283.0),
        GeoReference::default(),
    );
    r.set_tracer(tracer);
    r
}

/// The acceptance scenario: a blockage-attack run recorded through a
/// `JsonlSink` yields a hop trace for the suppressed packet whose final
/// event is a CBF-timer cancellation attributed to the attacker's
/// duplicate.
#[test]
fn blockage_run_traced_through_jsonl_attributes_the_suppression() {
    let ca = CertificateAuthority::new(7);
    let sink = shared(JsonlSink::new(Vec::<u8>::new()));
    let root = Tracer::attached(sink.clone());

    // v1 at x=1000 originates a GeoBroadcast across the road; v2 at
    // x=1400 is in the area and arms a contention timer; the attacker
    // sniffs the first copy and replays it RHL-clamped, cancelling v2's
    // timer — the packet never spreads past v2.
    let t0 = SimTime::from_secs(1);
    let mut v1 = router(&ca, 1, root.for_node(1));
    let mut v2 = router(&ca, 2, root.for_node(2));
    let mut atk = IntraAreaAttacker::new(Position::new(1_400.0, -10.0), BlockageMode::ClampRhl);
    atk.set_tracer(root.for_node(99));

    let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_050.0, 25.0, 90.0);
    let (key, actions) =
        v1.originate(&area, vec![0xCB], t0, Position::new(1_000.0, 2.5), 30.0, Heading::EAST);
    let RouterAction::Transmit(frame) = &actions[0] else { panic!("originate transmits") };

    // First copy reaches v2 (timer armed) and the attacker's sniffer.
    v2.handle_frame(frame, Position::new(1_400.0, 2.5), t0);
    let order = atk.on_sniff(frame, t0).expect("GBC packets are replayed");
    // The clamped duplicate arrives at v2 before its timer fires.
    v2.handle_frame(&order.frame, Position::new(1_400.0, 2.5), t0 + order.delay);
    assert_eq!(v2.stats().cbf_discards, 1, "the duplicate cancelled the timer");

    // Round-trip: the run's evidence is JSON Lines on disk.
    drop((v1, v2, atk, root));
    let bytes = std::rc::Rc::try_unwrap(sink)
        .expect("all tracer handles dropped")
        .into_inner()
        .into_inner()
        .expect("flush");
    let text = String::from_utf8(bytes).expect("utf-8");
    let records: Vec<TraceRecord> =
        text.lines().map(|l| TraceRecord::from_json(l).expect("parseable line")).collect();
    assert!(!records.is_empty());

    // The suppressed packet's hop trace ends in the cancellation, and
    // the cancellation names the attacker's pseudonym.
    let packet = PacketRef::new(key.source.to_u64(), key.sn.0);
    let traces = hop_traces(&records);
    let trace = &traces[&packet];
    let pseudonym = IntraAreaAttacker::DEFAULT_PSEUDONYM.to_u64();
    match trace.final_event().expect("non-empty trace").event {
        TraceEvent::CbfCancelled { packet: p, by } => {
            assert_eq!(p, packet);
            assert_eq!(by, pseudonym, "cancellation attributed to the attacker");
        }
        ref other => panic!("final event is {other:?}, not the cancellation"),
    }
    assert_eq!(trace.fate(Some(pseudonym)), PacketFate::Blocked { by: pseudonym });

    // And the per-run report counts it the same way.
    let report = AttributionReport::build(&records, Some(pseudonym));
    assert_eq!(report.blocked.get(&pseudonym), Some(&1));
    assert_eq!(report.delivered, 0);
    assert_eq!(report.attacker_cancellations, 1);
}

/// A full attacked inter-area world run: the attribution report pins the
/// losses on greedy forwards into phantom next hops, not on the radio.
#[test]
fn interception_world_run_attributes_losses_to_phantom_next_hops() {
    let cfg = ScenarioConfig::paper_dsrc_default()
        .with_attack_range(486.0)
        .with_duration(SimDuration::from_secs(20));
    let sink = shared(VecSink::new());
    let bins = interarea::run_one_traced(&cfg, true, 42, sink.clone());
    let records = sink.borrow().records().to_vec();
    assert!(!records.is_empty());

    // The mN attacker intercepts essentially everything (paper γ≈1.0).
    let rate = bins.overall_rate().unwrap_or(0.0);
    assert!(rate < 0.5, "attacked reception rate {rate}");

    let report = AttributionReport::build(&records, None);
    assert!(report.total > 0, "vulnerable packets were traced");
    let intercepted: usize = report.intercepted.values().sum();
    assert!(intercepted > 0, "interception shows up as phantom-next-hop fates: {report}");
    // The interception attack leaves the radio blameless: losses are
    // routing decisions, not frame loss (the default channel is
    // lossless).
    assert_eq!(report.lost_to_radio, 0, "{report}");
    // Consistency: every traced packet lands in exactly one bucket.
    let buckets = report.delivered
        + report.lost_to_radio
        + report.lost_to_hop_limit
        + intercepted
        + report.blocked.values().sum::<usize>()
        + report.dropped.iter().sum::<usize>()
        + report.unresolved;
    assert_eq!(buckets, report.total);
}

/// Property tests: every `TraceEvent` variant — and with it every
/// `DropReason` and `AttackKind` — survives the JSONL serialize → parse
/// round trip unchanged, for arbitrary field values.
mod jsonl_roundtrip {
    use super::*;
    use geonet_sim::{AttackKind, DropReason};
    use proptest::prelude::*;

    fn arb_packet() -> impl Strategy<Value = PacketRef> {
        (any::<u64>(), any::<u16>()).prop_map(|(source, sn)| PacketRef::new(source, sn))
    }

    fn arb_drop_reason() -> impl Strategy<Value = DropReason> {
        prop::sample::select(DropReason::ALL.to_vec())
    }

    fn arb_attack_kind() -> impl Strategy<Value = AttackKind> {
        prop::sample::select(vec![
            AttackKind::InterceptionCapture,
            AttackKind::InterceptionReplay,
            AttackKind::BlockageReplay,
        ])
    }

    /// Road coordinates are finite by construction (`format_f64` asserts
    /// it), so the strategy draws from a finite range.
    fn arb_coord() -> impl Strategy<Value = f64> {
        -1.0e9..1.0e9_f64
    }

    /// One strategy arm per `TraceEvent` variant; adding a variant
    /// without extending this list fails the exhaustiveness check in
    /// `every_variant_is_covered`.
    fn arb_event() -> impl Strategy<Value = TraceEvent> {
        prop_oneof![
            arb_packet().prop_map(|packet| TraceEvent::Originated { packet }),
            any::<u64>().prop_map(|from| TraceEvent::BeaconAccepted { from }),
            (prop::option::of(arb_packet()), prop::option::of(any::<u64>()), any::<bool>())
                .prop_map(|(packet, dst, beacon)| TraceEvent::FrameTx { packet, dst, beacon }),
            (prop::option::of(arb_packet()), any::<u64>(), any::<bool>())
                .prop_map(|(packet, from, beacon)| TraceEvent::FrameRx { packet, from, beacon }),
            (prop::option::of(arb_packet()), any::<u64>())
                .prop_map(|(packet, from)| TraceEvent::FrameLost { packet, from }),
            arb_packet().prop_map(|packet| TraceEvent::Delivered { packet }),
            arb_packet().prop_map(|packet| TraceEvent::DuplicateDiscarded { packet }),
            (arb_packet(), any::<u64>())
                .prop_map(|(packet, delay_us)| TraceEvent::CbfArmed { packet, delay_us }),
            (arb_packet(), any::<u64>())
                .prop_map(|(packet, by)| TraceEvent::CbfCancelled { packet, by }),
            arb_packet().prop_map(|packet| TraceEvent::CbfFired { packet }),
            (arb_packet(), any::<u64>())
                .prop_map(|(packet, by)| TraceEvent::CbfMitigationRejected { packet, by }),
            (arb_packet(), any::<u64>())
                .prop_map(|(packet, next_hop)| TraceEvent::GfNextHop { packet, next_hop }),
            arb_packet().prop_map(|packet| TraceEvent::GfFallback { packet }),
            (arb_packet(), any::<u32>())
                .prop_map(|(packet, attempt)| TraceEvent::GfBuffered { packet, attempt }),
            (arb_packet(), any::<u32>())
                .prop_map(|(packet, attempt)| TraceEvent::GfAckRetry { packet, attempt }),
            (arb_packet(), arb_drop_reason())
                .prop_map(|(packet, reason)| TraceEvent::Dropped { packet, reason }),
            (arb_attack_kind(), prop::option::of(arb_packet()))
                .prop_map(|(kind, packet)| TraceEvent::AttackAction { kind, packet }),
            arb_coord().prop_map(|x| TraceEvent::HazardOnset { x }),
            arb_coord().prop_map(|x| TraceEvent::Collision { x }),
        ]
    }

    proptest! {
        #[test]
        fn every_event_round_trips_through_jsonl(
            at_us in 0u64..1_000_000_000_000,
            node in any::<u32>(),
            event in arb_event(),
        ) {
            let record = TraceRecord { at: SimTime::from_micros(at_us), node, event };
            let line = record.to_json();
            prop_assert!(!line.contains('\n'), "JSONL lines must be single-line");
            let parsed = TraceRecord::from_json(&line)
                .map_err(|e| TestCaseError::fail(format!("{e}: {line}")))?;
            prop_assert_eq!(parsed, record);
        }
    }

    /// The strategy above must keep covering the whole enum: exercise
    /// one concrete value of every variant through the round trip.
    #[test]
    fn every_variant_is_covered() {
        let p = PacketRef::new(0xAC0_0001, 7);
        let events = [
            TraceEvent::Originated { packet: p },
            TraceEvent::BeaconAccepted { from: 1 },
            TraceEvent::FrameTx { packet: Some(p), dst: Some(2), beacon: false },
            TraceEvent::FrameRx { packet: None, from: 3, beacon: true },
            TraceEvent::FrameLost { packet: Some(p), from: 4 },
            TraceEvent::Delivered { packet: p },
            TraceEvent::DuplicateDiscarded { packet: p },
            TraceEvent::CbfArmed { packet: p, delay_us: 50_000 },
            TraceEvent::CbfCancelled { packet: p, by: 5 },
            TraceEvent::CbfFired { packet: p },
            TraceEvent::CbfMitigationRejected { packet: p, by: 6 },
            TraceEvent::GfNextHop { packet: p, next_hop: 8 },
            TraceEvent::GfFallback { packet: p },
            TraceEvent::GfBuffered { packet: p, attempt: 1 },
            TraceEvent::GfAckRetry { packet: p, attempt: 2 },
            TraceEvent::Dropped { packet: p, reason: geonet_sim::DropReason::NoNextHop },
            TraceEvent::AttackAction {
                kind: geonet_sim::AttackKind::BlockageReplay,
                packet: Some(p),
            },
            TraceEvent::HazardOnset { x: 1_234.5 },
            TraceEvent::Collision { x: -0.5 },
        ];
        for event in events {
            // Compile-time exhaustiveness: a new variant breaks this match.
            match &event {
                TraceEvent::Originated { .. }
                | TraceEvent::BeaconAccepted { .. }
                | TraceEvent::FrameTx { .. }
                | TraceEvent::FrameRx { .. }
                | TraceEvent::FrameLost { .. }
                | TraceEvent::Delivered { .. }
                | TraceEvent::DuplicateDiscarded { .. }
                | TraceEvent::CbfArmed { .. }
                | TraceEvent::CbfCancelled { .. }
                | TraceEvent::CbfFired { .. }
                | TraceEvent::CbfMitigationRejected { .. }
                | TraceEvent::GfNextHop { .. }
                | TraceEvent::GfFallback { .. }
                | TraceEvent::GfBuffered { .. }
                | TraceEvent::GfAckRetry { .. }
                | TraceEvent::Dropped { .. }
                | TraceEvent::AttackAction { .. }
                | TraceEvent::HazardOnset { .. }
                | TraceEvent::Collision { .. } => {}
            }
            let record = TraceRecord { at: SimTime::from_secs(1), node: 9, event };
            let parsed = TraceRecord::from_json(&record.to_json()).expect("round trip");
            assert_eq!(parsed, record);
        }
    }
}
