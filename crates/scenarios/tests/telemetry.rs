//! End-to-end check of `repro --metrics` / `--profile`: runs the real
//! binary on a reduced-scale interception run and validates the emitted
//! telemetry artifacts (acceptance criterion for the telemetry layer).

use geonet_sim::MetricsSnapshot;
use std::process::Command;

/// Hot-path timers that must show up with samples after a full run.
const REQUIRED_TIMERS: &[&str] = &[
    "router_handle_frame_ns",
    "world_dispatch_ns",
    "radio_broadcast_ns",
    "radio_receiver_scan_ns",
    "traffic_step_ns",
];

/// State-depth gauges sampled during the run.
const REQUIRED_GAUGES: &[&str] = &["event_queue_len", "loct_size_total", "vehicles_on_road"];

#[test]
fn repro_metrics_emits_valid_artifacts() {
    let dir = std::env::temp_dir().join(format!("geonet-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let prefix = dir.join("out");
    let prefix_str = prefix.to_str().expect("utf-8 temp path");

    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--metrics", prefix_str, "--profile", "--duration", "20", "--seed", "11"])
        .output()
        .expect("run repro");
    assert!(output.status.success(), "repro failed: {}", String::from_utf8_lossy(&output.stderr));

    // --profile prints the hot-path table with quantile columns to stdout.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Hot-path profile"), "missing profile table:\n{stdout}");
    assert!(stdout.contains("router_handle_frame_ns"), "profile table lacks router timer");
    // Progress reporting goes to stderr with throughput figures.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("ev/s"), "missing events/sec progress line:\n{stderr}");

    let prom_path = format!("{prefix_str}.metrics.prom");
    let json_path = format!("{prefix_str}.metrics.json");
    let prom = std::fs::read_to_string(&prom_path).expect("read .prom");
    let json = std::fs::read_to_string(&json_path).expect("read .json");

    // The JSON snapshot must parse back via the library parser.
    let snap = MetricsSnapshot::from_json(&json).expect("valid JSON snapshot");

    for timer in REQUIRED_TIMERS {
        let h = snap.histogram(timer).unwrap_or_else(|| panic!("missing histogram {timer}"));
        assert!(h.count() > 0, "{timer} recorded no samples");
        let (p50, p95, p99) = (h.p50().expect("p50"), h.p95().expect("p95"), h.p99().expect("p99"));
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max(), "{timer} quantiles out of order");
        // Each quantile family must also be literally present in the
        // Prometheus exposition.
        for suffix in ["_p50", "_p95", "_p99"] {
            assert!(prom.contains(&format!("{timer}{suffix}")), "{timer}{suffix} not in .prom");
        }
    }

    for gauge in REQUIRED_GAUGES {
        let g = snap.gauge(gauge).unwrap_or_else(|| panic!("missing gauge {gauge}"));
        assert!(g.count > 0, "{gauge} never sampled");
        assert!(prom.contains(gauge), "{gauge} not in .prom");
    }

    // Per-node state-depth distributions are exported as histograms.
    for hist in ["loct_size_per_node", "dup_cache_per_node"] {
        assert!(snap.histogram(hist).is_some(), "missing histogram {hist}");
    }

    // Throughput gauges derived from the campaign summary.
    let eps = snap.gauge("sim_events_per_sec").expect("events/sec gauge");
    assert!(eps.last > 0.0, "events/sec must be positive");
    assert!(snap.counter("sim_events_total").expect("events counter") > 0);
    assert!(snap.counter("frames_on_air_total").expect("frames counter") > 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_duplicate_and_unknown_flags() {
    let dup = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--seed", "1", "--seed", "2", "table1"])
        .output()
        .expect("run repro");
    assert!(!dup.status.success());
    let stderr = String::from_utf8_lossy(&dup.stderr);
    assert!(stderr.contains("duplicate flag --seed"), "got: {stderr}");

    let unknown =
        Command::new(env!("CARGO_BIN_EXE_repro")).args(["--bogus"]).output().expect("run repro");
    assert!(!unknown.status.success());
    let stderr = String::from_utf8_lossy(&unknown.stderr);
    assert!(stderr.contains("unknown flag --bogus"), "got: {stderr}");
}
