//! Integration tests of the topology chain: connectivity snapshots and
//! road-binned heatmaps recorded from real scenario runs, artifact
//! round-trips, same-seed determinism, and the blast-radius report's
//! acceptance claims for both paper attacks.

use geonet_scenarios::topology::{
    correlate_interception, run_blockage, run_interarea, DEFAULT_SNAPSHOT_INTERVAL,
};
use geonet_scenarios::{BlastRadiusReport, HeatmapDiff, RoadHeatmap, ScenarioConfig, TopologyRun};
use geonet_sim::{SimDuration, TopoArtifact};

/// Long enough for forwarding chains, interception and CBF suppression
/// to all leave a spatial footprint.
fn cfg(attack_range: f64) -> ScenarioConfig {
    ScenarioConfig::paper_dsrc_default()
        .with_attack_range(attack_range)
        .with_duration(SimDuration::from_secs(40))
}

/// Serializes both artifact kinds and parses them back, asserting the
/// round trip is byte-identical — what `repro --topology-diff` relies
/// on when it rebuilds a report from files alone.
fn round_trip(run: &TopologyRun) -> (TopoArtifact, RoadHeatmap) {
    let topo_text = run.topo.to_json();
    let topo = TopoArtifact::from_json(&topo_text).expect("topo artifact parses");
    assert_eq!(topo.to_json(), topo_text, "topo round trip must be byte-identical");
    let heat_text = run.heatmap.to_json();
    let heat = RoadHeatmap::from_json(&heat_text).expect("heatmap artifact parses");
    assert_eq!(heat.to_json(), heat_text, "heatmap round trip must be byte-identical");
    (topo, heat)
}

/// The interception acceptance claim (mN attacker, DSRC): the attacker
/// acts as the greedy gradient's local maximum, and at least 90% of the
/// intercepted packets made their last forwarding hop inside its
/// coverage set. Built exactly the way `repro --topology-diff` does:
/// from parsed artifacts, with the interception counters read back out
/// of the attacked heatmap's metadata.
#[test]
fn interception_blast_radius_pins_the_attacker() {
    let cfg = cfg(486.0);
    let af = run_interarea(&cfg, false, 42, DEFAULT_SNAPSHOT_INTERVAL);
    let mut atk = run_interarea(&cfg, true, 42, DEFAULT_SNAPSHOT_INTERVAL);
    let (intercepted, _) = correlate_interception(&af, &mut atk);
    assert!(intercepted > 0, "the mN attacker must intercept something in 40 s");

    let (af_topo, af_heat) = round_trip(&af);
    let (atk_topo, atk_heat) = round_trip(&atk);
    let meta_count = |key: &str| -> u64 {
        atk_heat.meta().get(key).expect(key).parse().expect("counter metadata")
    };
    let diff = HeatmapDiff::build(&af_heat, &atk_heat).expect("same geometry");
    let report = BlastRadiusReport::build(
        &af_topo,
        &atk_topo,
        &diff,
        meta_count("intercepted_total"),
        meta_count("last_hop_in_coverage"),
    );
    assert_eq!(report.intercepted, intercepted);
    assert!(
        report.attacker_is_gradient_local_max(),
        "the interception attacker must show up as the greedy local maximum: {report}"
    );
    assert!(
        report.last_hop_coverage_fraction() >= 0.9,
        "expected >= 90% of intercepted last hops inside attacker coverage: {report}"
    );
}

/// The blockage acceptance claim (500 m attacker, DSRC): the attack's
/// footprint shows up as a suppressed-CBF hot bin at the victim region
/// around the attacker's x = 2000 m position.
#[test]
fn blockage_diff_localizes_the_suppression_hot_bin() {
    let cfg = cfg(500.0);
    let af = run_blockage(&cfg, false, 42, DEFAULT_SNAPSHOT_INTERVAL);
    let atk = run_blockage(&cfg, true, 42, DEFAULT_SNAPSHOT_INTERVAL);
    let (_, af_heat) = round_trip(&af);
    let (_, atk_heat) = round_trip(&atk);
    let diff = HeatmapDiff::build(&af_heat, &atk_heat).expect("same geometry");
    let hot = diff
        .hottest_suppression_bin()
        .expect("the blockage attacker must suppress CBF timers somewhere");
    let center = (hot.x_lo + hot.x_hi) / 2.0;
    assert!(
        (center - cfg.attacker_position.x).abs() <= cfg.attack_range,
        "hottest suppression bin at {center} m, attacker at {} m (range {} m)",
        cfg.attacker_position.x,
        cfg.attack_range
    );
    assert!(hot.atk.cbf_by_attacker > af_heat.totals().cbf_by_attacker);
}

/// The determinism acceptance test: two attacked same-seed runs
/// serialize to byte-identical topology and heatmap artifacts (what the
/// CI smoke enforces end-to-end through the `repro` binary).
#[test]
fn same_seed_topology_runs_are_byte_identical() {
    let cfg = cfg(486.0);
    let a = run_interarea(&cfg, true, 42, DEFAULT_SNAPSHOT_INTERVAL);
    let b = run_interarea(&cfg, true, 42, DEFAULT_SNAPSHOT_INTERVAL);
    assert_eq!(a.topo.to_json(), b.topo.to_json(), "same seed, same snapshots");
    assert_eq!(a.heatmap.to_json(), b.heatmap.to_json(), "same seed, same heatmap");
    let a_dot: String = a.topo.snapshots.iter().map(|s| s.to_dot()).collect();
    let b_dot: String = b.topo.snapshots.iter().map(|s| s.to_dot()).collect();
    assert_eq!(a_dot, b_dot, "same seed, same DOT rendering");
}
