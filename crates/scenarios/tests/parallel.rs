//! Determinism of the parallel campaign runner: every campaign family
//! must produce byte-identical reports — and byte-identical audit
//! artifacts — under `--jobs 1` and `--jobs 4`.
//!
//! The job pool hands results back in seed-index order, so the merged
//! [`AbResult`]s are supposed to be *exactly* the sequential values, not
//! merely statistically equivalent; these tests pin that with `Debug`
//! byte comparisons (every counter, every bin).

use geonet_scenarios::config::Scale;
use geonet_scenarios::{interarea, intraarea, mitigation, parallel, ScenarioConfig};
use geonet_sim::{shared_auditor, SimDuration};

/// Runs `f` under `jobs` workers, restoring the sequential default so a
/// panicking assertion cannot leak pool state into later code.
fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            parallel::set_jobs(1);
        }
    }
    let _reset = Reset;
    parallel::set_jobs(jobs);
    f()
}

const SCALE: Scale = Scale { runs: 3, duration_s: 30 };

// The job count is process-global and the test harness runs #[test] fns
// concurrently, so the whole matrix lives in one test body.
#[test]
fn campaigns_and_audits_are_byte_identical_across_jobs() {
    // interarea: report equality and bytes.
    let cfg = ScenarioConfig::paper_dsrc_default();
    let seq = with_jobs(1, || interarea::run_ab(&cfg, "jobs-test", SCALE, 42));
    let par = with_jobs(4, || interarea::run_ab(&cfg, "jobs-test", SCALE, 42));
    assert_eq!(seq, par);
    assert_eq!(format!("{seq:?}"), format!("{par:?}"));

    // intraarea: bins are folded inside the jobs; still identical.
    let seq = with_jobs(1, || intraarea::run_ab(&cfg, "jobs-test", SCALE, 42));
    let par = with_jobs(4, || intraarea::run_ab(&cfg, "jobs-test", SCALE, 42));
    assert_eq!(seq, par);
    assert_eq!(format!("{seq:?}"), format!("{par:?}"));

    // intraarea source split: one simulation per seeded pair, filtered
    // per region — the restructured driver must match itself across
    // pool widths.
    let seq = with_jobs(1, || intraarea::fig9_source_split(SCALE, 42));
    let par = with_jobs(4, || intraarea::fig9_source_split(SCALE, 42));
    assert_eq!(seq, par);
    assert_eq!(format!("{seq:?}"), format!("{par:?}"));

    // mitigation: merged interarea and intraarea drivers both under the
    // pool (fig14a exercises the former, fig14b the latter).
    let small = Scale { runs: 2, duration_s: 30 };
    let seq = with_jobs(1, || mitigation::fig14a(small, 42));
    let par = with_jobs(4, || mitigation::fig14a(small, 42));
    assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    let seq = with_jobs(1, || mitigation::fig14b(small, 42));
    let par = with_jobs(4, || mitigation::fig14b(small, 42));
    assert_eq!(format!("{seq:?}"), format!("{par:?}"));

    // PR 3 audit digests: per-seed artifacts built *inside* the jobs
    // serialize to the same bytes whichever pool width produced them.
    // (Worlds and their Rc-based recorders are created per job and only
    // the serialized String crosses the thread boundary.)
    let audit_artifacts = |jobs: usize| {
        with_jobs(jobs, || {
            parallel::run_indexed(3, |i| {
                let cfg = cfg.with_duration(SimDuration::from_secs(20));
                let auditor = shared_auditor(SimDuration::from_secs(5));
                let _ = interarea::run_one_audited(
                    &cfg,
                    true,
                    42 + u64::from(i),
                    None,
                    auditor.clone(),
                );
                let json = auditor.borrow().to_artifact().to_json();
                json
            })
        })
    };
    assert_eq!(audit_artifacts(1), audit_artifacts(4));
}
