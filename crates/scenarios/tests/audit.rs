//! Integration tests of the audit chain: digest timelines recorded from
//! real scenario runs, artifact round-trips, divergence diffing, and the
//! online invariant checker over real traces.

use geonet_scenarios::{interarea, intraarea, ScenarioConfig};
use geonet_sim::{
    diff_artifacts, shared, shared_auditor, AuditArtifact, InvariantChecker, InvariantParams,
    SimDuration, TraceEvent, TraceSink, VecSink,
};

/// A short but non-trivial scenario: long enough for beacons, GF
/// forwarding and CBF contention to all fire.
fn short_cfg() -> ScenarioConfig {
    ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(5))
}

fn params(cfg: &ScenarioConfig) -> InvariantParams {
    InvariantParams { to_min: cfg.gn.to_min, to_max: cfg.gn.to_max, loct_ttl: cfg.gn.loct_ttl }
}

fn audited_artifact(cfg: &ScenarioConfig, attacked: bool, seed: u64) -> AuditArtifact {
    let auditor = shared_auditor(SimDuration::from_secs(1));
    let _ = interarea::run_one_audited(cfg, attacked, seed, None, auditor.clone());
    let artifact = auditor.borrow().to_artifact();
    assert!(!artifact.checkpoints.is_empty(), "a 5 s run must produce checkpoints");
    artifact
}

/// The determinism acceptance test: two attacked runs with the same seed
/// serialize to byte-identical artifacts, and the diff agrees.
#[test]
fn same_seed_audited_runs_are_byte_identical() {
    let cfg = short_cfg().with_attack_range(486.0);
    let a = audited_artifact(&cfg, true, 42);
    let b = audited_artifact(&cfg, true, 42);
    assert_eq!(a.to_json(), b.to_json(), "same seed must give byte-identical artifacts");
    let report = diff_artifacts(&a, &b);
    assert!(report.identical(), "diff must agree: {report}");
}

/// Different seeds must diverge — the digests actually depend on run
/// state rather than hashing constants.
#[test]
fn different_seeds_diverge() {
    let cfg = short_cfg().with_attack_range(486.0);
    let a = audited_artifact(&cfg, true, 42);
    let b = audited_artifact(&cfg, true, 43);
    assert!(!diff_artifacts(&a, &b).identical(), "different seeds must diverge");
}

/// The forensic acceptance test: a baseline-vs-attacked pair reports a
/// first diverging checkpoint with named components and a join window.
#[test]
fn baseline_vs_attacked_diff_names_checkpoint_and_components() {
    let cfg = short_cfg().with_attack_range(486.0);
    let baseline = audited_artifact(&cfg, false, 42);
    let attacked = audited_artifact(&cfg, true, 42);
    let report = diff_artifacts(&baseline, &attacked);
    assert!(!report.identical());
    assert!(
        report.meta_differences.iter().any(|(k, _, _)| k == "attacked"),
        "the attacked flag must show up as a metadata difference"
    );
    let d = report.first_divergence.clone().expect("an attacked run must diverge from baseline");
    assert!(!d.components.is_empty(), "the diverging components must be named");
    assert!(d.window_start < d.at, "the join window must be non-empty");
    let text = report.to_string();
    assert!(text.contains("DIVERGENCE at checkpoint"), "got: {text}");
}

/// Artifacts survive the serialize → parse round trip with metadata and
/// digests intact.
#[test]
fn artifact_round_trips_through_json() {
    let cfg = short_cfg().with_attack_range(486.0);
    let a = audited_artifact(&cfg, true, 42);
    let parsed = AuditArtifact::from_json(&a.to_json()).expect("own output must parse");
    assert_eq!(parsed.meta.get("scenario").map(String::as_str), Some("interarea"));
    assert!(diff_artifacts(&a, &parsed).identical());
}

/// Every shipped tier-1 scenario — both families, baseline and attacked
/// — satisfies the forwarding invariants.
#[test]
fn invariant_checker_passes_on_shipped_scenarios() {
    let cfg = short_cfg();
    for attacked in [false, true] {
        let checker = shared(InvariantChecker::new(params(&cfg)));
        let _ =
            interarea::run_one_traced(&cfg.with_attack_range(486.0), attacked, 42, checker.clone());
        let c = checker.borrow();
        assert!(c.ok(), "interarea attacked={attacked}: {}", c.summary());
        assert!(c.events_checked() > 0);
    }
    for attacked in [false, true] {
        let checker = shared(InvariantChecker::new(params(&cfg)));
        let _ =
            intraarea::run_one_traced(&cfg.with_attack_range(500.0), attacked, 42, checker.clone());
        let c = checker.borrow();
        assert!(c.ok(), "intraarea attacked={attacked}: {}", c.summary());
        assert!(c.events_checked() > 0);
    }
}

/// The injection acceptance test: replaying a real run's trace passes,
/// but re-injecting one of its CBF fires — a duplicate forward — is
/// caught with the offending event's index cited.
#[test]
fn injected_duplicate_forward_is_caught() {
    let cfg = short_cfg().with_attack_range(500.0);
    let sink = shared(VecSink::new());
    let _ = intraarea::run_one_traced(&cfg, true, 42, sink.clone());
    let records = sink.borrow().records().to_vec();
    let fired = records
        .iter()
        .find(|r| matches!(r.event, TraceEvent::CbfFired { .. }))
        .expect("the blockage scenario exercises CBF")
        .clone();

    let mut checker = InvariantChecker::new(params(&cfg));
    for r in &records {
        checker.record(r.at, r.node, &r.event);
    }
    assert!(checker.ok(), "the clean trace must pass: {}", checker.summary());

    checker.record(fired.at, fired.node, &fired.event);
    let v = checker.first_violation().expect("the duplicate forward must be flagged");
    assert_eq!(v.rule, "no-reforward");
    assert_eq!(v.event_index, records.len() as u64, "the injected event must be the one cited");
    assert_eq!(v.node, fired.node);
    assert!(v.detail.contains("duplicate forward"), "got: {}", v.detail);
}
