//! Deterministic seed-indexed campaign parallelism.
//!
//! Every campaign in this crate is a loop over independent seeded runs:
//! [`World`](crate::World) is a pure function of (config, attacker setup,
//! seed), so run *i* of a campaign depends on nothing but its own derived
//! seed. [`run_indexed`] exploits that: it fans the per-index closures
//! over a pool of `std::thread::scope` workers and hands the results back
//! **in index order**, so callers merge them exactly as the sequential
//! loop would have.
//!
//! # Why determinism survives parallelism
//!
//! * Each job builds its own `World`, RNGs, sinks and collectors — no
//!   state is shared between jobs, only the `Send` results cross threads.
//! * Results land in a per-index slot; the worker that computed them and
//!   the order jobs finished in are both invisible to the caller.
//! * The merge step ([`TimeBins::merge`](geonet_sim::metrics::TimeBins)
//!   and friends) therefore consumes the same values in the same order as
//!   `for i in 0..runs`, making campaign reports and audit artifacts
//!   byte-identical across `--jobs 1` and `--jobs N` — a property pinned
//!   by `tests/parallel.rs` and CI's byte-compare.
//!
//! The pool width is a process-wide setting ([`set_jobs`], surfaced as
//! `repro --jobs N`) so sweep drivers nested several calls deep need no
//! plumbing. With 1 job the pool is bypassed entirely — the sequential
//! path is the plain loop it always was.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Process-wide worker count for [`run_indexed`]; 1 = sequential.
static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the number of worker threads campaign loops may use. Values are
/// clamped to at least 1; 1 selects the plain sequential loop.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The currently configured worker count (see [`set_jobs`]).
#[must_use]
pub fn jobs() -> usize {
    JOBS.load(Ordering::SeqCst)
}

/// The parallelism the host advertises, with a sequential fallback when
/// it cannot say — the default for `repro --jobs`.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0), f(1), …, f(count - 1)` and returns the results in index
/// order, fanning the calls across [`jobs`] scoped worker threads.
///
/// `f` must be independent per index (in this crate: one seeded
/// simulation run). Workers pull the next unclaimed index from a shared
/// counter, so long and short runs load-balance; completed results are
/// parked in per-index slots until every index is done. With `jobs() <=
/// 1` (or a single index) this is exactly the sequential loop, running
/// on the caller's thread.
///
/// # Panics
///
/// A panic inside any job propagates to the caller once the scope joins,
/// matching the sequential loop's fail-fast behaviour.
pub fn run_indexed<T, F>(count: u32, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    let workers = jobs().min(count as usize);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count as usize {
                    break;
                }
                let result = f(i as u32);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every index claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests below mutate the process-wide job count, and the test
    // harness runs #[test] fns concurrently — so everything lives in one
    // test body, restoring jobs = 1 at the end.
    #[test]
    fn run_indexed_is_order_preserving_and_jobs_aware() {
        // Sequential path.
        set_jobs(1);
        assert_eq!(jobs(), 1);
        assert_eq!(run_indexed(4, |i| i * 10), vec![0, 10, 20, 30]);
        // Parallel path returns the same thing, in the same order, even
        // when jobs exceed the index count.
        set_jobs(8);
        assert_eq!(jobs(), 8);
        let out = run_indexed(100, |i| u64::from(i) * 3 + 1);
        assert_eq!(out, (0..100u64).map(|i| i * 3 + 1).collect::<Vec<_>>());
        // Zero indices is fine on both paths.
        assert!(run_indexed(0, |i| i).is_empty());
        set_jobs(1);
        assert!(run_indexed(0, |i| i).is_empty());
        // set_jobs clamps to at least one worker.
        set_jobs(0);
        assert_eq!(jobs(), 1);
        assert!(available_jobs() >= 1);
    }
}
