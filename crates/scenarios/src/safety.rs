//! Road-safety impact: the blind-curve collision case study (paper
//! Figure 13 / Figure 11b).
//!
//! Two vehicles approach a curve from opposite sides. Terrain blocks the
//! direct radio path, so a roadside unit (R1) at the curve's outer edge
//! relays between them. V1 spots a hazard on its lane, swerves into the
//! oncoming lane and GeoBroadcasts a lane-change warning; attacker-free,
//! R1's CBF re-broadcast reaches V2, which slows early and the vehicles
//! never meet in the same lane. Under the Spot-2 intra-area blockage
//! variant, the attacker (sitting beside R1) replays the warning at
//! minimal transmission power so that *only R1* hears it: R1 discards its
//! buffered copy as a duplicate, V2 is never warned, and the late
//! emergency braking cannot prevent the head-on collision.
//!
//! This module uses the protocol stack directly (routers + medium +
//! attacker, no road traffic model) with scripted longitudinal kinematics
//! matching the paper's speed profiles: V1 at 27 m/s and V2 at 14 m/s,
//! both comfort-braking at 2 m/s², warned deceleration 4 m/s², emergency
//! braking 6 m/s² once the drivers see each other across the curve.

use geonet::{CertificateAuthority, Frame, GnAddress, GnConfig, GnRouter, RouterAction};
use geonet_attack::{BlockageMode, IntraAreaAttacker};
use geonet_geo::{Area, GeoReference, Heading, Position};
use geonet_radio::Medium;
use geonet_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Scenario geometry and kinematics (all tunable for ablations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyConfig {
    /// V1 initial longitudinal position, metres (moving towards +x).
    pub v1_start_x: f64,
    /// V1 initial speed, m/s (paper: 27).
    pub v1_speed: f64,
    /// V2 initial position, metres (moving towards −x).
    pub v2_start_x: f64,
    /// V2 initial speed, m/s (paper: 14).
    pub v2_speed: f64,
    /// Comfort deceleration while approaching the curve (paper: 2 m/s²).
    pub comfort_decel: f64,
    /// Deceleration after receiving the warning (paper: 4 m/s²).
    pub warned_decel: f64,
    /// Emergency deceleration once the drivers see each other (6 m/s²).
    pub emergency_decel: f64,
    /// Sight distance across the obstructed curve, metres.
    pub sight_distance: f64,
    /// Radio range of the vehicles and R1 (short: the curve is NLoS).
    pub radio_range: f64,
    /// Time at which V1 detects the hazard, swerves and warns, seconds.
    pub warn_time: f64,
    /// V1 occupies the oncoming lane while its position is below this
    /// (end of the blocked stretch).
    pub lane_return_x: f64,
    /// Speed V1 holds while passing the hazard.
    pub v1_pass_speed: f64,
    /// Floor speed V2 settles at after its (comfort or warned) braking.
    pub v2_floor_speed: f64,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig {
            v1_start_x: -200.0,
            v1_speed: 27.0,
            v2_start_x: 200.0,
            v2_speed: 14.0,
            comfort_decel: 2.0,
            warned_decel: 4.0,
            emergency_decel: 6.0,
            sight_distance: 10.0,
            radio_range: 250.0,
            warn_time: 1.0,
            lane_return_x: 100.0,
            v1_pass_speed: 12.0,
            v2_floor_speed: 2.0,
        }
    }
}

/// The outcome of one run of the case study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyOutcome {
    /// Whether the attacker was present.
    pub attacked: bool,
    /// Did V2 ever receive the lane-change warning?
    pub v2_warned: bool,
    /// Did the vehicles collide?
    pub collision: bool,
    /// Time of the collision, seconds, if any.
    pub collision_time: Option<f64>,
    /// `(t, speed)` samples of V1 at 10 Hz (paper Figure 13a).
    pub v1_profile: Vec<(f64, f64)>,
    /// `(t, speed)` samples of V2 at 10 Hz (paper Figure 13b).
    pub v2_profile: Vec<(f64, f64)>,
    /// Minimum same-lane gap observed, metres.
    pub min_gap: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum V2Mode {
    Cruising,
    Warned,
}

/// Runs the case study once.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(cfg: &SafetyConfig, attacked: bool) -> SafetyOutcome {
    let reference = GeoReference::default();
    let ca = CertificateAuthority::new(0x5AFE);
    let gn = GnConfig::paper_default(1_283.0);

    let mut medium = Medium::new();
    let v1_node = medium.register(Position::new(cfg.v1_start_x, 0.0), cfg.radio_range);
    let v2_node = medium.register(Position::new(cfg.v2_start_x, 0.0), cfg.radio_range);
    let _r1_node = medium.register(Position::new(0.0, 40.0), cfg.radio_range);
    let mut routers = [
        GnRouter::new(ca.enroll(GnAddress::vehicle(1)), ca.verifier(), gn, reference),
        GnRouter::new(ca.enroll(GnAddress::vehicle(2)), ca.verifier(), gn, reference),
        GnRouter::new(ca.enroll(GnAddress::roadside(1)), ca.verifier(), gn, reference),
    ];
    let mut attacker = attacked.then(|| {
        // Spot 2: beside R1; replay at minimal power so only R1 hears.
        medium.register(Position::new(2.0, 40.0), cfg.radio_range);
        IntraAreaAttacker::new(
            Position::new(2.0, 40.0),
            BlockageMode::PowerControlled { range: 5.0 },
        )
    });
    let attacker_node = attacked.then_some(geonet_radio::NodeId(3));

    // Event loop: (time, deliver-to, frame) plus CBF timers, kept simple
    // with an explicit queue keyed by integer microseconds.
    let mut kernel: geonet_sim::Kernel<Ev> = geonet_sim::Kernel::new();
    #[derive(Debug, Clone)]
    enum Ev {
        Deliver { to: geonet_radio::NodeId, frame: Frame },
        CbfTimer { node: geonet_radio::NodeId, key: geonet::PacketKey, generation: u64 },
        AttackerTx { frame: Frame, cap: Option<f64> },
    }

    let dt = 0.1_f64;
    let mut t = 0.0_f64;
    let mut x1 = cfg.v1_start_x;
    let mut v1 = cfg.v1_speed;
    let mut x2 = cfg.v2_start_x;
    let mut v2 = cfg.v2_speed;
    let mut v1_in_oncoming = false;
    let mut warned_sent = false;
    let mut v2_mode = V2Mode::Cruising;
    let mut v2_warned = false;
    let mut emergency = false;
    let mut collision_time = None;
    let mut min_gap = f64::INFINITY;
    let mut v1_profile = Vec::new();
    let mut v2_profile = Vec::new();
    // The warning's destination area: the whole curve neighbourhood.
    let warn_area = Area::circle(Position::new(0.0, 0.0), 600.0);

    let steps = (40.0 / dt) as usize;
    for _ in 0..steps {
        let now = SimTime::from_secs_f64(t);
        // --- Protocol events due by `now`. ---
        while kernel.peek_time().map(|pt| pt <= now).unwrap_or(false) {
            let (_, ev) = kernel.pop().expect("peeked");
            match ev {
                Ev::Deliver { to, frame } => {
                    if Some(to) == attacker_node {
                        if let Some(atk) = attacker.as_mut() {
                            if let Some(order) = atk.on_sniff(&frame, now) {
                                kernel.schedule_in(
                                    order.delay,
                                    Ev::AttackerTx { frame: order.frame, cap: order.range_cap },
                                );
                            }
                        }
                        continue;
                    }
                    let pos = medium.position(to);
                    let rt = kernel.now();
                    let actions = routers[to.index()].handle_frame(&frame, pos, rt);
                    for a in actions {
                        match a {
                            RouterAction::Transmit(f) => {
                                for rx in medium.receivers(to) {
                                    let d = medium.propagation_delay(to, rx);
                                    kernel.schedule_in(d, Ev::Deliver { to: rx, frame: f.clone() });
                                }
                            }
                            RouterAction::Deliver { .. } => {
                                if to == v2_node {
                                    v2_warned = true;
                                    v2_mode = V2Mode::Warned;
                                }
                            }
                            RouterAction::CbfTimer { key, generation, delay } => {
                                kernel
                                    .schedule_in(delay, Ev::CbfTimer { node: to, key, generation });
                            }
                            RouterAction::GfRetry { .. } => {
                                // The curve scenario broadcasts within the
                                // area; GF never buffers here.
                            }
                        }
                    }
                }
                Ev::CbfTimer { node, key, generation } => {
                    let pos = medium.position(node);
                    let rt = kernel.now();
                    let actions = routers[node.index()].handle_cbf_timer(key, generation, pos, rt);
                    for a in actions {
                        if let RouterAction::Transmit(f) = a {
                            for rx in medium.receivers(node) {
                                let d = medium.propagation_delay(node, rx);
                                kernel.schedule_in(d, Ev::Deliver { to: rx, frame: f.clone() });
                            }
                        }
                    }
                }
                Ev::AttackerTx { frame, cap } => {
                    if let Some(an) = attacker_node {
                        let cap = cap.unwrap_or_else(|| medium.tx_range(an));
                        for rx in medium.receivers_within(an, cap) {
                            let d = medium.propagation_delay(an, rx);
                            kernel.schedule_in(d, Ev::Deliver { to: rx, frame: frame.clone() });
                        }
                    }
                }
            }
        }

        // --- The warning broadcast. ---
        if !warned_sent && t >= cfg.warn_time {
            warned_sent = true;
            v1_in_oncoming = true;
            let pos = Position::new(x1, 0.0);
            let rt = SimTime::from_secs_f64(t);
            // Scheduling into the kernel requires now >= kernel.now; feed
            // the kernel a no-op time advance by scheduling at `rt`.
            let (_, actions) = routers[v1_node.index()].originate(
                &warn_area,
                vec![0x7A],
                rt,
                pos,
                v1,
                Heading::EAST,
            );
            for a in actions {
                if let RouterAction::Transmit(f) = a {
                    for rx in medium.receivers(v1_node) {
                        let d = medium.propagation_delay(v1_node, rx);
                        kernel.schedule_at(rt + d, Ev::Deliver { to: rx, frame: f.clone() });
                    }
                }
            }
        }

        // --- Kinematics. ---
        let gap = x2 - x1;
        if v1_in_oncoming && x1 >= cfg.lane_return_x {
            v1_in_oncoming = false; // passed the blockage, back to own lane
        }
        let same_lane = v1_in_oncoming;
        if same_lane && gap <= cfg.sight_distance {
            emergency = true;
        }
        if same_lane && gap <= 0.0 && collision_time.is_none() && (v1 > 0.0 || v2 > 0.0) {
            collision_time = Some(t);
        }
        if same_lane {
            min_gap = min_gap.min(gap);
        }

        let a1 = if emergency {
            -cfg.emergency_decel
        } else if t < cfg.warn_time {
            -cfg.comfort_decel
        } else if v1 > cfg.v1_pass_speed {
            -cfg.warned_decel
        } else {
            0.0
        };
        let a2 = if emergency {
            -cfg.emergency_decel
        } else {
            match v2_mode {
                V2Mode::Cruising => {
                    if v2 > cfg.v2_floor_speed + 6.0 {
                        -cfg.comfort_decel
                    } else {
                        0.0
                    }
                }
                V2Mode::Warned => {
                    if v2 > cfg.v2_floor_speed {
                        -cfg.warned_decel
                    } else {
                        0.0
                    }
                }
            }
        };
        let v1_new = (v1 + a1 * dt).max(0.0);
        let v2_new = (v2 + a2 * dt).max(0.0);
        x1 += (v1 + v1_new) / 2.0 * dt;
        x2 -= (v2 + v2_new) / 2.0 * dt;
        v1 = v1_new;
        v2 = v2_new;
        medium.set_position(v1_node, Position::new(x1, 0.0));
        medium.set_position(v2_node, Position::new(x2, 0.0));
        v1_profile.push((t, v1));
        v2_profile.push((t, v2));
        t += dt;

        if collision_time.is_some() {
            break;
        }
    }

    SafetyOutcome {
        attacked,
        v2_warned,
        collision: collision_time.is_some(),
        collision_time,
        v1_profile,
        v2_profile,
        min_gap,
    }
}

/// Figure 13: `(attacker-free, attacked)` outcomes with the default
/// scenario.
#[must_use]
pub fn fig13() -> (SafetyOutcome, SafetyOutcome) {
    let cfg = SafetyConfig::default();
    (run(&cfg, false), run(&cfg, true))
}

/// Sweeps the sight distance across the blind curve: with enough visual
/// warning, emergency braking saves the vehicles even when the radio
/// warning is blocked. Returns `(sight distance, attacked collision?)`.
#[must_use]
pub fn sight_distance_sweep(distances: &[f64]) -> Vec<(f64, bool)> {
    distances
        .iter()
        .map(|&d| {
            let cfg = SafetyConfig { sight_distance: d, ..SafetyConfig::default() };
            (d, run(&cfg, true).collision)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacker_free_warning_arrives_and_no_collision() {
        let out = run(&SafetyConfig::default(), false);
        assert!(out.v2_warned, "R1 relay failed");
        assert!(!out.collision, "collision despite warning (min gap {})", out.min_gap);
    }

    #[test]
    fn attacked_warning_blocked_and_collision() {
        let out = run(&SafetyConfig::default(), true);
        assert!(!out.v2_warned, "Spot-2 replay failed to silence R1");
        assert!(out.collision, "no collision despite blocked warning (min gap {})", out.min_gap);
        assert!(out.collision_time.is_some());
    }

    #[test]
    fn speed_profiles_are_sampled() {
        let (af, atk) = fig13();
        assert!(af.v1_profile.len() > 50);
        assert!(atk.v2_profile.len() > 50);
        // V1 starts at 27 m/s and decelerates.
        assert!((af.v1_profile[0].1 - 27.0).abs() < 0.5);
        let final_v1 = af.v1_profile.last().unwrap().1;
        assert!(final_v1 < 27.0);
    }

    #[test]
    fn enough_sight_distance_saves_them_even_attacked() {
        let results = sight_distance_sweep(&[5.0, 10.0, 120.0]);
        assert!(results[0].1, "5 m of sight cannot prevent the collision");
        assert!(results[1].1, "10 m of sight cannot prevent the collision");
        assert!(!results[2].1, "120 m of sight gives emergency braking room to stop");
    }

    #[test]
    fn warned_v2_slows_more_than_unwarned() {
        let (af, atk) = fig13();
        // Compare V2's speed 10 s in (if both ran that long).
        let at = |p: &[(f64, f64)], t: f64| {
            p.iter().find(|(pt, _)| (*pt - t).abs() < 0.05).map(|&(_, v)| v)
        };
        if let (Some(v_af), Some(v_atk)) = (at(&af.v2_profile, 8.0), at(&atk.v2_profile, 8.0)) {
            assert!(v_af < v_atk, "warned V2 ({v_af}) should be slower than unwarned ({v_atk})");
        }
    }
}
