//! Experiment harness reproducing the paper's evaluation (§IV–§V).
//!
//! This crate binds the substrates together — traffic microsimulation,
//! unit-disk radio, per-node GeoNetworking routers and the attackers —
//! into a deterministic discrete-event [`World`], and provides one driver
//! per paper table/figure:
//!
//! | module | reproduces |
//! |---|---|
//! | [`interarea`] | Figures 7a–7e and 8 (inter-area interception, γ) |
//! | [`intraarea`] | Figures 9a–9e and 10 (intra-area blockage, λ) |
//! | [`impact`] | Figure 12 (traffic-jam impact of both attacks) |
//! | [`safety`] | Figure 13 (blind-curve collision case study) |
//! | [`mitigation`] | Figures 14a/14b (plausibility + RHL-drop checks) |
//! | [`extensions`] | beyond the paper: ACK defense, lossy channels, mobile attacker |
//! | [`analysis`] | closed-form γ/λ predictions from the attack geometry |
//!
//! Campaign loops fan their independent seeded runs across worker
//! threads via [`parallel`] (seed-indexed job pool; results merge in
//! index order so reports stay byte-identical to the sequential path).
//! Long campaigns can report progress and performance telemetry: see
//! [`progress`] (per-run throughput/ETA lines) and
//! [`geonet_sim::telemetry`] (hot-path histograms and state-depth gauges,
//! attached to a world via [`World::set_telemetry`]).
//!
//! Spatial observability lives in [`heatmap`]: road-binned outcome grids
//! fed from the trace stream, their A/B diff table and the attack
//! blast-radius report, built on connectivity snapshots sampled by
//! [`geonet_sim::topo`] via [`World::set_topo_observer`].
//!
//! Every experiment is A/B: the same seeded world is run attacker-free
//! (A) and attacked (B); packet reception rates are collected in 5 s time
//! bins and γ/λ is the average per-bin drop, exactly as the paper defines
//! them.
//!
//! # Example
//!
//! ```no_run
//! use geonet_scenarios::config::Scale;
//! use geonet_scenarios::{interarea, ScenarioConfig};
//!
//! // One reduced-scale point of Figure 7a: DSRC, worst-NLoS attacker.
//! let cfg = ScenarioConfig::paper_dsrc_default(); // attack range = wN (327 m)
//! let result = interarea::run_ab(&cfg, "wN", Scale::quick(), 42);
//! println!("γ = {:.3}", result.gamma().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod extensions;
pub mod forensics;
pub mod heatmap;
pub mod impact;
pub mod interarea;
pub mod intraarea;
pub mod mitigation;
pub mod parallel;
pub mod progress;
pub mod report;
pub mod safety;
pub mod topology;
pub mod world;

pub use config::{AttackerSetup, ScenarioConfig};
pub use heatmap::{BlastRadiusReport, HeatCell, HeatmapDiff, HeatmapDiffRow, RoadHeatmap};
pub use report::{AbResult, ExperimentRow};
pub use topology::{PacketFate, TopologyRun};
pub use world::{NodeKind, World};
