//! Topology-instrumented scenario runners.
//!
//! These wrap the [`crate::interarea`] and [`crate::intraarea`]
//! workloads with the full spatial observability stack: a
//! [`geonet_sim::topo`] recorder snapshotting the connectivity graph at
//! a fixed interval, a [`RoadHeatmap`] fed from the run's trace stream,
//! and per-packet fate tracking (origin, delivery, last forwarding
//! hop). An attacker-free/attacked pair of [`TopologyRun`]s correlates
//! into interception attribution ([`correlate_interception`]) and,
//! through [`crate::heatmap::BlastRadiusReport`], the attack's spatial
//! footprint.
//!
//! The trace stream is drained once per simulated second; node
//! positions for binning are resolved at drain time, so an event's
//! position is at most one second of vehicle movement (≈ 30 m) stale —
//! well inside the default 100 m bin.

use crate::config::{AttackerSetup, ScenarioConfig};
use crate::heatmap::RoadHeatmap;
use crate::interarea::vulnerable_directions;
use crate::intraarea::road_area;
use crate::progress;
use crate::world::World;
use geonet::PacketKey;
use geonet_attack::BlockageMode;
use geonet_geo::{Area, Position};
use geonet_radio::NodeId;
use geonet_sim::{
    shared_topo, SharedSink, SimDuration, SimTime, TimeBins, TopoArtifact, TraceEvent, VecSink,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// The default connectivity-snapshot interval — one graph per paper
/// time bin.
pub const DEFAULT_SNAPSHOT_INTERVAL: SimDuration = SimDuration::from_secs(5);

/// A blockage flood counts as delivered when it reached at least this
/// fraction of the vehicles that were on the road at generation time.
const FLOOD_DELIVERED_THRESHOLD: f64 = 0.95;

/// One packet's spatial fate within a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketFate {
    /// The packet.
    pub key: PacketKey,
    /// Generation time.
    pub generated_at: SimTime,
    /// Longitudinal position of the source at generation time.
    pub origin_x: f64,
    /// Whether the packet counts as delivered (destination reception
    /// for interception runs; a ≥ 95% flood for blockage runs).
    pub delivered: bool,
    /// Longitudinal position of the last node that made a forwarding
    /// decision for this packet (the origin, until someone forwards).
    pub last_hop_x: f64,
    /// When that last forwarding decision happened.
    pub last_hop_at: SimTime,
    /// Whether that node sat inside the attacker's coverage at the
    /// time (always `false` in attacker-free runs).
    pub last_hop_in_coverage: bool,
}

/// Everything one topology-instrumented run produces.
#[derive(Debug, Clone)]
pub struct TopologyRun {
    /// The scenario's usual 5 s reception bins.
    pub bins: TimeBins,
    /// The connectivity-snapshot timeline.
    pub topo: TopoArtifact,
    /// The road-binned outcome grid.
    pub heatmap: RoadHeatmap,
    /// Per-packet fates, in generation order.
    pub packets: Vec<PacketFate>,
}

/// Whether the attacker's coverage disk contains `pos` at time `at`
/// (accounts for the mobile-attacker extension).
fn attacker_covers(cfg: &ScenarioConfig, pos: Position, at: SimTime) -> bool {
    let ax = cfg.attacker_position.x + cfg.attacker_velocity * at.as_secs_f64();
    let dx = pos.x - ax;
    let dy = pos.y - cfg.attacker_position.y;
    (dx * dx + dy * dy).sqrt() <= cfg.attack_range
}

/// The drain-side of the instrumentation: consumes the trace stream
/// incrementally, feeding the heatmap and the per-packet fates.
struct Instrument {
    sink: Rc<RefCell<VecSink>>,
    heatmap: RoadHeatmap,
    attacker_addr: Option<u64>,
    attacked: bool,
    index: BTreeMap<(u64, u16), usize>,
    packets: Vec<PacketFate>,
}

impl Instrument {
    fn new(cfg: &ScenarioConfig, w: &mut World, scenario: &str, attacked: bool, seed: u64) -> Self {
        let sink = Rc::new(RefCell::new(VecSink::new()));
        w.set_trace_sink(sink.clone() as SharedSink);
        let mut heatmap = RoadHeatmap::new(cfg.road.length, cfg.duration);
        heatmap.set_meta("scenario", scenario);
        heatmap.set_meta("seed", seed.to_string());
        heatmap.set_meta("attacked", attacked.to_string());
        heatmap.set_meta("attack_range_m", format!("{:.1}", cfg.attack_range));
        heatmap.set_meta("v2v_range_m", format!("{:.1}", cfg.v2v_range));
        Instrument {
            sink,
            heatmap,
            attacker_addr: w.attacker_address(),
            attacked,
            index: BTreeMap::new(),
            packets: Vec::new(),
        }
    }

    fn track(&mut self, key: PacketKey, at: SimTime, origin_x: f64, covered: bool) {
        self.index.insert((key.source.to_u64(), key.sn.0), self.packets.len());
        self.packets.push(PacketFate {
            key,
            generated_at: at,
            origin_x,
            delivered: false,
            last_hop_x: origin_x,
            last_hop_at: at,
            last_hop_in_coverage: self.attacked && covered,
        });
    }

    fn drain(&mut self, cfg: &ScenarioConfig, w: &World) {
        let records = self.sink.borrow_mut().drain();
        for rec in records {
            match &rec.event {
                TraceEvent::GfNextHop { packet, .. }
                | TraceEvent::CbfFired { packet }
                | TraceEvent::GfFallback { packet } => {
                    if let Some(&i) = self.index.get(&(packet.source, packet.sn)) {
                        let pos = w.node_position(NodeId(rec.node));
                        let p = &mut self.packets[i];
                        p.last_hop_x = pos.x;
                        p.last_hop_at = rec.at;
                        p.last_hop_in_coverage = self.attacked && attacker_covers(cfg, pos, rec.at);
                    }
                }
                TraceEvent::Dropped { .. } | TraceEvent::CbfCancelled { .. } => {
                    let x = w.node_position(NodeId(rec.node)).x;
                    self.heatmap.record_event(x, rec.at, &rec.event, self.attacker_addr);
                }
                _ => {}
            }
        }
    }
}

fn stamp_topo(
    topo: &geonet_sim::SharedTopo,
    cfg: &ScenarioConfig,
    scenario: &str,
    attacked: bool,
    seed: u64,
) {
    let mut rec = topo.borrow_mut();
    rec.set_meta("scenario", scenario);
    rec.set_meta("seed", seed.to_string());
    rec.set_meta("attacked", attacked.to_string());
    rec.set_meta("attack_range_m", format!("{:.1}", cfg.attack_range));
    rec.set_meta("v2v_range_m", format!("{:.1}", cfg.v2v_range));
}

/// Runs the inter-area interception workload (one vulnerable packet per
/// second towards the road-end destinations, as in
/// [`crate::interarea::run_one`]) with full topology instrumentation.
/// Snapshot gradients are graded toward the east destination — the
/// direction the paper's Figure 6 analysis follows.
#[must_use]
pub fn run_interarea(
    cfg: &ScenarioConfig,
    attacked: bool,
    seed: u64,
    interval: SimDuration,
) -> TopologyRun {
    let started = progress::run_started();
    let duration_s = cfg.duration.as_secs();
    let mut bins = TimeBins::new(
        SimDuration::from_secs(5),
        usize::try_from(duration_s.div_ceil(5)).expect("bin count fits"),
    );
    let mut w = World::new(*cfg, attacked.then_some(AttackerSetup::InterArea), seed);
    let mut inst = Instrument::new(cfg, &mut w, "interarea", attacked, seed);
    let topo = shared_topo(interval);
    stamp_topo(&topo, cfg, "interarea", attacked, seed);
    w.set_topo_observer(topo.clone());
    let length = cfg.road.length;
    let east_node = w.add_static_node(Position::new(length + 20.0, 2.5), cfg.v2v_range);
    let west_node = w.add_static_node(Position::new(-20.0, 2.5), cfg.v2v_range);
    let east_area = Area::circle(Position::new(length + 20.0, 0.0), 40.0);
    let west_area = Area::circle(Position::new(-20.0, 0.0), 40.0);
    w.set_topo_destination(Position::new(length + 20.0, 0.0));

    let mut dests: Vec<NodeId> = Vec::new();
    for t in 1..duration_s {
        w.run_until(SimTime::from_secs(t));
        inst.drain(cfg, &w);
        let mut chosen = None;
        for _ in 0..16 {
            let Some(vid) = w.random_on_road_vehicle() else { break };
            let node = w.vehicle_node(vid);
            let x = w.node_position(node).x;
            let (east_ok, west_ok) = vulnerable_directions(cfg, x);
            let eastbound = match (east_ok, west_ok) {
                (true, true) => w.workload_coin(),
                (true, false) => true,
                (false, true) => false,
                (false, false) => continue,
            };
            chosen = Some((node, eastbound));
            break;
        }
        let Some((node, eastbound)) = chosen else { continue };
        let (area, dest) =
            if eastbound { (&east_area, east_node) } else { (&west_area, west_node) };
        let pos = w.node_position(node);
        let key = w.originate_from(node, area, vec![0x5A]);
        let covered = attacker_covers(cfg, pos, w.now());
        inst.track(key, w.now(), pos.x, covered);
        dests.push(dest);
    }
    w.run_to_end();
    inst.drain(cfg, &w);
    let Instrument { mut heatmap, mut packets, .. } = inst;
    for (p, dest) in packets.iter_mut().zip(&dests) {
        p.delivered = w.was_received(p.key, *dest);
        bins.record(p.generated_at, p.delivered);
        heatmap.record_packet(p.origin_x, p.generated_at, p.delivered);
    }
    progress::run_completed(started, w.events_processed(), cfg.duration);
    let artifact = topo.borrow().to_artifact();
    TopologyRun { bins, topo: artifact, heatmap, packets }
}

/// Runs the intra-area blockage workload (one whole-road GeoBroadcast
/// per second, as in [`crate::intraarea::run_one`]) with full topology
/// instrumentation. A packet counts as *delivered* when its flood
/// reached at least 95% of the vehicles on the road at generation time;
/// no gradient destination is set (a flood has none), so snapshots
/// carry connectivity and coverage analytics only.
#[must_use]
pub fn run_blockage(
    cfg: &ScenarioConfig,
    attacked: bool,
    seed: u64,
    interval: SimDuration,
) -> TopologyRun {
    let started = progress::run_started();
    let duration_s = cfg.duration.as_secs();
    let mut bins = TimeBins::new(
        SimDuration::from_secs(5),
        usize::try_from(duration_s.div_ceil(5)).expect("bin count fits"),
    );
    let mode = BlockageMode::ClampRhl;
    let mut w = World::new(*cfg, attacked.then_some(AttackerSetup::IntraArea(mode)), seed);
    let mut inst = Instrument::new(cfg, &mut w, "intraarea", attacked, seed);
    let topo = shared_topo(interval);
    stamp_topo(&topo, cfg, "intraarea", attacked, seed);
    w.set_topo_observer(topo.clone());
    let area = road_area(cfg);

    let mut audiences: Vec<Vec<NodeId>> = Vec::new();
    for t in 1..duration_s {
        w.run_until(SimTime::from_secs(t));
        inst.drain(cfg, &w);
        let Some(vid) = w.random_on_road_vehicle() else { continue };
        let node = w.vehicle_node(vid);
        let snapshot = w.on_road_nodes();
        let pos = w.node_position(node);
        let key = w.originate_from(node, &area, vec![0xCB]);
        let covered = attacker_covers(cfg, pos, w.now());
        inst.track(key, w.now(), pos.x, covered);
        audiences.push(snapshot);
    }
    w.run_to_end();
    inst.drain(cfg, &w);
    let Instrument { mut heatmap, mut packets, .. } = inst;
    for (p, audience) in packets.iter_mut().zip(&audiences) {
        let received = audience.iter().filter(|n| w.was_received(p.key, **n)).count();
        let rate = if audience.is_empty() { 0.0 } else { received as f64 / audience.len() as f64 };
        p.delivered = rate >= FLOOD_DELIVERED_THRESHOLD;
        bins.record_weighted(p.generated_at, received as u64, audience.len() as u64);
        heatmap.record_packet(p.origin_x, p.generated_at, p.delivered);
    }
    progress::run_completed(started, w.events_processed(), cfg.duration);
    let artifact = topo.borrow().to_artifact();
    TopologyRun { bins, topo: artifact, heatmap, packets }
}

/// Correlates an attacker-free/attacked pair of same-seed runs into
/// interception attribution: a packet counts as *intercepted* when it
/// was delivered attacker-free but not under attack. Each intercepted
/// packet is recorded into the attacked heatmap at its last forwarding
/// hop, and the totals — alongside how many of those last hops sat
/// inside the attacker's coverage — are stamped into the attacked
/// heatmap's metadata (`intercepted_total`, `last_hop_in_coverage`) so
/// a serialized artifact carries them.
///
/// Returns `(intercepted, last_hop_in_coverage)`.
pub fn correlate_interception(af: &TopologyRun, atk: &mut TopologyRun) -> (u64, u64) {
    let delivered_af: BTreeSet<(u64, u16)> = af
        .packets
        .iter()
        .filter(|p| p.delivered)
        .map(|p| (p.key.source.to_u64(), p.key.sn.0))
        .collect();
    let mut intercepted = 0u64;
    let mut in_coverage = 0u64;
    for p in &atk.packets {
        if p.delivered || !delivered_af.contains(&(p.key.source.to_u64(), p.key.sn.0)) {
            continue;
        }
        intercepted += 1;
        atk.heatmap.record_intercepted(p.last_hop_x, p.last_hop_at);
        if p.last_hop_in_coverage {
            in_coverage += 1;
        }
    }
    atk.heatmap.set_meta("intercepted_total", intercepted.to_string());
    atk.heatmap.set_meta("last_hop_in_coverage", in_coverage.to_string());
    (intercepted, in_coverage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(range: f64) -> ScenarioConfig {
        ScenarioConfig::paper_dsrc_default()
            .with_attack_range(range)
            .with_duration(SimDuration::from_secs(30))
    }

    #[test]
    fn interarea_run_collects_all_artifacts() {
        let cfg = short(486.0);
        let run = run_interarea(&cfg, true, 31, SimDuration::from_secs(5));
        assert!(!run.packets.is_empty());
        assert!(run.topo.snapshots.len() >= 5, "{} snapshots", run.topo.snapshots.len());
        assert_eq!(run.topo.meta.get("scenario").unwrap(), "interarea");
        assert!(run.heatmap.totals().generated > 0);
        // Forwarding moved at least one packet's last hop off its origin.
        assert!(run.packets.iter().any(|p| (p.last_hop_x - p.origin_x).abs() > 50.0));
        // Snapshots carry the attacker and graded gradients.
        let s = run.topo.snapshots.last().unwrap();
        assert_eq!(s.coverage.len(), 1);
        assert!(s.dest.is_some());
    }

    #[test]
    fn correlate_attributes_interception_to_coverage() {
        let cfg = short(486.0);
        let af = run_interarea(&cfg, false, 33, SimDuration::from_secs(5));
        let mut atk = run_interarea(&cfg, true, 33, SimDuration::from_secs(5));
        let (intercepted, in_cov) = correlate_interception(&af, &mut atk);
        assert!(intercepted > 0, "attack intercepted nothing");
        assert!(in_cov as f64 >= 0.9 * intercepted as f64, "{in_cov}/{intercepted} in coverage");
        assert_eq!(atk.heatmap.meta().get("intercepted_total").unwrap(), &intercepted.to_string());
        assert_eq!(atk.heatmap.totals().intercepted, intercepted);
    }

    #[test]
    fn blockage_run_localizes_suppression_at_the_attacker() {
        let cfg = short(500.0);
        let run = run_blockage(&cfg, true, 35, SimDuration::from_secs(5));
        assert!(!run.packets.is_empty());
        // The attacker-attributed CBF suppressions concentrate inside
        // its coverage around x = 2000.
        let mut best = (0u64, 0.0f64);
        for xi in 0..run.heatmap.x_bins() {
            let c = run.heatmap.column(xi);
            if c.cbf_by_attacker > best.0 {
                best = (c.cbf_by_attacker, run.heatmap.x_range(xi).0);
            }
        }
        assert!(best.0 > 0, "no suppression attributed to the attacker");
        assert!(
            (best.1 - cfg.attacker_position.x).abs() <= cfg.attack_range,
            "hottest suppression bin at {} m, attacker at {} m",
            best.1,
            cfg.attacker_position.x
        );
    }
}
