//! Scenario configuration shared by all experiments.

use geonet::{GnConfig, MitigationConfig};
use geonet_attack::BlockageMode;
use geonet_geo::Position;
use geonet_radio::{AccessTechnology, RangeProfile};
use geonet_sim::SimDuration;
use geonet_traffic::RoadConfig;
use serde::{Deserialize, Serialize};

/// Which attack (if any) the attacker mounts when enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackerSetup {
    /// Inter-area interception: replay all sniffed beacons.
    InterArea,
    /// Intra-area blockage with the given transmit mode.
    IntraArea(BlockageMode),
}

/// Configuration of one simulated scenario.
///
/// The default values mirror the paper's §IV-A "default simulation
/// settings": a single-direction two-lane 4 000 m road, 30 m inter-vehicle
/// space, DSRC with the median NLoS vehicle range, a 20 s LocT TTL, 200 s
/// runs, and the attacker at the centre of the road.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Road and traffic model.
    pub road: RoadConfig,
    /// Access technology (sets the vehicle range and `DIST_MAX`).
    pub tech: AccessTechnology,
    /// Vehicle-to-vehicle communication range, metres (paper: the
    /// technology's median NLoS range).
    pub v2v_range: f64,
    /// GeoNetworking protocol parameters.
    pub gn: GnConfig,
    /// Attacker position (paper: centre of the road, on the roadside).
    pub attacker_position: Position,
    /// Attacker communication (attack) range, metres.
    pub attack_range: f64,
    /// Run length (paper: 200 s).
    pub duration: SimDuration,
    /// Traffic integration step, seconds (paper-scale: 0.1 s).
    pub traffic_dt: f64,
    /// Probability that any individual frame delivery is lost (extension;
    /// the paper's unit-disk channel is lossless, i.e. 0.0).
    pub frame_loss_rate: f64,
    /// Attacker velocity along +x, m/s (extension; the paper's attacker
    /// is stationary, i.e. 0.0).
    pub attacker_velocity: f64,
}

impl ScenarioConfig {
    /// The paper's default DSRC scenario.
    #[must_use]
    pub fn paper_dsrc_default() -> Self {
        ScenarioConfig::paper_default(AccessTechnology::Dsrc)
    }

    /// The paper's default scenario for either technology: vehicles use
    /// the median NLoS range; the attacker sits at the road centre with
    /// the worst NLoS range (the paper's conservative default after
    /// Figure 7a/7b).
    #[must_use]
    pub fn paper_default(tech: AccessTechnology) -> Self {
        let profile = RangeProfile::for_technology(tech);
        ScenarioConfig {
            road: RoadConfig::paper_default(),
            tech,
            v2v_range: profile.nlos_median(),
            gn: GnConfig::paper_default(profile.dist_max()),
            attacker_position: Position::new(2_000.0, -12.0),
            attack_range: profile.nlos_worst(),
            duration: SimDuration::from_secs(200),
            traffic_dt: 0.1,
            frame_loss_rate: 0.0,
            attacker_velocity: 0.0,
        }
    }

    /// The technology's range profile.
    #[must_use]
    pub fn profile(&self) -> RangeProfile {
        RangeProfile::for_technology(self.tech)
    }

    /// Returns this configuration with a different attack range.
    #[must_use]
    pub fn with_attack_range(self, range: f64) -> Self {
        ScenarioConfig { attack_range: range, ..self }
    }

    /// Returns this configuration with a different LocT TTL.
    #[must_use]
    pub fn with_loct_ttl(self, ttl: SimDuration) -> Self {
        ScenarioConfig { gn: self.gn.with_loct_ttl(ttl), ..self }
    }

    /// Returns this configuration with a different inter-vehicle spacing.
    #[must_use]
    pub fn with_spacing(self, spacing: f64) -> Self {
        ScenarioConfig { road: self.road.with_spacing(spacing), ..self }
    }

    /// Returns this configuration with two-way traffic.
    #[must_use]
    pub fn with_two_way(self, two_way: bool) -> Self {
        ScenarioConfig { road: RoadConfig { two_way, ..self.road }, ..self }
    }

    /// Returns this configuration with the given mitigations enabled.
    #[must_use]
    pub fn with_mitigations(self, mitigations: MitigationConfig) -> Self {
        ScenarioConfig { gn: self.gn.with_mitigations(mitigations), ..self }
    }

    /// Returns this configuration with a shorter run (used by tests and
    /// benches; the paper's full scale is 200 s × 100 runs).
    #[must_use]
    pub fn with_duration(self, duration: SimDuration) -> Self {
        ScenarioConfig { duration, ..self }
    }

    /// Returns this configuration with per-frame loss (extension).
    #[must_use]
    pub fn with_frame_loss(self, rate: f64) -> Self {
        ScenarioConfig { frame_loss_rate: rate, ..self }
    }

    /// Returns this configuration with a mobile attacker (extension).
    #[must_use]
    pub fn with_attacker_velocity(self, v: f64) -> Self {
        ScenarioConfig { attacker_velocity: v, ..self }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.road.validate()?;
        for (name, v) in [("v2v_range", self.v2v_range), ("attack_range", self.attack_range)] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and positive, got {v}"));
            }
        }
        if !self.attacker_position.is_finite() {
            return Err("attacker position must be finite".into());
        }
        if !(self.traffic_dt.is_finite() && self.traffic_dt > 0.0) {
            return Err(format!("traffic_dt must be positive, got {}", self.traffic_dt));
        }
        if self.duration == SimDuration::ZERO {
            return Err("duration must be positive".into());
        }
        if !(0.0..1.0).contains(&self.frame_loss_rate) {
            return Err(format!("frame_loss_rate must be in [0, 1), got {}", self.frame_loss_rate));
        }
        if !self.attacker_velocity.is_finite() {
            return Err("attacker velocity must be finite".into());
        }
        Ok(())
    }
}

/// Experiment scale: how many A/B run pairs and how long each run is.
///
/// The paper uses 100 runs × 200 s per setting. That is available via
/// [`Scale::paper`], but tests and Criterion benches use reduced scales —
/// the statistics converge with the same shape, just wider error bars
/// (documented in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Number of seeded A/B run pairs per setting.
    pub runs: u32,
    /// Length of each run, seconds.
    pub duration_s: u64,
}

impl Scale {
    /// The paper's full scale: 100 runs × 200 s.
    #[must_use]
    pub fn paper() -> Self {
        Scale { runs: 100, duration_s: 200 }
    }

    /// A quick scale for smoke tests and benches: 2 runs × 60 s.
    #[must_use]
    pub fn quick() -> Self {
        Scale { runs: 2, duration_s: 60 }
    }

    /// A medium scale: 10 runs × 200 s.
    #[must_use]
    pub fn medium() -> Self {
        Scale { runs: 10, duration_s: 200 }
    }

    /// The run duration as a [`SimDuration`].
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.duration_s)
    }
}

/// Serializable summary of a configuration, for experiment reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigSummary {
    /// Technology name.
    pub tech: String,
    /// Vehicle range, metres.
    pub v2v_range: f64,
    /// Attack range, metres.
    pub attack_range: f64,
    /// LocT TTL, seconds.
    pub ttl_s: u64,
    /// Inter-vehicle spacing, metres.
    pub spacing: f64,
    /// Two-way road?
    pub two_way: bool,
    /// Run length, seconds.
    pub duration_s: u64,
}

impl From<&ScenarioConfig> for ConfigSummary {
    fn from(c: &ScenarioConfig) -> Self {
        ConfigSummary {
            tech: c.tech.to_string(),
            v2v_range: c.v2v_range,
            attack_range: c.attack_range,
            ttl_s: c.gn.loct_ttl.as_secs(),
            spacing: c.road.spacing,
            two_way: c.road.two_way,
            duration_s: c.duration.as_secs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let c = ScenarioConfig::paper_dsrc_default();
        assert_eq!(c.v2v_range, 486.0);
        assert_eq!(c.attack_range, 327.0);
        assert_eq!(c.gn.dist_max, 1_283.0);
        assert_eq!(c.duration, SimDuration::from_secs(200));
        assert_eq!(c.attacker_position.x, 2_000.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cv2x_default_values() {
        let c = ScenarioConfig::paper_default(AccessTechnology::CV2x);
        assert_eq!(c.v2v_range, 593.0);
        assert_eq!(c.attack_range, 359.0);
        assert_eq!(c.gn.dist_max, 1_703.0);
    }

    #[test]
    fn builders_compose() {
        let c = ScenarioConfig::paper_dsrc_default()
            .with_attack_range(486.0)
            .with_loct_ttl(SimDuration::from_secs(5))
            .with_spacing(100.0)
            .with_two_way(true)
            .with_duration(SimDuration::from_secs(50));
        assert_eq!(c.attack_range, 486.0);
        assert_eq!(c.gn.loct_ttl, SimDuration::from_secs(5));
        assert_eq!(c.road.spacing, 100.0);
        assert!(c.road.two_way);
        assert_eq!(c.duration, SimDuration::from_secs(50));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn extension_knobs_default_off() {
        let c = ScenarioConfig::paper_dsrc_default();
        assert_eq!(c.frame_loss_rate, 0.0);
        assert_eq!(c.attacker_velocity, 0.0);
        let c = c.with_frame_loss(0.1).with_attacker_velocity(30.0);
        assert_eq!(c.frame_loss_rate, 0.1);
        assert_eq!(c.attacker_velocity, 30.0);
        assert!(c.validate().is_ok());
        let bad = c.with_frame_loss(1.5);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_values() {
        let mut c = ScenarioConfig::paper_dsrc_default();
        c.attack_range = -1.0;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::paper_dsrc_default();
        c.traffic_dt = 0.0;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::paper_dsrc_default();
        c.duration = SimDuration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn summary_reflects_config() {
        let c = ScenarioConfig::paper_dsrc_default();
        let s = ConfigSummary::from(&c);
        assert_eq!(s.tech, "DSRC");
        assert_eq!(s.ttl_s, 20);
        assert_eq!(s.duration_s, 200);
        assert!(!s.two_way);
    }
}
