//! Campaign progress reporting for long experiment sweeps.
//!
//! A paper-scale campaign is 100 runs × 200 s per setting, times a dozen
//! settings — tens of minutes of wall time with, previously, no output at
//! all. This module adds an opt-in global reporter: when enabled (the
//! `repro` binary enables it), every completed run prints one stderr line
//! with its wall time, simulated-events/sec throughput, sim-time/wall-time
//! ratio and the ETA for the current setting, and the totals are available
//! as a [`CampaignSummary`] for the `--metrics` exporters.
//!
//! The reporter is intentionally *not* part of the [`crate::world::World`]
//! plumbing: runner functions report to it directly, so every experiment
//! family gets progress lines without threading a handle through each
//! `fig*` signature. When disabled (the default, e.g. under `cargo test`)
//! every call is a cheap no-op and nothing is printed.
//!
//! The reporter is jobs-aware: campaign loops run their seeded runs on a
//! [`crate::parallel`] worker pool, so every line is printed *while
//! holding the state lock* — one synchronized writer, no interleaved
//! fragments — and with more than one job the per-run lines switch to a
//! per-setting aggregate (elapsed wall, cumulative events, pool
//! throughput, pool-aware ETA) since individual run wall times overlap
//! and would read as nonsense.

use geonet_sim::{RunningStats, SimDuration};
use std::sync::Mutex;
use std::time::Instant;

/// Global reporter state; `None` while disabled.
static STATE: Mutex<Option<ProgressState>> = Mutex::new(None);

struct ProgressState {
    setting: String,
    planned: u32,
    completed: u32,
    /// Per-run wall seconds within the current setting (drives the ETA).
    setting_wall: RunningStats,
    /// When the current setting was announced (drives the aggregate
    /// elapsed/throughput line under parallel runs).
    setting_started: Option<Instant>,
    /// Kernel events dispatched within the current setting.
    setting_events: u64,
    totals: CampaignSummary,
}

/// Whole-campaign totals accumulated since [`enable`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CampaignSummary {
    /// Completed simulation runs.
    pub runs: u64,
    /// Kernel events dispatched across all runs.
    pub events: u64,
    /// Simulated seconds covered.
    pub sim_seconds: f64,
    /// Wall-clock seconds spent inside runs.
    pub wall_seconds: f64,
}

impl CampaignSummary {
    /// Simulation events dispatched per wall-clock second, or `None`
    /// before any wall time was measured.
    #[must_use]
    pub fn events_per_sec(&self) -> Option<f64> {
        (self.wall_seconds > 0.0).then(|| self.events as f64 / self.wall_seconds)
    }

    /// How much faster than real time the simulation ran, or `None`
    /// before any wall time was measured.
    #[must_use]
    pub fn sim_wall_ratio(&self) -> Option<f64> {
        (self.wall_seconds > 0.0).then(|| self.sim_seconds / self.wall_seconds)
    }
}

/// Turns the reporter on and resets all totals.
pub fn enable() {
    let mut guard = lock();
    *guard = Some(ProgressState {
        setting: String::new(),
        planned: 0,
        completed: 0,
        setting_wall: RunningStats::new(),
        setting_started: None,
        setting_events: 0,
        totals: CampaignSummary::default(),
    });
}

/// Turns the reporter off; subsequent calls are no-ops again.
pub fn disable() {
    *lock() = None;
}

/// Whether the reporter is currently enabled.
#[must_use]
pub fn is_enabled() -> bool {
    lock().is_some()
}

/// The campaign totals so far, or `None` while disabled.
#[must_use]
pub fn summary() -> Option<CampaignSummary> {
    lock().as_ref().map(|s| s.totals)
}

/// Announces a new experiment setting of `planned_runs` upcoming runs
/// (used for the ETA). Called by the `run_ab` loops.
pub fn begin_setting(label: &str, planned_runs: u32) {
    if let Some(s) = lock().as_mut() {
        s.setting = label.to_string();
        s.planned = planned_runs;
        s.completed = 0;
        s.setting_wall = RunningStats::new();
        s.setting_started = Some(Instant::now());
        s.setting_events = 0;
    }
}

/// Marks the start of one run. Returns `None` (and does no clock read)
/// while the reporter is disabled; pass the result to [`run_completed`].
#[must_use]
pub fn run_started() -> Option<Instant> {
    is_enabled().then(Instant::now)
}

/// Completes one run of `sim` simulated time that dispatched `events`
/// kernel events, printing the progress line to stderr. No-op if
/// `started` is `None` (reporter disabled at run start).
pub fn run_completed(started: Option<Instant>, events: u64, sim: SimDuration) {
    let Some(t0) = started else { return };
    let wall = t0.elapsed().as_secs_f64();
    let jobs = crate::parallel::jobs();
    let mut guard = lock();
    let Some(s) = guard.as_mut() else { return };
    s.completed += 1;
    s.setting_wall.push(wall);
    s.setting_events += events;
    s.totals.runs += 1;
    s.totals.events += events;
    s.totals.sim_seconds += sim.as_secs_f64();
    s.totals.wall_seconds += wall;
    let remaining = s.planned.saturating_sub(s.completed);
    let mut line = if jobs > 1 {
        // Parallel campaign: per-run wall times overlap, so report the
        // setting-level aggregate — elapsed wall since begin_setting,
        // cumulative events and the pool's combined throughput.
        let elapsed = s.setting_started.map_or(0.0, |t| t.elapsed().as_secs_f64());
        let agg_rate = if elapsed > 0.0 { s.setting_events as f64 / elapsed } else { 0.0 };
        format!(
            "# [{} {}/{}] {:.2} s elapsed, {:.2} M events ({:.2} M ev/s, {jobs} jobs)",
            s.setting,
            s.completed,
            s.planned.max(s.completed),
            elapsed,
            s.setting_events as f64 / 1e6,
            agg_rate / 1e6,
        )
    } else {
        let ev_per_sec = if wall > 0.0 { events as f64 / wall } else { 0.0 };
        let ratio = if wall > 0.0 { sim.as_secs_f64() / wall } else { 0.0 };
        format!(
            "# [{} {}/{}] {:.2} s wall, {:.2} M events ({:.2} M ev/s, sim/wall {:.0}x)",
            s.setting,
            s.completed,
            s.planned.max(s.completed),
            wall,
            events as f64 / 1e6,
            ev_per_sec / 1e6,
            ratio,
        )
    };
    if remaining > 0 {
        if let Some(mean) = s.setting_wall.mean() {
            // With a pool, the remaining runs drain jobs at a time.
            let eta = mean * f64::from(remaining) / jobs.max(1) as f64;
            line.push_str(&format!(", ETA {eta:.0} s"));
        }
    }
    // Print while holding the lock: worker threads finish runs
    // concurrently, and a single synchronized writer keeps the stderr
    // stream ordered and parseable.
    eprintln!("{line}");
    drop(guard);
}

/// Prints one per-experiment wall-time summary line to stderr (no-op
/// while disabled). Printed under the reporter lock so it cannot tear
/// through a concurrent run line.
pub fn experiment_completed(name: &str, wall: std::time::Duration) {
    let guard = lock();
    if guard.is_some() {
        eprintln!("# experiment {name}: {:.1} s wall", wall.as_secs_f64());
    }
    drop(guard);
}

fn lock() -> std::sync::MutexGuard<'static, Option<ProgressState>> {
    // A panic while holding the lock only interrupts a progress print;
    // the data is advisory, so recover the inner state and carry on.
    STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The reporter is global state shared by every test in the process,
    // so keep all assertions in one test body.
    #[test]
    fn lifecycle_and_totals() {
        assert!(!is_enabled());
        assert_eq!(summary(), None);
        // Disabled: started tokens are None and completions are no-ops.
        assert!(run_started().is_none());
        run_completed(None, 1_000, SimDuration::from_secs(10));

        enable();
        assert!(is_enabled());
        begin_setting("test", 2);
        let t0 = run_started();
        assert!(t0.is_some());
        run_completed(t0, 50_000, SimDuration::from_secs(200));
        run_completed(run_started(), 70_000, SimDuration::from_secs(200));
        let s = summary().expect("enabled");
        assert_eq!(s.runs, 2);
        assert_eq!(s.events, 120_000);
        assert!((s.sim_seconds - 400.0).abs() < 1e-9);
        assert!(s.wall_seconds >= 0.0);
        assert!(s.events_per_sec().is_some());
        assert!(s.sim_wall_ratio().is_some());
        experiment_completed("test", std::time::Duration::from_millis(5));

        disable();
        assert!(!is_enabled());
        assert_eq!(summary(), None);
        let empty = CampaignSummary::default();
        assert_eq!(empty.events_per_sec(), None);
        assert_eq!(empty.sim_wall_ratio(), None);
    }
}
