//! Extension experiments beyond the paper's evaluation.
//!
//! The paper's discussion sections sketch three variations it does not
//! evaluate; this module measures them:
//!
//! * [`ack_defense`] — the mitigation the paper *rejects* (§V-A): MAC
//!   acknowledgements with retry for greedy unicasts. Measured against
//!   the inter-area attacker, with and without channel loss, so the
//!   paper's "reduces communication efficiency when ACKs are lost"
//!   argument gets numbers.
//! * [`lossy_channel`] — both attacks on a lossy channel: CBF's
//!   redundancy makes the blockage attack *less* reliable under loss
//!   (the attacker's single replay can be lost; the legitimate flood has
//!   many chances).
//! * [`moving_attacker`] — the paper's threat model covers mobile
//!   attackers "conceptually"; this sweeps the attacker's speed.

use crate::config::{Scale, ScenarioConfig};
use crate::interarea;
use crate::intraarea;
use crate::mitigation::MitigationResult;
use crate::parallel;
use crate::report::AbResult;
use geonet::config::LinkAckConfig;
use geonet_sim::{SimDuration, TimeBins};

fn merged_interarea(cfg: &ScenarioConfig, attacked: bool, scale: Scale, seed: u64) -> TimeBins {
    let cfg = cfg.with_duration(scale.duration());
    let bin_count = usize::try_from(cfg.duration.as_secs().div_ceil(5)).expect("bin count fits");
    let mut bins = TimeBins::new(SimDuration::from_secs(5), bin_count);
    let runs = parallel::run_indexed(scale.runs, |i| {
        let s = seed.wrapping_add(u64::from(i) * 0x9E37);
        interarea::run_one(&cfg, attacked, s)
    });
    for r in &runs {
        bins.merge(r);
    }
    bins
}

/// The rejected mitigation: link-layer acknowledgements with retry.
///
/// Returns one comparison per channel-loss rate: attacked inter-area
/// reception without ACKs ("unmitigated") vs with ACKs ("mitigated"),
/// against the median-NLoS attacker.
#[must_use]
pub fn ack_defense(scale: Scale, seed: u64) -> Vec<MitigationResult> {
    let base = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
    let acked = ScenarioConfig { gn: base.gn.with_link_ack(LinkAckConfig::default()), ..base };
    [0.0, 0.1, 0.3]
        .into_iter()
        .map(|loss| MitigationResult {
            label: format!("loss={:.0}%", loss * 100.0),
            unmitigated: merged_interarea(&base.with_frame_loss(loss), true, scale, seed),
            mitigated: merged_interarea(&acked.with_frame_loss(loss), true, scale, seed),
        })
        .collect()
}

/// Both attacks under per-frame channel loss.
///
/// Returns `(inter-area results, intra-area results)`, one [`AbResult`]
/// per loss rate.
#[must_use]
pub fn lossy_channel(scale: Scale, seed: u64) -> (Vec<AbResult>, Vec<AbResult>) {
    let inter_base = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
    let intra_base = ScenarioConfig::paper_dsrc_default().with_attack_range(500.0);
    let rates = [0.0, 0.05, 0.2];
    let inter = rates
        .iter()
        .map(|&loss| {
            interarea::run_ab(
                &inter_base.with_frame_loss(loss),
                &format!("loss={:.0}%", loss * 100.0),
                scale,
                seed,
            )
        })
        .collect();
    let intra = rates
        .iter()
        .map(|&loss| {
            intraarea::run_ab(
                &intra_base.with_frame_loss(loss),
                &format!("loss={:.0}%", loss * 100.0),
                scale,
                seed,
            )
        })
        .collect();
    (inter, intra)
}

/// The channel-load cost of the ACK defense: frames on the air per run,
/// without and with acknowledgements, against the mN attacker.
///
/// Returns `(label, frames_without_ack, frames_with_ack)` per loss rate —
/// the quantitative form of the paper's "reduces communication
/// efficiency" objection.
#[must_use]
pub fn ack_overhead(scale: Scale, seed: u64) -> Vec<(String, u64, u64)> {
    let base = ScenarioConfig::paper_dsrc_default()
        .with_attack_range(486.0)
        .with_duration(scale.duration());
    let acked = ScenarioConfig { gn: base.gn.with_link_ack(LinkAckConfig::default()), ..base };
    [0.0, 0.1, 0.3]
        .into_iter()
        .map(|loss| {
            let loads = parallel::run_indexed(scale.runs, |i| {
                let s = seed.wrapping_add(u64::from(i) * 0x9E37);
                (
                    interarea::run_one_with_load(&base.with_frame_loss(loss), true, s).1,
                    interarea::run_one_with_load(&acked.with_frame_loss(loss), true, s).1,
                )
            });
            let mut plain = 0;
            let mut with_ack = 0;
            for &(p, a) in &loads {
                plain += p;
                with_ack += a;
            }
            (format!("loss={:.0}%", loss * 100.0), plain, with_ack)
        })
        .collect()
}

/// A mobile inter-area attacker driving along the road.
///
/// The victim-classification geometry follows the attacker's *starting*
/// position; a fast-moving attacker drifts away from the vulnerable
/// population it was sized for, so γ degrades with speed — quantifying
/// the "handling mobility and attack responsiveness is required" caveat
/// in the paper's threat model.
#[must_use]
pub fn moving_attacker(scale: Scale, seed: u64) -> Vec<AbResult> {
    let base = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
    [0.0, 15.0, 30.0]
        .into_iter()
        .map(|v| {
            interarea::run_ab(
                &base.with_attacker_velocity(v),
                &format!("v={v:.0} m/s"),
                scale,
                seed,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: Scale = Scale { runs: 1, duration_s: 40 };

    #[test]
    fn ack_defense_recovers_reception_on_clean_channel() {
        let results = ack_defense(SCALE, 31);
        let clean = &results[0];
        assert_eq!(clean.label, "loss=0%");
        // ACK+retry routes around the poisoned next hops.
        assert!(clean.improvement().unwrap() > 0.3, "ACK defense ineffective: {clean}");
    }

    #[test]
    fn ack_defense_costs_transmissions() {
        let over = ack_overhead(Scale { runs: 1, duration_s: 30 }, 41);
        for (label, plain, acked) in &over {
            assert!(
                acked >= plain,
                "{label}: ACK retries should add channel load ({acked} vs {plain})"
            );
        }
    }

    #[test]
    fn lossy_channel_weakens_the_blockage_attack() {
        let (_, intra) = lossy_channel(SCALE, 32);
        let clean_lambda = intra[0].gamma().unwrap();
        let lossy_lambda = intra[2].gamma().unwrap();
        // With 20 % loss the attacker's one replay is itself unreliable
        // while CBF's redundancy keeps the legitimate flood alive.
        assert!(
            lossy_lambda <= clean_lambda + 0.05,
            "loss should not strengthen blockage: clean {clean_lambda:.2} lossy {lossy_lambda:.2}"
        );
        // And the attacker-free flood survives the loss.
        assert!(intra[2].baseline_rate().unwrap() > 0.9);
    }

    #[test]
    fn moving_attacker_still_intercepts() {
        let results = moving_attacker(SCALE, 33);
        for r in &results {
            let gamma = r.gamma().expect("bins populated");
            assert!(gamma > 0.2, "{}: γ = {gamma:.2}", r.label);
        }
    }
}
