//! Post-run packet forensics: hop-trace reconstruction and loss
//! attribution.
//!
//! The tracing layer ([`geonet_sim::trace`]) records *what happened*;
//! this module answers *why a packet did or did not arrive*. Given the
//! flat event stream of a run it rebuilds one chronological
//! [`HopTrace`] per packet and classifies each packet's [`PacketFate`]:
//! delivered, lost on the radio, hop-limit exhausted, intercepted by a
//! poisoned greedy forward, or blocked by a cancelled CBF timer — the
//! last two being precisely the paper's two attacks showing up in the
//! evidence.
//!
//! # Example
//!
//! ```no_run
//! use geonet_scenarios::forensics::AttributionReport;
//! use geonet_sim::{shared, VecSink};
//! use geonet_scenarios::{AttackerSetup, ScenarioConfig, World};
//!
//! let sink = shared(VecSink::new());
//! let mut world = World::new(
//!     ScenarioConfig::paper_dsrc_default(),
//!     Some(AttackerSetup::InterArea),
//!     42,
//! );
//! world.set_trace_sink(sink.clone());
//! world.run_to_end();
//! let report = AttributionReport::build(sink.borrow().records(), None);
//! println!("{report}");
//! ```

use geonet_sim::{DropReason, EventCounters, PacketRef, TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt;

/// The chronological event sequence of one packet, across all nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct HopTrace {
    /// The packet all events concern.
    pub packet: PacketRef,
    /// Every event referencing the packet, in emission order.
    pub events: Vec<TraceRecord>,
}

impl HopTrace {
    /// The last event of the trace, if any.
    #[must_use]
    pub fn final_event(&self) -> Option<&TraceRecord> {
        self.events.last()
    }

    /// Classifies the packet's fate from its event sequence.
    ///
    /// The scan runs backwards from the last event to the first
    /// *decisive* one; bookkeeping events (receptions, duplicate
    /// discards, attacker actions, timer arms) are skipped because each
    /// is always followed by the event that actually decides the
    /// packet's fortune at that node.
    ///
    /// Two rules keep the verdicts honest:
    ///
    /// * A CBF cancellation is decisive only when the cancelling
    ///   duplicate came from `attacker` — and then it wins outright,
    ///   even over an earlier delivery: the attack killed the packet's
    ///   *spread* (the paper's λ is about how far a packet reaches, and
    ///   an in-area contender always delivers the first copy before its
    ///   timer is cancelled). Cancellation by a legitimate contender is
    ///   how CBF is supposed to work and is skipped.
    /// * Every other loss event (hop-limit death, frame loss, a
    ///   transmission nobody advanced) yields a loss verdict only when
    ///   the packet was never delivered anywhere — a healthy
    ///   GeoBroadcast wavefront always dies *somewhere*, and that tail
    ///   noise must not overwrite a delivery.
    #[must_use]
    pub fn fate(&self, attacker: Option<u64>) -> PacketFate {
        let delivered_any =
            self.events.iter().any(|r| matches!(r.event, TraceEvent::Delivered { .. }));
        let lost = |fate: PacketFate| if delivered_any { PacketFate::Delivered } else { fate };
        for record in self.events.iter().rev() {
            match record.event {
                TraceEvent::Delivered { .. } => return PacketFate::Delivered,
                TraceEvent::CbfCancelled { by, .. } if attacker == Some(by) => {
                    return PacketFate::Blocked { by };
                }
                // A cancellation by a legitimate contender is CBF working
                // as designed: keep scanning.
                TraceEvent::Dropped { reason: DropReason::RhlExhausted, .. } => {
                    return lost(PacketFate::LostToHopLimit);
                }
                TraceEvent::Dropped { reason, .. } => {
                    return lost(PacketFate::Dropped { reason });
                }
                TraceEvent::FrameLost { .. } => return lost(PacketFate::LostToRadio),
                TraceEvent::FrameTx { dst: Some(next_hop), .. } => {
                    // A unicast left the radio and nothing downstream
                    // advanced the packet: the forwarder was talking to
                    // a neighbour that is not there — the interception
                    // attack's signature.
                    return lost(PacketFate::Intercepted { at: next_hop });
                }
                TraceEvent::FrameTx { dst: None, .. } => {
                    // A broadcast nobody acted on: out of everyone's
                    // range.
                    return lost(PacketFate::LostToRadio);
                }
                _ => {}
            }
        }
        lost(PacketFate::Unresolved)
    }
}

/// Why a packet ended the run the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Reached at least one destination.
    Delivered,
    /// The last copy on the air was lost by the radio (stochastic frame
    /// loss, or a broadcast out of everyone's range).
    LostToRadio,
    /// Every path exhausted the remaining hop limit.
    LostToHopLimit,
    /// A greedy forwarder unicast the packet to address bits `at` and
    /// nothing ever came of it — the poisoned-LocT interception attack.
    Intercepted {
        /// Address bits of the phantom next hop.
        at: u64,
    },
    /// The last CBF contention timer was cancelled by a duplicate from
    /// address bits `by` — the blockage attack.
    Blocked {
        /// Address bits of the canceller (the attacker's pseudonym).
        by: u64,
    },
    /// The router discarded the packet for a non-hop-limit reason.
    Dropped {
        /// The recorded discard reason.
        reason: DropReason,
    },
    /// The trace ends without a decisive event (e.g. still buffered at
    /// the end of the run).
    Unresolved,
}

impl fmt::Display for PacketFate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketFate::Delivered => write!(f, "delivered"),
            PacketFate::LostToRadio => write!(f, "lost-to-radio"),
            PacketFate::LostToHopLimit => write!(f, "lost-to-hop-limit"),
            PacketFate::Intercepted { at } => write!(f, "intercepted-at-{at:#x}"),
            PacketFate::Blocked { by } => write!(f, "blocked-by-{by:#x}"),
            PacketFate::Dropped { reason } => write!(f, "dropped ({reason})"),
            PacketFate::Unresolved => write!(f, "unresolved"),
        }
    }
}

/// Groups a run's event stream into one [`HopTrace`] per packet.
///
/// Events carrying no packet reference (beacons, hazards, collisions)
/// are left out. Traces come back keyed and ordered by packet identity.
#[must_use]
pub fn hop_traces(records: &[TraceRecord]) -> BTreeMap<PacketRef, HopTrace> {
    let mut traces: BTreeMap<PacketRef, HopTrace> = BTreeMap::new();
    for record in records {
        if let Some(packet) = record.event.packet() {
            traces
                .entry(packet)
                .or_insert_with(|| HopTrace { packet, events: Vec::new() })
                .events
                .push(record.clone());
        }
    }
    traces
}

/// Folds a run's event stream into per-node typed counters, with the
/// node's total event count alongside.
#[must_use]
pub fn per_node_counters(records: &[TraceRecord]) -> BTreeMap<u32, (EventCounters, u64)> {
    let mut nodes: BTreeMap<u32, (EventCounters, u64)> = BTreeMap::new();
    for record in records {
        let (counters, total) = nodes.entry(record.node).or_default();
        counters.record(&record.event);
        *total += 1;
    }
    nodes
}

/// The `n` busiest nodes of a run, by total events emitted (ties broken
/// by node id, so the ranking is deterministic).
#[must_use]
pub fn top_nodes(records: &[TraceRecord], n: usize) -> Vec<(u32, EventCounters, u64)> {
    let mut ranked: Vec<(u32, EventCounters, u64)> = per_node_counters(records)
        .into_iter()
        .map(|(node, (counters, total))| (node, counters, total))
        .collect();
    ranked.sort_by_key(|&(node, _, total)| (std::cmp::Reverse(total), node));
    ranked.truncate(n);
    ranked
}

/// The per-run attribution report: every traced packet classified.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributionReport {
    /// Packets traced in total.
    pub total: usize,
    /// Packets that reached a destination.
    pub delivered: usize,
    /// Packets whose last copy died on the radio.
    pub lost_to_radio: usize,
    /// Packets that ran out of hops everywhere.
    pub lost_to_hop_limit: usize,
    /// Interception victims, keyed by the phantom next hop's address
    /// bits.
    pub intercepted: BTreeMap<u64, usize>,
    /// Blockage victims, keyed by the cancelling duplicate's address
    /// bits.
    pub blocked: BTreeMap<u64, usize>,
    /// Router discards by reason, indexed by [`DropReason::index`].
    /// Every variant has a row even at zero, so a report always shows
    /// the full attribution vocabulary.
    pub dropped: [usize; DropReason::ALL.len()],
    /// Packets without a decisive final event.
    pub unresolved: usize,
    /// CBF timers cancelled by the attacker's duplicates, across all
    /// packets — the blockage attack's footprint. Unlike the `blocked`
    /// fate this also counts packets that still reached *some*
    /// receivers: the paper's λ is about how far a packet spreads, not
    /// whether it spreads at all.
    pub attacker_cancellations: usize,
}

impl AttributionReport {
    /// Builds the report from a run's event stream.
    ///
    /// `attacker` is the link-layer address bits the attacker transmits
    /// under (the blockage attacker's pseudonym); without it, CBF
    /// cancellations are treated as legitimate contention.
    #[must_use]
    pub fn build(records: &[TraceRecord], attacker: Option<u64>) -> AttributionReport {
        let mut report = AttributionReport::default();
        if let Some(attacker) = attacker {
            report.attacker_cancellations = records
                .iter()
                .filter(
                    |r| matches!(r.event, TraceEvent::CbfCancelled { by, .. } if by == attacker),
                )
                .count();
        }
        for trace in hop_traces(records).values() {
            report.total += 1;
            match trace.fate(attacker) {
                PacketFate::Delivered => report.delivered += 1,
                PacketFate::LostToRadio => report.lost_to_radio += 1,
                PacketFate::LostToHopLimit => report.lost_to_hop_limit += 1,
                PacketFate::Intercepted { at } => {
                    *report.intercepted.entry(at).or_default() += 1;
                }
                PacketFate::Blocked { by } => {
                    *report.blocked.entry(by).or_default() += 1;
                }
                PacketFate::Dropped { reason } => report.dropped[reason.index()] += 1,
                PacketFate::Unresolved => report.unresolved += 1,
            }
        }
        report
    }

    /// Packets that did not make it, for any reason.
    #[must_use]
    pub fn lost(&self) -> usize {
        self.total - self.delivered
    }
}

impl fmt::Display for AttributionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "attribution ({} packets traced)", self.total)?;
        writeln!(f, "  delivered            {:>6}", self.delivered)?;
        writeln!(f, "  lost-to-radio        {:>6}", self.lost_to_radio)?;
        writeln!(f, "  lost-to-hop-limit    {:>6}", self.lost_to_hop_limit)?;
        for (at, n) in &self.intercepted {
            writeln!(f, "  intercepted-at-{at:#x} {n:>6}")?;
        }
        for (by, n) in &self.blocked {
            writeln!(f, "  blocked-by-{by:#x} {n:>6}")?;
        }
        for reason in DropReason::ALL {
            writeln!(f, "  dropped/{:<12} {:>6}", reason.name(), self.dropped[reason.index()])?;
        }
        writeln!(f, "  unresolved           {:>6}", self.unresolved)?;
        write!(f, "  attacker-cancelled timers (all packets) {:>6}", self.attacker_cancellations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet_sim::SimTime;

    fn rec(t: u64, node: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { at: SimTime::from_micros(t), node, event }
    }

    #[test]
    fn groups_events_per_packet_in_order() {
        let p1 = PacketRef::new(1, 1);
        let p2 = PacketRef::new(2, 7);
        let records = vec![
            rec(1, 0, TraceEvent::Originated { packet: p1 }),
            rec(2, 0, TraceEvent::Originated { packet: p2 }),
            rec(3, 1, TraceEvent::Delivered { packet: p1 }),
            rec(4, 9, TraceEvent::BeaconAccepted { from: 5 }), // no packet
        ];
        let traces = hop_traces(&records);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[&p1].events.len(), 2);
        assert_eq!(traces[&p2].events.len(), 1);
        assert!(traces[&p1].events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn delivered_beats_earlier_noise() {
        let p = PacketRef::new(1, 1);
        let trace = HopTrace {
            packet: p,
            events: vec![
                rec(1, 0, TraceEvent::Originated { packet: p }),
                rec(2, 0, TraceEvent::GfNextHop { packet: p, next_hop: 2 }),
                rec(3, 1, TraceEvent::Delivered { packet: p }),
            ],
        };
        assert_eq!(trace.fate(None), PacketFate::Delivered);
    }

    #[test]
    fn wavefront_tail_noise_does_not_override_a_delivery() {
        let p = PacketRef::new(1, 1);
        let trace = HopTrace {
            packet: p,
            events: vec![
                rec(1, 0, TraceEvent::Originated { packet: p }),
                rec(2, 1, TraceEvent::Delivered { packet: p }),
                rec(3, 2, TraceEvent::CbfFired { packet: p }),
                rec(4, 3, TraceEvent::Dropped { packet: p, reason: DropReason::RhlExhausted }),
                rec(5, 4, TraceEvent::FrameLost { packet: Some(p), from: 3 }),
            ],
        };
        assert_eq!(trace.fate(None), PacketFate::Delivered);
    }

    #[test]
    fn blockage_attributed_only_to_the_attacker() {
        let p = PacketRef::new(1, 1);
        let atk = 0xDEAD;
        let events = vec![
            rec(1, 0, TraceEvent::Originated { packet: p }),
            rec(2, 1, TraceEvent::CbfArmed { packet: p, delay_us: 50_000 }),
            rec(3, 1, TraceEvent::CbfCancelled { packet: p, by: atk }),
        ];
        let trace = HopTrace { packet: p, events };
        assert_eq!(trace.fate(Some(atk)), PacketFate::Blocked { by: atk });
        // Without attacker knowledge the cancellation reads as normal
        // CBF and the trace has no decisive event left.
        assert_eq!(trace.fate(None), PacketFate::Unresolved);
        // A different attacker address does not match either.
        assert_eq!(trace.fate(Some(0xBEEF)), PacketFate::Unresolved);
    }

    #[test]
    fn interception_attributed_to_phantom_next_hop() {
        let p = PacketRef::new(1, 1);
        let trace = HopTrace {
            packet: p,
            events: vec![
                rec(1, 0, TraceEvent::Originated { packet: p }),
                rec(2, 0, TraceEvent::GfNextHop { packet: p, next_hop: 0x77 }),
                rec(3, 0, TraceEvent::FrameTx { packet: Some(p), dst: Some(0x77), beacon: false }),
                rec(4, 9, TraceEvent::FrameRx { packet: Some(p), from: 1, beacon: false }),
            ],
        };
        assert_eq!(trace.fate(None), PacketFate::Intercepted { at: 0x77 });
    }

    #[test]
    fn report_counts_every_drop_reason_even_at_zero() {
        let report = AttributionReport::build(&[], None);
        let text = report.to_string();
        for reason in DropReason::ALL {
            assert!(text.contains(reason.name()), "report omits {}: {text}", reason.name());
        }
    }

    #[test]
    fn report_classifies_mixed_stream() {
        let delivered = PacketRef::new(1, 1);
        let blocked = PacketRef::new(1, 2);
        let lost = PacketRef::new(2, 1);
        let exhausted = PacketRef::new(3, 1);
        let atk = 0xFFFF;
        let records = vec![
            rec(1, 0, TraceEvent::Originated { packet: delivered }),
            rec(2, 1, TraceEvent::Delivered { packet: delivered }),
            rec(3, 0, TraceEvent::Originated { packet: blocked }),
            rec(4, 1, TraceEvent::CbfArmed { packet: blocked, delay_us: 1 }),
            rec(5, 1, TraceEvent::CbfCancelled { packet: blocked, by: atk }),
            rec(6, 0, TraceEvent::Originated { packet: lost }),
            rec(7, 2, TraceEvent::FrameLost { packet: Some(lost), from: 2 }),
            rec(8, 0, TraceEvent::Originated { packet: exhausted }),
            rec(9, 3, TraceEvent::Dropped { packet: exhausted, reason: DropReason::RhlExhausted }),
        ];
        let report = AttributionReport::build(&records, Some(atk));
        assert_eq!(report.total, 4);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.blocked[&atk], 1);
        assert_eq!(report.lost_to_radio, 1);
        assert_eq!(report.lost_to_hop_limit, 1);
        assert_eq!(report.lost(), 3);
        assert_eq!(report.attacker_cancellations, 1);
    }
}
