//! First-order analytical models of both attacks.
//!
//! The simulation reproduces the paper's numbers; this module *explains*
//! them with closed-form geometry, and the tests hold the two accountable
//! to each other.
//!
//! # Blockage (λ)
//!
//! The intra-area attacker suppresses the CBF flood wherever its replay
//! out-ranges the legitimate forwarders. For an attacker at `a` with
//! attack range `r ≥ v` (the vehicle range) on a road `[0, L]`:
//!
//! * a source east of the covered area loses every receiver west of
//!   `a − r` (the replay itself still delivers within `[a − r, a + r]`);
//! * symmetrically for western sources;
//! * a source inside the *fully covered area* (`|x − a| ≤ r − v`) is
//!   blocked in both directions: only `[a − r, a + r]` receives.
//!
//! Averaging the blocked fraction over a uniform source position yields
//! λ. For `r < v` the replay cannot reach all candidate forwarders and
//! suppression only succeeds when the flood's transmitter lands deep
//! enough inside the coverage; the model scales the blocked mass by that
//! coverage probability.
//!
//! # Interception (γ)
//!
//! The inter-area attacker poisons a forwarder's location table whenever
//! it can replay a beacon of a vehicle beyond the forwarder's own range:
//! a forwarder at `x` (covered, `|x − a| ≤ r`) is *killed* eastbound when
//! the farthest replayed candidate, at `a + r`, lies beyond `x + v` —
//! i.e. the eastbound **kill zone** is `[a − r, a + r − v)`, of width
//! `max(0, 2r − v)`. A greedy chain advances by roughly one radio range
//! per hop (minus the mean beacon-staleness backoff), so the chance that
//! a chain crossing the covered area puts a hop inside the kill zone is
//! ≈ `min(1, width / hop)`. That is the predicted γ.

use crate::config::ScenarioConfig;

/// Mean greedy hop length: the radio range minus the average advertised-
/// position staleness of the winning neighbour (≈ half a beacon period at
/// 30 m/s).
fn mean_hop(cfg: &ScenarioConfig) -> f64 {
    let staleness = cfg.gn.beacon_interval.as_secs_f64() / 2.0 * cfg.road.entry_speed;
    (cfg.v2v_range - staleness).max(cfg.v2v_range * 0.5)
}

/// Predicted inter-area interception rate γ for the configuration's
/// attacker geometry (paper Figure 7 family).
#[must_use]
pub fn predicted_gamma(cfg: &ScenarioConfig) -> f64 {
    let kill_width = (2.0 * cfg.attack_range - cfg.v2v_range).max(0.0);
    (kill_width / mean_hop(cfg)).min(1.0)
}

/// Predicted intra-area blockage rate λ for the configuration's attacker
/// geometry (paper Figure 9 family).
#[must_use]
pub fn predicted_lambda(cfg: &ScenarioConfig) -> f64 {
    let l = cfg.road.length;
    let a = cfg.attacker_position.x;
    let r = cfg.attack_range;
    let v = cfg.v2v_range;

    // Suppression succeeds only if the replay reaches every candidate
    // forwarder of the transmission it answers. With r ≥ v that is
    // guaranteed once the transmitter is inside the coverage; with r < v
    // only transmitters within 2r − v of the attacker are fully covered,
    // and the flood's hop positions are ~uniform over the vehicle range.
    let coverage_probability = ((2.0 * r - v) / v).clamp(0.0, 1.0);

    // Blocked fraction per source position, averaged over x ~ U(0, L).
    let fully_covered_half = (r - v).max(0.0);
    let west_zone = (a - fully_covered_half).max(0.0); // sources west of the covered area
    let east_zone = (l - (a + fully_covered_half)).max(0.0);
    let covered_zone = l - west_zone - east_zone;

    // Sources west of the attacker: everything east of a + r is lost.
    let blocked_west_sources = ((l - (a + r)) / l).max(0.0);
    // Sources east of the attacker: everything west of a − r is lost.
    let blocked_east_sources = ((a - r) / l).max(0.0);
    // Fully-covered sources: only [a − r, a + r] receives.
    let blocked_covered = (1.0 - (2.0 * r / l)).max(0.0);

    let expected_blocked = (west_zone / l) * blocked_west_sources
        + (east_zone / l) * blocked_east_sources
        + (covered_zone / l) * blocked_covered;
    expected_blocked * coverage_probability
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::{interarea, intraarea};

    fn assert_close(label: &str, predicted: f64, simulated: f64, tolerance: f64) {
        assert!(
            (predicted - simulated).abs() <= tolerance,
            "{label}: predicted {predicted:.3} vs simulated {simulated:.3} (tol {tolerance})"
        );
    }

    #[test]
    fn lambda_model_matches_paper_geometry() {
        // Closed-form against the paper's own numbers (no simulation).
        let base = ScenarioConfig::paper_dsrc_default();
        // 500 m attacker: the paper's 38 % family.
        let tuned = predicted_lambda(&base.with_attack_range(500.0));
        assert_close("λ(500m) vs paper 0.385", tuned, 0.385, 0.05);
        // mN (486 m = v): marginal full coverage.
        let mn = predicted_lambda(&base.with_attack_range(486.0));
        assert_close("λ(mN) vs paper 0.385", mn, 0.385, 0.06);
        // Non-monotonicity: mL blocks less than the tuned range.
        let ml = predicted_lambda(&base.with_attack_range(1_283.0));
        assert!(ml < tuned, "model must reproduce the non-monotonicity");
        // wN (327 m < v): partial coverage only.
        let wn = predicted_lambda(&base.with_attack_range(327.0));
        assert!(wn < mn, "under-ranged attacker must block less");
    }

    #[test]
    fn gamma_model_matches_paper_geometry() {
        let base = ScenarioConfig::paper_dsrc_default();
        // wN: kill zone 2·327 − 486 = 168 m against a ≈440 m hop.
        let wn = predicted_gamma(&base);
        assert_close("γ(wN) vs paper 0.468", wn, 0.468, 0.10);
        // mN and mL saturate.
        assert!(predicted_gamma(&base.with_attack_range(486.0)) > 0.95);
        assert!((predicted_gamma(&base.with_attack_range(1_283.0)) - 1.0).abs() < 1e-9);
        // C-V2X wN: smaller kill zone relative to hop ⇒ lower γ than DSRC.
        let cv2x = ScenarioConfig::paper_default(geonet_radio::AccessTechnology::CV2x);
        assert!(predicted_gamma(&cv2x) < wn, "C-V2X must predict less vulnerable");
    }

    #[test]
    fn lambda_model_matches_simulation() {
        let scale = Scale { runs: 2, duration_s: 60 };
        let base = ScenarioConfig::paper_dsrc_default();
        for (label, range, tol) in
            [("500m", 500.0, 0.08), ("mN", 486.0, 0.08), ("mL", 1_283.0, 0.12)]
        {
            let cfg = base.with_attack_range(range);
            let sim = intraarea::run_ab(&cfg, label, scale, 71).gamma().unwrap();
            assert_close(label, predicted_lambda(&cfg), sim, tol);
        }
    }

    #[test]
    fn gamma_model_matches_simulation() {
        let scale = Scale { runs: 2, duration_s: 60 };
        let base = ScenarioConfig::paper_dsrc_default();
        for (label, range, tol) in [("wN", 327.0, 0.15), ("mN", 486.0, 0.05)] {
            let cfg = base.with_attack_range(range);
            let sim = interarea::run_ab(&cfg, label, scale, 72).gamma().unwrap();
            assert_close(label, predicted_gamma(&cfg), sim, tol);
        }
    }

    #[test]
    fn models_are_bounded() {
        let base = ScenarioConfig::paper_dsrc_default();
        for r in [50.0, 327.0, 486.0, 500.0, 700.0, 1_283.0, 1_703.0, 3_000.0] {
            let cfg = base.with_attack_range(r);
            let g = predicted_gamma(&cfg);
            let l = predicted_lambda(&cfg);
            assert!((0.0..=1.0).contains(&g), "γ({r}) = {g}");
            assert!((0.0..=1.0).contains(&l), "λ({r}) = {l}");
        }
    }
}
