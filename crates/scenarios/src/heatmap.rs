//! Road-binned heatmaps and attack blast-radius reports.
//!
//! The topology observer ([`geonet_sim::topo`]) answers *"what does the
//! network look like?"*; this module answers *"where on the road does
//! the attack bite?"*. A [`RoadHeatmap`] buckets packet outcomes into a
//! longitudinal × time grid (default 100 m × 5 s) fed from the existing
//! trace decision points: generation/delivery per origin bin, drops by
//! [`DropReason`] at the dropping node, CBF suppressions at the
//! suppressed node (with the attacker's share broken out) and
//! interception at the victim's last forwarding hop.
//!
//! Two same-seed heatmaps — attacker-free (A) and attacked (B) — diff
//! into a per-bin delta table ([`HeatmapDiff`]); together with the two
//! runs' topology artifacts that table rolls up into a
//! [`BlastRadiusReport`]: which bins lost more than half their
//! deliveries, how often the relay graph was partitioned, which cut
//! vertices the attacker displaced and whether the attacker itself sat
//! as the greedy local maximum.
//!
//! Artifacts export as CSV (dense grid, for plotting) and JSON (sparse,
//! round-trips byte-identically through [`RoadHeatmap::from_json`]).

use geonet_sim::telemetry::json::{self, Value};
use geonet_sim::{DropReason, SimDuration, SimTime, TopoArtifact, TraceEvent};
use std::collections::BTreeMap;
use std::fmt;

/// Shortest `f64` representation that round-trips (same contract as the
/// trace/telemetry/topo encoders).
fn format_f64(x: f64) -> String {
    assert!(x.is_finite(), "cannot serialize non-finite float {x}");
    format!("{x:?}")
}

// ---------------------------------------------------------------------
// Cells and the grid
// ---------------------------------------------------------------------

/// One grid cell's outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeatCell {
    /// Packets originated from this bin.
    pub generated: u64,
    /// Of those, packets that reached their destination (binned at the
    /// *origin*, so `delivered / generated` is the per-bin delivery
    /// rate).
    pub delivered: u64,
    /// Router drops at nodes inside this bin, indexed by
    /// [`DropReason::index`].
    pub dropped: [u64; DropReason::ALL.len()],
    /// CBF contention timers cancelled at nodes inside this bin.
    pub cbf_cancelled: u64,
    /// The subset of `cbf_cancelled` caused by a frame transmitted
    /// under the attacker's address.
    pub cbf_by_attacker: u64,
    /// Packets whose last forwarding hop sat in this bin and that were
    /// never delivered while that hop was inside attacker coverage —
    /// the interception attack's victims.
    pub intercepted: u64,
}

impl HeatCell {
    /// Total drops across all reasons.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Whether every counter is zero (such cells are skipped by the
    /// JSON encoding).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == HeatCell::default()
    }

    fn absorb(&mut self, other: &HeatCell) {
        self.generated += other.generated;
        self.delivered += other.delivered;
        for (d, o) in self.dropped.iter_mut().zip(other.dropped) {
            *d += o;
        }
        self.cbf_cancelled += other.cbf_cancelled;
        self.cbf_by_attacker += other.cbf_by_attacker;
        self.intercepted += other.intercepted;
    }
}

/// A longitudinal × time grid of packet outcomes over one run.
///
/// Coordinates outside the road segment or past the horizon clamp into
/// the edge bins (vehicles spawn 20 m before the segment and static
/// destinations sit just past it).
#[derive(Debug, Clone, PartialEq)]
pub struct RoadHeatmap {
    meta: BTreeMap<String, String>,
    x_bin: f64,
    t_bin: SimDuration,
    road_length: f64,
    duration: SimDuration,
    nx: usize,
    nt: usize,
    cells: Vec<HeatCell>,
}

fn bin_count(span: f64, bin: f64) -> usize {
    assert!(span > 0.0 && bin > 0.0, "spans and bins must be positive");
    let n = (span / bin).ceil();
    assert!(n.is_finite() && n >= 1.0, "degenerate bin count for span {span} bin {bin}");
    n as usize
}

impl RoadHeatmap {
    /// The default longitudinal bin width, in metres.
    pub const DEFAULT_X_BIN: f64 = 100.0;
    /// The default time bin — the paper's 5 s reception-rate bin.
    pub const DEFAULT_T_BIN: SimDuration = SimDuration::from_secs(5);

    /// An empty heatmap over `road_length` metres × `duration`, at the
    /// default 100 m × 5 s resolution.
    ///
    /// # Panics
    ///
    /// Panics if the road length or duration is not positive.
    #[must_use]
    pub fn new(road_length: f64, duration: SimDuration) -> Self {
        Self::with_bins(road_length, duration, Self::DEFAULT_X_BIN, Self::DEFAULT_T_BIN)
    }

    /// An empty heatmap at an explicit resolution.
    ///
    /// # Panics
    ///
    /// Panics if any extent or bin width is not positive.
    #[must_use]
    pub fn with_bins(
        road_length: f64,
        duration: SimDuration,
        x_bin: f64,
        t_bin: SimDuration,
    ) -> Self {
        assert!(road_length.is_finite() && x_bin.is_finite(), "non-finite heatmap extent");
        assert!(t_bin > SimDuration::ZERO, "time bin must be positive");
        assert!(duration > SimDuration::ZERO, "duration must be positive");
        let nx = bin_count(road_length, x_bin);
        let nt = bin_count(duration.as_secs_f64(), t_bin.as_secs_f64());
        RoadHeatmap {
            meta: BTreeMap::new(),
            x_bin,
            t_bin,
            road_length,
            duration,
            nx,
            nt,
            cells: vec![HeatCell::default(); nx * nt],
        }
    }

    /// Attaches one metadata key (seed, scenario, attack setup …).
    ///
    /// # Panics
    ///
    /// Panics if the key or value contains a quote or backslash (the
    /// encoder never escapes).
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        for s in [key, value.as_str()] {
            assert!(!s.contains('"') && !s.contains('\\'), "meta must not need escaping: {s:?}");
        }
        self.meta.insert(key.to_string(), value);
    }

    /// The run metadata.
    #[must_use]
    pub fn meta(&self) -> &BTreeMap<String, String> {
        &self.meta
    }

    /// Longitudinal bin count.
    #[must_use]
    pub fn x_bins(&self) -> usize {
        self.nx
    }

    /// Time bin count.
    #[must_use]
    pub fn t_bins(&self) -> usize {
        self.nt
    }

    /// The `[lo, hi)` metre range of longitudinal bin `xi`.
    #[must_use]
    pub fn x_range(&self, xi: usize) -> (f64, f64) {
        let lo = self.x_bin * xi as f64;
        (lo, (lo + self.x_bin).min(self.road_length.max(self.x_bin)))
    }

    /// The `[lo, hi)` second range of time bin `ti`.
    #[must_use]
    pub fn t_range(&self, ti: usize) -> (f64, f64) {
        let lo = self.t_bin.as_secs_f64() * ti as f64;
        (lo, lo + self.t_bin.as_secs_f64())
    }

    /// One cell (row-major over `(ti, xi)`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn cell(&self, xi: usize, ti: usize) -> &HeatCell {
        assert!(xi < self.nx && ti < self.nt, "cell ({xi},{ti}) out of range");
        &self.cells[ti * self.nx + xi]
    }

    fn index(&self, x: f64, t: SimTime) -> usize {
        assert!(x.is_finite(), "non-finite x {x}");
        let xi = ((x / self.x_bin).floor().max(0.0) as usize).min(self.nx - 1);
        let ti = (t.as_micros() / self.t_bin.as_micros().max(1)) as usize;
        ti.min(self.nt - 1) * self.nx + xi
    }

    /// Records one originated packet (and its eventual fate) at its
    /// origin coordinates.
    pub fn record_packet(&mut self, x: f64, t: SimTime, delivered: bool) {
        let i = self.index(x, t);
        self.cells[i].generated += 1;
        if delivered {
            self.cells[i].delivered += 1;
        }
    }

    /// Records one intercepted packet at its last forwarding hop.
    pub fn record_intercepted(&mut self, x: f64, t: SimTime) {
        let i = self.index(x, t);
        self.cells[i].intercepted += 1;
    }

    /// Feeds one trace event emitted by a node at road position `x`.
    /// Only drop and CBF-cancellation events land in the grid; every
    /// other event is ignored. `attacker` is the link-layer address the
    /// attacker transmits under, when known — it attributes
    /// suppressions.
    pub fn record_event(&mut self, x: f64, t: SimTime, event: &TraceEvent, attacker: Option<u64>) {
        match event {
            TraceEvent::Dropped { reason, .. } => {
                let i = self.index(x, t);
                self.cells[i].dropped[reason.index()] += 1;
            }
            TraceEvent::CbfCancelled { by, .. } => {
                let i = self.index(x, t);
                self.cells[i].cbf_cancelled += 1;
                if attacker == Some(*by) {
                    self.cells[i].cbf_by_attacker += 1;
                }
            }
            _ => {}
        }
    }

    /// Sums a longitudinal bin over all time bins.
    #[must_use]
    pub fn column(&self, xi: usize) -> HeatCell {
        let mut agg = HeatCell::default();
        for ti in 0..self.nt {
            agg.absorb(self.cell(xi, ti));
        }
        agg
    }

    /// Sums the whole grid.
    #[must_use]
    pub fn totals(&self) -> HeatCell {
        let mut agg = HeatCell::default();
        for c in &self.cells {
            agg.absorb(c);
        }
        agg
    }

    // -----------------------------------------------------------------
    // CSV
    // -----------------------------------------------------------------

    /// Renders the dense grid as CSV, one row per cell — ready for any
    /// heatmap plotter.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("x_lo_m,x_hi_m,t_lo_s,t_hi_s,generated,delivered");
        for r in DropReason::ALL {
            let _ = write!(out, ",drop_{}", r.name());
        }
        out.push_str(",cbf_cancelled,cbf_by_attacker,intercepted\n");
        for ti in 0..self.nt {
            for xi in 0..self.nx {
                let (xl, xh) = self.x_range(xi);
                let (tl, th) = self.t_range(ti);
                let c = self.cell(xi, ti);
                let _ = write!(
                    out,
                    "{},{},{},{},{},{}",
                    format_f64(xl),
                    format_f64(xh),
                    format_f64(tl),
                    format_f64(th),
                    c.generated,
                    c.delivered
                );
                for d in c.dropped {
                    let _ = write!(out, ",{d}");
                }
                let _ =
                    writeln!(out, ",{},{},{}", c.cbf_cancelled, c.cbf_by_attacker, c.intercepted);
            }
        }
        out
    }

    // -----------------------------------------------------------------
    // JSON
    // -----------------------------------------------------------------

    /// Renders the heatmap as JSON (sparse: empty cells are omitted).
    /// Deterministic — two same-seed runs produce byte-identical
    /// artifacts.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"meta\":{");
        let mut first = true;
        for (k, v) in &self.meta {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{k}\":\"{v}\"");
        }
        let _ = write!(
            out,
            "}},\"x_bin_m\":{},\"t_bin_us\":{},\"road_length_m\":{},\"duration_us\":{},\"cells\":[",
            format_f64(self.x_bin),
            self.t_bin.as_micros(),
            format_f64(self.road_length),
            self.duration.as_micros()
        );
        let mut first = true;
        for ti in 0..self.nt {
            for xi in 0..self.nx {
                let c = self.cell(xi, ti);
                if c.is_empty() {
                    continue;
                }
                out.push_str(if first { "\n" } else { ",\n" });
                first = false;
                let _ = write!(
                    out,
                    "{{\"xi\":{xi},\"ti\":{ti},\"generated\":{},\"delivered\":{},\"dropped\":[",
                    c.generated, c.delivered
                );
                for (i, d) in c.dropped.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{d}");
                }
                let _ = write!(
                    out,
                    "],\"cbf_cancelled\":{},\"cbf_by_attacker\":{},\"intercepted\":{}}}",
                    c.cbf_cancelled, c.cbf_by_attacker, c.intercepted
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses an artifact produced by [`RoadHeatmap::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending construct on malformed
    /// JSON, out-of-range cell indices or duplicate cells.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let fields = v.as_object("heatmap artifact")?;
        let get = |name: &str| -> Result<&Value, String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("heatmap artifact missing {name:?}"))
        };
        let mut meta = BTreeMap::new();
        for (k, v) in get("meta")?.as_object("meta")? {
            if let Value::String(s) = v {
                meta.insert(k.clone(), s.clone());
            } else {
                return Err(format!("meta value for {k:?} is not a string"));
            }
        }
        let x_bin = get("x_bin_m")?.as_f64("x_bin_m")?;
        let t_bin = SimDuration::from_micros(get("t_bin_us")?.as_u64("t_bin_us")?);
        let road_length = get("road_length_m")?.as_f64("road_length_m")?;
        let duration = SimDuration::from_micros(get("duration_us")?.as_u64("duration_us")?);
        if t_bin == SimDuration::ZERO || duration == SimDuration::ZERO {
            return Err("heatmap artifact has a zero time extent".to_string());
        }
        if !(x_bin > 0.0 && road_length > 0.0) {
            return Err("heatmap artifact has a non-positive spatial extent".to_string());
        }
        let mut map = RoadHeatmap::with_bins(road_length, duration, x_bin, t_bin);
        map.meta = meta;
        for cell in get("cells")?.as_array("cells")? {
            let cf = cell.as_object("cell")?;
            let cg = |name: &str| -> Result<&Value, String> {
                cf.iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("cell missing {name:?}"))
            };
            let xi = cg("xi")?.as_u64("xi")? as usize;
            let ti = cg("ti")?.as_u64("ti")? as usize;
            if xi >= map.nx || ti >= map.nt {
                return Err(format!("cell ({xi},{ti}) outside the {}x{} grid", map.nx, map.nt));
            }
            let mut c = HeatCell {
                generated: cg("generated")?.as_u64("generated")?,
                delivered: cg("delivered")?.as_u64("delivered")?,
                ..HeatCell::default()
            };
            let dropped = cg("dropped")?.as_array("dropped")?;
            if dropped.len() != DropReason::ALL.len() {
                return Err(format!("cell ({xi},{ti}) has {} drop counters", dropped.len()));
            }
            for (slot, v) in c.dropped.iter_mut().zip(dropped) {
                *slot = v.as_u64("drop counter")?;
            }
            c.cbf_cancelled = cg("cbf_cancelled")?.as_u64("cbf_cancelled")?;
            c.cbf_by_attacker = cg("cbf_by_attacker")?.as_u64("cbf_by_attacker")?;
            c.intercepted = cg("intercepted")?.as_u64("intercepted")?;
            if c.is_empty() {
                return Err(format!("cell ({xi},{ti}) is empty (must be omitted)"));
            }
            let slot = &mut map.cells[ti * map.nx + xi];
            if !slot.is_empty() {
                return Err(format!("duplicate cell ({xi},{ti})"));
            }
            *slot = c;
        }
        Ok(map)
    }
}

// ---------------------------------------------------------------------
// A/B diff
// ---------------------------------------------------------------------

/// One longitudinal bin's attacker-free vs. attacked delta (time bins
/// summed).
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapDiffRow {
    /// Bin range, metres.
    pub x_lo: f64,
    /// Bin range, metres.
    pub x_hi: f64,
    /// Attacker-free totals for this bin.
    pub af: HeatCell,
    /// Attacked totals for this bin.
    pub atk: HeatCell,
}

impl HeatmapDiffRow {
    /// Attacker-free delivery rate (1.0 when nothing was generated).
    #[must_use]
    pub fn rate_af(&self) -> f64 {
        rate(self.af.delivered, self.af.generated)
    }

    /// Attacked delivery rate (1.0 when nothing was generated).
    #[must_use]
    pub fn rate_atk(&self) -> f64 {
        rate(self.atk.delivered, self.atk.generated)
    }

    /// Relative delivery drop `(rate_af − rate_atk) / rate_af`,
    /// clamped below at 0 (a bin can improve under attack by chance).
    #[must_use]
    pub fn relative_drop(&self) -> f64 {
        let af = self.rate_af();
        if af <= 0.0 {
            return 0.0;
        }
        ((af - self.rate_atk()) / af).max(0.0)
    }

    /// Whether this bin lost more than half its deliveries — the
    /// blast-radius "hot bin" criterion. Bins that generated nothing
    /// in either run are never hot.
    #[must_use]
    pub fn is_hot(&self) -> bool {
        self.af.generated > 0 && self.atk.generated > 0 && self.relative_drop() > 0.5
    }
}

fn rate(delivered: u64, generated: u64) -> f64 {
    if generated == 0 {
        1.0
    } else {
        delivered as f64 / generated as f64
    }
}

/// The per-bin delta table between an attacker-free and an attacked
/// heatmap of identical geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapDiff {
    /// One row per longitudinal bin, ascending.
    pub rows: Vec<HeatmapDiffRow>,
}

impl HeatmapDiff {
    /// Diffs two heatmaps.
    ///
    /// # Errors
    ///
    /// Returns a message if the two grids have different geometry.
    pub fn build(af: &RoadHeatmap, atk: &RoadHeatmap) -> Result<Self, String> {
        if (af.nx, af.nt, af.x_bin, af.t_bin) != (atk.nx, atk.nt, atk.x_bin, atk.t_bin) {
            return Err(format!(
                "heatmap geometry mismatch: af {}x{} ({} m x {}), atk {}x{} ({} m x {})",
                af.nx, af.nt, af.x_bin, af.t_bin, atk.nx, atk.nt, atk.x_bin, atk.t_bin
            ));
        }
        let rows = (0..af.nx)
            .map(|xi| {
                let (x_lo, x_hi) = af.x_range(xi);
                HeatmapDiffRow { x_lo, x_hi, af: af.column(xi), atk: atk.column(xi) }
            })
            .collect();
        Ok(HeatmapDiff { rows })
    }

    /// The bins that lost more than half their deliveries.
    #[must_use]
    pub fn hot_bins(&self) -> Vec<&HeatmapDiffRow> {
        self.rows.iter().filter(|r| r.is_hot()).collect()
    }

    /// The longitudinal bin with the most attacker-attributed CBF
    /// suppressions in the attacked run, if any suppression was
    /// attributed at all — the blockage attack's footprint.
    #[must_use]
    pub fn hottest_suppression_bin(&self) -> Option<&HeatmapDiffRow> {
        self.rows.iter().max_by_key(|r| r.atk.cbf_by_attacker).filter(|r| r.atk.cbf_by_attacker > 0)
    }
}

impl fmt::Display for HeatmapDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>12}  {:>9} {:>9}  {:>9} {:>9}  {:>8}  {:>9} {:>9}  hot",
            "bin [m)",
            "gen(af)",
            "dlv(af)",
            "gen(atk)",
            "dlv(atk)",
            "rel.drop",
            "drops",
            "cbf(atk)"
        )?;
        for r in &self.rows {
            if r.af.is_empty() && r.atk.is_empty() {
                continue;
            }
            writeln!(
                f,
                "{:>5}-{:<6}  {:>9} {:>9}  {:>9} {:>9}  {:>7.1}%  {:>9} {:>9}  {}",
                r.x_lo.round(),
                r.x_hi.round(),
                r.af.generated,
                r.af.delivered,
                r.atk.generated,
                r.atk.delivered,
                r.relative_drop() * 100.0,
                r.atk.dropped_total(),
                r.atk.cbf_by_attacker,
                if r.is_hot() { "HOT" } else { "" }
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Blast radius
// ---------------------------------------------------------------------

/// The attack's spatial and topological footprint, rolled up from an
/// A/B pair of topology artifacts and the matching heatmap diff.
#[derive(Debug, Clone, PartialEq)]
pub struct BlastRadiusReport {
    /// `(x_lo, x_hi, relative_drop)` of every hot bin, ascending.
    pub hot_bins: Vec<(f64, f64, f64)>,
    /// Fraction of attacker-free snapshots whose legit relay graph was
    /// partitioned.
    pub partition_fraction_af: f64,
    /// Fraction of attacked snapshots whose legit relay graph was
    /// partitioned.
    pub partition_fraction_atk: f64,
    /// Fraction of attacked snapshots in which the attacker itself was
    /// a greedy local maximum toward the destination.
    pub attacker_local_max_fraction: f64,
    /// Mean fraction of legit nodes holding a poisoned gradient per
    /// attacked snapshot.
    pub poisoned_fraction: f64,
    /// Of all poisoned-gradient observations across attacked snapshots,
    /// the fraction sitting inside the attacker's coverage. Near 1.0
    /// when the attacker's replay footprint is exactly where gradients
    /// die — the attacker acting as the greedy local maximum.
    pub poisoned_in_coverage_fraction: f64,
    /// Articulation points of the attacker-free relay graph that are no
    /// longer articulation points under attack *and* sit inside the
    /// attacker's coverage — the cut vertices the attacker displaced
    /// (attacked run's node ids, ascending).
    pub displaced_articulation: Vec<u32>,
    /// Undelivered packets attributed to the interception attack.
    pub intercepted: u64,
    /// Of those, packets whose last forwarding hop sat inside the
    /// attacker's coverage when it forwarded.
    pub last_hop_in_coverage: u64,
}

fn partition_fraction(t: &TopoArtifact) -> f64 {
    if t.snapshots.is_empty() {
        return 0.0;
    }
    let parted = t.snapshots.iter().filter(|s| s.partitions > 1).count();
    parted as f64 / t.snapshots.len() as f64
}

impl BlastRadiusReport {
    /// Builds the report. The attacked artifact's node ids are offset
    /// by one above the attacker's id relative to the attacker-free
    /// run (the attacker claims a node slot mid-registration), which
    /// the articulation comparison accounts for.
    ///
    /// `intercepted` / `last_hop_in_coverage` come from the runner's
    /// trace correlation (see [`crate::interarea`]): a packet counts as
    /// intercepted when it was delivered attacker-free but not under
    /// attack.
    #[must_use]
    pub fn build(
        af_topo: &TopoArtifact,
        atk_topo: &TopoArtifact,
        diff: &HeatmapDiff,
        intercepted: u64,
        last_hop_in_coverage: u64,
    ) -> Self {
        let hot_bins =
            diff.hot_bins().iter().map(|r| (r.x_lo, r.x_hi, r.relative_drop())).collect();

        let attacker_ids = |s: &geonet_sim::TopoSnapshot| {
            s.nodes.iter().filter(|n| n.attacker).map(|n| n.id).collect::<Vec<_>>()
        };
        let with_attacker =
            atk_topo.snapshots.iter().filter(|s| !attacker_ids(s).is_empty()).count();
        let local_max_hits = atk_topo
            .snapshots
            .iter()
            .filter(|s| attacker_ids(s).iter().any(|id| s.local_max.contains(id)))
            .count();
        let attacker_local_max_fraction =
            if with_attacker == 0 { 0.0 } else { local_max_hits as f64 / with_attacker as f64 };

        let mut poisoned_sum = 0.0;
        let mut poisoned_n = 0usize;
        let mut poisoned_total = 0u64;
        let mut poisoned_in_cov = 0u64;
        for s in &atk_topo.snapshots {
            let legit = s.nodes.iter().filter(|n| !n.attacker).count();
            if legit == 0 {
                continue;
            }
            let covered: std::collections::BTreeSet<u32> =
                s.coverage.iter().flat_map(|c| c.covered.iter().copied()).collect();
            let mut poisoned = 0usize;
            for n in &s.nodes {
                if !n.attacker && n.gradient == geonet_sim::GradientHealth::Poisoned {
                    poisoned += 1;
                    poisoned_total += 1;
                    if covered.contains(&n.id) {
                        poisoned_in_cov += 1;
                    }
                }
            }
            poisoned_sum += poisoned as f64 / legit as f64;
            poisoned_n += 1;
        }
        let poisoned_fraction =
            if poisoned_n == 0 { 0.0 } else { poisoned_sum / poisoned_n as f64 };
        let poisoned_in_coverage_fraction =
            if poisoned_total == 0 { 0.0 } else { poisoned_in_cov as f64 / poisoned_total as f64 };

        // Same seed ⇒ same registration order, except the attacker
        // claims one node id right after the initial vehicles: an
        // attacker-free id at or above it maps one slot up.
        let attacker_id = atk_topo
            .snapshots
            .iter()
            .flat_map(|s| s.nodes.iter().filter(|n| n.attacker).map(|n| n.id))
            .min();
        let map_af_id = |id: u32| match attacker_id {
            Some(a) if id >= a => id + 1,
            _ => id,
        };
        let mut displaced = std::collections::BTreeSet::new();
        for (a, b) in af_topo.snapshots.iter().zip(&atk_topo.snapshots) {
            let covered: std::collections::BTreeSet<u32> =
                b.coverage.iter().flat_map(|c| c.covered.iter().copied()).collect();
            for &id in &a.articulation {
                let mapped = map_af_id(id);
                if covered.contains(&mapped) && !b.articulation.contains(&mapped) {
                    displaced.insert(mapped);
                }
            }
        }

        BlastRadiusReport {
            hot_bins,
            partition_fraction_af: partition_fraction(af_topo),
            partition_fraction_atk: partition_fraction(atk_topo),
            attacker_local_max_fraction,
            poisoned_fraction,
            poisoned_in_coverage_fraction,
            displaced_articulation: displaced.into_iter().collect(),
            intercepted,
            last_hop_in_coverage,
        }
    }

    /// `last_hop_in_coverage / intercepted` (0 when nothing was
    /// intercepted).
    #[must_use]
    pub fn last_hop_coverage_fraction(&self) -> f64 {
        if self.intercepted == 0 {
            0.0
        } else {
            self.last_hop_in_coverage as f64 / self.intercepted as f64
        }
    }

    /// Whether the evidence shows the attacker acting as the greedy
    /// gradient's local maximum (the paper's interception mechanism):
    /// gradients do die (some poisoned fraction), the majority of them
    /// *inside* the attacker's coverage — i.e. the packet sink the
    /// greedy gradient runs into coincides with the attacker, either by
    /// gradient poisoning or by geometric position.
    #[must_use]
    pub fn attacker_is_gradient_local_max(&self) -> bool {
        (self.poisoned_fraction > 0.0 && self.poisoned_in_coverage_fraction >= 0.5)
            || self.attacker_local_max_fraction >= 0.5
    }
}

impl fmt::Display for BlastRadiusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "blast radius")?;
        if self.hot_bins.is_empty() {
            writeln!(f, "  hot bins (rel. drop > 50%): none")?;
        } else {
            writeln!(f, "  hot bins (rel. drop > 50%):")?;
            for (lo, hi, drop) in &self.hot_bins {
                writeln!(f, "    {:>5}-{:<6} m  -{:.1}%", lo.round(), hi.round(), drop * 100.0)?;
            }
        }
        writeln!(
            f,
            "  partition time: af {:.1}%  atk {:.1}%",
            self.partition_fraction_af * 100.0,
            self.partition_fraction_atk * 100.0
        )?;
        writeln!(
            f,
            "  attacker acts as greedy local maximum: {} (geometric in {:.1}% of snapshots; \
             {:.1}% of poisoned gradients inside its coverage)",
            if self.attacker_is_gradient_local_max() { "yes" } else { "no" },
            self.attacker_local_max_fraction * 100.0,
            self.poisoned_in_coverage_fraction * 100.0
        )?;
        writeln!(
            f,
            "  poisoned gradients: {:.1}% of nodes (snapshot mean)",
            self.poisoned_fraction * 100.0
        )?;
        if self.displaced_articulation.is_empty() {
            writeln!(f, "  displaced articulation points: none")?;
        } else {
            writeln!(f, "  displaced articulation points: {:?}", self.displaced_articulation)?;
        }
        write!(
            f,
            "  intercepted {} packets, {} ({:.0}%) last forwarded inside attacker coverage",
            self.intercepted,
            self.last_hop_in_coverage,
            self.last_hop_coverage_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet_sim::{GradientHealth, TopoNode, TopoSnapshot};

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn bins_clamp_at_the_edges() {
        let mut h = RoadHeatmap::new(4_000.0, SimDuration::from_secs(60));
        assert_eq!((h.x_bins(), h.t_bins()), (40, 12));
        h.record_packet(-20.0, t(0), true); // spawn margin → bin 0
        h.record_packet(4_020.0, t(59), false); // past the end → last bin
        h.record_packet(4_020.0, t(400), false); // past the horizon
        assert_eq!(h.cell(0, 0).generated, 1);
        assert_eq!(h.cell(0, 0).delivered, 1);
        assert_eq!(h.cell(39, 11).generated, 2);
        assert_eq!(h.totals().generated, 3);
    }

    #[test]
    fn events_land_by_kind() {
        let mut h = RoadHeatmap::new(1_000.0, SimDuration::from_secs(10));
        let p = geonet_sim::PacketRef::new(1, 2);
        h.record_event(
            150.0,
            t(2),
            &TraceEvent::Dropped { packet: p, reason: DropReason::NoNextHop },
            None,
        );
        h.record_event(150.0, t(2), &TraceEvent::CbfCancelled { packet: p, by: 7 }, Some(7));
        h.record_event(150.0, t(2), &TraceEvent::CbfCancelled { packet: p, by: 9 }, Some(7));
        h.record_event(150.0, t(2), &TraceEvent::Delivered { packet: p }, Some(7)); // ignored
        h.record_intercepted(950.0, t(9));
        let c = h.cell(1, 0);
        assert_eq!(c.dropped[DropReason::NoNextHop.index()], 1);
        assert_eq!(c.cbf_cancelled, 2);
        assert_eq!(c.cbf_by_attacker, 1);
        assert_eq!(h.cell(9, 1).intercepted, 1);
    }

    #[test]
    fn csv_has_header_and_dense_rows() {
        let mut h = RoadHeatmap::with_bins(
            200.0,
            SimDuration::from_secs(10),
            100.0,
            SimDuration::from_secs(5),
        );
        h.record_packet(50.0, t(1), true);
        let csv = h.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "2x2 grid renders densely");
        assert!(lines[0].starts_with("x_lo_m,x_hi_m,t_lo_s,t_hi_s,generated,delivered,drop_"));
        assert!(lines[1].starts_with("0.0,100.0,0.0,5.0,1,1,"), "{}", lines[1]);
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let mut h = RoadHeatmap::new(4_000.0, SimDuration::from_secs(60));
        h.set_meta("seed", "42");
        h.set_meta("scenario", "interarea");
        h.record_packet(150.0, t(3), true);
        h.record_packet(2_050.0, t(31), false);
        h.record_intercepted(1_950.0, t(33));
        let p = geonet_sim::PacketRef::new(5, 1);
        h.record_event(
            2_050.0,
            t(33),
            &TraceEvent::Dropped { packet: p, reason: DropReason::AckExhausted },
            None,
        );
        let text = h.to_json();
        let back = RoadHeatmap::from_json(&text).expect("parses");
        assert_eq!(back, h);
        assert_eq!(back.to_json(), text, "round trip must be byte-identical");
    }

    #[test]
    fn json_rejects_out_of_range_and_duplicate_cells() {
        let mut h = RoadHeatmap::with_bins(
            200.0,
            SimDuration::from_secs(10),
            100.0,
            SimDuration::from_secs(5),
        );
        h.record_packet(50.0, t(1), true);
        let text = h.to_json();
        let far = text.replace("\"xi\":0", "\"xi\":7");
        assert!(RoadHeatmap::from_json(&far).unwrap_err().contains("outside"));
        let dup = text.replace(
            "\"cells\":[\n",
            "\"cells\":[\n{\"xi\":0,\"ti\":0,\"generated\":1,\"delivered\":0,\"dropped\":[0,0,0,0,0],\"cbf_cancelled\":0,\"cbf_by_attacker\":0,\"intercepted\":0},\n",
        );
        assert!(RoadHeatmap::from_json(&dup).unwrap_err().contains("duplicate"));
    }

    fn toy_heatmaps() -> (RoadHeatmap, RoadHeatmap) {
        let mk = || RoadHeatmap::with_bins(300.0, t(10) - t(0), 100.0, SimDuration::from_secs(5));
        let mut af = mk();
        let mut atk = mk();
        for _ in 0..10 {
            af.record_packet(50.0, t(1), true); // bin 0: healthy in both
            atk.record_packet(50.0, t(1), true);
            af.record_packet(150.0, t(1), true); // bin 1: collapses
            atk.record_packet(150.0, t(1), false);
            af.record_packet(250.0, t(1), true); // bin 2: mild damage
        }
        for _ in 0..10 {
            atk.record_packet(250.0, t(1), true);
        }
        atk.record_intercepted(150.0, t(2));
        (af, atk)
    }

    #[test]
    fn diff_finds_hot_bins() {
        let (af, atk) = toy_heatmaps();
        let diff = HeatmapDiff::build(&af, &atk).unwrap();
        assert_eq!(diff.rows.len(), 3);
        let hot = diff.hot_bins();
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].x_lo, 100.0);
        assert!((hot[0].relative_drop() - 1.0).abs() < 1e-12);
        assert!(!diff.rows[0].is_hot());
        let table = diff.to_string();
        assert!(table.contains("HOT"), "{table}");
    }

    #[test]
    fn diff_rejects_geometry_mismatch() {
        let af = RoadHeatmap::new(4_000.0, SimDuration::from_secs(60));
        let atk = RoadHeatmap::new(2_000.0, SimDuration::from_secs(60));
        assert!(HeatmapDiff::build(&af, &atk).unwrap_err().contains("geometry"));
    }

    fn snap(at: SimTime, nodes: Vec<TopoNode>, dest: Option<(f64, f64)>) -> TopoSnapshot {
        TopoSnapshot::build(at, dest, nodes)
    }

    #[test]
    fn blast_radius_rolls_up_topology_and_bins() {
        // Attacker-free: a 3-node chain, node 1 is the articulation
        // point. Attacked: the same chain plus an attacker (id 2 shifts
        // the last vehicle to id 3) whose phantom link makes node 1
        // poisoned and the attacker the local maximum.
        let dest = Some((1_000.0, 0.0));
        let af = TopoArtifact {
            meta: BTreeMap::new(),
            interval: SimDuration::from_secs(1),
            snapshots: vec![snap(
                t(1),
                vec![
                    TopoNode::new(0, 0.0, 0.0, 150.0, false),
                    TopoNode::new(1, 100.0, 0.0, 150.0, false),
                    TopoNode::new(2, 200.0, 0.0, 150.0, false),
                ],
                dest,
            )],
        };
        let atk = TopoArtifact {
            meta: BTreeMap::new(),
            interval: SimDuration::from_secs(1),
            snapshots: vec![snap(
                t(1),
                vec![
                    TopoNode::new(0, 0.0, 0.0, 150.0, false),
                    TopoNode::new(1, 100.0, 0.0, 150.0, false)
                        .with_gradient(GradientHealth::Poisoned),
                    TopoNode::new(2, 300.0, -10.0, 400.0, true),
                    // Displaced far east: the af articulation point at
                    // id 1 keeps its role only attacker-free.
                    TopoNode::new(3, 320.0, 0.0, 150.0, false),
                ],
                dest,
            )],
        };
        let (af_h, atk_h) = toy_heatmaps();
        let diff = HeatmapDiff::build(&af_h, &atk_h).unwrap();
        let report = BlastRadiusReport::build(&af, &atk, &diff, 10, 9);
        assert_eq!(report.hot_bins.len(), 1);
        assert!(report.partition_fraction_af < report.partition_fraction_atk);
        assert!(report.attacker_local_max_fraction > 0.0 || !atk.snapshots[0].local_max.is_empty());
        assert!(report.poisoned_fraction > 0.3, "{}", report.poisoned_fraction);
        assert_eq!(report.poisoned_in_coverage_fraction, 1.0);
        assert!(report.attacker_is_gradient_local_max());
        assert!((report.last_hop_coverage_fraction() - 0.9).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("blast radius"), "{text}");
        assert!(text.contains("hot bins"), "{text}");
    }

    #[test]
    fn blast_radius_maps_af_ids_past_the_attacker() {
        // af articulation id 2 maps to atk id 3 once the attacker takes
        // slot 2; it is covered and no longer an articulation point, so
        // it counts as displaced.
        let dest = None;
        let af = TopoArtifact {
            meta: BTreeMap::new(),
            interval: SimDuration::from_secs(1),
            snapshots: vec![snap(
                t(1),
                vec![
                    TopoNode::new(0, 0.0, 0.0, 150.0, false),
                    TopoNode::new(1, 100.0, 0.0, 150.0, false),
                    TopoNode::new(2, 200.0, 0.0, 150.0, false),
                    TopoNode::new(3, 300.0, 0.0, 150.0, false),
                    TopoNode::new(4, 400.0, 0.0, 150.0, false),
                ],
                dest,
            )],
        };
        // Same chain under attack, ids ≥ 2 shifted up by the attacker
        // at slot 2; the old articulation vertex (now id 3) is inside
        // coverage, and we hand it a parallel path so it stops being a
        // cut vertex.
        let atk = TopoArtifact {
            meta: BTreeMap::new(),
            interval: SimDuration::from_secs(1),
            snapshots: vec![snap(
                t(1),
                vec![
                    TopoNode::new(0, 0.0, 0.0, 150.0, false),
                    TopoNode::new(1, 100.0, 0.0, 250.0, false),
                    TopoNode::new(2, 200.0, -10.0, 500.0, true),
                    TopoNode::new(3, 200.0, 0.0, 150.0, false),
                    TopoNode::new(4, 300.0, 0.0, 250.0, false),
                    TopoNode::new(5, 400.0, 0.0, 150.0, false),
                ],
                dest,
            )],
        };
        let (af_h, atk_h) = toy_heatmaps();
        let diff = HeatmapDiff::build(&af_h, &atk_h).unwrap();
        let report = BlastRadiusReport::build(&af, &atk, &diff, 0, 0);
        assert!(report.displaced_articulation.contains(&3), "{report:?}");
        assert_eq!(report.last_hop_coverage_fraction(), 0.0);
    }
}
