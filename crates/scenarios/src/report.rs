//! Result types and report formatting for the experiment drivers.

use geonet_sim::{AbComparison, DropReason, EventCounters, TimeBins};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The A/B outcome of one experiment setting: merged time bins of the
/// attacker-free (A) runs and the attacked (B) runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbResult {
    /// Human-readable setting label (e.g. `"DSRC wN"`, `"ttl=5s"`).
    pub label: String,
    /// Attacker-free bins, merged over all runs.
    pub baseline: TimeBins,
    /// Attacked bins, merged over all runs.
    pub attacked: TimeBins,
}

impl AbResult {
    /// The paper's γ/λ statistic: average per-bin drop of the reception
    /// rate from baseline to attacked.
    #[must_use]
    pub fn gamma(&self) -> Option<f64> {
        self.comparison().drop_rate()
    }

    /// Overall attacker-free reception rate.
    #[must_use]
    pub fn baseline_rate(&self) -> Option<f64> {
        self.baseline.overall_rate()
    }

    /// Overall attacked reception rate.
    #[must_use]
    pub fn attacked_rate(&self) -> Option<f64> {
        self.attacked.overall_rate()
    }

    /// The underlying bin-level comparison.
    #[must_use]
    pub fn comparison(&self) -> AbComparison {
        AbComparison::new(self.baseline.clone(), self.attacked.clone())
    }

    /// The accumulated (cumulative-over-time) drop-rate series plotted in
    /// the paper's Figures 8 and 10.
    #[must_use]
    pub fn accumulated_drop_series(&self) -> Vec<Option<f64>> {
        self.comparison().accumulated_drop_rates()
    }
}

impl fmt::Display for AbResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} af={} atk={} drop={}",
            self.label,
            fmt_rate(self.baseline_rate()),
            fmt_rate(self.attacked_rate()),
            fmt_rate(self.gamma()),
        )
    }
}

fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(r) => format!("{:5.1}%", r * 100.0),
        None => "  n/a ".to_string(),
    }
}

/// One row of an experiment report: the paper's published value next to
/// ours.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Experiment id (e.g. `"fig7a"`).
    pub experiment: String,
    /// Setting within the experiment (e.g. `"mL"`).
    pub setting: String,
    /// The paper's reported value (rate in `[0,1]`), when it states one.
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: Option<f64>,
}

impl ExperimentRow {
    /// Builds a row.
    #[must_use]
    pub fn new(
        experiment: impl Into<String>,
        setting: impl Into<String>,
        paper: Option<f64>,
        measured: Option<f64>,
    ) -> Self {
        ExperimentRow { experiment: experiment.into(), setting: setting.into(), paper, measured }
    }
}

impl fmt::Display for ExperimentRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:<20} paper={} ours={}",
            self.experiment,
            self.setting,
            fmt_rate(self.paper),
            fmt_rate(self.measured),
        )
    }
}

/// Renders rows as an aligned text table with a header.
#[must_use]
pub fn render_table(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"-".repeat(title.len()));
    out.push('\n');
    for r in rows {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (`experiment,setting,paper,measured`).
#[must_use]
pub fn to_csv(rows: &[ExperimentRow]) -> String {
    let mut out = String::from("experiment,setting,paper,measured\n");
    for r in rows {
        let p = r.paper.map(|v| format!("{v:.4}")).unwrap_or_default();
        let m = r.measured.map(|v| format!("{v:.4}")).unwrap_or_default();
        out.push_str(&format!("{},{},{},{}\n", r.experiment, r.setting, p, m));
    }
    out
}

/// Renders a per-[`DropReason`] breakout of a run's router discards as
/// an aligned text table: one row per reason that occurred (count and
/// share of all drops), plus a total row. Reuses the trace layer's
/// [`EventCounters`] — any traced run (forensic pass, topology pass,
/// unit test sink) can feed it.
#[must_use]
pub fn drop_breakdown(title: &str, counters: &EventCounters) -> String {
    use std::fmt::Write as _;
    let total = counters.total_dropped();
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "-".repeat(title.len()));
    if total == 0 {
        let _ = writeln!(out, "no router drops");
        return out;
    }
    for reason in DropReason::ALL {
        let n = counters.dropped_for(reason);
        if n == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<24} {:>9}  {:>5.1}%",
            reason.name(),
            n,
            n as f64 / total as f64 * 100.0
        );
    }
    let _ = writeln!(out, "{:<24} {:>9}  100.0%", "total", total);
    out
}

/// Renders a per-bin time series (e.g. accumulated drop rates) as CSV with
/// one column per labelled series.
#[must_use]
pub fn series_to_csv(bin_seconds: u64, series: &[(String, Vec<Option<f64>>)]) -> String {
    let mut out = String::from("t_s");
    for (label, _) in series {
        out.push(',');
        out.push_str(label);
    }
    out.push('\n');
    let len = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for i in 0..len {
        out.push_str(&format!("{}", (i as u64 + 1) * bin_seconds));
        for (_, v) in series {
            out.push(',');
            if let Some(Some(x)) = v.get(i) {
                out.push_str(&format!("{x:.4}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet_sim::{SimDuration, SimTime};

    fn bins(rate_num: u64, rate_den: u64) -> TimeBins {
        let mut b = TimeBins::new(SimDuration::from_secs(5), 4);
        for i in 0..4 {
            b.record_weighted(SimTime::from_secs(i * 5), rate_num, rate_den);
        }
        b
    }

    #[test]
    fn gamma_is_mean_bin_drop() {
        let r = AbResult { label: "t".into(), baseline: bins(10, 10), attacked: bins(4, 10) };
        assert!((r.gamma().unwrap() - 0.6).abs() < 1e-9);
        assert_eq!(r.baseline_rate(), Some(1.0));
        assert_eq!(r.attacked_rate(), Some(0.4));
    }

    #[test]
    fn accumulated_series_has_bin_count_entries() {
        let r = AbResult { label: "t".into(), baseline: bins(10, 10), attacked: bins(5, 10) };
        let s = r.accumulated_drop_series();
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|x| (x.unwrap() - 0.5).abs() < 1e-9));
    }

    #[test]
    fn display_formats_percentages() {
        let r = AbResult { label: "DSRC wN".into(), baseline: bins(10, 10), attacked: bins(4, 10) };
        let s = r.to_string();
        assert!(s.contains("af=100.0%"), "{s}");
        assert!(s.contains("drop= 60.0%"), "{s}");
    }

    #[test]
    fn table_and_csv_render() {
        let rows = vec![
            ExperimentRow::new("fig7a", "mL", Some(0.999), Some(0.97)),
            ExperimentRow::new("fig7a", "wN", Some(0.468), None),
        ];
        let t = render_table("Figure 7a", &rows);
        assert!(t.contains("Figure 7a") && t.contains("fig7a"));
        let csv = to_csv(&rows);
        assert!(csv.starts_with("experiment,setting,paper,measured\n"));
        assert!(csv.contains("fig7a,mL,0.9990,0.9700"));
        assert!(csv.contains("fig7a,wN,0.4680,\n"));
    }

    #[test]
    fn drop_breakdown_lists_only_reasons_that_occurred() {
        let mut c = geonet_sim::EventCounters::default();
        c.dropped[geonet_sim::DropReason::NoNextHop.index()] = 30;
        c.dropped[geonet_sim::DropReason::RhlExhausted.index()] = 10;
        let table = drop_breakdown("Drops — attacked interarea", &c);
        assert!(table.contains("Drops — attacked interarea"), "{table}");
        assert!(table.contains("no_next_hop") && table.contains("75.0%"), "{table}");
        assert!(table.contains("rhl_exhausted") && table.contains("25.0%"), "{table}");
        assert!(table.contains("total") && table.contains("40"), "{table}");
        // Reasons that never fired stay out of the table.
        let lines = table.lines().count();
        assert_eq!(lines, 5, "{table}");
    }

    #[test]
    fn drop_breakdown_handles_zero_drops() {
        let c = geonet_sim::EventCounters::default();
        let table = drop_breakdown("Drops", &c);
        assert!(table.contains("no router drops"), "{table}");
    }

    #[test]
    fn series_csv_shape() {
        let s = vec![
            ("a".to_string(), vec![Some(0.5), None, Some(1.0)]),
            ("b".to_string(), vec![Some(0.25)]),
        ];
        let csv = series_to_csv(5, &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,a,b");
        assert_eq!(lines[1], "5,0.5000,0.2500");
        assert_eq!(lines[2], "10,,");
        assert_eq!(lines[3], "15,1.0000,");
    }
}
