//! Mitigation evaluation (paper Figure 14).
//!
//! * **Figure 14a** — the GF plausibility check (threshold = 486 m, the
//!   median DSRC NLoS range): inter-area reception with and without the
//!   check, against attackers with the wN / mN / mL ranges, plus the
//!   attacker-free baseline with and without the check (the paper finds
//!   the check helps even without an attacker, because of the naturally
//!   stale location tables).
//! * **Figure 14b** — the CBF RHL-drop check (threshold = 3): intra-area
//!   reception with and without the check against wN and mN attackers.

use crate::config::{Scale, ScenarioConfig};
use crate::parallel;
use crate::report::AbResult;
use crate::{interarea, intraarea};
use geonet::MitigationConfig;
use geonet_sim::{SimDuration, TimeBins};
use serde::{Deserialize, Serialize};

/// One Figure 14 comparison: the same setting with the mitigation off and
/// on (both columns are *attacked* runs unless the label says `af`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationResult {
    /// Setting label (e.g. `"wN"`, `"af"`).
    pub label: String,
    /// Reception bins without the mitigation.
    pub unmitigated: TimeBins,
    /// Reception bins with the mitigation.
    pub mitigated: TimeBins,
}

impl MitigationResult {
    /// Reception rate without the mitigation.
    #[must_use]
    pub fn unmitigated_rate(&self) -> Option<f64> {
        self.unmitigated.overall_rate()
    }

    /// Reception rate with the mitigation.
    #[must_use]
    pub fn mitigated_rate(&self) -> Option<f64> {
        self.mitigated.overall_rate()
    }

    /// Absolute improvement (percentage points / 100).
    #[must_use]
    pub fn improvement(&self) -> Option<f64> {
        Some(self.mitigated_rate()? - self.unmitigated_rate()?)
    }
}

impl std::fmt::Display for MitigationResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} without={:5.1}% with={:5.1}% (Δ {:+5.1} pts)",
            self.label,
            self.unmitigated_rate().unwrap_or(f64::NAN) * 100.0,
            self.mitigated_rate().unwrap_or(f64::NAN) * 100.0,
            self.improvement().unwrap_or(f64::NAN) * 100.0,
        )
    }
}

fn merged_interarea(cfg: &ScenarioConfig, attacked: bool, scale: Scale, seed: u64) -> TimeBins {
    let cfg = cfg.with_duration(scale.duration());
    let bin_count = usize::try_from(cfg.duration.as_secs().div_ceil(5)).expect("bin count fits");
    let mut bins = TimeBins::new(SimDuration::from_secs(5), bin_count);
    let runs = parallel::run_indexed(scale.runs, |i| {
        let s = seed.wrapping_add(u64::from(i) * 0x9E37);
        interarea::run_one(&cfg, attacked, s)
    });
    for r in &runs {
        bins.merge(r);
    }
    bins
}

/// Figure 14a: the plausibility check under wN / mN / mL attackers and
/// attacker-free, DSRC. The threshold is the vehicles' own range.
#[must_use]
pub fn fig14a(scale: Scale, seed: u64) -> Vec<MitigationResult> {
    let base = ScenarioConfig::paper_dsrc_default();
    let profile = base.profile();
    let checked = base.with_mitigations(MitigationConfig::plausibility(base.v2v_range));
    let mut out = Vec::new();
    for (label, range) in
        [("wN", profile.nlos_worst()), ("mN", profile.nlos_median()), ("mL", profile.los_median())]
    {
        out.push(MitigationResult {
            label: label.to_string(),
            unmitigated: merged_interarea(&base.with_attack_range(range), true, scale, seed),
            mitigated: merged_interarea(&checked.with_attack_range(range), true, scale, seed),
        });
    }
    // Attacker-free with and without the check: the check also cleans up
    // natural staleness losses.
    out.push(MitigationResult {
        label: "af".to_string(),
        unmitigated: merged_interarea(&base, false, scale, seed),
        mitigated: merged_interarea(&checked, false, scale, seed),
    });
    out
}

/// Figure 14b: the RHL-drop check (threshold 3) under wN and mN
/// intra-area attackers, DSRC. Also returns the attacker-free reference
/// as an [`AbResult`]-style pair via the unmitigated baseline.
#[must_use]
pub fn fig14b(scale: Scale, seed: u64) -> Vec<MitigationResult> {
    let base = ScenarioConfig::paper_dsrc_default();
    let profile = base.profile();
    let checked = base.with_mitigations(MitigationConfig::rhl_check(3));
    let run = |cfg: &ScenarioConfig, attacked: bool| {
        let cfg = cfg.with_duration(scale.duration());
        let bin_count =
            usize::try_from(cfg.duration.as_secs().div_ceil(5)).expect("bin count fits");
        let mut bins = TimeBins::new(SimDuration::from_secs(5), bin_count);
        let runs = parallel::run_indexed(scale.runs, |i| {
            let s = seed.wrapping_add(u64::from(i) * 0x517C);
            intraarea::outcomes_to_bins(&intraarea::run_one(&cfg, attacked, s), cfg.duration)
        });
        for r in &runs {
            bins.merge(r);
        }
        bins
    };
    let mut out = Vec::new();
    for (label, range) in [("wN", profile.nlos_worst()), ("mN", profile.nlos_median())] {
        out.push(MitigationResult {
            label: label.to_string(),
            unmitigated: run(&base.with_attack_range(range), true),
            mitigated: run(&checked.with_attack_range(range), true),
        });
    }
    // Attacker-free reference (the mitigated attacked rates should align
    // with this).
    out.push(MitigationResult {
        label: "af".to_string(),
        unmitigated: run(&base, false),
        mitigated: run(&checked, false),
    });
    out
}

/// Convenience: converts a [`MitigationResult`] of attacked runs into an
/// [`AbResult`] whose "baseline" is the mitigated run — for reuse of the
/// drop-rate plumbing.
#[must_use]
pub fn as_ab(result: &MitigationResult) -> AbResult {
    AbResult {
        label: result.label.clone(),
        baseline: result.mitigated.clone(),
        attacked: result.unmitigated.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet_sim::SimTime;

    #[test]
    fn plausibility_check_recovers_reception() {
        // One tiny A/B at the mN attack range: mitigation must raise the
        // attacked reception substantially.
        let scale = Scale { runs: 1, duration_s: 40 };
        let base = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
        let checked = base.with_mitigations(MitigationConfig::plausibility(base.v2v_range));
        let r = MitigationResult {
            label: "mN".into(),
            unmitigated: merged_interarea(&base, true, scale, 31),
            mitigated: merged_interarea(&checked, true, scale, 31),
        };
        let delta = r.improvement().expect("rates available");
        assert!(delta > 0.2, "plausibility check ineffective: {r}");
    }

    #[test]
    fn rhl_check_restores_cbf_flood() {
        let scale = Scale { runs: 1, duration_s: 30 };
        let base = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
        let checked = base.with_mitigations(MitigationConfig::rhl_check(3));
        let run = |cfg: &ScenarioConfig| {
            let cfg = cfg.with_duration(scale.duration());
            intraarea::outcomes_to_bins(&intraarea::run_one(&cfg, true, 77), cfg.duration)
        };
        let r = MitigationResult {
            label: "mN".into(),
            unmitigated: run(&base),
            mitigated: run(&checked),
        };
        assert!(r.mitigated_rate().unwrap() > 0.9, "RHL check did not restore the flood: {r}");
        assert!(r.improvement().unwrap() > 0.1, "{r}");
    }

    #[test]
    fn result_accessors_and_display() {
        let mut a = TimeBins::new(SimDuration::from_secs(5), 2);
        a.record_weighted(SimTime::from_secs(1), 5, 10);
        let mut b = TimeBins::new(SimDuration::from_secs(5), 2);
        b.record_weighted(SimTime::from_secs(1), 9, 10);
        let r = MitigationResult { label: "x".into(), unmitigated: a, mitigated: b };
        assert!((r.improvement().unwrap() - 0.4).abs() < 1e-9);
        assert!(r.to_string().contains("+40.0 pts"), "{r}");
        let ab = as_ab(&r);
        assert_eq!(ab.baseline.overall_rate(), Some(0.9));
    }
}
