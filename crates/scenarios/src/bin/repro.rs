//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--runs N] [--duration SECS] [--seed S] [--jobs N] [--csv]
//!       [--trace PREFIX] [--forensics] [--metrics PREFIX] [--profile]
//!       [--audit PREFIX] [--audit-diff A B] [--check-invariants]
//!       [--topology PREFIX] [--topology-scenario NAME]
//!       [--topology-diff AF ATK] <experiment>...
//! ```
//!
//! Experiments: `table1 table2 fig7a fig7b fig7c fig7d fig7e fig8
//! fig9a fig9b fig9c fig9d fig9e fig9src fig10 fig12a fig12b fig13
//! fig14a fig14b all`, plus the beyond-the-paper extensions `ext-ack`,
//! `ext-loss` and `ext-mobile`.
//!
//! Defaults to a reduced scale (5 runs × 100 s); pass `--runs 100
//! --duration 200` for the paper's full scale. Every run prints one
//! progress line to stderr (wall time, events/sec, sim/wall ratio, ETA).
//!
//! `--trace PREFIX` and `--forensics` add a *forensic pass*: one traced,
//! attacked single run per attack family (interception and blockage) at
//! the current duration and seed. `--trace` streams each run's events to
//! `PREFIX.<family>.jsonl` (one JSON object per line — the schema of
//! [`geonet_sim::trace`]); `--forensics` prints the per-run loss
//! attribution table and the busiest nodes' counters.
//!
//! `--metrics PREFIX` and `--profile` add a *telemetry pass*: one
//! attacked inter-area interception run with a
//! [`geonet_sim::telemetry`] registry attached. `--metrics` writes the
//! registry to `PREFIX.metrics.prom` (Prometheus text exposition) and
//! `PREFIX.metrics.json` (round-trippable snapshot); `--profile` prints
//! the hot-path timer table (count, p50/p95/p99/max).
//!
//! `--audit PREFIX` adds an *audit pass*: one baseline and one attacked
//! inter-area interception run at the current duration and seed, each
//! with a [`geonet_sim::audit`] recorder sampling state digests every
//! simulated second. Digest timelines go to
//! `PREFIX.<variant>.audit.json` and the matching event traces to
//! `PREFIX.<variant>.trace.jsonl`. `--audit-diff A B` compares two
//! previously written artifacts, names the first diverging checkpoint
//! and component, and — when sibling `.trace.jsonl` files exist — prints
//! the traced events inside the divergence window. `--check-invariants`
//! replays the tier-1 scenario pairs with an online
//! [`geonet_sim::InvariantChecker`] attached and fails the invocation on
//! the first protocol-invariant violation. With any of these flags the
//! experiment list may be empty.
//!
//! `--topology PREFIX` adds a *topology pass*: one attacker-free and one
//! attacked run of the selected scenario (`--topology-scenario
//! interception`, the default, or `blockage`), each with the
//! [`geonet_sim::topo`] observer and a road-binned
//! [`geonet_scenarios::heatmap`] grid attached. Connectivity snapshots
//! go to `PREFIX.<variant>.topo.json` (round-trippable) and
//! `PREFIX.<variant>.topo.dot` (Graphviz, one graph per snapshot);
//! outcome grids go to `PREFIX.<variant>.heatmap.json` and `.csv`.
//! `--topology-diff AF ATK` reads two such prefixes back and prints the
//! per-bin attacker-free vs. attacked delta table plus the blast-radius
//! report (hot bins, partition time, greedy-local-maximum evidence,
//! displaced articulation points).

use geonet_attack::IntraAreaAttacker;
use geonet_radio::RangeProfile;
use geonet_scenarios::config::Scale;
use geonet_scenarios::forensics::{top_nodes, AttributionReport};
use geonet_scenarios::report::{
    drop_breakdown, render_table, series_to_csv, to_csv, ExperimentRow,
};
use geonet_scenarios::{
    analysis, extensions, impact, interarea, intraarea, mitigation, parallel, progress, safety,
    topology, AbResult, BlastRadiusReport, HeatmapDiff, RoadHeatmap, ScenarioConfig,
};
use geonet_sim::{
    diff_artifacts, shared, shared_auditor, shared_registry, trace_window, AuditArtifact,
    EventCounters, InvariantChecker, InvariantParams, JsonlSink, SharedSink, SimDuration,
    TopoArtifact, TraceRecord, TraceSink, VecSink,
};
use geonet_traffic::IdmParams;
use std::process::ExitCode;

/// Which scenario the `--topology` pass instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopologyScenario {
    Interception,
    Blockage,
}

#[derive(Debug)]
struct Options {
    scale: Scale,
    seed: u64,
    jobs: usize,
    csv: bool,
    trace: Option<String>,
    forensics: bool,
    metrics: Option<String>,
    profile: bool,
    audit: Option<String>,
    audit_diff: Option<(String, String)>,
    check_invariants: bool,
    topology: Option<String>,
    topology_scenario: TopologyScenario,
    topology_diff: Option<(String, String)>,
    experiments: Vec<String>,
}

/// One CLI flag: its operands, its help line and example operand
/// values (what the self-documentation test feeds the parser).
struct FlagSpec {
    name: &'static str,
    operands: &'static str,
    group: &'static str,
    help: &'static str,
    // Consumed only by the self-documentation test.
    #[cfg_attr(not(test), allow(dead_code))]
    example: &'static [&'static str],
}

/// Every flag `parse_args_from` accepts, grouped as the help prints
/// them. A flag absent from this table is rejected before the parser
/// ever sees it, so the table *is* the accepted set — the help text is
/// generated from it and can never go stale.
const FLAG_SPECS: &[FlagSpec] = &[
    FlagSpec {
        name: "--runs",
        operands: "N",
        group: "campaign",
        help: "A/B runs per experiment point (default 5)",
        example: &["3"],
    },
    FlagSpec {
        name: "--duration",
        operands: "SECS",
        group: "campaign",
        help: "simulated seconds per run (default 100)",
        example: &["30"],
    },
    FlagSpec {
        name: "--seed",
        operands: "S",
        group: "campaign",
        help: "base RNG seed (default 42)",
        example: &["7"],
    },
    FlagSpec {
        name: "--jobs",
        operands: "N",
        group: "campaign",
        help: "worker threads for a campaign's seeded runs (default: all \
               cores; reports are byte-identical at any N)",
        example: &["2"],
    },
    FlagSpec {
        name: "--csv",
        operands: "",
        group: "campaign",
        help: "emit experiment tables as CSV instead of text",
        example: &[],
    },
    FlagSpec {
        name: "--trace",
        operands: "PREFIX",
        group: "trace",
        help: "write PREFIX.<family>.jsonl event logs (forensic pass)",
        example: &["/tmp/repro-trace"],
    },
    FlagSpec {
        name: "--forensics",
        operands: "",
        group: "trace",
        help: "print per-run loss attribution and busiest-node counters",
        example: &[],
    },
    FlagSpec {
        name: "--metrics",
        operands: "PREFIX",
        group: "metrics",
        help: "write PREFIX.metrics.prom + PREFIX.metrics.json telemetry",
        example: &["/tmp/repro-metrics"],
    },
    FlagSpec {
        name: "--profile",
        operands: "",
        group: "metrics",
        help: "print the hot-path wall-clock timer table",
        example: &[],
    },
    FlagSpec {
        name: "--audit",
        operands: "PREFIX",
        group: "audit",
        help: "write PREFIX.<variant>.audit.json digest timelines plus matching \
               PREFIX.<variant>.trace.jsonl event logs",
        example: &["/tmp/repro-audit"],
    },
    FlagSpec {
        name: "--audit-diff",
        operands: "A B",
        group: "audit",
        help: "compare two audit artifacts; exit nonzero on divergence",
        example: &["a.audit.json", "b.audit.json"],
    },
    FlagSpec {
        name: "--check-invariants",
        operands: "",
        group: "audit",
        help: "replay tier-1 scenarios with the invariant checker",
        example: &[],
    },
    FlagSpec {
        name: "--topology",
        operands: "PREFIX",
        group: "topology",
        help: "run an instrumented attacker-free/attacked pair; write \
               PREFIX.<variant>.topo.json/.topo.dot connectivity snapshots and \
               PREFIX.<variant>.heatmap.json/.csv road-binned outcome grids",
        example: &["/tmp/repro-topo"],
    },
    FlagSpec {
        name: "--topology-scenario",
        operands: "NAME",
        group: "topology",
        help: "scenario for --topology: interception (default) or blockage",
        example: &["blockage"],
    },
    FlagSpec {
        name: "--topology-diff",
        operands: "AF ATK",
        group: "topology",
        help: "diff two --topology prefixes: per-bin delta table + blast-radius report",
        example: &["/tmp/repro-topo.af", "/tmp/repro-topo.atk"],
    },
];

/// Renders the full `--help` text from [`FLAG_SPECS`].
fn help_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "usage: repro [flags] <experiment>...\n\
         experiments: table1 table2 fig7a fig7b fig7c fig7d fig7e fig8 fig9a fig9b\n\
         \x20   fig9c fig9d fig9e fig9src fig10 fig12a fig12b fig13 fig14a fig14b all\n\
         \x20   analysis ext-ack ext-loss ext-mobile\n",
    );
    let mut group = "";
    for s in FLAG_SPECS {
        if s.group != group {
            group = s.group;
            let _ = writeln!(out, "{group} flags:");
        }
        let left = if s.operands.is_empty() {
            s.name.to_string()
        } else {
            format!("{} {}", s.name, s.operands)
        };
        let _ = writeln!(out, "  {left:<26} {}", s.help);
    }
    out
}

/// Remembers which `--` flags appeared; a repeated flag is rejected with
/// an error naming it (a duplicate is always a typo for this CLI — the
/// later value would silently win otherwise).
fn note_seen(seen: &mut Vec<String>, flag: &str) -> Result<(), String> {
    if seen.iter().any(|f| f == flag) {
        return Err(format!("duplicate flag {flag}"));
    }
    seen.push(flag.to_string());
    Ok(())
}

fn parse_args_from(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut scale = Scale { runs: 5, duration_s: 100 };
    let mut seed = 42;
    let mut jobs = parallel::available_jobs();
    let mut csv = false;
    let mut trace = None;
    let mut forensics = false;
    let mut metrics = None;
    let mut profile = false;
    let mut audit = None;
    let mut audit_diff = None;
    let mut check_invariants = false;
    let mut topology = None;
    let mut topology_scenario = TopologyScenario::Interception;
    let mut topology_diff = None;
    let mut experiments = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    let mut args = args;
    while let Some(arg) = args.next() {
        if arg.starts_with('-') && arg != "--help" && arg != "-h" {
            // The spec table is the accepted set: anything else is
            // rejected here, so every accepted flag is documented.
            if !FLAG_SPECS.iter().any(|s| s.name == arg) {
                return Err(format!("unknown flag {arg}"));
            }
            note_seen(&mut seen, &arg)?;
        }
        match arg.as_str() {
            "--runs" => {
                scale.runs = args
                    .next()
                    .ok_or("--runs needs a value")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
            }
            "--duration" => {
                scale.duration_s = args
                    .next()
                    .ok_or("--duration needs a value")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?;
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs: must be at least 1".into());
                }
            }
            "--csv" => csv = true,
            "--trace" => {
                trace = Some(args.next().ok_or("--trace needs a path prefix")?);
            }
            "--forensics" => forensics = true,
            "--metrics" => {
                metrics = Some(args.next().ok_or("--metrics needs a path prefix")?);
            }
            "--profile" => profile = true,
            "--audit" => {
                audit = Some(args.next().ok_or("--audit needs a path prefix")?);
            }
            "--audit-diff" => {
                let a = args.next().ok_or("--audit-diff needs two artifact paths")?;
                let b = args.next().ok_or("--audit-diff needs two artifact paths")?;
                audit_diff = Some((a, b));
            }
            "--check-invariants" => check_invariants = true,
            "--topology" => {
                topology = Some(args.next().ok_or("--topology needs a path prefix")?);
            }
            "--topology-scenario" => {
                let name = args.next().ok_or("--topology-scenario needs a name")?;
                topology_scenario = match name.as_str() {
                    "interception" => TopologyScenario::Interception,
                    "blockage" => TopologyScenario::Blockage,
                    other => {
                        return Err(format!(
                            "--topology-scenario: unknown scenario {other} \
                             (expected interception or blockage)"
                        ))
                    }
                };
            }
            "--topology-diff" => {
                let a = args.next().ok_or("--topology-diff needs two artifact prefixes")?;
                let b = args.next().ok_or("--topology-diff needs two artifact prefixes")?;
                topology_diff = Some((a, b));
            }
            "--help" | "-h" => {
                print!("{}", help_text());
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty()
        && trace.is_none()
        && !forensics
        && metrics.is_none()
        && !profile
        && audit.is_none()
        && audit_diff.is_none()
        && !check_invariants
        && topology.is_none()
        && topology_diff.is_none()
    {
        return Err("no experiments given (try `repro --help`)".into());
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1", "table2", "fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig8", "fig9a",
            "fig9b", "fig9c", "fig9d", "fig9e", "fig9src", "fig10", "fig12a", "fig12b", "fig13",
            "fig14a", "fig14b",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    }
    Ok(Options {
        scale,
        seed,
        jobs,
        csv,
        trace,
        forensics,
        metrics,
        profile,
        audit,
        audit_diff,
        check_invariants,
        topology,
        topology_scenario,
        topology_diff,
        experiments,
    })
}

/// One traced, attacked run per attack family: JSONL dumps for
/// `--trace`, attribution tables and busiest-node counters for
/// `--forensics`.
fn forensic_pass(opts: &Options) -> Result<(), String> {
    let cfg = ScenarioConfig::paper_dsrc_default()
        .with_duration(geonet_sim::SimDuration::from_secs(opts.scale.duration_s));
    for family in ["interarea", "intraarea"] {
        let sink = shared(VecSink::new());
        // The attacker's link-layer address, where one shows up in the
        // evidence: the blockage attacker replays under its pseudonym;
        // the interception attacker replays beacons verbatim and never
        // transmits under a name of its own.
        let attacker = match family {
            "interarea" => {
                let _ = interarea::run_one_traced(
                    &cfg.with_attack_range(486.0),
                    true,
                    opts.seed,
                    sink.clone(),
                );
                None
            }
            _ => {
                let _ = intraarea::run_one_traced(
                    &cfg.with_attack_range(500.0),
                    true,
                    opts.seed,
                    sink.clone(),
                );
                Some(IntraAreaAttacker::DEFAULT_PSEUDONYM.to_u64())
            }
        };
        let records = sink.borrow().records().to_vec();
        if let Some(prefix) = &opts.trace {
            let path = format!("{prefix}.{family}.jsonl");
            let file = std::fs::File::create(&path).map_err(|e| format!("--trace {path}: {e}"))?;
            let mut jsonl = JsonlSink::new(std::io::BufWriter::new(file));
            for r in &records {
                jsonl.record(r.at, r.node, &r.event);
            }
            jsonl.into_inner().map_err(|e| format!("--trace {path}: {e}"))?;
            eprintln!("# trace: {} events -> {path}", records.len());
        }
        if opts.forensics {
            println!("Forensics — one attacked {family} run, seed {}", opts.seed);
            println!("{}", AttributionReport::build(&records, attacker));
            let mut totals = EventCounters::default();
            for r in &records {
                totals.record(&r.event);
            }
            println!("{}", drop_breakdown(&format!("router drops by reason ({family})"), &totals));
            println!("busiest nodes:");
            for (node, counters, total) in top_nodes(&records, 5) {
                let summary: Vec<String> = counters
                    .top_counters()
                    .into_iter()
                    .take(4)
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                println!("  node {node:>4} {total:>7} events  {}", summary.join(" "));
            }
            println!();
        }
    }
    Ok(())
}

/// One attacked inter-area interception run with a telemetry registry
/// attached, feeding `--metrics` exporters and the `--profile` table.
fn telemetry_pass(opts: &Options) -> Result<(), String> {
    let registry = shared_registry();
    let cfg = ScenarioConfig::paper_dsrc_default()
        .with_attack_range(486.0)
        .with_duration(SimDuration::from_secs(opts.scale.duration_s));
    progress::begin_setting("telemetry", 1);
    let t0 = std::time::Instant::now();
    let (bins, events) = interarea::run_one_metered(&cfg, true, opts.seed, registry.clone());
    let wall = t0.elapsed().as_secs_f64();
    {
        let mut reg = registry.borrow_mut();
        reg.add("sim_events_total", events);
        reg.set_gauge("run_wall_seconds", wall);
        if wall > 0.0 {
            reg.set_gauge("sim_events_per_sec", events as f64 / wall);
            reg.set_gauge("sim_wall_ratio", cfg.duration.as_secs_f64() / wall);
        }
        if let Some(rate) = bins.overall_rate() {
            reg.set_gauge("attacked_reception_rate", rate);
        }
        // Whole-invocation totals: covers any experiments that ran before
        // this pass, plus the metered run itself.
        if let Some(s) = progress::summary() {
            reg.add("campaign_runs_total", s.runs);
            reg.add("campaign_events_total", s.events);
            if let Some(eps) = s.events_per_sec() {
                reg.set_gauge("campaign_events_per_sec", eps);
            }
            if let Some(r) = s.sim_wall_ratio() {
                reg.set_gauge("campaign_sim_wall_ratio", r);
            }
        }
    }
    let snap = registry.borrow().snapshot();
    if let Some(prefix) = &opts.metrics {
        let prom_path = format!("{prefix}.metrics.prom");
        std::fs::write(&prom_path, snap.to_prometheus())
            .map_err(|e| format!("--metrics {prom_path}: {e}"))?;
        let json_path = format!("{prefix}.metrics.json");
        std::fs::write(&json_path, snap.to_json())
            .map_err(|e| format!("--metrics {json_path}: {e}"))?;
        eprintln!("# metrics: {prom_path}, {json_path}");
    }
    if opts.profile {
        let us = |ns: Option<u64>| match ns {
            Some(v) => format!("{:.1}", v as f64 / 1e3),
            None => "-".into(),
        };
        println!(
            "Hot-path profile — one attacked inter-area run, seed {}, {} s sim",
            opts.seed, opts.scale.duration_s
        );
        println!(
            "{:<26} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "timer", "count", "p50 µs", "p95 µs", "p99 µs", "max µs"
        );
        for name in snap.histogram_names() {
            if !name.ends_with("_ns") {
                continue;
            }
            let h = snap.histogram(name).expect("name from snapshot");
            println!(
                "{:<26} {:>10} {:>9} {:>9} {:>9} {:>9}",
                name,
                h.count(),
                us(h.p50()),
                us(h.p95()),
                us(h.p99()),
                us(Some(h.max())),
            );
        }
        println!();
    }
    Ok(())
}

/// Two audited inter-area interception runs — baseline and attacked —
/// at the current duration and seed: digest timelines to
/// `PREFIX.<variant>.audit.json`, matching event traces to
/// `PREFIX.<variant>.trace.jsonl` (what `--audit-diff` joins against).
fn audit_pass(opts: &Options, prefix: &str) -> Result<(), String> {
    let cfg = ScenarioConfig::paper_dsrc_default()
        .with_attack_range(486.0)
        .with_duration(SimDuration::from_secs(opts.scale.duration_s));
    for (variant, attacked) in [("baseline", false), ("attacked", true)] {
        let sink = shared(VecSink::new());
        let auditor = shared_auditor(SimDuration::from_secs(1));
        let trace_sink: SharedSink = sink.clone();
        let _ = interarea::run_one_audited(
            &cfg,
            attacked,
            opts.seed,
            Some(trace_sink),
            auditor.clone(),
        );
        let artifact = auditor.borrow().to_artifact();
        let audit_path = format!("{prefix}.{variant}.audit.json");
        std::fs::write(&audit_path, artifact.to_json())
            .map_err(|e| format!("--audit {audit_path}: {e}"))?;
        let records = sink.borrow().records().to_vec();
        let trace_path = format!("{prefix}.{variant}.trace.jsonl");
        let file =
            std::fs::File::create(&trace_path).map_err(|e| format!("--audit {trace_path}: {e}"))?;
        let mut jsonl = JsonlSink::new(std::io::BufWriter::new(file));
        for r in &records {
            jsonl.record(r.at, r.node, &r.event);
        }
        jsonl.into_inner().map_err(|e| format!("--audit {trace_path}: {e}"))?;
        eprintln!(
            "# audit: {} checkpoints -> {audit_path}, {} events -> {trace_path}",
            artifact.checkpoints.len(),
            records.len()
        );
    }
    Ok(())
}

/// The `.trace.jsonl` written next to an `.audit.json` by `audit_pass`,
/// if the path follows that naming convention.
fn sibling_trace(audit_path: &str) -> Option<String> {
    audit_path.strip_suffix(".audit.json").map(|stem| format!("{stem}.trace.jsonl"))
}

/// How many trace-window events `--audit-diff` prints per side before
/// eliding the rest.
const TRACE_WINDOW_PREVIEW: usize = 20;

/// Loads two digest timelines, reports the first divergence, and — when
/// sibling `.trace.jsonl` files exist next to the artifacts — prints the
/// traced events inside the divergence window. Returns whether the
/// timelines are identical.
fn audit_diff_pass(a_path: &str, b_path: &str) -> Result<bool, String> {
    let load = |path: &str| -> Result<AuditArtifact, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("--audit-diff {path}: {e}"))?;
        AuditArtifact::from_json(&text).map_err(|e| format!("--audit-diff {path}: {e}"))
    };
    let (a, b) = (load(a_path)?, load(b_path)?);
    let report = diff_artifacts(&a, &b);
    println!("Audit diff — A = {a_path}, B = {b_path}");
    print!("{report}");
    if let Some(d) = &report.first_divergence {
        for (label, path) in [("A", a_path), ("B", b_path)] {
            let Some(trace_path) = sibling_trace(path) else { continue };
            let Ok(text) = std::fs::read_to_string(&trace_path) else { continue };
            let mut records = Vec::new();
            for (i, line) in text.lines().enumerate() {
                if line.is_empty() {
                    continue;
                }
                records.push(
                    TraceRecord::from_json(line)
                        .map_err(|e| format!("{}:{}: {e}", trace_path, i + 1))?,
                );
            }
            let hits: Vec<&TraceRecord> = trace_window(&records, d.window_start, d.at).collect();
            println!("{label} trace window — {} event(s) from {trace_path}:", hits.len());
            for r in hits.iter().take(TRACE_WINDOW_PREVIEW) {
                println!("  t={} µs node {} {:?}", r.at.as_micros(), r.node, r.event);
            }
            if hits.len() > TRACE_WINDOW_PREVIEW {
                println!("  ... {} more elided", hits.len() - TRACE_WINDOW_PREVIEW);
            }
        }
    }
    Ok(report.identical())
}

/// One attacker-free and one attacked run of the selected scenario,
/// each with the topology observer and a road-binned heatmap attached:
/// connectivity snapshots to `PREFIX.<variant>.topo.json` (round-trip
/// JSON) and `.topo.dot` (Graphviz, one graph per snapshot), outcome
/// grids to `PREFIX.<variant>.heatmap.json` and `.csv`. Interception
/// pairs are correlated first, so the attacked heatmap carries the
/// intercepted packets and their coverage attribution.
fn topology_pass(opts: &Options, prefix: &str) -> Result<(), String> {
    let write = |path: String, text: &str| {
        std::fs::write(&path, text).map_err(|e| format!("--topology {path}: {e}"))
    };
    let duration = SimDuration::from_secs(opts.scale.duration_s);
    let interval = topology::DEFAULT_SNAPSHOT_INTERVAL;
    let cfg = match opts.topology_scenario {
        TopologyScenario::Interception => {
            ScenarioConfig::paper_dsrc_default().with_attack_range(486.0)
        }
        TopologyScenario::Blockage => ScenarioConfig::paper_dsrc_default().with_attack_range(500.0),
    }
    .with_duration(duration);
    let run = |attacked| match opts.topology_scenario {
        TopologyScenario::Interception => {
            topology::run_interarea(&cfg, attacked, opts.seed, interval)
        }
        TopologyScenario::Blockage => topology::run_blockage(&cfg, attacked, opts.seed, interval),
    };
    let af = run(false);
    let mut atk = run(true);
    if opts.topology_scenario == TopologyScenario::Interception {
        let (intercepted, in_cov) = topology::correlate_interception(&af, &mut atk);
        eprintln!(
            "# topology: {intercepted} intercepted packets, \
             {in_cov} last forwarded inside attacker coverage"
        );
    }
    for (variant, r) in [("af", &af), ("atk", &atk)] {
        let base = format!("{prefix}.{variant}");
        write(format!("{base}.topo.json"), &r.topo.to_json())?;
        let mut dot = String::new();
        for s in &r.topo.snapshots {
            dot.push_str(&s.to_dot());
        }
        write(format!("{base}.topo.dot"), &dot)?;
        write(format!("{base}.heatmap.json"), &r.heatmap.to_json())?;
        write(format!("{base}.heatmap.csv"), &r.heatmap.to_csv())?;
        eprintln!(
            "# topology: {} snapshots -> {base}.topo.json/.dot, \
             {} packets -> {base}.heatmap.json/.csv",
            r.topo.snapshots.len(),
            r.packets.len()
        );
    }
    Ok(())
}

/// Reads an attacker-free and an attacked `--topology` prefix back and
/// prints the per-bin delta table plus the blast-radius report. The
/// interception counters ride in the attacked heatmap's metadata, so
/// the comparison needs nothing beyond the serialized artifacts.
fn topology_diff_pass(af_prefix: &str, atk_prefix: &str) -> Result<(), String> {
    let read = |path: String| {
        std::fs::read_to_string(&path).map_err(|e| format!("--topology-diff {path}: {e}"))
    };
    let heat = |prefix: &str| -> Result<RoadHeatmap, String> {
        let path = format!("{prefix}.heatmap.json");
        RoadHeatmap::from_json(&read(path.clone())?)
            .map_err(|e| format!("--topology-diff {path}: {e}"))
    };
    let topo = |prefix: &str| -> Result<TopoArtifact, String> {
        let path = format!("{prefix}.topo.json");
        TopoArtifact::from_json(&read(path.clone())?)
            .map_err(|e| format!("--topology-diff {path}: {e}"))
    };
    let (af_heat, atk_heat) = (heat(af_prefix)?, heat(atk_prefix)?);
    let (af_topo, atk_topo) = (topo(af_prefix)?, topo(atk_prefix)?);
    let counter = |key: &str| -> Result<u64, String> {
        match atk_heat.meta().get(key) {
            None => Ok(0),
            Some(v) => v.parse().map_err(|e| format!("--topology-diff: meta {key}={v:?}: {e}")),
        }
    };
    let diff = HeatmapDiff::build(&af_heat, &atk_heat)?;
    let report = BlastRadiusReport::build(
        &af_topo,
        &atk_topo,
        &diff,
        counter("intercepted_total")?,
        counter("last_hop_in_coverage")?,
    );
    println!("Topology diff — af = {af_prefix}, atk = {atk_prefix}");
    print!("{diff}");
    println!("{report}");
    Ok(())
}

/// Replays the tier-1 scenario pairs (interception and blockage,
/// baseline and attacked) with an online invariant checker attached;
/// fails the invocation citing the first offending event.
fn check_invariants_pass(opts: &Options) -> Result<(), String> {
    let cfg = ScenarioConfig::paper_dsrc_default()
        .with_duration(SimDuration::from_secs(opts.scale.duration_s));
    let params =
        InvariantParams { to_min: cfg.gn.to_min, to_max: cfg.gn.to_max, loct_ttl: cfg.gn.loct_ttl };
    println!("Invariant check — seed {}, {} s sim", opts.seed, opts.scale.duration_s);
    let mut failed = false;
    for family in ["interarea", "intraarea"] {
        for attacked in [false, true] {
            let checker = shared(InvariantChecker::new(params));
            match family {
                "interarea" => {
                    let _ = interarea::run_one_traced(
                        &cfg.with_attack_range(486.0),
                        attacked,
                        opts.seed,
                        checker.clone(),
                    );
                }
                _ => {
                    let _ = intraarea::run_one_traced(
                        &cfg.with_attack_range(500.0),
                        attacked,
                        opts.seed,
                        checker.clone(),
                    );
                }
            }
            let c = checker.borrow();
            let variant = if attacked { "attacked" } else { "baseline" };
            println!("  {family:<9} {variant:<8} {}", c.summary());
            failed |= !c.ok();
        }
    }
    if failed {
        return Err("invariant violations found (see above)".into());
    }
    Ok(())
}

fn ab_rows(experiment: &str, results: &[AbResult], paper: &[Option<f64>]) -> Vec<ExperimentRow> {
    results
        .iter()
        .zip(paper.iter().chain(std::iter::repeat(&None)))
        .map(|(r, p)| ExperimentRow::new(experiment, r.label.clone(), *p, r.gamma()))
        .collect()
}

fn print_ab(
    opts: &Options,
    experiment: &str,
    title: &str,
    results: &[AbResult],
    paper: &[Option<f64>],
) {
    let rows = ab_rows(experiment, results, paper);
    if opts.csv {
        print!("{}", to_csv(&rows));
    } else {
        println!("{}", render_table(title, &rows));
        for r in results {
            println!("  {r}");
        }
        println!();
    }
}

#[allow(clippy::too_many_lines)]
fn run_experiment(opts: &Options, name: &str) -> Result<(), String> {
    let scale = opts.scale;
    let seed = opts.seed;
    match name {
        "table1" => {
            let p = IdmParams::paper_default();
            println!("Table I — IDM parameters\n{p}\n");
        }
        "table2" => {
            println!("Table II — communication ranges");
            println!("{}", RangeProfile::DSRC);
            println!("{}\n", RangeProfile::CV2X);
        }
        "fig7a" => print_ab(
            opts,
            "fig7a",
            "Figure 7a — inter-area interception vs attack range (DSRC), γ",
            &interarea::fig7a(scale, seed),
            &[Some(0.999), Some(0.999), Some(0.468)],
        ),
        "fig7b" => print_ab(
            opts,
            "fig7b",
            "Figure 7b — inter-area interception vs attack range (C-V2X), γ",
            &interarea::fig7b(scale, seed),
            &[Some(1.0), Some(1.0), Some(0.352)],
        ),
        "fig7c" => print_ab(
            opts,
            "fig7c",
            "Figure 7c — inter-area interception vs LocT TTL (DSRC), γ",
            &interarea::fig7c(scale, seed),
            &[Some(0.468), Some(0.462), Some(0.374), Some(0.979)],
        ),
        "fig7d" => print_ab(
            opts,
            "fig7d",
            "Figure 7d — inter-area interception vs inter-vehicle space (DSRC), γ",
            &interarea::fig7d(scale, seed),
            &[Some(0.468), Some(0.478), Some(0.447)],
        ),
        "fig7e" => print_ab(
            opts,
            "fig7e",
            "Figure 7e — inter-area interception vs road directions (DSRC), γ",
            &interarea::fig7e(scale, seed),
            &[Some(0.468), Some(0.583)],
        ),
        "fig8" => {
            let series = interarea::fig8(scale, seed);
            println!("Figure 8 — accumulated interception rate over time (DSRC)");
            print!("{}", series_to_csv(5, &series));
            println!();
        }
        "fig9a" => print_ab(
            opts,
            "fig9a",
            "Figure 9a — intra-area blockage vs attack range (DSRC), λ",
            &intraarea::fig9a(scale, seed),
            &[None, Some(0.385), None, None],
        ),
        "fig9b" => print_ab(
            opts,
            "fig9b",
            "Figure 9b — intra-area blockage vs attack range (C-V2X), λ",
            &intraarea::fig9b(scale, seed),
            &[None, Some(0.358), None, None],
        ),
        "fig9c" => print_ab(
            opts,
            "fig9c",
            "Figure 9c — intra-area blockage vs LocT TTL (DSRC), λ",
            &intraarea::fig9c(scale, seed),
            &[Some(0.385), Some(0.382), Some(0.379)],
        ),
        "fig9d" => print_ab(
            opts,
            "fig9d",
            "Figure 9d — intra-area blockage vs inter-vehicle space (DSRC), λ",
            &intraarea::fig9d(scale, seed),
            &[Some(0.38), Some(0.38), Some(0.38)],
        ),
        "fig9e" => print_ab(
            opts,
            "fig9e",
            "Figure 9e — intra-area blockage vs road directions (DSRC), λ",
            &intraarea::fig9e(scale, seed),
            &[Some(0.385), Some(0.38)],
        ),
        "fig9src" => {
            let (inside, outside) = intraarea::fig9_source_split(scale, seed);
            print_ab(
                opts,
                "fig9src",
                "§IV-A — blockage by source location (500 m attacker, DSRC), λ",
                &[inside, outside],
                &[Some(0.628), Some(0.372)],
            );
        }
        "fig10" => {
            let series = intraarea::fig10(scale, seed);
            println!("Figure 10 — accumulated blockage rate over time (DSRC)");
            print!("{}", series_to_csv(5, &series));
            println!();
        }
        "fig12a" | "fig12b" => {
            let duration = scale.duration_s.max(100);
            let (af, atk) = if name == "fig12a" {
                impact::fig12a(duration, seed)
            } else {
                impact::fig12b(duration, seed)
            };
            println!(
                "Figure {} — vehicles on road over time",
                if name == "fig12a" { "12a (GF case)" } else { "12b (CBF case)" }
            );
            println!(
                "attacker-free: informed at {:?} s, final count {}",
                af.informed_at_s,
                af.final_count()
            );
            println!(
                "attacked:      informed at {:?} s, final count {}",
                atk.informed_at_s,
                atk.final_count()
            );
            if opts.csv {
                println!("t_s,af,atk");
                for (i, &(t, n)) in af.samples.iter().enumerate() {
                    let atk_n = atk.samples.get(i).map_or(0, |&(_, n)| n);
                    println!("{t},{n},{atk_n}");
                }
            }
            println!();
        }
        "fig13" => {
            let (af, atk) = safety::fig13();
            println!("Figure 13 — blind-curve case study");
            println!(
                "attacker-free: V2 warned = {}, collision = {} (min same-lane gap {:.1} m)",
                af.v2_warned, af.collision, af.min_gap
            );
            println!(
                "attacked:      V2 warned = {}, collision = {} at t = {:?} s",
                atk.v2_warned, atk.collision, atk.collision_time
            );
            if opts.csv {
                println!("t_s,v1_af,v2_af,v1_atk,v2_atk");
                for i in 0..af.v1_profile.len().max(atk.v1_profile.len()) {
                    let g = |p: &Vec<(f64, f64)>| {
                        p.get(i).map(|&(_, v)| format!("{v:.2}")).unwrap_or_default()
                    };
                    let t = af.v1_profile.get(i).or(atk.v1_profile.get(i)).map_or(0.0, |&(t, _)| t);
                    println!(
                        "{t:.1},{},{},{},{}",
                        g(&af.v1_profile),
                        g(&af.v2_profile),
                        g(&atk.v1_profile),
                        g(&atk.v2_profile)
                    );
                }
            }
            println!();
        }
        "fig14a" => {
            println!("Figure 14a — GF plausibility-check mitigation (DSRC)");
            println!("(paper: +53.7 / +61.6 / +53.4 pts under wN/mN/mL; af 54.4% → 94.3%)");
            for r in mitigation::fig14a(scale, seed) {
                println!("  {r}");
            }
            println!();
        }
        "fig14b" => {
            println!("Figure 14b — CBF RHL-drop-check mitigation (DSRC)");
            println!("(paper: reception realigned with the attacker-free level)");
            for r in mitigation::fig14b(scale, seed) {
                println!("  {r}");
            }
            println!();
        }
        "analysis" => {
            println!("Closed-form geometry model vs the paper (no simulation)");
            let base = geonet_scenarios::ScenarioConfig::paper_dsrc_default();
            println!("inter-area γ:");
            for (label, range, paper) in [
                ("wN", 327.0, Some(0.468)),
                ("mN", 486.0, Some(0.999)),
                ("mL", 1_283.0, Some(0.999)),
            ] {
                let g = analysis::predicted_gamma(&base.with_attack_range(range));
                let p = paper.map_or("  —  ".to_string(), |v: f64| format!("{:5.1}%", v * 100.0));
                println!("  {label:<4} predicted={:5.1}%  paper={p}", g * 100.0);
            }
            println!("intra-area λ:");
            for (label, range, paper) in [
                ("wN", 327.0, None),
                ("mN", 486.0, Some(0.385)),
                ("500m", 500.0, Some(0.385)),
                ("mL", 1_283.0, None),
            ] {
                let l = analysis::predicted_lambda(&base.with_attack_range(range));
                let p = paper.map_or("  —  ".to_string(), |v: f64| format!("{:5.1}%", v * 100.0));
                println!("  {label:<4} predicted={:5.1}%  paper={p}", l * 100.0);
            }
            println!();
        }
        "ext-ack" => {
            println!("Extension — the rejected mitigation: MAC ACK + retry for GF unicasts");
            println!("(attacked reception vs the mN inter-area attacker, per channel loss)");
            for r in extensions::ack_defense(scale, seed) {
                println!("  {r}");
            }
            println!("channel load (frames on air per setting, without → with ACK):");
            for (label, plain, acked) in extensions::ack_overhead(scale, seed) {
                let pct = if plain > 0 { (acked as f64 / plain as f64 - 1.0) * 100.0 } else { 0.0 };
                println!("  {label:<10} {plain} → {acked} ({pct:+.1}%)");
            }
            println!();
        }
        "ext-loss" => {
            let (inter, intra) = extensions::lossy_channel(scale, seed);
            println!("Extension — both attacks on a lossy channel");
            println!("inter-area (γ):");
            for r in &inter {
                println!("  {r}");
            }
            println!("intra-area (λ):");
            for r in &intra {
                println!("  {r}");
            }
            println!();
        }
        "ext-mobile" => {
            println!("Extension — mobile inter-area attacker (γ vs speed)");
            for r in extensions::moving_attacker(scale, seed) {
                println!("  {r}");
            }
            println!();
        }
        other => return Err(format!("unknown experiment {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args_from(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    parallel::set_jobs(opts.jobs);
    progress::enable();
    eprintln!(
        "# scale: {} runs × {} s, seed {}, {} job(s)",
        opts.scale.runs, opts.scale.duration_s, opts.seed, opts.jobs
    );
    for name in opts.experiments.clone() {
        let t0 = std::time::Instant::now();
        if let Err(e) = run_experiment(&opts, &name) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        progress::experiment_completed(&name, t0.elapsed());
    }
    if opts.trace.is_some() || opts.forensics {
        if let Err(e) = forensic_pass(&opts) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if opts.metrics.is_some() || opts.profile {
        if let Err(e) = telemetry_pass(&opts) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(prefix) = &opts.audit {
        if let Err(e) = audit_pass(&opts, prefix) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some((a, b)) = &opts.audit_diff {
        match audit_diff_pass(a, b) {
            Ok(true) => {}
            Ok(false) => return ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.check_invariants {
        if let Err(e) = check_invariants_pass(&opts) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(prefix) = &opts.topology {
        if let Err(e) = topology_pass(&opts, prefix) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some((af, atk)) = &opts.topology_diff {
        if let Err(e) = topology_diff_pass(af, atk) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args_from(args.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_flags_and_experiments() {
        let o = parse(&["--runs", "7", "--duration", "30", "--seed", "9", "--csv", "fig7a"])
            .expect("valid args");
        assert_eq!(o.scale.runs, 7);
        assert_eq!(o.scale.duration_s, 30);
        assert_eq!(o.seed, 9);
        assert!(o.csv);
        assert_eq!(o.experiments, vec!["fig7a".to_string()]);
        assert!(o.trace.is_none() && !o.forensics && o.metrics.is_none() && !o.profile);
    }

    #[test]
    fn rejects_duplicate_flag_naming_it() {
        let err = parse(&["--runs", "2", "--runs", "3", "fig7a"]).unwrap_err();
        assert!(err.contains("duplicate flag --runs"), "got: {err}");
        let err = parse(&["--csv", "--csv", "fig7a"]).unwrap_err();
        assert!(err.contains("duplicate flag --csv"), "got: {err}");
    }

    #[test]
    fn rejects_unknown_flag_naming_it() {
        let err = parse(&["--frobnicate", "fig7a"]).unwrap_err();
        assert!(err.contains("unknown flag --frobnicate"), "got: {err}");
    }

    #[test]
    fn rejects_missing_value() {
        let err = parse(&["fig7a", "--seed"]).unwrap_err();
        assert!(err.contains("--seed"), "got: {err}");
    }

    #[test]
    fn rejects_empty_experiment_list() {
        let err = parse(&[]).unwrap_err();
        assert!(err.contains("no experiments"), "got: {err}");
    }

    #[test]
    fn metrics_and_profile_allow_empty_experiments() {
        let o = parse(&["--metrics", "/tmp/out"]).expect("metrics alone is valid");
        assert_eq!(o.metrics.as_deref(), Some("/tmp/out"));
        assert!(o.experiments.is_empty());
        let o = parse(&["--profile"]).expect("profile alone is valid");
        assert!(o.profile);
    }

    #[test]
    fn audit_flags_allow_empty_experiments() {
        let o = parse(&["--audit", "/tmp/run"]).expect("audit alone is valid");
        assert_eq!(o.audit.as_deref(), Some("/tmp/run"));
        assert!(o.experiments.is_empty());
        let o = parse(&["--check-invariants"]).expect("check-invariants alone is valid");
        assert!(o.check_invariants);
    }

    #[test]
    fn audit_diff_takes_two_paths() {
        let o = parse(&["--audit-diff", "a.audit.json", "b.audit.json"]).expect("valid");
        assert_eq!(o.audit_diff, Some(("a.audit.json".to_string(), "b.audit.json".to_string())));
        let err = parse(&["--audit-diff", "a.audit.json"]).unwrap_err();
        assert!(err.contains("--audit-diff"), "got: {err}");
    }

    #[test]
    fn sibling_trace_follows_naming_convention() {
        assert_eq!(
            sibling_trace("/tmp/run.baseline.audit.json").as_deref(),
            Some("/tmp/run.baseline.trace.jsonl")
        );
        assert_eq!(sibling_trace("/tmp/other.json"), None);
    }

    #[test]
    fn topology_flags_allow_empty_experiments() {
        let o = parse(&["--topology", "/tmp/topo"]).expect("topology alone is valid");
        assert_eq!(o.topology.as_deref(), Some("/tmp/topo"));
        assert_eq!(o.topology_scenario, TopologyScenario::Interception);
        assert!(o.experiments.is_empty());
        let o = parse(&["--topology-diff", "run.af", "run.atk"]).expect("valid");
        assert_eq!(o.topology_diff, Some(("run.af".to_string(), "run.atk".to_string())));
    }

    #[test]
    fn topology_scenario_selects_blockage() {
        let o =
            parse(&["--topology-scenario", "blockage", "--topology", "/tmp/topo"]).expect("valid");
        assert_eq!(o.topology_scenario, TopologyScenario::Blockage);
        let err = parse(&["--topology-scenario", "teleport", "--topology", "/tmp/t"]).unwrap_err();
        assert!(err.contains("unknown scenario teleport"), "got: {err}");
    }

    #[test]
    fn help_documents_every_accepted_flag() {
        let help = help_text();
        for spec in FLAG_SPECS {
            // Documented: the flag and its operand signature appear.
            let line = if spec.operands.is_empty() {
                spec.name.to_string()
            } else {
                format!("{} {}", spec.name, spec.operands)
            };
            assert!(help.contains(&line), "help is missing {line:?}:\n{help}");
            // Accepted: the parser takes the flag with its example
            // operands (plus an experiment, for flags that need one).
            let mut argv = vec![spec.name];
            argv.extend_from_slice(spec.example);
            argv.push("table1");
            assert!(parse(&argv).is_ok(), "parser rejected documented flag {argv:?}");
        }
    }

    #[test]
    fn all_expands_to_paper_experiments() {
        let o = parse(&["all"]).expect("valid");
        assert_eq!(o.experiments.len(), 20);
        assert!(o.experiments.iter().any(|e| e == "table1"));
        assert!(o.experiments.iter().any(|e| e == "fig14b"));
    }
}
