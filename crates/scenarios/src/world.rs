//! The deterministic discrete-event world binding all substrates.

use crate::config::{AttackerSetup, ScenarioConfig};
use geonet::{
    CertificateAuthority, Frame, GfDecision, GnAddress, GnRouter, PacketKey, RouterAction,
};
use geonet_attack::{InterAreaAttacker, IntraAreaAttacker};
use geonet_geo::{Area, GeoReference, Heading, Position};
use geonet_radio::{Medium, NodeId};
use geonet_sim::{
    Auditor, Checkpoint, GradientHealth, Kernel, PacketRef, SharedAuditor, SharedRegistry,
    SharedSink, SharedTopo, SimDuration, SimRng, SimTime, StateHasher, Telemetry, TopoNode,
    TopoObserver, TopoSnapshot, TraceEvent, Tracer, UnorderedDigest,
};
use geonet_traffic::{Direction, TrafficSim, VehicleId};
use std::collections::{BTreeMap, BTreeSet};

/// What a radio node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A vehicle driven by the traffic simulation.
    Vehicle(VehicleId),
    /// A stationary legitimate node (destination receiver or roadside
    /// unit).
    Static,
    /// The attacker's sniffer/transmitter.
    Attacker,
}

/// Events driving the world.
#[derive(Debug, Clone)]
enum Ev {
    /// Advance the traffic simulation one step.
    TrafficStep,
    /// A node's beacon is due.
    Beacon(NodeId),
    /// A frame arrives at a node's radio.
    Deliver { to: NodeId, frame: Frame },
    /// A CBF contention timer fires.
    CbfTimer { node: NodeId, key: PacketKey, generation: u64 },
    /// The attacker's replay leaves its transmitter.
    AttackerTx { frame: Frame, cap: Option<f64> },
    /// A greedy unicast's link-layer acknowledgement window elapsed
    /// without an ACK (only with the link-ack extension).
    AckTimeout { node: NodeId, key: PacketKey },
    /// A forwarding-buffer recheck is due (buffer-retry policy).
    GfRetry { node: NodeId, key: PacketKey },
}

/// The simulation world: traffic, radio medium, per-node GeoNetworking
/// routers and (optionally) an attacker, driven by one deterministic event
/// loop.
///
/// A world is a pure function of `(config, attacker setup, seed)`: two
/// worlds built identically produce identical histories.
pub struct World {
    cfg: ScenarioConfig,
    kernel: Kernel<Ev>,
    medium: Medium,
    traffic: TrafficSim,
    reference: GeoReference,
    ca: CertificateAuthority,
    routers: Vec<Option<GnRouter>>,
    kinds: Vec<NodeKind>,
    rngs: Vec<SimRng>,
    vehicle_nodes: Vec<NodeId>,
    inter_attacker: Option<InterAreaAttacker>,
    intra_attacker: Option<IntraAreaAttacker>,
    attacker_node: Option<NodeId>,
    workload_rng: SimRng,
    loss_rng: SimRng,
    received: BTreeMap<PacketKey, BTreeSet<NodeId>>,
    root_rng: SimRng,
    next_static_mid: u64,
    addr_index: BTreeMap<GnAddress, NodeId>,
    unicasts_sent: u64,
    unicasts_lost: u64,
    frames_on_air: u64,
    bytes_on_air: u64,
    tracer: Tracer,
    telemetry: Telemetry,
    auditor: Auditor,
    topo: TopoObserver,
    /// The destination the topology observer grades gradients against
    /// (the packet sink of the running scenario, when it has one).
    topo_dest: Option<Position>,
    /// Traffic steps seen since telemetry was attached (drives the
    /// periodic state-depth sampling cadence).
    telemetry_steps: u32,
    /// Receiver scratch buffer reused across broadcasts, so the hottest
    /// path in the event loop allocates nothing in steady state.
    rx_buf: Vec<NodeId>,
}

impl World {
    /// Builds a world. `attacker` chooses the attack mounted (or `None`
    /// for the A-side of an A/B pair — the attacker's radio is absent
    /// entirely).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(cfg: ScenarioConfig, attacker: Option<AttackerSetup>, seed: u64) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid scenario config: {e}"));
        let root_rng = SimRng::seed(seed);
        let mut world = World {
            kernel: Kernel::with_horizon(SimTime::ZERO + cfg.duration),
            medium: Medium::new(),
            traffic: TrafficSim::new(cfg.road),
            reference: GeoReference::default(),
            ca: CertificateAuthority::new(seed ^ 0xC0FF_EE00),
            routers: Vec::new(),
            kinds: Vec::new(),
            rngs: Vec::new(),
            vehicle_nodes: Vec::new(),
            inter_attacker: None,
            intra_attacker: None,
            attacker_node: None,
            workload_rng: root_rng.split(0xAAAA),
            loss_rng: root_rng.split(0x1055),
            received: BTreeMap::new(),
            root_rng,
            next_static_mid: 0x5057_0000,
            addr_index: BTreeMap::new(),
            unicasts_sent: 0,
            unicasts_lost: 0,
            frames_on_air: 0,
            bytes_on_air: 0,
            tracer: Tracer::disabled(),
            telemetry: Telemetry::disabled(),
            auditor: Auditor::disabled(),
            topo: TopoObserver::disabled(),
            topo_dest: None,
            telemetry_steps: 0,
            rx_buf: Vec::new(),
            cfg,
        };
        // Register the pre-filled vehicles.
        let initial: Vec<VehicleId> = world.traffic.active_vehicles().map(|v| v.id).collect();
        for vid in initial {
            world.register_vehicle(vid);
        }
        // The attacker.
        if let Some(setup) = attacker {
            let node = world.medium.register(cfg.attacker_position, cfg.attack_range);
            world.routers.push(None);
            world.kinds.push(NodeKind::Attacker);
            world.rngs.push(world.root_rng.split(0xA77A));
            world.attacker_node = Some(node);
            match setup {
                AttackerSetup::InterArea => {
                    world.inter_attacker = Some(InterAreaAttacker::new(cfg.attacker_position));
                }
                AttackerSetup::IntraArea(mode) => {
                    world.intra_attacker =
                        Some(IntraAreaAttacker::new(cfg.attacker_position, mode));
                }
            }
        }
        // Start the clocks.
        world.kernel.schedule_at(SimTime::from_secs_f64(cfg.traffic_dt), Ev::TrafficStep);
        world
    }

    fn register_vehicle(&mut self, vid: VehicleId) {
        let pos = self.traffic.position(vid);
        let node = self.medium.register(pos, self.cfg.v2v_range);
        debug_assert_eq!(self.routers.len(), node.index());
        let addr = GnAddress::vehicle(0x1000_0000 + u64::from(vid.0));
        self.addr_index.insert(addr, node);
        let mut router =
            GnRouter::new(self.ca.enroll(addr), self.ca.verifier(), self.cfg.gn, self.reference);
        router.set_tracer(self.tracer.for_node(node.0));
        router.set_telemetry(self.telemetry.clone());
        self.routers.push(Some(router));
        self.kinds.push(NodeKind::Vehicle(vid));
        let mut rng = self.root_rng.split(0x1000 + u64::from(node.0));
        // Desynchronised first beacon within one period.
        let offset =
            SimDuration::from_secs_f64(rng.uniform(0.0, self.cfg.gn.beacon_interval.as_secs_f64()));
        self.rngs.push(rng);
        self.vehicle_nodes.push(node);
        debug_assert_eq!(self.vehicle_nodes.len() - 1, vid.index());
        self.kernel.schedule_in(offset, Ev::Beacon(node));
    }

    /// Adds a stationary legitimate node (destination receiver, RSU) with
    /// the given radio range. It beacons like any other node.
    pub fn add_static_node(&mut self, position: Position, range: f64) -> NodeId {
        let node = self.medium.register(position, range);
        let addr = GnAddress::roadside(self.next_static_mid);
        self.next_static_mid += 1;
        self.addr_index.insert(addr, node);
        let mut router =
            GnRouter::new(self.ca.enroll(addr), self.ca.verifier(), self.cfg.gn, self.reference);
        router.set_tracer(self.tracer.for_node(node.0));
        router.set_telemetry(self.telemetry.clone());
        self.routers.push(Some(router));
        self.kinds.push(NodeKind::Static);
        let mut rng = self.root_rng.split(0x2000 + u64::from(node.0));
        let offset =
            SimDuration::from_secs_f64(rng.uniform(0.0, self.cfg.gn.beacon_interval.as_secs_f64()));
        self.rngs.push(rng);
        self.kernel.schedule_in(offset, Ev::Beacon(node));
        node
    }

    /// Attaches a trace sink; every node (router, attacker, traffic
    /// simulation, and the radio layer itself) starts emitting
    /// [`TraceEvent`]s through it. Call right after [`World::new`] —
    /// events from before the attach are not replayed.
    pub fn set_trace_sink(&mut self, sink: SharedSink) {
        self.tracer = Tracer::attached(sink);
        for (i, router) in self.routers.iter_mut().enumerate() {
            if let Some(r) = router {
                r.set_tracer(self.tracer.for_node(i as u32));
            }
        }
        if let Some(atk) = self.attacker_node {
            if let Some(a) = &mut self.inter_attacker {
                a.set_tracer(self.tracer.for_node(atk.0));
            }
            if let Some(a) = &mut self.intra_attacker {
                a.set_tracer(self.tracer.for_node(atk.0));
            }
        }
        self.traffic.set_tracer(self.tracer.clone());
    }

    /// Attaches a metrics registry; the hot paths (event dispatch, frame
    /// handling, radio delivery, traffic stepping) are wall-clock timed
    /// and internal state depths are sampled periodically from now on.
    /// Like [`World::set_trace_sink`], the handle fans out to every
    /// existing router and to vehicles registered later.
    pub fn set_telemetry(&mut self, registry: SharedRegistry) {
        self.telemetry = Telemetry::attached(registry);
        for router in self.routers.iter_mut().flatten() {
            router.set_telemetry(self.telemetry.clone());
        }
        self.medium.set_telemetry(self.telemetry.clone());
        self.traffic.set_telemetry(self.telemetry.clone());
    }

    /// Attaches an audit recorder; the world samples a state-digest
    /// checkpoint into it whenever one falls due (checked once per
    /// traffic step against the recorder's sim-time interval). Like
    /// [`World::set_telemetry`], the default is
    /// [`Auditor::disabled`], in which case the per-step check is a
    /// single branch and no state is ever digested.
    pub fn set_auditor(&mut self, recorder: SharedAuditor) {
        self.auditor = Auditor::attached(recorder);
    }

    /// Attaches a topology recorder; the world samples a connectivity
    /// snapshot into it whenever one falls due (checked once per traffic
    /// step against the recorder's sim-time interval). Disabled by
    /// default — the per-step check is then a single branch and no graph
    /// is ever built.
    pub fn set_topo_observer(&mut self, recorder: SharedTopo) {
        self.topo = TopoObserver::attached(recorder);
    }

    /// Sets the destination against which snapshot gradients are graded
    /// (see [`GradientHealth`]). Without one, every node's gradient
    /// stays [`GradientHealth::Unknown`] and no router is probed.
    pub fn set_topo_destination(&mut self, dest: Position) {
        self.topo_dest = Some(dest);
    }

    /// Builds a connectivity snapshot of every active radio node at the
    /// current simulation time: positions and ranges straight from the
    /// medium, the attacker flagged, and — when a topology destination
    /// is set — each router's greedy gradient graded by probing its
    /// location table without mutating it. Expensive (O(n²) adjacency);
    /// the snapshot cadence, not the event loop, decides when to call
    /// this.
    ///
    /// Gradient grading mirrors the attack mechanics: a router whose
    /// greedy choice is *physically unreachable* holds a poisoned
    /// gradient (the replayed beacon planted a phantom neighbour), while
    /// one with no forward progress at all is stuck at a local maximum.
    #[must_use]
    pub fn topo_snapshot(&self) -> TopoSnapshot {
        let now = self.kernel.now();
        let mut nodes = Vec::with_capacity(self.medium.len());
        for node in self.medium.nodes() {
            if !self.medium.is_active(node) {
                continue;
            }
            let pos = self.medium.position(node);
            let attacker = self.kinds[node.index()] == NodeKind::Attacker;
            let mut tn = TopoNode::new(node.0, pos.x, pos.y, self.medium.tx_range(node), attacker);
            if let (Some(dest), Some(router)) = (self.topo_dest, &self.routers[node.index()]) {
                let health = match router.gradient_query(pos, dest, now) {
                    GfDecision::NoProgress => GradientHealth::Stuck,
                    GfDecision::NextHop { addr, .. } => {
                        let reachable = self
                            .addr_index
                            .get(&addr)
                            .is_some_and(|&hop| self.medium.reaches(node, hop));
                        if reachable {
                            GradientHealth::Healthy
                        } else {
                            GradientHealth::Poisoned
                        }
                    }
                };
                tn = tn.with_gradient(health);
            }
            nodes.push(tn);
        }
        TopoSnapshot::build(now, self.topo_dest.map(|p| (p.x, p.y)), nodes)
    }

    /// Records a topology snapshot if one is due (no-op when disabled).
    fn sample_topo(&mut self) {
        if self.topo.due(self.kernel.now()) {
            self.topo.record(self.topo_snapshot());
        }
    }

    /// Digests the world's complete canonical state into one checkpoint:
    /// the event queue, every RNG stream position, every router's
    /// forwarding state, the radio medium, the traffic simulation and
    /// the delivery ledger. Expensive — the auditing cadence, not the
    /// event loop, decides when to call this.
    #[must_use]
    pub fn audit_checkpoint(&self) -> Checkpoint {
        let mut b = Checkpoint::builder(self.kernel.now());

        // Pending events live in a heap whose layout is unspecified, so
        // their (time, seq) keys go through an order-independent combiner.
        let mut h = StateHasher::new();
        h.write_u64(self.kernel.events_processed());
        let mut q = UnorderedDigest::new();
        for (t, seq) in self.kernel.pending_keys() {
            let mut eh = StateHasher::new();
            eh.write_u64(t.as_micros());
            eh.write_u64(seq);
            q.absorb(eh.finish());
        }
        q.fold_into(&mut h);
        b.push("event_queue", h.finish());

        let mut h = StateHasher::new();
        h.write_u64(self.rngs.len() as u64);
        for rng in &self.rngs {
            h.write_u64(rng.draw_count());
        }
        h.write_u64(self.workload_rng.draw_count());
        h.write_u64(self.loss_rng.draw_count());
        h.write_u64(self.root_rng.draw_count());
        b.push("rng", h.finish());

        let mut h = StateHasher::new();
        h.write_u64(self.routers.len() as u64);
        for router in &self.routers {
            match router {
                Some(r) => {
                    h.write_bool(true);
                    r.digest_into(&mut h);
                }
                None => h.write_bool(false),
            }
        }
        b.push("routers", h.finish());

        let mut h = StateHasher::new();
        self.medium.digest_into(&mut h);
        b.push("medium", h.finish());

        let mut h = StateHasher::new();
        self.traffic.digest_into(&mut h);
        b.push("traffic", h.finish());

        let mut h = StateHasher::new();
        h.write_u64(self.received.len() as u64);
        for (key, nodes) in &self.received {
            h.write_u64(key.source.to_u64());
            h.write_u64(u64::from(key.sn.0));
            h.write_u64(nodes.len() as u64);
            for n in nodes {
                h.write_u64(u64::from(n.0));
            }
        }
        b.push("delivery", h.finish());

        b.finish()
    }

    /// Records an audit checkpoint if one is due (no-op when disabled).
    fn sample_audit(&mut self) {
        if self.auditor.due(self.kernel.now()) {
            self.auditor.record(self.audit_checkpoint());
        }
    }

    /// Total events the kernel has dispatched — the numerator of the
    /// sim-events/sec throughput metric.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.kernel.events_processed()
    }

    fn packet_ref(key: PacketKey) -> PacketRef {
        PacketRef::new(key.source.to_u64(), key.sn.0)
    }

    /// The link-layer address bits the attacker transmits under, if an
    /// attacker is mounted: the blockage attacker's pseudonym, or the
    /// replayed beacons' original sources for the interception attacker
    /// (which never transmits under its own name — `None`).
    ///
    /// Feed this to
    /// [`AttributionReport::build`](crate::forensics::AttributionReport::build)
    /// to attribute CBF cancellations to the attacker.
    #[must_use]
    pub fn attacker_address(&self) -> Option<u64> {
        self.intra_attacker.as_ref().map(|a| a.pseudonym().to_u64())
    }

    /// The scenario configuration.
    #[must_use]
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// The traffic simulation (read access).
    #[must_use]
    pub fn traffic(&self) -> &TrafficSim {
        &self.traffic
    }

    /// The WGS-84 reference frame shared by all nodes.
    #[must_use]
    pub fn reference(&self) -> &GeoReference {
        &self.reference
    }

    /// The radio node of a vehicle.
    ///
    /// # Panics
    ///
    /// Panics if the vehicle was never registered.
    #[must_use]
    pub fn vehicle_node(&self, vid: VehicleId) -> NodeId {
        self.vehicle_nodes[vid.index()]
    }

    /// Current position of a node.
    #[must_use]
    pub fn node_position(&self, node: NodeId) -> Position {
        self.medium.position(node)
    }

    /// What a node is.
    #[must_use]
    pub fn node_kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// The router of a legitimate node (read access, e.g. for stats).
    ///
    /// # Panics
    ///
    /// Panics if `node` is the attacker.
    #[must_use]
    pub fn router(&self, node: NodeId) -> &GnRouter {
        self.routers[node.index()].as_ref().expect("attacker has no router")
    }

    /// The inter-area attacker, if mounted.
    #[must_use]
    pub fn inter_attacker(&self) -> Option<&InterAreaAttacker> {
        self.inter_attacker.as_ref()
    }

    /// The intra-area attacker, if mounted.
    #[must_use]
    pub fn intra_attacker(&self) -> Option<&IntraAreaAttacker> {
        self.intra_attacker.as_ref()
    }

    /// Overrides the intra-area attacker's capture-to-replay processing
    /// delay (default 1 ms) — used by the attacker-latency ablation.
    pub fn set_intra_attacker_delay(&mut self, delay: SimDuration) {
        if let Some(a) = self.intra_attacker.take() {
            self.intra_attacker = Some(a.with_processing_delay(delay));
        }
    }

    /// Nodes (IDs) of vehicles currently on the road segment proper.
    #[must_use]
    pub fn on_road_nodes(&self) -> Vec<NodeId> {
        self.traffic.on_segment_vehicles().map(|v| self.vehicle_nodes[v.id.index()]).collect()
    }

    /// Sums the router statistics over every legitimate node (including
    /// exited vehicles) — the run-level view of protocol activity.
    #[must_use]
    pub fn aggregate_stats(&self) -> geonet::RouterStats {
        let mut agg = geonet::RouterStats::default();
        for r in self.routers.iter().flatten() {
            let s = r.stats();
            agg.beacons_accepted += s.beacons_accepted;
            agg.auth_failures += s.auth_failures;
            agg.freshness_failures += s.freshness_failures;
            agg.delivered += s.delivered;
            agg.gf_unicast += s.gf_unicast;
            agg.gf_fallback += s.gf_fallback;
            agg.cbf_rebroadcast += s.cbf_rebroadcast;
            agg.cbf_discards += s.cbf_discards;
            agg.cbf_mitigation_rejects += s.cbf_mitigation_rejects;
            agg.rhl_exhausted += s.rhl_exhausted;
            agg.gf_ack_retries += s.gf_ack_retries;
            agg.gf_ack_exhausted += s.gf_ack_exhausted;
        }
        agg
    }

    /// All legitimate (router-bearing) nodes, including exited vehicles.
    #[must_use]
    pub fn legit_nodes(&self) -> Vec<NodeId> {
        (0..self.routers.len() as u32)
            .map(NodeId)
            .filter(|n| self.routers[n.index()].is_some())
            .collect()
    }

    /// Total frames put on the air (all senders, including the attacker
    /// and retries) — the channel-load side of any mitigation trade-off.
    #[must_use]
    pub fn frames_on_air(&self) -> u64 {
        self.frames_on_air
    }

    /// Total wire bytes put on the air.
    #[must_use]
    pub fn bytes_on_air(&self) -> u64 {
        self.bytes_on_air
    }

    /// Link-layer unicasts transmitted so far.
    #[must_use]
    pub fn unicasts_sent(&self) -> u64 {
        self.unicasts_sent
    }

    /// Unicasts whose addressee was not among the physical receivers —
    /// the silent greedy-forwarding losses the paper's attack weaponises.
    #[must_use]
    pub fn unicasts_lost(&self) -> u64 {
        self.unicasts_lost
    }

    /// A fair coin from the workload stream (used to pick a packet
    /// direction for sources inside the fully covered area).
    pub fn workload_coin(&mut self) -> bool {
        self.workload_rng.chance(0.5)
    }

    /// Picks a uniformly random on-road vehicle (workload generation).
    pub fn random_on_road_vehicle(&mut self) -> Option<VehicleId> {
        let ids: Vec<VehicleId> = self.traffic.on_segment_vehicles().map(|v| v.id).collect();
        if ids.is_empty() {
            None
        } else {
            Some(ids[self.workload_rng.below(ids.len())])
        }
    }

    /// The set of nodes that received (delivered) packet `key` so far.
    #[must_use]
    pub fn received_by(&self, key: PacketKey) -> Option<&BTreeSet<NodeId>> {
        self.received.get(&key)
    }

    /// Whether `node` received packet `key`.
    #[must_use]
    pub fn was_received(&self, key: PacketKey, node: NodeId) -> bool {
        self.received.get(&key).is_some_and(|s| s.contains(&node))
    }

    /// Opens/closes a direction's entry gate (Figure 12 scenarios).
    pub fn set_entry_open(&mut self, direction: Direction, open: bool) {
        self.traffic.set_entry_open(direction, open);
    }

    /// Places a hazard blocking `direction` at longitudinal position `s`.
    pub fn add_hazard(&mut self, direction: Direction, s: f64) {
        self.traffic.add_hazard(direction, s);
    }

    /// Originates a GeoBroadcast from a node into `area` at the current
    /// time, returning the packet key. The source itself counts as having
    /// received the packet.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the attacker or an exited vehicle.
    pub fn originate_from(&mut self, node: NodeId, area: &Area, payload: Vec<u8>) -> PacketKey {
        assert!(self.medium.is_active(node), "originating from inactive node {node}");
        let now = self.kernel.now();
        let position = self.medium.position(node);
        let (speed, heading) = self.node_kinematics(node);
        let router = self.routers[node.index()].as_mut().expect("legitimate node");
        let (key, actions) = router.originate(area, payload, now, position, speed, heading);
        self.received.entry(key).or_default().insert(node);
        self.execute(node, actions);
        key
    }

    fn node_kinematics(&self, node: NodeId) -> (f64, Heading) {
        match self.kinds[node.index()] {
            NodeKind::Vehicle(vid) => {
                let v = self.traffic.vehicle(vid);
                (v.v, v.heading())
            }
            NodeKind::Static | NodeKind::Attacker => (0.0, Heading::NORTH),
        }
    }

    /// Runs the event loop until simulation time `t` (inclusive) or the
    /// horizon, whichever is earlier.
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            match self.kernel.peek_time() {
                Some(next) if next <= t => {
                    let Some((_, ev)) = self.kernel.pop() else { break };
                    self.dispatch(ev);
                }
                _ => break,
            }
        }
    }

    /// Runs to the configured horizon.
    pub fn run_to_end(&mut self) {
        let end = SimTime::ZERO + self.cfg.duration;
        self.run_until(end);
    }

    fn dispatch(&mut self, ev: Ev) {
        let _span = self.telemetry.time("world_dispatch_ns");
        match ev {
            Ev::TrafficStep => self.on_traffic_step(),
            Ev::Beacon(node) => self.on_beacon(node),
            Ev::Deliver { to, frame } => self.on_deliver(to, frame),
            Ev::CbfTimer { node, key, generation } => {
                let now = self.kernel.now();
                if !self.medium.is_active(node) {
                    return;
                }
                let position = self.medium.position(node);
                let router = self.routers[node.index()].as_mut().expect("timer on router node");
                let actions = router.handle_cbf_timer(key, generation, position, now);
                self.execute(node, actions);
            }
            Ev::AttackerTx { frame, cap } => {
                if let Some(node) = self.attacker_node {
                    self.transmit(node, frame, cap);
                }
            }
            Ev::GfRetry { node, key } => {
                if !self.medium.is_active(node) {
                    return;
                }
                let now = self.kernel.now();
                let position = self.medium.position(node);
                let router = self.routers[node.index()].as_mut().expect("retries on routers");
                let actions = router.handle_gf_retry(key, position, now);
                self.execute(node, actions);
            }
            Ev::AckTimeout { node, key } => {
                if !self.medium.is_active(node) {
                    return;
                }
                let now = self.kernel.now();
                let position = self.medium.position(node);
                let router = self.routers[node.index()].as_mut().expect("ack timers on routers");
                let actions = router.handle_ack_failure(key, position, now);
                self.execute(node, actions);
            }
        }
    }

    fn on_traffic_step(&mut self) {
        self.traffic.step(self.cfg.traffic_dt);
        // Register newly entered vehicles.
        while self.vehicle_nodes.len() < self.traffic.all_vehicles().len() {
            let vid = VehicleId(self.vehicle_nodes.len() as u32);
            self.register_vehicle(vid);
        }
        // Sync positions; deactivate exited vehicles.
        for v in self.traffic.all_vehicles() {
            let node = self.vehicle_nodes[v.id.index()];
            if v.exited {
                if self.medium.is_active(node) {
                    self.medium.set_active(node, false);
                }
            } else {
                self.medium.set_position(node, v.position(self.traffic.road()));
            }
        }
        // Mobile-attacker extension: the attacker drives along the road.
        if self.cfg.attacker_velocity != 0.0 {
            if let Some(atk) = self.attacker_node {
                let mut pos = self.medium.position(atk);
                pos.x += self.cfg.attacker_velocity * self.cfg.traffic_dt;
                self.medium.set_position(atk, pos);
                if let Some(a) = self.inter_attacker.as_mut() {
                    a.set_position(pos);
                }
                if let Some(a) = self.intra_attacker.as_mut() {
                    a.set_position(pos);
                }
            }
        }
        self.kernel.schedule_in(SimDuration::from_secs_f64(self.cfg.traffic_dt), Ev::TrafficStep);
        self.sample_telemetry();
        self.sample_audit();
        self.sample_topo();
    }

    /// Samples internal state depths into the attached registry: the
    /// event-queue length every traffic step, and the per-node LocT /
    /// CBF-contention-buffer / duplicate-cache sizes (plus their fleet
    /// totals) every 10th step (once per simulated second at the default
    /// 100 ms timestep).
    fn sample_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.gauge("event_queue_len", self.kernel.pending() as f64);
        self.telemetry_steps += 1;
        if !self.telemetry_steps.is_multiple_of(10) {
            return;
        }
        let now = self.kernel.now();
        let (mut loct_total, mut cbf_total, mut dup_total) = (0u64, 0u64, 0u64);
        for router in self.routers.iter().flatten() {
            let loct = router.loct().live_count(now) as u64;
            let cbf = router.cbf_buffered_count() as u64;
            let dup = router.duplicate_cache_size() as u64;
            self.telemetry.observe("loct_size_per_node", loct);
            self.telemetry.observe("cbf_buffer_per_node", cbf);
            self.telemetry.observe("dup_cache_per_node", dup);
            loct_total += loct;
            cbf_total += cbf;
            dup_total += dup;
        }
        self.telemetry.gauge("loct_size_total", loct_total as f64);
        self.telemetry.gauge("cbf_buffer_total", cbf_total as f64);
        self.telemetry.gauge("dup_cache_total", dup_total as f64);
        self.telemetry.gauge("vehicles_on_road", self.traffic.count_on_road() as f64);
    }

    fn on_beacon(&mut self, node: NodeId) {
        if !self.medium.is_active(node) {
            return; // exited vehicle: beaconing stops for good
        }
        let now = self.kernel.now();
        let position = self.medium.position(node);
        let (speed, heading) = self.node_kinematics(node);
        let frame = {
            let router = self.routers[node.index()].as_ref().expect("beacons from routers");
            router.make_beacon(now, position, speed, heading)
        };
        self.transmit(node, frame, None);
        let delay = {
            let rng = &mut self.rngs[node.index()];
            let router = self.routers[node.index()].as_ref().expect("router");
            router.next_beacon_delay(rng)
        };
        self.kernel.schedule_in(delay, Ev::Beacon(node));
    }

    fn on_deliver(&mut self, to: NodeId, frame: Frame) {
        let now = self.kernel.now();
        if Some(to) == self.attacker_node {
            let key = PacketKey::of(&frame.msg);
            self.tracer.for_node(to.0).emit(now, || TraceEvent::FrameRx {
                packet: key.map(World::packet_ref),
                from: frame.src.to_u64(),
                beacon: key.is_none(),
            });
            let order = match (&mut self.inter_attacker, &mut self.intra_attacker) {
                (Some(a), _) => a.on_sniff(&frame, now),
                (_, Some(a)) => a.on_sniff(&frame, now),
                (None, None) => None,
            };
            if let Some(order) = order {
                self.kernel.schedule_in(
                    order.delay,
                    Ev::AttackerTx { frame: order.frame, cap: order.range_cap },
                );
            }
            return;
        }
        if !self.medium.is_active(to) {
            return;
        }
        let key = PacketKey::of(&frame.msg);
        self.tracer.for_node(to.0).emit(now, || TraceEvent::FrameRx {
            packet: key.map(World::packet_ref),
            from: frame.src.to_u64(),
            beacon: key.is_none(),
        });
        let position = self.medium.position(to);
        let router = self.routers[to.index()].as_mut().expect("legitimate node");
        let actions = router.handle_frame(&frame, position, now);
        self.execute(to, actions);
    }

    fn execute(&mut self, node: NodeId, actions: Vec<RouterAction>) {
        for action in actions {
            match action {
                RouterAction::Transmit(frame) => self.transmit(node, frame, None),
                RouterAction::Deliver { key, .. } => {
                    self.received.entry(key).or_default().insert(node);
                }
                RouterAction::CbfTimer { key, generation, delay } => {
                    self.kernel.schedule_in(delay, Ev::CbfTimer { node, key, generation });
                }
                RouterAction::GfRetry { key, delay } => {
                    self.kernel.schedule_in(delay, Ev::GfRetry { node, key });
                }
            }
        }
    }

    /// Puts a frame on the air from `node`, delivering it to every active
    /// node within range (optionally power-capped) after the propagation
    /// delay.
    ///
    /// The attacker↔vehicle link is special-cased: the paper's attacker
    /// sits elevated at the roadside with line of sight ("at street light
    /// poles ... to make LoS communication with more on-road vehicles"),
    /// so it hears — and is heard by — nodes within the *attack range*,
    /// independent of the vehicles' NLoS range.
    fn transmit(&mut self, from: NodeId, frame: Frame, cap: Option<f64>) {
        let _span = self.telemetry.time("radio_broadcast_ns");
        self.frames_on_air += 1;
        let wire_bytes = frame.msg.packet.encode().len() as u64;
        self.bytes_on_air += wire_bytes;
        self.telemetry.add("frames_on_air_total", 1);
        self.telemetry.add("bytes_on_air_total", wire_bytes);
        let cap = cap.unwrap_or_else(|| self.medium.tx_range(from));
        let mut receivers = std::mem::take(&mut self.rx_buf);
        self.medium.receivers_into(from, cap, &mut receivers);
        if let Some(atk) = self.attacker_node {
            if from != atk {
                // The LoS sniffer link replaces the unit-disk rule for
                // frames arriving at the attacker.
                receivers.retain(|&n| n != atk);
                let d = self.medium.position(from).distance(self.medium.position(atk));
                if d <= self.cfg.attack_range {
                    receivers.push(atk);
                }
            }
        }
        let now = self.kernel.now();
        let key = PacketKey::of(&frame.msg);
        self.tracer.for_node(from.0).emit(now, || TraceEvent::FrameTx {
            packet: key.map(World::packet_ref),
            dst: frame.dst.map(GnAddress::to_u64),
            beacon: key.is_none(),
        });
        // Frame-loss extension: each individual delivery may be lost.
        // Filtered in place (same draw order as the old copy loop) so the
        // scratch buffer is the only receiver storage on this path.
        if self.cfg.frame_loss_rate > 0.0 {
            receivers.retain(|&rx| {
                if self.loss_rng.chance(self.cfg.frame_loss_rate) {
                    self.tracer.for_node(rx.0).emit(now, || TraceEvent::FrameLost {
                        packet: key.map(World::packet_ref),
                        from: frame.src.to_u64(),
                    });
                    false
                } else {
                    true
                }
            });
        }
        if let Some(dst) = frame.dst {
            self.unicasts_sent += 1;
            let reached = self.addr_index.get(&dst).is_some_and(|n| receivers.contains(n));
            if !reached {
                self.unicasts_lost += 1;
            }
            // Link-acknowledgement extension: tell the sender whether its
            // greedy unicast got through (the MAC ACK), so it can retry
            // towards another neighbour.
            if let Some(ack) = self.cfg.gn.link_ack {
                if let Some(key) = PacketKey::of(&frame.msg) {
                    if let Some(router) = self.routers[from.index()].as_mut() {
                        if reached {
                            router.handle_ack_success(key);
                        } else {
                            self.kernel
                                .schedule_in(ack.timeout, Ev::AckTimeout { node: from, key });
                        }
                    }
                }
            }
        }
        for &rx in &receivers {
            let delay = self.medium.propagation_delay(from, rx);
            self.kernel.schedule_in(delay, Ev::Deliver { to: rx, frame: frame.clone() });
        }
        receivers.clear();
        self.rx_buf = receivers;
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.kernel.now())
            .field("nodes", &self.medium.len())
            .field("on_road", &self.traffic.count_on_road())
            .field("events", &self.kernel.events_processed())
            .field("attacker", &self.attacker_node)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geonet_attack::BlockageMode;

    fn short_cfg() -> ScenarioConfig {
        ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(20))
    }

    fn road_area() -> Area {
        Area::rectangle(Position::new(2_000.0, 0.0), 2_050.0, 25.0, 90.0)
    }

    #[test]
    fn world_builds_and_runs_attacker_free() {
        let mut w = World::new(short_cfg(), None, 1);
        assert!(w.traffic().count_on_road() > 100);
        w.run_until(SimTime::from_secs(5));
        assert!(w.now() >= SimTime::from_secs(4));
        // Beacons have populated location tables.
        let node = w.on_road_nodes()[10];
        assert!(w.router(node).loct().live_count(w.now()) > 0, "LocT empty after 5 s");
    }

    #[test]
    fn cbf_floods_whole_road_attacker_free() {
        let mut w = World::new(short_cfg(), None, 2);
        w.run_until(SimTime::from_secs(4)); // let beacons settle
        let src = w.random_on_road_vehicle().unwrap();
        let src_node = w.vehicle_node(src);
        let on_road_before: Vec<NodeId> = w.on_road_nodes();
        let key = w.originate_from(src_node, &road_area(), vec![0xAB]);
        w.run_until(SimTime::from_secs(8));
        let received = w.received_by(key).unwrap();
        let got = on_road_before.iter().filter(|n| received.contains(n)).count();
        let rate = got as f64 / on_road_before.len() as f64;
        assert!(rate > 0.95, "CBF reached only {rate:.2} of the road");
    }

    #[test]
    fn intra_area_attacker_blocks_part_of_road() {
        let cfg = short_cfg().with_attack_range(500.0);
        let mut a = World::new(cfg, None, 3);
        let mut b = World::new(cfg, Some(AttackerSetup::IntraArea(BlockageMode::ClampRhl)), 3);
        for w in [&mut a, &mut b] {
            w.run_until(SimTime::from_secs(4));
        }
        // Same seed ⇒ same traffic ⇒ same source vehicle.
        let src_a = a.random_on_road_vehicle().unwrap();
        let src_b = b.random_on_road_vehicle().unwrap();
        assert_eq!(src_a, src_b);
        let ka = a.originate_from(a.vehicle_node(src_a), &road_area(), vec![1]);
        let kb = b.originate_from(b.vehicle_node(src_b), &road_area(), vec![1]);
        let nodes_a = a.on_road_nodes();
        let nodes_b = b.on_road_nodes();
        a.run_until(SimTime::from_secs(8));
        b.run_until(SimTime::from_secs(8));
        let rate = |w: &World, k, nodes: &[NodeId]| {
            let r = w.received_by(k).unwrap();
            nodes.iter().filter(|n| r.contains(n)).count() as f64 / nodes.len() as f64
        };
        let ra = rate(&a, ka, &nodes_a);
        let rb = rate(&b, kb, &nodes_b);
        assert!(ra > 0.95, "baseline flood broken: {ra:.2}");
        assert!(rb < ra - 0.1, "attack had no effect: af {ra:.2} atk {rb:.2}");
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = |seed| {
            let mut w = World::new(short_cfg(), Some(AttackerSetup::InterArea), seed);
            w.run_until(SimTime::from_secs(6));
            let src = w.random_on_road_vehicle().unwrap();
            let key = w.originate_from(
                w.vehicle_node(src),
                &Area::circle(Position::new(4_020.0, 0.0), 40.0),
                vec![9],
            );
            w.run_until(SimTime::from_secs(10));
            (
                w.traffic().count_on_road(),
                w.received_by(key).map(|s| s.len()).unwrap_or(0),
                w.inter_attacker().unwrap().beacons_replayed(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn static_nodes_beacon_and_receive() {
        let mut w = World::new(short_cfg(), None, 4);
        let dest = w.add_static_node(Position::new(4_020.0, 2.5), 486.0);
        w.run_until(SimTime::from_secs(4));
        // A vehicle near the east end knows the destination from beacons.
        let near = w
            .on_road_nodes()
            .into_iter()
            .find(|&n| w.node_position(n).x > 3_700.0)
            .expect("vehicle near east end");
        assert!(
            w.router(near).loct().get(w.router(dest).addr(), w.now()).is_some(),
            "destination beacon not heard"
        );
    }

    #[test]
    fn inter_area_attacker_replays_beacons() {
        let mut w = World::new(short_cfg(), Some(AttackerSetup::InterArea), 5);
        w.run_until(SimTime::from_secs(6));
        let atk = w.inter_attacker().unwrap();
        assert!(atk.beacons_replayed() > 10, "attacker idle: {atk}");
    }

    #[test]
    fn exited_vehicles_go_silent() {
        // Vehicles clear the 600 m off-road margin ≈ 20 s after passing
        // the 4 km mark; use a horizon long enough for that.
        let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(40));
        let mut w = World::new(cfg, None, 6);
        w.run_until(SimTime::from_secs(35));
        let exited: Vec<VehicleId> =
            w.traffic().all_vehicles().iter().filter(|v| v.exited).map(|v| v.id).collect();
        assert!(!exited.is_empty(), "nobody exited in 35 s");
        for vid in exited {
            let node = w.vehicle_node(vid);
            assert!(!w.medium.is_active(node));
        }
    }

    #[test]
    fn frame_loss_is_deterministic_and_lossy() {
        let cfg = short_cfg().with_frame_loss(0.3);
        let run = |seed| {
            let mut w = World::new(cfg, None, seed);
            w.run_until(SimTime::from_secs(10));
            (w.frames_on_air(), w.aggregate_stats().beacons_accepted)
        };
        let (frames_a, accepted_a) = run(5);
        assert_eq!((frames_a, accepted_a), run(5), "loss must be seeded");
        // Compare against the lossless world: same frames transmitted,
        // fewer accepted.
        let mut lossless = World::new(short_cfg(), None, 5);
        lossless.run_until(SimTime::from_secs(10));
        let accepted_lossless = lossless.aggregate_stats().beacons_accepted;
        assert!(
            accepted_a < accepted_lossless * 8 / 10,
            "30% loss dropped too little: {accepted_a} vs {accepted_lossless}"
        );
    }

    #[test]
    fn link_ack_retries_appear_in_world_stats() {
        let mut cfg = short_cfg();
        cfg.gn = cfg.gn.with_link_ack(geonet::config::LinkAckConfig::default());
        let mut w = World::new(cfg, Some(AttackerSetup::InterArea), 7);
        w.run_until(SimTime::from_secs(6));
        // Keep originating packets (whose first choice may be poisoned)
        // until one of them needs an ack retry; how soon that happens
        // depends on which random senders sit near the phantom entry.
        for t in 7..=19 {
            if let Some(vid) = w.random_on_road_vehicle() {
                let node = w.vehicle_node(vid);
                let _ = w.originate_from(
                    node,
                    &Area::circle(Position::new(4_020.0, 0.0), 40.0),
                    vec![1],
                );
            }
            w.run_until(SimTime::from_secs(t));
            if w.aggregate_stats().gf_ack_retries > 0 {
                break;
            }
        }
        let agg = w.aggregate_stats();
        assert!(agg.gf_ack_retries > 0, "no retries despite poisoning: {agg:?}");
    }

    #[test]
    fn mobile_attacker_moves_with_the_clock() {
        let cfg = short_cfg().with_attacker_velocity(30.0);
        let mut w = World::new(cfg, Some(AttackerSetup::InterArea), 8);
        w.run_until(SimTime::from_secs(10));
        let atk = w.inter_attacker().unwrap();
        let expected_x = cfg.attacker_position.x + 30.0 * 10.0;
        assert!(
            (atk.position().x - expected_x).abs() < 5.0,
            "attacker at {} after 10 s, expected ≈{expected_x}",
            atk.position().x
        );
    }

    #[test]
    fn topo_observer_samples_and_grades_gradients() {
        use geonet_sim::shared_topo;
        let recorder = shared_topo(SimDuration::from_secs(2));
        let mut w = World::new(short_cfg(), Some(AttackerSetup::InterArea), 11);
        w.set_topo_observer(recorder.clone());
        w.set_topo_destination(Position::new(4_020.0, 0.0));
        w.run_until(SimTime::from_secs(9));
        let rec = recorder.borrow();
        // 20 s horizon sampled every 2 s of the first 9: t≈0.1,2,4,6,8.
        assert!(rec.snapshots().len() >= 4, "only {} snapshots", rec.snapshots().len());
        let last = rec.snapshots().last().unwrap();
        // The attacker is present, flagged and covering vehicles.
        assert_eq!(last.coverage.len(), 1);
        assert!(last.coverage[0].fraction > 0.0, "attacker covers nobody");
        // After 8 s of replayed beacons, some routers inside coverage
        // hold gradients towards phantom (unreachable) neighbours.
        assert!(
            !last.nodes_with_gradient(GradientHealth::Poisoned).is_empty(),
            "no poisoned gradients despite interception attack"
        );
        // The healthy majority still exists.
        assert!(!last.nodes_with_gradient(GradientHealth::Healthy).is_empty());
    }

    #[test]
    fn topo_snapshot_detached_world_matches_attached() {
        // topo_snapshot is a pure read: attaching the observer must not
        // perturb the simulation history.
        let run = |attach: bool| {
            let mut w = World::new(short_cfg(), Some(AttackerSetup::InterArea), 12);
            if attach {
                w.set_topo_observer(geonet_sim::shared_topo(SimDuration::from_secs(1)));
                w.set_topo_destination(Position::new(4_020.0, 0.0));
            }
            w.run_until(SimTime::from_secs(6));
            (w.events_processed(), w.frames_on_air(), w.audit_checkpoint().combined)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn debug_is_informative() {
        let w = World::new(short_cfg(), None, 9);
        let s = format!("{w:?}");
        assert!(s.contains("on_road"), "{s}");
    }
}
