//! Traffic-efficiency impact of the attacks (paper Figure 12).
//!
//! A hazard blocks both eastbound lanes 3 600 m into the 4 km segment at
//! t = 5 s. The vehicle at the head of the queue repeatedly (1 Hz)
//! originates a hazard notification towards the road entrance; once the
//! entrance controller receives it, newly arriving traffic diverts (the
//! entry gate closes). The metric is the number of vehicles on the road
//! over time:
//!
//! * **Case 1** (Figure 12a): the notification travels by *greedy
//!   forwarding* to a destination just beyond the entrance, on a two-way
//!   road; the attacker mounts the inter-area interception attack with the
//!   median NLoS range.
//! * **Case 2** (Figure 12b): the notification is *GeoBroadcast over the
//!   whole segment* (CBF); the attacker mounts the intra-area blockage
//!   attack with a 500 m range.
//!
//! Attacker-free, the on-road count plateaus once the entrance is
//! informed; attacked, the notification never arrives and the queue keeps
//! growing — the paper's traffic jam.

use crate::config::{AttackerSetup, ScenarioConfig};
use crate::intraarea::road_area;
use crate::world::World;
use geonet::PacketKey;
use geonet_attack::BlockageMode;
use geonet_geo::{Area, Position};
use geonet_sim::SimTime;
use geonet_traffic::Direction;
use serde::{Deserialize, Serialize};

/// Which Figure 12 case to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpactCase {
    /// Case 1: GF notification to the entrance, inter-area attacker.
    GfNotification,
    /// Case 2: CBF notification over the road, intra-area attacker.
    CbfNotification,
}

/// The sampled on-road vehicle count of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpactSeries {
    /// Setting label (`"af"` or `"atk"`).
    pub label: String,
    /// `(second, vehicles on road)` samples, 1 Hz.
    pub samples: Vec<(u64, usize)>,
    /// When the entrance controller was informed, if ever.
    pub informed_at_s: Option<u64>,
}

impl ImpactSeries {
    /// The final on-road count.
    #[must_use]
    pub fn final_count(&self) -> usize {
        self.samples.last().map_or(0, |&(_, n)| n)
    }

    /// The largest on-road count observed.
    #[must_use]
    pub fn peak_count(&self) -> usize {
        self.samples.iter().map(|&(_, n)| n).max().unwrap_or(0)
    }
}

/// Seconds into the run at which the hazard appears (paper: 5 s).
pub const HAZARD_TIME_S: u64 = 5;
/// Longitudinal hazard position (paper: 3 600 m).
pub const HAZARD_X: f64 = 3_600.0;

/// Runs one Figure 12 case.
#[must_use]
pub fn run_case(case: ImpactCase, attacked: bool, duration_s: u64, seed: u64) -> ImpactSeries {
    let (cfg, setup): (ScenarioConfig, AttackerSetup) = match case {
        ImpactCase::GfNotification => (
            // mN inter-area attacker. The paper runs this case on a
            // two-way road; in our simulator the stream of westbound
            // vehicles receding from the stopped queue head poisons its
            // location table so thoroughly that even the attacker-free
            // notification never gets out (a stronger form of the GF
            // inefficiency the paper describes). The one-way road
            // reproduces the paper's observable instead: the notification
            // reaches the entrance after tens of seconds attacker-free —
            // delayed by the queue head's stale entries — and never
            // arrives under the interception attack. See EXPERIMENTS.md.
            ScenarioConfig::paper_dsrc_default().with_attack_range(486.0),
            AttackerSetup::InterArea,
        ),
        ImpactCase::CbfNotification => (
            ScenarioConfig::paper_dsrc_default().with_attack_range(500.0),
            AttackerSetup::IntraArea(BlockageMode::ClampRhl),
        ),
    };
    let mut cfg = cfg.with_duration(geonet_sim::SimDuration::from_secs(duration_s));
    // A hazard notification aimed 3.6 km up the road needs more than the
    // GeoNetworking default of 10 hops once congestion and two-way
    // staleness shrink per-hop progress; the originating application sets
    // the packet's maximum hop limit accordingly (the standard leaves MHL
    // to the source; the paper only requires it to be "large").
    cfg.gn.default_hop_limit = 15;
    let mut w = World::new(cfg, attacked.then_some(setup), seed);

    // The entrance controller: a static node that closes the gate when it
    // learns of the hazard. For GF it sits just beyond the entrance (the
    // paper's "vehicles that have not entered the road yet"); for CBF it
    // sits at the entrance inside the broadcast area.
    let (controller, dest_area) = match case {
        ImpactCase::GfNotification => (
            w.add_static_node(Position::new(-20.0, 2.5), cfg.v2v_range),
            Area::circle(Position::new(-20.0, 0.0), 40.0),
        ),
        ImpactCase::CbfNotification => {
            (w.add_static_node(Position::new(2.0, 12.0), cfg.v2v_range), road_area(&cfg))
        }
    };

    let mut samples = Vec::with_capacity(duration_s as usize);
    let mut informed_at_s = None;
    let mut keys: Vec<PacketKey> = Vec::new();
    for t in 1..=duration_s {
        w.run_until(SimTime::from_secs(t));
        if t == HAZARD_TIME_S {
            w.add_hazard(Direction::East, HAZARD_X);
        }
        if t >= HAZARD_TIME_S && informed_at_s.is_none() {
            // Has any earlier notification reached the controller?
            if keys.iter().any(|&k| w.was_received(k, controller)) {
                informed_at_s = Some(t);
                w.set_entry_open(Direction::East, false);
            } else if let Some(head) = queue_head(&w) {
                // Retransmit from the vehicle facing the hazard.
                let node = w.vehicle_node(head);
                keys.push(w.originate_from(node, &dest_area, vec![0x4A]));
            }
        }
        samples.push((t, w.traffic().count_on_road()));
    }
    ImpactSeries {
        label: if attacked { "atk".into() } else { "af".into() },
        samples,
        informed_at_s,
    }
}

/// The eastbound vehicle closest to (but short of) the hazard.
fn queue_head(w: &World) -> Option<geonet_traffic::VehicleId> {
    w.traffic()
        .active_vehicles()
        .filter(|v| v.direction == Direction::East && v.s < HAZARD_X)
        .max_by(|a, b| a.s.partial_cmp(&b.s).expect("positions are finite"))
        .map(|v| v.id)
}

/// Figure 12a: `(attacker-free, attacked)` series for case 1.
#[must_use]
pub fn fig12a(duration_s: u64, seed: u64) -> (ImpactSeries, ImpactSeries) {
    (
        run_case(ImpactCase::GfNotification, false, duration_s, seed),
        run_case(ImpactCase::GfNotification, true, duration_s, seed),
    )
}

/// Figure 12b: `(attacker-free, attacked)` series for case 2.
#[must_use]
pub fn fig12b(duration_s: u64, seed: u64) -> (ImpactSeries, ImpactSeries) {
    (
        run_case(ImpactCase::CbfNotification, false, duration_s, seed),
        run_case(ImpactCase::CbfNotification, true, duration_s, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case2_attack_free_informs_entrance_quickly() {
        let s = run_case(ImpactCase::CbfNotification, false, 30, 5);
        let informed = s.informed_at_s.expect("CBF notification must arrive");
        assert!(informed <= HAZARD_TIME_S + 3, "informed only at {informed}s");
        // Once informed, the gate is closed: count must not keep growing.
        let at_informed = s.samples.iter().find(|&&(t, _)| t == informed).map(|&(_, n)| n).unwrap();
        assert!(s.final_count() <= at_informed + 3, "count kept growing: {s:?}");
    }

    #[test]
    fn case2_attacked_jams_the_road() {
        let af = run_case(ImpactCase::CbfNotification, false, 40, 6);
        let atk = run_case(ImpactCase::CbfNotification, true, 40, 6);
        assert!(atk.informed_at_s.is_none(), "blockage failed: {:?}", atk.informed_at_s);
        assert!(
            atk.final_count() > af.final_count() + 10,
            "no jam: af {} atk {}",
            af.final_count(),
            atk.final_count()
        );
    }

    #[test]
    fn series_helpers() {
        let s = ImpactSeries {
            label: "af".into(),
            samples: vec![(1, 100), (2, 140), (3, 120)],
            informed_at_s: Some(2),
        };
        assert_eq!(s.final_count(), 120);
        assert_eq!(s.peak_count(), 140);
    }
}
