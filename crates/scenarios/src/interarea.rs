//! Inter-area interception experiments (paper Figures 7 and 8).
//!
//! On-road vehicles send *vulnerable packets* towards static destinations
//! 20 m beyond each end of the road: one packet per second from a random
//! vehicle, in the direction whose greedy-forwarding path crosses the
//! attacker's coverage (both directions qualify for sources inside the
//! fully covered area; a coin picks one). Reception is measured at the
//! destination nodes per 5 s time bin; the interception rate γ is the
//! average per-bin drop from the attacker-free to the attacked runs.

use crate::config::{AttackerSetup, Scale, ScenarioConfig};
use crate::parallel;
use crate::progress;
use crate::report::AbResult;
use crate::world::World;
use geonet_geo::{Area, Position};
use geonet_radio::{AccessTechnology, NodeId, RangeProfile};
use geonet_sim::{SharedAuditor, SharedRegistry, SharedSink, SimDuration, SimTime, TimeBins};

/// Runs one seeded simulation and returns the per-bin reception counts of
/// vulnerable packets at the destinations.
#[must_use]
pub fn run_one(cfg: &ScenarioConfig, attacked: bool, seed: u64) -> TimeBins {
    run_one_inner(cfg, attacked, seed, None, None).0
}

/// Like [`run_one`], with every node's [`geonet_sim::TraceEvent`]s routed
/// to `sink` — the input of the [`crate::forensics`] reconstruction.
#[must_use]
pub fn run_one_traced(
    cfg: &ScenarioConfig,
    attacked: bool,
    seed: u64,
    sink: SharedSink,
) -> TimeBins {
    run_one_inner(cfg, attacked, seed, Some(sink), None).0
}

/// Like [`run_one`], with a telemetry registry attached to the world: the
/// hot-path histograms and state-depth gauges of
/// [`geonet_sim::telemetry`] fill up during the run, and the run's kernel
/// event count is returned alongside the bins for throughput accounting.
#[must_use]
pub fn run_one_metered(
    cfg: &ScenarioConfig,
    attacked: bool,
    seed: u64,
    registry: SharedRegistry,
) -> (TimeBins, u64) {
    let (bins, _, _, events) = run_one_full(cfg, attacked, seed, None, Some(registry), None);
    (bins, events)
}

/// Like [`run_one`], additionally returning the channel load of the run:
/// `(bins, frames on air, bytes on air)`. Used by the ACK-overhead
/// extension analysis.
#[must_use]
pub fn run_one_with_load(cfg: &ScenarioConfig, attacked: bool, seed: u64) -> (TimeBins, u64, u64) {
    run_one_inner(cfg, attacked, seed, None, None)
}

/// Like [`run_one`], with an audit recorder attached: the world samples a
/// state-digest checkpoint at the recorder's interval, and the recorder's
/// run metadata is stamped with the scenario parameters so a serialized
/// artifact is self-describing. An optional trace sink may be attached
/// too, so a divergence window reported by
/// [`geonet_sim::diff_artifacts`] can be joined against the same run's
/// trace.
#[must_use]
pub fn run_one_audited(
    cfg: &ScenarioConfig,
    attacked: bool,
    seed: u64,
    sink: Option<SharedSink>,
    auditor: SharedAuditor,
) -> TimeBins {
    {
        let mut rec = auditor.borrow_mut();
        rec.set_meta("scenario", "interarea");
        rec.set_meta("seed", seed.to_string());
        rec.set_meta("attacked", attacked.to_string());
        rec.set_meta("duration_s", cfg.duration.as_secs().to_string());
        rec.set_meta("attack_range_m", format!("{:.1}", cfg.attack_range));
    }
    run_one_full(cfg, attacked, seed, sink, None, Some(auditor)).0
}

fn run_one_inner(
    cfg: &ScenarioConfig,
    attacked: bool,
    seed: u64,
    sink: Option<SharedSink>,
    registry: Option<SharedRegistry>,
) -> (TimeBins, u64, u64) {
    let (bins, frames, bytes, _) = run_one_full(cfg, attacked, seed, sink, registry, None);
    (bins, frames, bytes)
}

fn run_one_full(
    cfg: &ScenarioConfig,
    attacked: bool,
    seed: u64,
    sink: Option<SharedSink>,
    registry: Option<SharedRegistry>,
    auditor: Option<SharedAuditor>,
) -> (TimeBins, u64, u64, u64) {
    let started = progress::run_started();
    let duration_s = cfg.duration.as_secs();
    let mut bins = TimeBins::new(
        SimDuration::from_secs(5),
        usize::try_from(duration_s.div_ceil(5)).expect("bin count fits"),
    );
    let mut w = World::new(*cfg, attacked.then_some(AttackerSetup::InterArea), seed);
    if let Some(sink) = sink {
        w.set_trace_sink(sink);
    }
    if let Some(registry) = registry {
        w.set_telemetry(registry);
    }
    if let Some(auditor) = auditor {
        w.set_auditor(auditor);
    }
    let length = cfg.road.length;
    // Static destinations 20 m beyond each end (paper §IV-A), with small
    // circular destination areas around them.
    let east_node = w.add_static_node(Position::new(length + 20.0, 2.5), cfg.v2v_range);
    let west_node = w.add_static_node(Position::new(-20.0, 2.5), cfg.v2v_range);
    let east_area = Area::circle(Position::new(length + 20.0, 0.0), 40.0);
    let west_area = Area::circle(Position::new(-20.0, 0.0), 40.0);

    let mut generated: Vec<(geonet::PacketKey, SimTime, NodeId)> = Vec::new();
    for t in 1..duration_s {
        w.run_until(SimTime::from_secs(t));
        // Sample vehicles until one can emit a *vulnerable* packet (the
        // paper generates one vulnerable packet per second); in rare
        // configurations a sampled vehicle sits where neither direction
        // qualifies, so resample a few times.
        let mut chosen = None;
        for _ in 0..16 {
            let Some(vid) = w.random_on_road_vehicle() else { break };
            let node = w.vehicle_node(vid);
            let x = w.node_position(node).x;
            let (east_ok, west_ok) = vulnerable_directions(cfg, x);
            let eastbound = match (east_ok, west_ok) {
                (true, true) => w.workload_coin(),
                (true, false) => true,
                (false, true) => false,
                (false, false) => continue,
            };
            chosen = Some((node, eastbound));
            break;
        }
        let Some((node, eastbound)) = chosen else { continue };
        let (area, dest) =
            if eastbound { (&east_area, east_node) } else { (&west_area, west_node) };
        let key = w.originate_from(node, area, vec![0x5A]);
        generated.push((key, w.now(), dest));
    }
    w.run_to_end();
    for (key, gen_time, dest) in generated {
        bins.record(gen_time, w.was_received(key, dest));
    }
    progress::run_completed(started, w.events_processed(), cfg.duration);
    (bins, w.frames_on_air(), w.bytes_on_air(), w.events_processed())
}

/// Runs the A/B pair for one setting at the given scale, merging bins over
/// all seeded runs.
#[must_use]
pub fn run_ab(cfg: &ScenarioConfig, label: &str, scale: Scale, base_seed: u64) -> AbResult {
    let cfg = cfg.with_duration(scale.duration());
    let duration_s = cfg.duration.as_secs();
    let bin_count = usize::try_from(duration_s.div_ceil(5)).expect("bin count fits");
    let mut baseline = TimeBins::new(SimDuration::from_secs(5), bin_count);
    let mut attacked = TimeBins::new(SimDuration::from_secs(5), bin_count);
    progress::begin_setting(label, scale.runs * 2);
    // Independent seeded runs fan across the job pool; pairs come back in
    // seed-index order, so the merge below is byte-identical to the
    // sequential `for i in 0..runs` loop.
    let pairs = parallel::run_indexed(scale.runs, |i| {
        let seed = base_seed.wrapping_add(u64::from(i) * 0x9E37);
        (run_one(&cfg, false, seed), run_one(&cfg, true, seed))
    });
    for (a, b) in &pairs {
        baseline.merge(a);
        attacked.merge(b);
    }
    AbResult { label: label.to_string(), baseline, attacked }
}

/// The attack-range labels used throughout the paper's figures.
fn range_settings(profile: RangeProfile) -> [(&'static str, f64); 3] {
    [("mL", profile.los_median()), ("mN", profile.nlos_median()), ("wN", profile.nlos_worst())]
}

/// Figure 7a: interception vs attack range, DSRC.
#[must_use]
pub fn fig7a(scale: Scale, seed: u64) -> Vec<AbResult> {
    fig7_ranges(AccessTechnology::Dsrc, scale, seed)
}

/// Figure 7b: interception vs attack range, C-V2X.
#[must_use]
pub fn fig7b(scale: Scale, seed: u64) -> Vec<AbResult> {
    fig7_ranges(AccessTechnology::CV2x, scale, seed)
}

fn fig7_ranges(tech: AccessTechnology, scale: Scale, seed: u64) -> Vec<AbResult> {
    let base = ScenarioConfig::paper_default(tech);
    range_settings(base.profile())
        .into_iter()
        .map(|(label, range)| run_ab(&base.with_attack_range(range), label, scale, seed))
        .collect()
}

/// Figure 7c: interception vs LocT TTL (20/10/5 s) with the wN attacker,
/// plus the mN attacker at TTL 5 s, DSRC.
#[must_use]
pub fn fig7c(scale: Scale, seed: u64) -> Vec<AbResult> {
    let base = ScenarioConfig::paper_dsrc_default();
    let mut out: Vec<AbResult> = [20u64, 10, 5]
        .into_iter()
        .map(|ttl| {
            run_ab(
                &base.with_loct_ttl(SimDuration::from_secs(ttl)),
                &format!("wN ttl={ttl}s"),
                scale,
                seed,
            )
        })
        .collect();
    let mn = base
        .with_attack_range(base.profile().nlos_median())
        .with_loct_ttl(SimDuration::from_secs(5));
    out.push(run_ab(&mn, "mN ttl=5s", scale, seed));
    out
}

/// Figure 7d: interception vs inter-vehicle space (30/100/300 m) with the
/// wN attacker, DSRC.
#[must_use]
pub fn fig7d(scale: Scale, seed: u64) -> Vec<AbResult> {
    let base = ScenarioConfig::paper_dsrc_default();
    [30.0, 100.0, 300.0]
        .into_iter()
        .map(|s| run_ab(&base.with_spacing(s), &format!("i={s:.0}m"), scale, seed))
        .collect()
}

/// Figure 7e: interception on one- vs two-direction roads with the wN
/// attacker, DSRC.
#[must_use]
pub fn fig7e(scale: Scale, seed: u64) -> Vec<AbResult> {
    let base = ScenarioConfig::paper_dsrc_default();
    vec![
        run_ab(&base, "1 direction", scale, seed),
        run_ab(&base.with_two_way(true), "2 directions", scale, seed),
    ]
}

/// Figure 8: the accumulated interception-rate series over time for the
/// paper's DSRC scenarios (named `attackrange_changedparameter`).
#[must_use]
pub fn fig8(scale: Scale, seed: u64) -> Vec<(String, Vec<Option<f64>>)> {
    let base = ScenarioConfig::paper_dsrc_default();
    let profile = base.profile();
    let settings: Vec<(String, ScenarioConfig)> = vec![
        ("mL_dflt".into(), base.with_attack_range(profile.los_median())),
        ("mN_dflt".into(), base.with_attack_range(profile.nlos_median())),
        ("wN_dflt".into(), base),
        ("wN_ttl5".into(), base.with_loct_ttl(SimDuration::from_secs(5))),
        ("wN_i100".into(), base.with_spacing(100.0)),
        ("wN_2dir".into(), base.with_two_way(true)),
    ];
    settings
        .into_iter()
        .map(|(label, cfg)| {
            let r = run_ab(&cfg, &label, scale, seed);
            (label, r.accumulated_drop_series())
        })
        .collect()
}

/// Which directions make a packet from `source_x` *vulnerable* (paper
/// Figure 6): the attack applies in a direction iff the attacker's
/// coverage surpasses the coverage of at least one forwarder on the path
/// towards that destination. A forwarder at `x` is surpassed eastward when
/// `attacker_x + attack_range > x + v2v_range`, and every eastbound path
/// from `source_x` contains forwarders arbitrarily close to `source_x`,
/// so the source's own position decides.
///
/// Returns `(eastbound_vulnerable, westbound_vulnerable)`.
#[must_use]
pub fn vulnerable_directions(cfg: &ScenarioConfig, source_x: f64) -> (bool, bool) {
    let ax = cfg.attacker_position.x;
    let east_ok = source_x < ax + cfg.attack_range - cfg.v2v_range;
    let west_ok = source_x > ax - cfg.attack_range + cfg.v2v_range;
    (east_ok, west_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { runs: 1, duration_s: 40 }
    }

    #[test]
    fn vulnerable_direction_rule() {
        // wN attacker at 2000 m with 327 m range, 486 m vehicles:
        // eastbound vulnerable below 2000+327−486 = 1841 m, westbound
        // vulnerable above 2000−327+486 = 2159 m, neither in between.
        let cfg = ScenarioConfig::paper_dsrc_default();
        assert_eq!(vulnerable_directions(&cfg, 100.0), (true, false));
        assert_eq!(vulnerable_directions(&cfg, 3_900.0), (false, true));
        assert_eq!(vulnerable_directions(&cfg, 2_000.0), (false, false));
        // mL attacker (1283 m): a wide middle region is vulnerable both
        // ways.
        let ml = cfg.with_attack_range(1_283.0);
        assert_eq!(vulnerable_directions(&ml, 2_000.0), (true, true));
        assert_eq!(vulnerable_directions(&ml, 1_000.0), (true, false));
        assert_eq!(vulnerable_directions(&ml, 3_000.0), (false, true));
    }

    #[test]
    fn baseline_delivers_some_packets() {
        let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(40));
        let bins = run_one(&cfg, false, 11);
        let rate = bins.overall_rate().expect("packets were generated");
        assert!(rate > 0.3, "attacker-free reception too low: {rate:.2}");
    }

    #[test]
    fn attack_reduces_reception() {
        // Use the median-NLoS attacker (486 m > no gaps) for a strong,
        // fast signal even at tiny scale.
        let cfg = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
        let r = run_ab(&cfg, "mN", tiny(), 21);
        let gamma = r.gamma().expect("bins populated");
        assert!(
            gamma > 0.2,
            "interception ineffective: γ={gamma:.2} af={:?} atk={:?}",
            r.baseline_rate(),
            r.attacked_rate()
        );
    }

    #[test]
    fn fig7a_produces_three_settings() {
        let out = fig7a(Scale { runs: 1, duration_s: 20 }, 5);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].label, "mL");
        assert_eq!(out[2].label, "wN");
    }
}
