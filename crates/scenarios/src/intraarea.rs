//! Intra-area blockage experiments (paper Figures 9 and 10).
//!
//! The destination area is the whole 4 km road segment: every second a
//! random on-road vehicle GeoBroadcasts a packet that should reach every
//! vehicle on the road via CBF. The reception rate of a packet is the
//! fraction of the vehicles that were on the road at generation time which
//! eventually deliver it; the blockage rate λ is the average per-bin drop
//! from attacker-free to attacked runs.

use crate::config::{AttackerSetup, Scale, ScenarioConfig};
use crate::parallel;
use crate::progress;
use crate::report::AbResult;
use crate::world::World;
use geonet::PacketKey;
use geonet_attack::BlockageMode;
use geonet_geo::{Area, Position};
use geonet_radio::{AccessTechnology, NodeId, RangeProfile};
use geonet_sim::{SharedSink, SimDuration, SimTime, TimeBins};

/// The GeoBroadcast destination area covering the whole road segment
/// (both directions' lanes).
#[must_use]
pub fn road_area(cfg: &ScenarioConfig) -> Area {
    Area::rectangle(
        Position::new(cfg.road.length / 2.0, 0.0),
        cfg.road.length / 2.0 + 50.0,
        25.0,
        90.0,
    )
}

/// Per-packet record from one run: when it was generated, where its
/// source sat, and how it fared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketOutcome {
    /// Generation time.
    pub generated_at: SimTime,
    /// Longitudinal position of the source at generation time.
    pub source_x: f64,
    /// Vehicles on the road at generation time.
    pub candidates: u64,
    /// Of those, how many delivered the packet by the end of the run.
    pub received: u64,
}

impl PacketOutcome {
    /// The packet's reception rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.received as f64 / self.candidates as f64
        }
    }
}

/// Runs one seeded simulation, returning the outcome of every generated
/// packet.
#[must_use]
pub fn run_one(cfg: &ScenarioConfig, attacked: bool, seed: u64) -> Vec<PacketOutcome> {
    run_one_inner(cfg, attacked, seed, None)
}

/// Like [`run_one`], with every node's [`geonet_sim::TraceEvent`]s routed
/// to `sink` — the input of the [`crate::forensics`] reconstruction.
#[must_use]
pub fn run_one_traced(
    cfg: &ScenarioConfig,
    attacked: bool,
    seed: u64,
    sink: SharedSink,
) -> Vec<PacketOutcome> {
    run_one_inner(cfg, attacked, seed, Some(sink))
}

fn run_one_inner(
    cfg: &ScenarioConfig,
    attacked: bool,
    seed: u64,
    sink: Option<SharedSink>,
) -> Vec<PacketOutcome> {
    let started = progress::run_started();
    let mode = BlockageMode::ClampRhl;
    let mut w = World::new(*cfg, attacked.then_some(AttackerSetup::IntraArea(mode)), seed);
    if let Some(sink) = sink {
        w.set_trace_sink(sink);
    }
    let area = road_area(cfg);
    let duration_s = cfg.duration.as_secs();
    let mut generated: Vec<(PacketKey, SimTime, f64, Vec<NodeId>)> = Vec::new();
    for t in 1..duration_s {
        w.run_until(SimTime::from_secs(t));
        let Some(vid) = w.random_on_road_vehicle() else { continue };
        let node = w.vehicle_node(vid);
        let snapshot = w.on_road_nodes();
        let x = w.node_position(node).x;
        let key = w.originate_from(node, &area, vec![0xCB]);
        generated.push((key, w.now(), x, snapshot));
    }
    w.run_to_end();
    progress::run_completed(started, w.events_processed(), cfg.duration);
    generated
        .into_iter()
        .map(|(key, generated_at, source_x, snapshot)| {
            let received = snapshot.iter().filter(|n| w.was_received(key, **n)).count() as u64;
            PacketOutcome { generated_at, source_x, candidates: snapshot.len() as u64, received }
        })
        .collect()
}

/// Folds packet outcomes into 5 s time bins (weighted by the number of
/// candidate receivers, as the paper's reception rate is per-vehicle).
#[must_use]
pub fn outcomes_to_bins(outcomes: &[PacketOutcome], duration: SimDuration) -> TimeBins {
    let bin_count = usize::try_from(duration.as_secs().div_ceil(5)).expect("bin count fits");
    let mut bins = TimeBins::new(SimDuration::from_secs(5), bin_count);
    for o in outcomes {
        bins.record_weighted(o.generated_at, o.received, o.candidates);
    }
    bins
}

/// Runs the A/B pair for one setting at the given scale.
#[must_use]
pub fn run_ab(cfg: &ScenarioConfig, label: &str, scale: Scale, base_seed: u64) -> AbResult {
    let cfg = cfg.with_duration(scale.duration());
    let bin_count = usize::try_from(cfg.duration.as_secs().div_ceil(5)).expect("bin count fits");
    let mut baseline = TimeBins::new(SimDuration::from_secs(5), bin_count);
    let mut attacked = TimeBins::new(SimDuration::from_secs(5), bin_count);
    progress::begin_setting(label, scale.runs * 2);
    // Runs are independent per seed; bins are folded inside each job and
    // merged back in seed-index order — byte-identical to the sequential
    // loop.
    let pairs = parallel::run_indexed(scale.runs, |i| {
        let seed = base_seed.wrapping_add(u64::from(i) * 0x517C);
        (
            outcomes_to_bins(&run_one(&cfg, false, seed), cfg.duration),
            outcomes_to_bins(&run_one(&cfg, true, seed), cfg.duration),
        )
    });
    for (a, b) in &pairs {
        baseline.merge(a);
        attacked.merge(b);
    }
    AbResult { label: label.to_string(), baseline, attacked }
}

/// Figure 9a: blockage vs attack range, DSRC (wN, mN, mL and the tuned
/// 500 m attacker).
#[must_use]
pub fn fig9a(scale: Scale, seed: u64) -> Vec<AbResult> {
    fig9_ranges(AccessTechnology::Dsrc, scale, seed)
}

/// Figure 9b: blockage vs attack range, C-V2X.
#[must_use]
pub fn fig9b(scale: Scale, seed: u64) -> Vec<AbResult> {
    fig9_ranges(AccessTechnology::CV2x, scale, seed)
}

fn fig9_ranges(tech: AccessTechnology, scale: Scale, seed: u64) -> Vec<AbResult> {
    let base = ScenarioConfig::paper_default(tech);
    let profile = RangeProfile::for_technology(tech);
    let mut settings = vec![
        ("wN".to_string(), profile.nlos_worst()),
        ("mN".to_string(), profile.nlos_median()),
        ("mL".to_string(), profile.los_median()),
        // The paper's tuned most-effective range.
        ("500m".to_string(), 500.0),
    ];
    settings
        .drain(..)
        .map(|(label, range)| run_ab(&base.with_attack_range(range), &label, scale, seed))
        .collect()
}

/// Figure 9c: blockage vs LocT TTL (20/10/5 s), mN attacker, DSRC — the
/// paper's point is that CBF does not depend on the TTL at all.
#[must_use]
pub fn fig9c(scale: Scale, seed: u64) -> Vec<AbResult> {
    let base = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
    [20u64, 10, 5]
        .into_iter()
        .map(|ttl| {
            run_ab(
                &base.with_loct_ttl(SimDuration::from_secs(ttl)),
                &format!("ttl={ttl}s"),
                scale,
                seed,
            )
        })
        .collect()
}

/// Figure 9d: blockage vs inter-vehicle space (30/100/300 m), mN
/// attacker, DSRC.
#[must_use]
pub fn fig9d(scale: Scale, seed: u64) -> Vec<AbResult> {
    let base = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
    [30.0, 100.0, 300.0]
        .into_iter()
        .map(|s| run_ab(&base.with_spacing(s), &format!("i={s:.0}m"), scale, seed))
        .collect()
}

/// Figure 9e: blockage on one- vs two-direction roads, mN attacker, DSRC.
#[must_use]
pub fn fig9e(scale: Scale, seed: u64) -> Vec<AbResult> {
    let base = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
    vec![
        run_ab(&base, "1 direction", scale, seed),
        run_ab(&base.with_two_way(true), "2 directions", scale, seed),
    ]
}

/// The §IV-A source-location analysis: blockage rate for packets
/// generated inside the *fully covered area* (where the 500 m attacker
/// out-ranges the 486 m vehicles around the source) vs all other packets.
///
/// Returns `(inside, outside)` A/B results.
#[must_use]
pub fn fig9_source_split(scale: Scale, seed: u64) -> (AbResult, AbResult) {
    let cfg = ScenarioConfig::paper_dsrc_default()
        .with_attack_range(500.0)
        .with_duration(scale.duration());
    let half = cfg.attack_range - cfg.v2v_range; // 14 m ⇒ 28 m zone
    let lo = cfg.attacker_position.x - half;
    let hi = cfg.attacker_position.x + half;
    let bin_count = usize::try_from(cfg.duration.as_secs().div_ceil(5)).expect("bin count fits");
    // `run_one` is pure, so each seeded A/B pair is simulated once (the
    // old loop re-ran it per `inside` value) and filtered twice below.
    let runs = parallel::run_indexed(scale.runs, |i| {
        let run_seed = seed.wrapping_add(u64::from(i) * 0x517C);
        (run_one(&cfg, false, run_seed), run_one(&cfg, true, run_seed))
    });
    let mut result = Vec::new();
    for inside in [true, false] {
        let mut baseline = TimeBins::new(SimDuration::from_secs(5), bin_count);
        let mut attacked = TimeBins::new(SimDuration::from_secs(5), bin_count);
        for (base_outcomes, atk_outcomes) in &runs {
            for (outcomes, bins) in [(base_outcomes, &mut baseline), (atk_outcomes, &mut attacked)]
            {
                let filtered: Vec<PacketOutcome> = outcomes
                    .iter()
                    .copied()
                    .filter(|o| ((lo..=hi).contains(&o.source_x)) == inside)
                    .collect();
                bins.merge(&outcomes_to_bins(&filtered, cfg.duration));
            }
        }
        result.push(AbResult {
            label: if inside { "fully covered".into() } else { "elsewhere".into() },
            baseline,
            attacked,
        });
    }
    let outside = result.pop().expect("two results");
    let inside = result.pop().expect("two results");
    (inside, outside)
}

/// Figure 10: accumulated blockage-rate series for the DSRC scenarios.
#[must_use]
pub fn fig10(scale: Scale, seed: u64) -> Vec<(String, Vec<Option<f64>>)> {
    let base = ScenarioConfig::paper_dsrc_default();
    let profile = base.profile();
    let settings: Vec<(String, ScenarioConfig)> = vec![
        ("wN_dflt".into(), base.with_attack_range(profile.nlos_worst())),
        ("mN_dflt".into(), base.with_attack_range(profile.nlos_median())),
        ("mL_dflt".into(), base.with_attack_range(profile.los_median())),
        ("500m_dflt".into(), base.with_attack_range(500.0)),
        ("mN_ttl5".into(), base.with_attack_range(486.0).with_loct_ttl(SimDuration::from_secs(5))),
        ("mN_i100".into(), base.with_attack_range(486.0).with_spacing(100.0)),
        ("mN_2dir".into(), base.with_attack_range(486.0).with_two_way(true)),
    ];
    settings
        .into_iter()
        .map(|(label, cfg)| {
            let r = run_ab(&cfg, &label, scale, seed);
            (label, r.accumulated_drop_series())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_cbf_reaches_almost_everyone() {
        let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(30));
        let outcomes = run_one(&cfg, false, 3);
        assert!(!outcomes.is_empty());
        let bins = outcomes_to_bins(&outcomes, cfg.duration);
        let rate = bins.overall_rate().unwrap();
        assert!(rate > 0.95, "attacker-free CBF reception {rate:.2}");
    }

    #[test]
    fn attacked_cbf_blocks_a_chunk_of_the_road() {
        let cfg = ScenarioConfig::paper_dsrc_default()
            .with_attack_range(500.0)
            .with_duration(SimDuration::from_secs(30));
        let r = run_ab(&cfg, "500m", Scale { runs: 1, duration_s: 30 }, 17);
        let lambda = r.gamma().unwrap();
        assert!(
            (0.1..0.8).contains(&lambda),
            "λ={lambda:.2} af={:?} atk={:?}",
            r.baseline_rate(),
            r.attacked_rate()
        );
    }

    #[test]
    fn packet_outcome_rate() {
        let o = PacketOutcome {
            generated_at: SimTime::from_secs(1),
            source_x: 100.0,
            candidates: 100,
            received: 65,
        };
        assert!((o.rate() - 0.65).abs() < 1e-12);
        let z = PacketOutcome { candidates: 0, received: 0, ..o };
        assert_eq!(z.rate(), 0.0);
    }

    #[test]
    fn road_area_covers_all_lanes() {
        let cfg = ScenarioConfig::paper_dsrc_default();
        let area = road_area(&cfg);
        assert!(area.contains(Position::new(0.0, 7.5)));
        assert!(area.contains(Position::new(4_000.0, -7.5)));
        assert!(!area.contains(Position::new(4_200.0, 0.0)));
    }
}
