//! DSRC and C-V2X communication-range profiles (paper Table II).
//!
//! The ranges come from the Utah Department of Transportation field test
//! cited by the paper ("Field Tests On DSRC And C-V2X Range Of Reception",
//! 2021). The paper's evaluation uses the NLoS median range for
//! vehicle-to-vehicle links (trucks block line of sight between sedans) and
//! lets the attacker raise its transmission power up to the LoS median.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The vehicular access-layer technology in use.
///
/// Each simulation run uses a single technology for all nodes (vehicles,
/// roadside units and the attacker), as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessTechnology {
    /// IEEE 802.11p Dedicated Short Range Communications (ASTM E2213-03).
    Dsrc,
    /// LTE Cellular-V2X sidelink (ETSI EN 303 613).
    CV2x,
}

impl fmt::Display for AccessTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessTechnology::Dsrc => f.write_str("DSRC"),
            AccessTechnology::CV2x => f.write_str("C-V2X"),
        }
    }
}

/// Which measured range from the field test to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RangeCondition {
    /// Median line-of-sight range ("mL" in the paper's figures).
    LosMedian,
    /// Median non-line-of-sight range ("mN").
    NlosMedian,
    /// Worst-case non-line-of-sight range ("wN").
    NlosWorst,
}

impl fmt::Display for RangeCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeCondition::LosMedian => f.write_str("mL"),
            RangeCondition::NlosMedian => f.write_str("mN"),
            RangeCondition::NlosWorst => f.write_str("wN"),
        }
    }
}

/// The communication ranges of one access technology (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeProfile {
    tech: AccessTechnology,
    los_median_m: f64,
    nlos_median_m: f64,
    nlos_worst_m: f64,
}

impl RangeProfile {
    /// DSRC ranges: LoS median 1 283 m, NLoS median 486 m, NLoS worst
    /// 327 m.
    pub const DSRC: RangeProfile = RangeProfile {
        tech: AccessTechnology::Dsrc,
        los_median_m: 1_283.0,
        nlos_median_m: 486.0,
        nlos_worst_m: 327.0,
    };

    /// C-V2X ranges: LoS median 1 703 m, NLoS median 593 m, NLoS worst
    /// 359 m.
    pub const CV2X: RangeProfile = RangeProfile {
        tech: AccessTechnology::CV2x,
        los_median_m: 1_703.0,
        nlos_median_m: 593.0,
        nlos_worst_m: 359.0,
    };

    /// The profile for a given technology.
    #[must_use]
    pub const fn for_technology(tech: AccessTechnology) -> RangeProfile {
        match tech {
            AccessTechnology::Dsrc => RangeProfile::DSRC,
            AccessTechnology::CV2x => RangeProfile::CV2X,
        }
    }

    /// The technology this profile describes.
    #[must_use]
    pub const fn technology(&self) -> AccessTechnology {
        self.tech
    }

    /// Median line-of-sight range, metres.
    #[must_use]
    pub const fn los_median(&self) -> f64 {
        self.los_median_m
    }

    /// Median non-line-of-sight range, metres — the paper's default
    /// vehicle-to-vehicle range.
    #[must_use]
    pub const fn nlos_median(&self) -> f64 {
        self.nlos_median_m
    }

    /// Worst-case non-line-of-sight range, metres.
    #[must_use]
    pub const fn nlos_worst(&self) -> f64 {
        self.nlos_worst_m
    }

    /// Range for a named condition.
    #[must_use]
    pub const fn range(&self, condition: RangeCondition) -> f64 {
        match condition {
            RangeCondition::LosMedian => self.los_median_m,
            RangeCondition::NlosMedian => self.nlos_median_m,
            RangeCondition::NlosWorst => self.nlos_worst_m,
        }
    }

    /// The theoretical maximum communication range used as `DIST_MAX` in
    /// the CBF timeout formula (EN 302 636-4-1 annex). We use the LoS
    /// median, the largest range the field test observed for the
    /// technology.
    #[must_use]
    pub const fn dist_max(&self) -> f64 {
        self.los_median_m
    }
}

impl fmt::Display for RangeProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: LoS(median) {:.0} m, NLoS(median) {:.0} m, NLoS(worst) {:.0} m",
            self.tech, self.los_median_m, self.nlos_median_m, self.nlos_worst_m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_dsrc_values() {
        let p = RangeProfile::DSRC;
        assert_eq!(p.los_median(), 1_283.0);
        assert_eq!(p.nlos_median(), 486.0);
        assert_eq!(p.nlos_worst(), 327.0);
        assert_eq!(p.technology(), AccessTechnology::Dsrc);
    }

    #[test]
    fn table2_cv2x_values() {
        let p = RangeProfile::CV2X;
        assert_eq!(p.los_median(), 1_703.0);
        assert_eq!(p.nlos_median(), 593.0);
        assert_eq!(p.nlos_worst(), 359.0);
        assert_eq!(p.technology(), AccessTechnology::CV2x);
    }

    #[test]
    fn for_technology_round_trip() {
        for tech in [AccessTechnology::Dsrc, AccessTechnology::CV2x] {
            assert_eq!(RangeProfile::for_technology(tech).technology(), tech);
        }
    }

    #[test]
    fn range_by_condition_matches_accessors() {
        let p = RangeProfile::DSRC;
        assert_eq!(p.range(RangeCondition::LosMedian), p.los_median());
        assert_eq!(p.range(RangeCondition::NlosMedian), p.nlos_median());
        assert_eq!(p.range(RangeCondition::NlosWorst), p.nlos_worst());
    }

    #[test]
    fn ranges_are_ordered() {
        for p in [RangeProfile::DSRC, RangeProfile::CV2X] {
            assert!(p.nlos_worst() < p.nlos_median());
            assert!(p.nlos_median() < p.los_median());
            assert_eq!(p.dist_max(), p.los_median());
        }
    }

    #[test]
    fn cv2x_outranges_dsrc_everywhere() {
        // Table II: C-V2X has longer range in every condition, which is why
        // the paper finds DSRC *more* vulnerable to the wN-range attacker.
        for c in [RangeCondition::LosMedian, RangeCondition::NlosMedian, RangeCondition::NlosWorst]
        {
            assert!(RangeProfile::CV2X.range(c) > RangeProfile::DSRC.range(c));
        }
    }

    #[test]
    fn display_mentions_all_ranges() {
        let s = RangeProfile::DSRC.to_string();
        assert!(s.contains("1283") && s.contains("486") && s.contains("327"), "{s}");
        assert_eq!(AccessTechnology::Dsrc.to_string(), "DSRC");
        assert_eq!(RangeCondition::NlosWorst.to_string(), "wN");
    }
}
