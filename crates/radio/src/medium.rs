//! The unit-disk broadcast medium.

use geonet_geo::Position;
use geonet_sim::{SimDuration, StateHasher, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasherDefault;

/// Identifies a node registered on the radio medium.
///
/// The scenario layer keeps `NodeId` aligned with its own vehicle /
/// roadside-unit / attacker indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Per-node radio state.
#[derive(Debug, Clone, Copy)]
struct Entry {
    position: Position,
    tx_range: f64,
    active: bool,
}

/// Below this many registered nodes the plain linear scan beats the grid
/// (nine hash probes plus a sort cost more than scanning a few cache
/// lines), so [`Medium::receivers_into`] falls back to it. Sparse-traffic
/// scenarios — 300 m spacing puts ~26 vehicles on the paper's road, and
/// an hour-long run retires only a few dozen more — stay on the scan and
/// cannot regress. Dense scenarios blow past the cutoff immediately and
/// keep paying more for the scan as retired (inactive) vehicles pile up
/// in the entry table, which the grid never visits.
const LINEAR_CUTOFF: usize = 100;

/// Multiply-shift hasher for packed grid-cell keys. The cell map sits on
/// the per-broadcast hot path, where SipHash would cost more than the
/// scan the grid saves; a single multiply + xor-shift disperses the
/// packed `(cx, cy)` pair well enough for uniform vehicle layouts.
#[derive(Debug, Default)]
struct CellHasher(u64);

impl std::hash::Hasher for CellHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type CellMap = HashMap<u64, Vec<u32>, BuildHasherDefault<CellHasher>>;

/// Uniform grid over node positions: cell edge `cell` metres, buckets of
/// **active** node ids keyed by packed cell coordinates.
///
/// Invariants:
/// * `cell >= tx_range` for every range ever registered or configured
///   (grown monotonically, full rebuild on growth), so an uncapped query
///   touches at most a 3×3 neighbourhood of cells. Queries do not rely on
///   this — they derive the cell box from the effective range — it only
///   bounds the work.
/// * A bucket holds exactly the active entries whose position maps to its
///   cell; inactive nodes are absent (removed in `set_active`).
/// * Empty buckets are dropped so the map tracks occupied cells only.
#[derive(Debug)]
struct Grid {
    cell: f64,
    buckets: CellMap,
}

impl Default for Grid {
    fn default() -> Self {
        Grid { cell: 1.0, buckets: CellMap::default() }
    }
}

impl Grid {
    fn cell_index(&self, v: f64) -> i32 {
        (v / self.cell).floor() as i32
    }

    fn key(cx: i32, cy: i32) -> u64 {
        (u64::from(cx as u32) << 32) | u64::from(cy as u32)
    }

    fn key_of(&self, p: Position) -> u64 {
        Self::key(self.cell_index(p.x), self.cell_index(p.y))
    }

    fn insert(&mut self, id: u32, p: Position) {
        let k = self.key_of(p);
        self.buckets.entry(k).or_default().push(id);
    }

    fn remove(&mut self, id: u32, p: Position) {
        let k = self.key_of(p);
        let bucket = self.buckets.get_mut(&k).expect("grid bucket missing");
        let i = bucket.iter().position(|&x| x == id).expect("node missing from grid bucket");
        bucket.swap_remove(i);
        if bucket.is_empty() {
            self.buckets.remove(&k);
        }
    }

    fn relocate(&mut self, id: u32, from: Position, to: Position) {
        if self.key_of(from) != self.key_of(to) {
            self.remove(id, from);
            self.insert(id, to);
        }
    }

    fn rebuild(&mut self, entries: &[Entry]) {
        self.buckets.clear();
        for (i, e) in entries.iter().enumerate() {
            if e.active {
                let k = self.key_of(e.position);
                self.buckets.entry(k).or_default().push(i as u32);
            }
        }
    }
}

/// A unit-disk broadcast medium.
///
/// Nodes register with a position and a transmission range. A broadcast
/// from node `s` is heard by exactly the active nodes within `s`'s
/// effective range of `s`'s position — the model the paper inherits from
/// its simulator, with ranges calibrated by the Utah DOT field test.
///
/// The medium is pure geometry: it answers *who hears this transmission*
/// and *after what propagation delay*; scheduling the deliveries is the
/// caller's job (see `geonet-scenarios`). This split keeps the medium
/// trivially testable and the event loop in one place.
///
/// Receiver queries are served by an incrementally maintained uniform
/// `Grid` (cell size tied to the largest registered range, kept in sync
/// by `set_position` / `set_active` / `set_tx_range`), with a linear-scan
/// fallback below `LINEAR_CUTOFF` nodes. Both paths apply the same
/// boundary-inclusive range predicate and return ascending ids, so
/// results — and therefore whole simulation runs — are bit-identical to
/// the reference scan ([`Medium::receivers_within_linear`]).
#[derive(Debug, Default)]
pub struct Medium {
    entries: Vec<Entry>,
    grid: Grid,
    telemetry: Telemetry,
}

impl Medium {
    /// Creates an empty medium.
    #[must_use]
    pub fn new() -> Self {
        Medium::default()
    }

    /// Attaches a telemetry handle; the receiver scan behind every
    /// broadcast is wall-clock timed through it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Registers a node at `position` with transmission range `tx_range`
    /// metres and returns its id. Ids are dense indices assigned in
    /// registration order.
    ///
    /// # Panics
    ///
    /// Panics if `tx_range` is not finite and non-negative, or if the
    /// position is not finite.
    pub fn register(&mut self, position: Position, tx_range: f64) -> NodeId {
        assert!(position.is_finite(), "non-finite position");
        assert!(tx_range.is_finite() && tx_range >= 0.0, "invalid tx range: {tx_range}");
        let id = NodeId(u32::try_from(self.entries.len()).expect("too many nodes"));
        self.entries.push(Entry { position, tx_range, active: true });
        if tx_range > self.grid.cell {
            self.grid.cell = tx_range;
            self.grid.rebuild(&self.entries);
        } else {
            self.grid.insert(id.0, position);
        }
        id
    }

    /// Number of registered nodes (active or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no nodes are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every registered node id, ascending — the topology observer's
    /// enumeration when it snapshots the adjacency graph (filter with
    /// [`Medium::is_active`] as needed).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.entries.len()).map(|i| NodeId(i as u32))
    }

    /// Folds every registered node's radio state — position, range,
    /// activity — into an audit digest, in node-id order.
    ///
    /// Deliberately index-structure-agnostic: only the logical state is
    /// digested, never the grid (cell size, bucket layout, insertion
    /// order), so an incrementally maintained medium and a freshly
    /// rebuilt one digest identically.
    pub fn digest_into(&self, h: &mut StateHasher) {
        h.write_u64(self.entries.len() as u64);
        for e in &self.entries {
            h.write_f64(e.position.x);
            h.write_f64(e.position.y);
            h.write_f64(e.tx_range);
            h.write_bool(e.active);
        }
    }

    /// Current position of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this medium.
    #[must_use]
    pub fn position(&self, id: NodeId) -> Position {
        self.entries[id.index()].position
    }

    /// Moves `id` to `position` (vehicles update every traffic step).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the position is not finite.
    pub fn set_position(&mut self, id: NodeId, position: Position) {
        assert!(position.is_finite(), "non-finite position");
        let old = self.entries[id.index()];
        self.entries[id.index()].position = position;
        if old.active {
            self.grid.relocate(id.0, old.position, position);
        }
    }

    /// The configured transmission range of `id`, metres.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    #[must_use]
    pub fn tx_range(&self, id: NodeId) -> f64 {
        self.entries[id.index()].tx_range
    }

    /// Reconfigures the transmission range of `id` (power control).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the range invalid.
    pub fn set_tx_range(&mut self, id: NodeId, tx_range: f64) {
        assert!(tx_range.is_finite() && tx_range >= 0.0, "invalid tx range: {tx_range}");
        self.entries[id.index()].tx_range = tx_range;
        if tx_range > self.grid.cell {
            self.grid.cell = tx_range;
            self.grid.rebuild(&self.entries);
        }
    }

    /// Whether `id` currently participates in the medium.
    #[must_use]
    pub fn is_active(&self, id: NodeId) -> bool {
        self.entries[id.index()].active
    }

    /// Activates or deactivates `id`. Inactive nodes neither hear nor are
    /// counted as receivers (used for vehicles that have left the road).
    pub fn set_active(&mut self, id: NodeId, active: bool) {
        let e = self.entries[id.index()];
        if e.active == active {
            return;
        }
        self.entries[id.index()].active = active;
        if active {
            self.grid.insert(id.0, e.position);
        } else {
            self.grid.remove(id.0, e.position);
        }
    }

    /// The nodes that hear a broadcast from `sender` at its configured
    /// range, in ascending id order (deterministic). The sender itself is
    /// excluded; inactive nodes are excluded.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is unknown.
    #[must_use]
    pub fn receivers(&self, sender: NodeId) -> Vec<NodeId> {
        self.receivers_within(sender, self.tx_range(sender))
    }

    /// Like [`Medium::receivers`] but with the sender's power capped so the
    /// effective range is `min(configured, cap_range)`. Models the
    /// attacker's transmission-power control.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is unknown or `cap_range` is invalid.
    #[must_use]
    pub fn receivers_within(&self, sender: NodeId, cap_range: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.receivers_into(sender, cap_range, &mut out);
        out
    }

    /// Allocation-free variant of [`Medium::receivers_within`]: clears
    /// `out` and fills it with the receivers in ascending id order. The
    /// simulation's delivery path reuses one buffer across broadcasts.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is unknown or `cap_range` is invalid.
    pub fn receivers_into(&self, sender: NodeId, cap_range: f64, out: &mut Vec<NodeId>) {
        assert!(cap_range.is_finite() && cap_range >= 0.0, "invalid cap range: {cap_range}");
        let _span = self.telemetry.time("radio_receiver_scan_ns");
        out.clear();
        let s = self.entries[sender.index()];
        if !s.active {
            return;
        }
        let range = s.tx_range.min(cap_range);
        if self.entries.len() <= LINEAR_CUTOFF {
            for (i, e) in self.entries.iter().enumerate() {
                if i == sender.index() || !e.active {
                    continue;
                }
                if s.position.within_range(e.position, range) {
                    out.push(NodeId(i as u32));
                }
            }
            return; // enumeration order is already ascending
        }
        // Every cell intersecting the bounding square of the range disk;
        // with cell >= range this is at most 3×3.
        let cx0 = self.grid.cell_index(s.position.x - range);
        let cx1 = self.grid.cell_index(s.position.x + range);
        let cy0 = self.grid.cell_index(s.position.y - range);
        let cy1 = self.grid.cell_index(s.position.y + range);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                let Some(bucket) = self.grid.buckets.get(&Grid::key(cx, cy)) else {
                    continue;
                };
                for &i in bucket {
                    if i == sender.0 {
                        continue;
                    }
                    let e = &self.entries[i as usize];
                    debug_assert!(e.active, "grid bucket holds inactive node");
                    if s.position.within_range(e.position, range) {
                        out.push(NodeId(i));
                    }
                }
            }
        }
        // Bucket traversal visits cells, not ids; restore the id order the
        // linear scan produces so runs stay bit-identical.
        out.sort_unstable();
    }

    /// Reference linear-scan implementation of
    /// [`Medium::receivers_within`].
    ///
    /// Kept as the correctness oracle for the grid index — the property
    /// tests assert exact equality against it — and as the baseline side
    /// of the `BENCH_radio.json` A/B gate. Not used on any hot path. It
    /// carries the same telemetry span as the indexed path (the
    /// pre-index implementation did too), so benchmark comparisons
    /// isolate the index itself.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is unknown or `cap_range` is invalid.
    #[must_use]
    pub fn receivers_within_linear(&self, sender: NodeId, cap_range: f64) -> Vec<NodeId> {
        assert!(cap_range.is_finite() && cap_range >= 0.0, "invalid cap range: {cap_range}");
        let _span = self.telemetry.time("radio_receiver_scan_ns");
        let s = &self.entries[sender.index()];
        if !s.active {
            return Vec::new();
        }
        let range = s.tx_range.min(cap_range);
        let mut out = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            if i == sender.index() || !e.active {
                continue;
            }
            if s.position.within_range(e.position, range) {
                out.push(NodeId(i as u32));
            }
        }
        out
    }

    /// Returns `true` if a broadcast from `sender` reaches `receiver` —
    /// i.e. `receiver` is active and within `sender`'s configured range.
    ///
    /// Note the asymmetry: reachability is determined by the *sender's*
    /// range (the attacker transmits farther than vehicles by raising its
    /// power, without hearing farther).
    #[must_use]
    pub fn reaches(&self, sender: NodeId, receiver: NodeId) -> bool {
        let s = &self.entries[sender.index()];
        let r = &self.entries[receiver.index()];
        s.active
            && r.active
            && sender != receiver
            && s.position.within_range(r.position, s.tx_range)
    }

    /// Propagation delay between two nodes: distance over the speed of
    /// light, rounded up to at least one microsecond so that a transmission
    /// and its reception never share a timestamp.
    #[must_use]
    pub fn propagation_delay(&self, a: NodeId, b: NodeId) -> SimDuration {
        let d = self.entries[a.index()].position.distance(self.entries[b.index()].position);
        let us = (d / 299.792_458).ceil().max(1.0); // metres per µs of light
        SimDuration::from_micros(us as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn medium_with_line(ranges: &[f64], spacing: f64) -> (Medium, Vec<NodeId>) {
        let mut m = Medium::new();
        let ids = ranges
            .iter()
            .enumerate()
            .map(|(i, &r)| m.register(Position::new(i as f64 * spacing, 0.0), r))
            .collect();
        (m, ids)
    }

    #[test]
    fn receivers_respect_sender_range() {
        let (m, ids) = medium_with_line(&[500.0; 4], 400.0);
        // Node 0 at x=0 with 500 m range hears only node 1 at 400 m.
        assert_eq!(m.receivers(ids[0]), vec![ids[1]]);
        // Node 1 reaches both neighbours.
        assert_eq!(m.receivers(ids[1]), vec![ids[0], ids[2]]);
    }

    #[test]
    fn asymmetric_ranges() {
        let mut m = Medium::new();
        let strong = m.register(Position::new(0.0, 0.0), 1_000.0);
        let weak = m.register(Position::new(800.0, 0.0), 300.0);
        assert!(m.reaches(strong, weak));
        assert!(!m.reaches(weak, strong));
        assert_eq!(m.receivers(strong), vec![weak]);
        assert!(m.receivers(weak).is_empty());
    }

    #[test]
    fn power_cap_shrinks_range() {
        let (m, ids) = medium_with_line(&[1_000.0; 3], 400.0);
        assert_eq!(m.receivers(ids[0]).len(), 2);
        assert_eq!(m.receivers_within(ids[0], 500.0), vec![ids[1]]);
        assert!(m.receivers_within(ids[0], 100.0).is_empty());
        // Cap above configured range has no effect.
        assert_eq!(m.receivers_within(ids[0], 5_000.0).len(), 2);
    }

    #[test]
    fn inactive_nodes_do_not_participate() {
        let (mut m, ids) = medium_with_line(&[500.0; 3], 100.0);
        m.set_active(ids[1], false);
        assert_eq!(m.receivers(ids[0]), vec![ids[2]]);
        assert!(m.receivers(ids[1]).is_empty());
        assert!(!m.reaches(ids[0], ids[1]));
        m.set_active(ids[1], true);
        assert_eq!(m.receivers(ids[0]), vec![ids[1], ids[2]]);
    }

    #[test]
    fn sender_never_hears_itself() {
        let (m, ids) = medium_with_line(&[500.0; 2], 10.0);
        assert!(!m.receivers(ids[0]).contains(&ids[0]));
        assert!(!m.reaches(ids[0], ids[0]));
    }

    #[test]
    fn positions_update() {
        let (mut m, ids) = medium_with_line(&[500.0; 2], 1_000.0);
        assert!(m.receivers(ids[0]).is_empty());
        m.set_position(ids[1], Position::new(100.0, 0.0));
        assert_eq!(m.receivers(ids[0]), vec![ids[1]]);
        assert_eq!(m.position(ids[1]).x, 100.0);
    }

    #[test]
    fn range_boundary_is_inclusive() {
        let mut m = Medium::new();
        let a = m.register(Position::new(0.0, 0.0), 486.0);
        let b = m.register(Position::new(486.0, 0.0), 486.0);
        assert!(m.reaches(a, b));
        m.set_position(b, Position::new(486.01, 0.0));
        assert!(!m.reaches(a, b));
    }

    #[test]
    fn propagation_delay_minimum_one_microsecond() {
        let (m, ids) = medium_with_line(&[500.0; 2], 0.5);
        assert_eq!(m.propagation_delay(ids[0], ids[1]), SimDuration::from_micros(1));
    }

    #[test]
    fn propagation_delay_scales_with_distance() {
        let mut m = Medium::new();
        let a = m.register(Position::new(0.0, 0.0), 5_000.0);
        let b = m.register(Position::new(2_997.924_58, 0.0), 5_000.0);
        assert_eq!(m.propagation_delay(a, b), SimDuration::from_micros(10));
    }

    #[test]
    fn set_tx_range_reconfigures() {
        let (mut m, ids) = medium_with_line(&[100.0; 2], 400.0);
        assert!(!m.reaches(ids[0], ids[1]));
        m.set_tx_range(ids[0], 500.0);
        assert!(m.reaches(ids[0], ids[1]));
        assert_eq!(m.tx_range(ids[0]), 500.0);
    }

    #[test]
    #[should_panic(expected = "invalid tx range")]
    fn register_rejects_nan_range() {
        let mut m = Medium::new();
        let _ = m.register(Position::ORIGIN, f64::NAN);
    }

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn nodes_enumerates_every_registration_in_order() {
        let (mut m, ids) = medium_with_line(&[500.0; 3], 100.0);
        m.set_active(ids[1], false);
        // Enumeration is registration order and includes inactive nodes.
        assert_eq!(m.nodes().collect::<Vec<_>>(), ids);
        assert!(Medium::new().nodes().next().is_none());
    }

    #[test]
    fn grid_path_matches_oracle_boundary_inclusive_and_sorted() {
        // 134 nodes at 30 m spacing — well past LINEAR_CUTOFF, so the
        // grid path answers.
        let (mut m, ids) = medium_with_line(&[486.0; 134], 30.0);
        let rx = m.receivers(ids[50]);
        assert_eq!(rx, m.receivers_within_linear(ids[50], 486.0));
        // 486 / 30 = 16.2 → 16 neighbours each side.
        assert_eq!(rx.len(), 32);
        assert!(rx.windows(2).all(|w| w[0] < w[1]));
        // Boundary-inclusive on the grid path: a node at exactly 486 m.
        let far = m.register(Position::new(50.0 * 30.0 + 486.0, 0.0), 486.0);
        assert!(m.receivers(ids[50]).contains(&far));
    }

    #[test]
    fn grid_tracks_moves_across_cells() {
        // Past the cutoff; nodes 300 m apart with 100 m range → nobody
        // hears anybody, and each node sits in its own grid cell.
        let (mut m, ids) = medium_with_line(&[100.0; 120], 300.0);
        assert!(m.receivers(ids[0]).is_empty());
        // Move a far node several cells over, next to node 0.
        m.set_position(ids[42], Position::new(50.0, 0.0));
        assert_eq!(m.receivers(ids[0]), vec![ids[42]]);
        assert_eq!(m.receivers(ids[42]), vec![ids[0]]);
        // And away again.
        m.set_position(ids[42], Position::new(-5_000.0, 0.0));
        assert!(m.receivers(ids[0]).is_empty());
    }

    #[test]
    fn grid_tracks_activity_toggles() {
        let (mut m, ids) = medium_with_line(&[486.0; 120], 30.0);
        m.set_active(ids[51], false);
        m.set_active(ids[51], false); // idempotent
        let rx = m.receivers(ids[50]);
        assert!(!rx.contains(&ids[51]));
        assert_eq!(rx, m.receivers_within_linear(ids[50], 486.0));
        m.set_active(ids[51], true);
        m.set_active(ids[51], true); // idempotent
        assert!(m.receivers(ids[50]).contains(&ids[51]));
        // An inactive sender hears nothing on the grid path either.
        m.set_active(ids[50], false);
        assert!(m.receivers(ids[50]).is_empty());
    }

    #[test]
    fn receivers_into_reuses_buffer() {
        let (m, ids) = medium_with_line(&[500.0; 4], 400.0);
        let mut buf = vec![NodeId(99)];
        m.receivers_into(ids[1], 500.0, &mut buf);
        assert_eq!(buf, vec![ids[0], ids[2]]);
        // The buffer is cleared even when nobody hears.
        m.receivers_into(ids[0], 100.0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn digest_is_index_structure_agnostic() {
        // Medium A: nodes registered directly at their final state.
        let mut a = Medium::new();
        for i in 0..80 {
            let _ = a.register(Position::new(f64::from(i) * 25.0, 5.0), 486.0);
        }
        // Medium B: same logical end state reached via moves, activity
        // toggles, and range growth that forces full grid rebuilds.
        let mut b = Medium::new();
        let ids: Vec<NodeId> =
            (0..80).map(|i| b.register(Position::new(-f64::from(i), -200.0), 50.0)).collect();
        for (i, &id) in ids.iter().enumerate() {
            b.set_active(id, false);
            b.set_position(id, Position::new(i as f64 * 25.0, 5.0));
            b.set_active(id, true);
        }
        for &id in &ids {
            b.set_tx_range(id, 486.0);
        }
        let (mut ha, mut hb) = (StateHasher::new(), StateHasher::new());
        a.digest_into(&mut ha);
        b.digest_into(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        // And the two media answer queries identically.
        for id in a.nodes() {
            assert_eq!(a.receivers(id), b.receivers(id));
        }
    }

    proptest! {
        #[test]
        fn prop_receivers_sorted_and_within_range(
            positions in prop::collection::vec((-5_000.0f64..5_000.0, -20.0f64..20.0), 2..40),
            range in 10.0f64..2_000.0)
        {
            let mut m = Medium::new();
            let ids: Vec<NodeId> =
                positions.iter().map(|&(x, y)| m.register(Position::new(x, y), range)).collect();
            let sender = ids[0];
            let rx = m.receivers(sender);
            // Sorted ascending, unique, excludes sender, all within range.
            prop_assert!(rx.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!rx.contains(&sender));
            for &r in &rx {
                prop_assert!(m.position(sender).distance(m.position(r)) <= range + 1e-9);
            }
            // Complement: everyone not in the list is out of range (or the sender).
            for &id in &ids[1..] {
                if !rx.contains(&id) {
                    prop_assert!(m.position(sender).distance(m.position(id)) > range - 1e-9);
                }
            }
        }

        #[test]
        fn prop_cap_monotone(positions in prop::collection::vec((-2_000.0f64..2_000.0, -20.0f64..20.0), 2..30),
                             cap1 in 0.0f64..2_000.0, cap2 in 0.0f64..2_000.0) {
            let mut m = Medium::new();
            let ids: Vec<NodeId> = positions
                .iter()
                .map(|&(x, y)| m.register(Position::new(x, y), 2_000.0))
                .collect();
            let (lo, hi) = if cap1 <= cap2 { (cap1, cap2) } else { (cap2, cap1) };
            let rx_lo = m.receivers_within(ids[0], lo);
            let rx_hi = m.receivers_within(ids[0], hi);
            // A bigger cap can only add receivers.
            for r in &rx_lo {
                prop_assert!(rx_hi.contains(r));
            }
        }

        /// The tentpole equivalence property: after an arbitrary history
        /// of registrations, moves (including across grid cells) and
        /// activity toggles, the grid-indexed query equals the linear
        /// oracle exactly — for every sender and for arbitrary power
        /// caps, on node counts spanning both sides of [`LINEAR_CUTOFF`].
        #[test]
        fn prop_grid_matches_linear_oracle(
            positions in prop::collection::vec((-5_000.0f64..5_000.0, -1_000.0f64..1_000.0), 2..160),
            ranges in prop::collection::vec(0.0f64..2_000.0, 2..160),
            moves in prop::collection::vec(
                (0usize..160, -5_000.0f64..5_000.0, -1_000.0f64..1_000.0), 0..40),
            toggles in prop::collection::vec((0usize..160, any::<bool>()), 0..30),
            cap in 0.0f64..3_000.0)
        {
            let mut m = Medium::new();
            let ids: Vec<NodeId> = positions
                .iter()
                .zip(ranges.iter().cycle())
                .map(|(&(x, y), &r)| m.register(Position::new(x, y), r))
                .collect();
            for &(i, x, y) in &moves {
                m.set_position(ids[i % ids.len()], Position::new(x, y));
            }
            for &(i, active) in &toggles {
                m.set_active(ids[i % ids.len()], active);
            }
            for &sender in &ids {
                prop_assert_eq!(
                    m.receivers_within(sender, cap),
                    m.receivers_within_linear(sender, cap)
                );
            }
        }
    }
}
