//! Radio medium simulation for connected-vehicle communication.
//!
//! The paper abstracts the physical layer to a *communication range* taken
//! from the Utah DOT field test (its Table II): a broadcast is received by
//! every node within the sender's range. This crate reproduces that model:
//!
//! * [`AccessTechnology`] / [`RangeCondition`] / [`RangeProfile`] — the
//!   DSRC and C-V2X range profiles (LoS median, NLoS median, NLoS worst).
//! * [`Medium`] — a unit-disk broadcast medium over registered
//!   [`NodeId`]s: who hears a transmission, and after what propagation
//!   delay. Transmission power control is modelled by capping the sender's
//!   effective range per transmission (used by the attacker's Spot-2
//!   variant and the range sweeps).
//!
//! # Example
//!
//! ```
//! use geonet_geo::Position;
//! use geonet_radio::{Medium, RangeProfile};
//!
//! let range = RangeProfile::DSRC.nlos_median(); // 486 m
//! let mut medium = Medium::new();
//! let a = medium.register(Position::new(0.0, 0.0), range);
//! let b = medium.register(Position::new(400.0, 0.0), range);
//! let c = medium.register(Position::new(900.0, 0.0), range);
//! let heard = medium.receivers(a);
//! assert!(heard.contains(&b) && !heard.contains(&c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod medium;
pub mod profile;

pub use medium::{Medium, NodeId};
pub use profile::{AccessTechnology, RangeCondition, RangeProfile};
