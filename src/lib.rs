//! Umbrella crate for the GeoNetworking security reproduction.
//!
//! This workspace reproduces *Breaking Geographic Routing Among Connected
//! Vehicles* (DSN 2023): an ETSI GeoNetworking stack, a traffic and radio
//! substrate, the paper's two outsider attacks, the proposed mitigations
//! and the full evaluation harness. This crate re-exports the member
//! crates under one name so the examples and integration tests can depend
//! on a single package:
//!
//! * [`geo`] — positions, headings, destination areas.
//! * [`sim`] — discrete-event kernel, deterministic RNG, metrics.
//! * [`radio`] — unit-disk medium and the DSRC / C-V2X range profiles.
//! * [`traffic`] — IDM microsimulation of the 4 km road.
//! * [`geonet`] — the protocol stack: wire formats, security envelope,
//!   location table, greedy forwarding, contention-based forwarding.
//! * [`attack`] — the inter-area interception and intra-area blockage
//!   attackers.
//! * [`scenarios`] — the per-figure experiment drivers.
//!
//! # Quickstart
//!
//! ```
//! use geonet_repro::scenarios::{interarea, ScenarioConfig};
//! use geonet_repro::scenarios::config::Scale;
//!
//! // A miniature A/B run of the paper's Figure 7a wN point.
//! let cfg = ScenarioConfig::paper_dsrc_default();
//! let r = interarea::run_ab(&cfg, "wN", Scale { runs: 1, duration_s: 30 }, 7);
//! assert!(r.baseline_rate().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use geonet;
pub use geonet_attack as attack;
pub use geonet_geo as geo;
pub use geonet_radio as radio;
pub use geonet_scenarios as scenarios;
pub use geonet_sim as sim;
pub use geonet_traffic as traffic;
