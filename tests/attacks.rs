//! Integration tests of the attacks and mitigations: the paper's
//! qualitative claims must hold end-to-end in the full simulation.

use geonet_repro::attack::BlockageMode;
use geonet_repro::scenarios::config::{AttackerSetup, Scale};
use geonet_repro::scenarios::{
    impact, interarea, intraarea, mitigation, safety, ScenarioConfig, World,
};
use geonet_repro::sim::{SimDuration, SimTime};

const SCALE: Scale = Scale { runs: 2, duration_s: 60 };

#[test]
fn interarea_median_nlos_attacker_intercepts_nearly_everything() {
    // Paper: γ ≈ 100 % once the attack range reaches the vehicles' own
    // range.
    let cfg = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
    let r = interarea::run_ab(&cfg, "mN", SCALE, 11);
    let gamma = r.gamma().expect("bins populated");
    assert!(gamma > 0.9, "γ = {gamma:.3}, expected ≈ 1");
}

#[test]
fn interarea_worst_nlos_attacker_intercepts_a_third_or_more() {
    // Paper: γ = 46.8 % with the 327 m attacker (> 35 % in all cases).
    let cfg = ScenarioConfig::paper_dsrc_default();
    let r = interarea::run_ab(&cfg, "wN", SCALE, 12);
    let gamma = r.gamma().expect("bins populated");
    assert!((0.2..0.8).contains(&gamma), "γ = {gamma:.3}, expected ≈ 0.47");
}

#[test]
fn interarea_attack_weakens_with_shorter_ttl() {
    // Paper Figure 7c: γ decreases from TTL 20 s to TTL 5 s. The effect
    // size is small, so this comparison needs more runs than the other
    // tests to sit clear of seed noise.
    let scale = Scale { runs: 6, duration_s: 60 };
    let base = ScenarioConfig::paper_dsrc_default();
    let long = interarea::run_ab(&base, "ttl20", scale, 13).gamma().unwrap();
    let short =
        interarea::run_ab(&base.with_loct_ttl(SimDuration::from_secs(5)), "ttl5", scale, 13)
            .gamma()
            .unwrap();
    assert!(
        short < long + 0.02,
        "shorter TTL should not strengthen the attack: 5s → {short:.3}, 20s → {long:.3}"
    );
}

#[test]
fn intraarea_blockage_blocks_about_a_third() {
    // Paper: λ between 35 % and 39 % with the ~500 m attacker.
    let cfg = ScenarioConfig::paper_dsrc_default().with_attack_range(500.0);
    let r = intraarea::run_ab(&cfg, "500m", SCALE, 14);
    let lambda = r.gamma().expect("bins populated");
    assert!((0.2..0.55).contains(&lambda), "λ = {lambda:.3}, expected ≈ 0.38");
    // And the attacker-free flood is near-perfect.
    assert!(r.baseline_rate().unwrap() > 0.97);
}

#[test]
fn intraarea_blockage_is_not_monotone_in_attack_range() {
    // Paper: increasing the attack range beyond ~the vehicle range
    // *reduces* the blockage (first-time receivers dominate).
    let base = ScenarioConfig::paper_dsrc_default();
    let tuned =
        intraarea::run_ab(&base.with_attack_range(500.0), "500", SCALE, 15).gamma().unwrap();
    let huge =
        intraarea::run_ab(&base.with_attack_range(1_283.0), "mL", SCALE, 15).gamma().unwrap();
    assert!(
        huge < tuned,
        "mL range should be less effective than 500 m: mL {huge:.3} vs 500 m {tuned:.3}"
    );
}

#[test]
fn intraarea_blockage_independent_of_ttl() {
    // Paper Figure 9c: CBF does not use the LocT TTL.
    let base = ScenarioConfig::paper_dsrc_default().with_attack_range(486.0);
    let l20 = intraarea::run_ab(&base, "ttl20", SCALE, 16).gamma().unwrap();
    let l5 = intraarea::run_ab(&base.with_loct_ttl(SimDuration::from_secs(5)), "ttl5", SCALE, 16)
        .gamma()
        .unwrap();
    assert!((l20 - l5).abs() < 0.08, "TTL changed λ: {l20:.3} vs {l5:.3}");
}

#[test]
fn plausibility_check_recovers_interarea_reception() {
    // Paper Figure 14a: reception under attack rises by ≥ 50 pts.
    let results = mitigation::fig14a(Scale { runs: 1, duration_s: 60 }, 17);
    for r in &results {
        if r.label == "af" {
            // The check helps even without an attacker.
            assert!(
                r.improvement().unwrap() > 0.0,
                "plausibility check hurt the attacker-free case: {r}"
            );
        } else {
            assert!(r.improvement().unwrap() > 0.3, "mitigation too weak under {}: {r}", r.label);
        }
    }
}

#[test]
fn rhl_check_restores_cbf_flood() {
    // Paper Figure 14b: mitigated reception realigns with attacker-free.
    let results = mitigation::fig14b(Scale { runs: 1, duration_s: 60 }, 18);
    for r in &results {
        assert!(
            r.mitigated_rate().unwrap() > 0.93,
            "mitigated reception low under {}: {r}",
            r.label
        );
    }
}

#[test]
fn blocked_hazard_notification_causes_a_jam() {
    // Paper Figure 12b in miniature.
    let af = impact::run_case(impact::ImpactCase::CbfNotification, false, 60, 19);
    let atk = impact::run_case(impact::ImpactCase::CbfNotification, true, 60, 19);
    assert!(af.informed_at_s.is_some());
    assert!(atk.informed_at_s.is_none());
    assert!(atk.final_count() > af.final_count() + 20);
}

#[test]
fn curve_scenario_collision_only_under_attack() {
    // Paper Figure 13.
    let (af, atk) = safety::fig13();
    assert!(af.v2_warned && !af.collision);
    assert!(!atk.v2_warned && atk.collision);
    // The attack never forged anything: it silenced one relay.
    assert!(atk.collision_time.unwrap() > 0.0);
}

#[test]
fn spot2_variant_uses_minimal_power() {
    // The power-controlled replay must not leak to distant receivers: in
    // the intra-area world, a Spot-2 attacker with a tiny replay range
    // suppresses far less of the road than the full-power clamp attack.
    let cfg = ScenarioConfig::paper_dsrc_default()
        .with_attack_range(500.0)
        .with_duration(SimDuration::from_secs(40));
    let run = |mode| {
        let mut w = World::new(cfg, Some(AttackerSetup::IntraArea(mode)), 20);
        w.run_until(SimTime::from_secs(4));
        let src = w.random_on_road_vehicle().unwrap();
        let snapshot = w.on_road_nodes();
        let key = w.originate_from(w.vehicle_node(src), &intraarea::road_area(&cfg), vec![1]);
        w.run_until(SimTime::from_secs(8));
        snapshot.iter().filter(|n| w.was_received(key, **n)).count() as f64 / snapshot.len() as f64
    };
    let clamp = run(BlockageMode::ClampRhl);
    let narrow = run(BlockageMode::PowerControlled { range: 30.0 });
    assert!(
        narrow >= clamp,
        "narrow replay should block no more than the full-power clamp: {narrow:.2} vs {clamp:.2}"
    );
}

#[test]
fn attacker_statistics_are_exposed() {
    let cfg = ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(20));
    let mut w = World::new(cfg, Some(AttackerSetup::InterArea), 21);
    w.run_until(SimTime::from_secs(20));
    let atk = w.inter_attacker().expect("mounted");
    assert!(atk.beacons_sniffed() > 50);
    assert_eq!(atk.beacons_sniffed(), atk.beacons_replayed());
}
