//! Protocol-level conformance checks across crate boundaries: wire
//! formats, security envelope semantics and the timing constants the
//! paper's analysis rests on.

use geonet_repro::geo::{Area, GeoReference, Heading, Position};
use geonet_repro::geonet::wire::GnPacket;
use geonet_repro::geonet::{
    CbfParams, CertificateAuthority, GnAddress, GnConfig, LongPositionVector, SequenceNumber,
};
use geonet_repro::sim::{SimDuration, SimTime};

fn sample_pv() -> LongPositionVector {
    LongPositionVector::from_sim(
        GnAddress::vehicle(0xBEEF),
        SimTime::from_secs(42),
        Position::new(1_234.0, 2.5),
        30.0,
        Heading::EAST,
        &GeoReference::default(),
    )
}

#[test]
fn beacon_wire_size_is_36_bytes() {
    // Basic (4) + common (8) + long position vector (24).
    let bytes = GnPacket::beacon(sample_pv()).encode();
    assert_eq!(bytes.len(), 36);
}

#[test]
fn gbc_wire_size_is_56_bytes_plus_payload() {
    let r = GeoReference::default();
    let area = Area::circle(Position::new(4_020.0, 0.0), 40.0);
    let p = GnPacket::geobroadcast(SequenceNumber(1), sample_pv(), &area, &r, vec![0; 10], 10);
    // Basic (4) + common (8) + GBC extended (44) + payload (10).
    assert_eq!(p.encode().len(), 66);
}

#[test]
fn rhl_is_the_fourth_byte_and_only_unprotected_field() {
    let r = GeoReference::default();
    let area = Area::circle(Position::new(0.0, 0.0), 100.0);
    let mut p = GnPacket::geobroadcast(SequenceNumber(9), sample_pv(), &area, &r, vec![7], 10);
    let on_air_10 = p.encode();
    p.basic.rhl = 1;
    let on_air_1 = p.encode();
    let diff: Vec<usize> = (0..on_air_10.len()).filter(|&i| on_air_10[i] != on_air_1[i]).collect();
    assert_eq!(diff, vec![3], "RHL must be byte 3 and the only difference");
    assert_eq!(p.encode_protected()[3], 0, "protected encoding zeroes the RHL");
}

#[test]
fn decoding_is_canonicalising_under_bit_flips() {
    // Every single-bit flip either fails to decode, or decodes to a packet
    // whose re-encoding is a stable canonical form (reserved bits are
    // absorbed; everything else must round-trip exactly).
    let r = GeoReference::default();
    let area = Area::ellipse(Position::new(2_000.0, 0.0), 500.0, 40.0, 90.0);
    let p = GnPacket::geobroadcast(SequenceNumber(3), sample_pv(), &area, &r, vec![1, 2], 10);
    let bytes = p.encode();
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1 << bit;
            if let Ok(decoded) = GnPacket::decode(&mutated) {
                let canonical = decoded.encode();
                let twice = GnPacket::decode(&canonical).expect("canonical form must decode");
                assert_eq!(twice, decoded, "byte {i} bit {bit}: decode not canonicalising");
                assert_eq!(twice.encode(), canonical, "byte {i} bit {bit}: unstable encoding");
            }
        }
    }
}

#[test]
fn security_envelope_spans_crates() {
    let ca = CertificateAuthority::new(7);
    let creds = ca.enroll(GnAddress::vehicle(5));
    let msg = creds.sign(GnPacket::beacon(sample_pv()));
    // Wire round-trip of the payload keeps the signature valid.
    let bytes = msg.packet.encode();
    let decoded = GnPacket::decode(&bytes).expect("round trip");
    assert_eq!(decoded, msg.packet);
    assert!(ca.verifier().verify(&msg));
    // A different CA's verifier rejects it.
    assert!(!CertificateAuthority::new(8).verifier().verify(&msg));
}

#[test]
fn standard_timing_constants() {
    let cfg = GnConfig::paper_default(1_283.0);
    assert_eq!(cfg.beacon_interval, SimDuration::from_secs(3));
    assert_eq!(cfg.beacon_jitter, SimDuration::from_millis(750));
    assert_eq!(cfg.loct_ttl, SimDuration::from_secs(20));
    let cbf = cfg.cbf_params();
    assert_eq!(cbf.to_min, SimDuration::from_millis(1));
    assert_eq!(cbf.to_max, SimDuration::from_millis(100));
}

#[test]
fn cbf_timeout_matches_paper_formula() {
    // TO = TO_MAX + (TO_MIN − TO_MAX) · DIST / DIST_MAX, TO_MIN beyond
    // DIST_MAX — checked against hand-computed values.
    let p = CbfParams::default_for_dist_max(1_283.0);
    let cases: [(f64, f64); 5] = [
        (0.0, 100_000.0),
        (1_283.0, 1_000.0),
        (5_000.0, 1_000.0),
        (641.5, 50_500.0),
        (100.0, 100_000.0 + (1_000.0 - 100_000.0) * 100.0 / 1_283.0),
    ];
    for (dist, expected_us) in cases {
        let got = p.contention_timeout(dist).as_micros() as f64;
        assert!(
            (got - expected_us.round()).abs() <= 1.0,
            "TO({dist}) = {got} µs, expected {expected_us:.0}"
        );
    }
}

#[test]
fn attack_window_exceeds_attacker_processing_delay() {
    // The paper's feasibility argument: the attacker's ~1 ms processing
    // delay fits inside the contention window for every distance within
    // the destination area.
    let p = CbfParams::default_for_dist_max(1_283.0);
    let attacker_delay = SimDuration::from_millis(1);
    for dist in [10.0, 100.0, 250.0, 486.0, 1_000.0, 1_282.0] {
        assert!(
            p.contention_timeout(dist) >= attacker_delay,
            "at {dist} m the contention timer beats the attacker"
        );
    }
}

#[test]
fn position_vector_quantisation_error_is_centimetres() {
    let r = GeoReference::default();
    let pv = sample_pv();
    let back = pv.position(&r);
    assert!(back.distance(Position::new(1_234.0, 2.5)) < 0.05);
}
